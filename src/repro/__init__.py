"""OneQ: a compilation framework for photonic one-way quantum computation.

Reproduction of Zhang et al., ISCA 2023 (arXiv:2209.01545).  The public
API re-exports the main entry points of each subsystem:

>>> from repro import qft, HardwareConfig, compile_circuit
>>> prog = compile_circuit(qft(8), HardwareConfig.square(12))
>>> prog.physical_depth > 0
True
"""

from repro.baseline import BaselineResult, compile_baseline
from repro.circuit import (
    Circuit,
    Gate,
    bernstein_vazirani,
    get_benchmark,
    qaoa_maxcut,
    qft,
    ripple_carry_adder,
    to_basic,
    to_jcz,
)
from repro.core import (
    CompiledProgram,
    OneQCompiler,
    OneQConfig,
    PartitionConfig,
    compile_circuit,
    render_program,
)
from repro.hardware import (
    FOUR_LINE,
    FOUR_RING,
    FOUR_STAR,
    HardwareConfig,
    RESOURCE_STATES,
    THREE_LINE,
    ResourceStateType,
)
from repro.mbqc import MeasurementPattern, circuit_to_pattern, dependency_layers
from repro.sim import simulate, simulate_pattern

__version__ = "1.0.0"

__all__ = [
    "BaselineResult",
    "Circuit",
    "CompiledProgram",
    "FOUR_LINE",
    "FOUR_RING",
    "FOUR_STAR",
    "Gate",
    "HardwareConfig",
    "MeasurementPattern",
    "OneQCompiler",
    "OneQConfig",
    "PartitionConfig",
    "RESOURCE_STATES",
    "ResourceStateType",
    "THREE_LINE",
    "bernstein_vazirani",
    "circuit_to_pattern",
    "compile_baseline",
    "compile_circuit",
    "dependency_layers",
    "get_benchmark",
    "qaoa_maxcut",
    "qft",
    "render_program",
    "ripple_carry_adder",
    "simulate",
    "simulate_pattern",
    "to_basic",
    "to_jcz",
]
