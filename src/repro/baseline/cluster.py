"""Constructive cluster-state model for the baseline (Sec. 2.2.2, 7.1).

`repro.baseline.metrics` prices the baseline with the paper's flat lower
bound (5 resource states per cluster node).  This module builds the
cluster *explicitly* — the 3D lattice graph, the logical-qubit strip
sites, the degree-aware synthesis cost — so the analytic bound can be
validated and the redundancy argument ("most entanglement is wasted")
quantified.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import networkx as nx

from repro.hardware.resource_state import THREE_LINE, ResourceStateType

Coord3 = Tuple[int, int, int]


def cluster_layer_graph(side: int) -> nx.Graph:
    """One 2D cluster layer: a side x side lattice graph state."""
    if side < 1:
        raise ValueError("side must be positive")
    return nx.grid_2d_graph(side, side)


def cluster_3d_graph(side: int, depth: int) -> nx.Graph:
    """A side x side x depth cluster: layers plus vertical edges."""
    if depth < 1:
        raise ValueError("depth must be positive")
    graph = nx.Graph()
    for t in range(depth):
        for r in range(side):
            for c in range(side):
                graph.add_node((t, r, c))
                if r + 1 < side:
                    graph.add_edge((t, r, c), (t, r + 1, c))
                if c + 1 < side:
                    graph.add_edge((t, r, c), (t, r, c + 1))
                if t + 1 < depth:
                    graph.add_edge((t, r, c), (t + 1, r, c))
    return graph


def logical_sites(num_qubits: int) -> List[Tuple[int, int]]:
    """Strip anchor sites: logical qubits on every other row/column.

    This spacing is what makes the cluster side ``2*ceil(sqrt(n)) - 1``
    (Table 1): patterns for two-qubit gates run in the lattice rows and
    columns between neighbouring logical sites.
    """
    grid = max(1, math.ceil(math.sqrt(num_qubits)))
    sites = []
    for q in range(num_qubits):
        gi, gj = divmod(q, grid)
        sites.append((2 * gi, 2 * gj))
    return sites


@dataclass(frozen=True)
class LayerSynthesisCost:
    """Exact degree-aware cost of synthesizing one 3D-cluster layer."""

    resource_states: int
    fusions: int
    nodes: int

    @property
    def states_per_node(self) -> float:
        return self.resource_states / max(1, self.nodes)


def layer_synthesis_cost(
    side: int,
    resource_state: ResourceStateType = THREE_LINE,
    interior_depth: bool = True,
) -> LayerSynthesisCost:
    """Resource states and fusions to synthesize one cluster layer.

    Each cluster node of 3D degree ``d`` costs ``states_for_degree(d)``
    resource states and ``states_for_degree(d) - 1`` chain fusions; every
    lattice edge inside the layer plus the vertical edge to the previous
    layer costs one connection fusion.  ``interior_depth`` counts both
    vertical neighbours (the paper's steady-state assumption behind the
    flat ``5x`` bound: an interior node has degree 6).
    """
    layer = cluster_layer_graph(side)
    vertical = 2 if interior_depth else 1
    states = 0
    chain_fusions = 0
    for node in layer.nodes():
        degree = layer.degree(node) + vertical
        k = resource_state.states_for_degree(degree)
        states += k
        chain_fusions += k - 1
    connection_fusions = layer.number_of_edges() + side * side  # + vertical
    return LayerSynthesisCost(
        resource_states=states,
        fusions=chain_fusions + connection_fusions,
        nodes=side * side,
    )


def redundancy_stats(
    num_qubits: int, used_fraction_per_strip: float = 1.0
) -> Dict[str, float]:
    """How much of the cluster is wasted on geometry (paper Sec. 1).

    Logical strips occupy every other row; the rows between them exist
    only to support occasional two-qubit patterns.  Returns the fraction
    of cluster-layer qubits that are redundant (removed by Z
    measurements) when strips are fully used.
    """
    if not 0.0 <= used_fraction_per_strip <= 1.0:
        raise ValueError("used_fraction_per_strip must be in [0, 1]")
    side = 2 * max(1, math.ceil(math.sqrt(num_qubits))) - 1
    total = side * side
    # per cluster layer: each logical strip actively uses one cell (its
    # pattern column); everything else pads the lattice geometry
    used = num_qubits * used_fraction_per_strip
    return {
        "cluster_side": float(side),
        "total_cells": float(total),
        "used_cells": used,
        "redundant_fraction": 1.0 - used / total,
    }


def verify_against_flat_bound(
    side: int, resource_state: ResourceStateType = THREE_LINE
) -> Tuple[bool, str]:
    """The paper's flat bound (5/node) upper-bounds the exact cost.

    Interior nodes cost exactly 5 three-qubit states; boundary nodes
    fewer — so ``exact <= 5 * nodes`` with equality in the interior.
    """
    cost = layer_synthesis_cost(side, resource_state)
    flat = resource_state.states_for_degree(6) * cost.nodes
    if cost.resource_states > flat:
        return False, (
            f"exact cost {cost.resource_states} exceeds flat bound {flat}"
        )
    return True, "ok"
