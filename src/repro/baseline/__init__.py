"""Baseline cluster-state interpreter (the paper's comparison point)."""

from repro.baseline.cluster import (
    LayerSynthesisCost,
    cluster_3d_graph,
    cluster_layer_graph,
    layer_synthesis_cost,
    logical_sites,
    redundancy_stats,
    verify_against_flat_bound,
)
from repro.baseline.interpreter import (
    BaselineResult,
    baseline_depth,
    compile_baseline,
    gate_width,
    PATTERN_WIDTHS,
)
from repro.baseline.mapper import (
    GridRouter,
    RoutedCircuit,
    logical_grid_side,
    route_on_grid,
)
from repro.baseline.metrics import (
    BaselineAreas,
    CLUSTER_NODE_DEGREE,
    cluster_area,
    cluster_side,
    physical_area,
    physical_side,
)

__all__ = [
    "BaselineAreas",
    "LayerSynthesisCost",
    "cluster_3d_graph",
    "cluster_layer_graph",
    "layer_synthesis_cost",
    "logical_sites",
    "redundancy_stats",
    "verify_against_flat_bound",
    "BaselineResult",
    "CLUSTER_NODE_DEGREE",
    "GridRouter",
    "PATTERN_WIDTHS",
    "RoutedCircuit",
    "baseline_depth",
    "cluster_area",
    "cluster_side",
    "compile_baseline",
    "gate_width",
    "logical_grid_side",
    "physical_area",
    "physical_side",
    "route_on_grid",
]
