"""Qubit mapping and routing for the baseline interpreter.

The baseline lays each logical qubit on a horizontal strip of the 2D
cluster state; two-qubit gates need their strips adjacent on the logical
grid (paper Sec. 7.1 uses Qiskit for this step — we implement our own
greedy SWAP router, which preserves the baseline's structure: far-apart
interactions pay SWAP overhead in cluster columns).

Logical qubits live on a ``side x side`` grid (``side = ceil(sqrt(n))``)
with 4-neighbour adjacency, mirroring the per-layer structure of the
cluster state the patterns are laid on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.circuit.circuit import Circuit
from repro.circuit.gates import Gate

GridPos = Tuple[int, int]


def logical_grid_side(num_qubits: int) -> int:
    """Side of the smallest square grid holding *num_qubits* qubits."""
    return max(1, math.ceil(math.sqrt(num_qubits)))


@dataclass
class RoutedCircuit:
    """Result of SWAP routing onto the logical grid.

    The routed circuit is expressed over *grid positions* (qubit index
    ``row * side + col``); every 2-qubit gate acts on grid-adjacent
    positions.  It equals the input circuit up to the final permutation
    recorded in ``final_layout``.
    """

    circuit: Circuit
    swap_count: int
    grid_side: int
    final_layout: Dict[int, GridPos]  # logical qubit -> final grid position

    def position_index(self, logical: int) -> int:
        row, col = self.final_layout[logical]
        return row * self.grid_side + col


class GridRouter:
    """Greedy nearest-neighbour SWAP insertion on a square grid."""

    def __init__(self, num_qubits: int):
        self.num_qubits = num_qubits
        self.side = logical_grid_side(num_qubits)
        # logical qubit q sits initially at (q // side, q % side)
        self._pos: Dict[int, GridPos] = {
            q: (q // self.side, q % self.side) for q in range(num_qubits)
        }
        self._at: Dict[GridPos, int] = {p: q for q, p in self._pos.items()}

    # ------------------------------------------------------------------
    def distance(self, a: int, b: int) -> int:
        (r1, c1), (r2, c2) = self._pos[a], self._pos[b]
        return abs(r1 - r2) + abs(c1 - c2)

    def are_adjacent(self, a: int, b: int) -> bool:
        return self.distance(a, b) == 1

    def _swap(self, a: int, b: int) -> None:
        pa, pb = self._pos[a], self._pos[b]
        self._pos[a], self._pos[b] = pb, pa
        self._at[pa], self._at[pb] = b, a

    def _neighbor_toward(self, src: int, dst: int) -> int:
        """Logical qubit adjacent to *src* that reduces distance to *dst*."""
        (r, c) = self._pos[src]
        (tr, tc) = self._pos[dst]
        candidates: List[GridPos] = []
        if tr > r:
            candidates.append((r + 1, c))
        elif tr < r:
            candidates.append((r - 1, c))
        if tc > c:
            candidates.append((r, c + 1))
        elif tc < c:
            candidates.append((r, c - 1))
        # deterministic preference: row moves before column moves
        for pos in candidates:
            if pos in self._at:
                return self._at[pos]
        raise RuntimeError("no neighbour toward target")  # pragma: no cover

    def _pos_index(self, logical: int) -> int:
        row, col = self._pos[logical]
        return row * self.side + col

    def route(self, circuit: Circuit) -> RoutedCircuit:
        """Insert SWAPs so every 2-qubit gate acts on adjacent positions.

        Returns a circuit over ``side * side`` grid-position wires with
        explicit ``swap`` gates; it reproduces the input circuit exactly
        up to the final logical-to-position permutation.
        """
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit size does not match router")
        out = Circuit(self.side * self.side)
        swaps = 0
        for gate in circuit:
            if gate.arity == 2:
                a, b = gate.qubits
                while not self.are_adjacent(a, b):
                    step = self._neighbor_toward(a, b)
                    out.append(
                        Gate("swap", (self._pos_index(a), self._pos_index(step)))
                    )
                    self._swap(a, step)
                    swaps += 1
                out.append(
                    Gate(
                        gate.name,
                        (self._pos_index(a), self._pos_index(b)),
                        gate.params,
                    )
                )
            else:
                out.append(
                    Gate(
                        gate.name,
                        tuple(self._pos_index(q) for q in gate.qubits),
                        gate.params,
                    )
                )
        return RoutedCircuit(
            circuit=out,
            swap_count=swaps,
            grid_side=self.side,
            final_layout=dict(self._pos),
        )


def route_on_grid(circuit: Circuit) -> RoutedCircuit:
    """Convenience wrapper: route *circuit* on its natural square grid."""
    return GridRouter(circuit.num_qubits).route(circuit)
