"""Analytic baseline resource metrics (paper Table 1).

The baseline synthesizes a 3D cluster state from resource states.  Two
derived quantities parameterize it:

* **cluster area** — qubits per 2D cluster layer.  Logical qubits occupy
  every other row/column of the lattice so that measurement patterns can
  run between them, giving a ``(2*ceil(sqrt(n)) - 1)^2`` lattice; this
  reproduces Table 1 exactly (16 -> 7x7, 25 -> 9x9, 36 -> 11x11,
  100 -> 19x19).
* **physical area** — RSGs needed to emit one cluster layer per clock
  cycle.  An interior 3D-cluster node has degree 6, costing
  ``states_for_degree(6)`` resource states (5 for 3-qubit lines); the
  paper uses this as a lower bound ignoring routing, and
  ``ceil(sqrt(5 * cluster_area))^2`` reproduces Table 1 exactly
  (16x16, 21x21, 25x25, 43x43).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.resource_state import THREE_LINE, ResourceStateType

#: Degree of an interior node of the 3D cluster lattice.
CLUSTER_NODE_DEGREE = 6


def cluster_side(num_qubits: int) -> int:
    """Side of the square 2D cluster layer hosting *num_qubits* strips."""
    return 2 * max(1, math.ceil(math.sqrt(num_qubits))) - 1


def cluster_area(num_qubits: int) -> int:
    """Qubits per 2D cluster layer (Table 1 'cluster area')."""
    return cluster_side(num_qubits) ** 2


def physical_side(
    num_qubits: int, resource_state: ResourceStateType = THREE_LINE
) -> int:
    """Side of the RSG array emitting one cluster layer per cycle."""
    per_node = resource_state.states_for_degree(CLUSTER_NODE_DEGREE)
    return math.ceil(math.sqrt(per_node * cluster_area(num_qubits)))


def physical_area(
    num_qubits: int, resource_state: ResourceStateType = THREE_LINE
) -> int:
    """RSG count (Table 1 'physical area'), lower bound per the paper."""
    return physical_side(num_qubits, resource_state) ** 2


@dataclass(frozen=True)
class BaselineAreas:
    """The Table 1 row for one benchmark size."""

    num_qubits: int
    cluster_side: int
    cluster_area: int
    physical_side: int
    physical_area: int

    @classmethod
    def for_qubits(
        cls, num_qubits: int, resource_state: ResourceStateType = THREE_LINE
    ) -> "BaselineAreas":
        return cls(
            num_qubits=num_qubits,
            cluster_side=cluster_side(num_qubits),
            cluster_area=cluster_area(num_qubits),
            physical_side=physical_side(num_qubits, resource_state),
            physical_area=physical_area(num_qubits, resource_state),
        )
