"""The baseline cluster-state MBQC interpreter (paper Sec. 2.2.2, 7.1).

The baseline implements a circuit on a 3D cluster state: each logical
qubit is a horizontal strip of a 2D cluster layer, gates become fixed
measurement patterns joined along the strips, and every qubit not used by
a pattern is removed by a Z measurement.  Its costs:

* **depth** — cluster columns consumed.  Each scheduled moment advances
  all strips by the widest pattern it contains (patterns on parallel
  strips run simultaneously; identity wires pad the rest).
* **# fusions** — one cluster layer is synthesized per clock cycle from
  the full RSG array output, so every generated resource state undergoes
  a fusion: ``fusions = depth * physical_area``.  This reproduces the
  exact relation in the paper's Table 2 (e.g. 201472 = 787 * 256).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.baseline.mapper import RoutedCircuit, route_on_grid
from repro.baseline.metrics import BaselineAreas
from repro.circuit.circuit import Circuit
from repro.circuit.library import simplify_basic, to_basic
from repro.hardware.resource_state import THREE_LINE, ResourceStateType
from repro.utils.angles import is_clifford_angle

#: Cluster columns consumed by each pattern type (Raussendorf-style
#: patterns: Clifford wires compress to two X measurements, a general
#: rotation needs the 5-qubit Euler pattern, a CZ/CNOT the 15-qubit
#: two-strip pattern, a SWAP three of those).
PATTERN_WIDTHS: Dict[str, int] = {
    "clifford_1q": 2,
    "rotation_1q": 4,
    "cz": 6,
    "swap": 18,
}


def gate_width(gate) -> int:
    """Cluster-column width of one routed gate's measurement pattern."""
    if gate.name == "cz":
        return PATTERN_WIDTHS["cz"]
    if gate.name == "swap":
        return PATTERN_WIDTHS["swap"]
    if gate.name == "h":
        return PATTERN_WIDTHS["clifford_1q"]
    if gate.name in ("rz", "rx"):
        if is_clifford_angle(gate.params[0]):
            return PATTERN_WIDTHS["clifford_1q"]
        return PATTERN_WIDTHS["rotation_1q"]
    raise ValueError(f"unexpected routed gate {gate}")  # pragma: no cover


@dataclass(frozen=True)
class BaselineResult:
    """Full baseline compilation record for one benchmark."""

    name: str
    num_qubits: int
    areas: BaselineAreas
    depth: int
    num_fusions: int
    swap_count: int
    routed_gate_count: int

    @property
    def cluster_area(self) -> int:
        return self.areas.cluster_area

    @property
    def physical_area(self) -> int:
        return self.areas.physical_area


def baseline_depth(routed: RoutedCircuit) -> int:
    """Total cluster columns consumed by the joined patterns.

    Patterns on disjoint strips run in the same columns; a gate's pattern
    starts at the column where all of its strips are free and occupies
    ``gate_width`` columns (identity wires pad shorter strips).  This is
    an ASAP schedule with weighted gates — the column-count analogue of
    circuit depth.
    """
    clock: Dict[int, int] = {}
    for gate in routed.circuit:
        width = gate_width(gate)
        start = max((clock.get(q, 0) for q in gate.qubits), default=0)
        for q in gate.qubits:
            clock[q] = start + width
    return max(clock.values(), default=0)


def compile_baseline(
    circuit: Circuit,
    name: str = "circuit",
    resource_state: ResourceStateType = THREE_LINE,
) -> BaselineResult:
    """Run the full baseline flow: lower, route, lay patterns, count.

    The resulting metrics follow the paper's accounting: the machine's
    physical area is sized so one cluster layer is emitted per cycle
    (``BaselineAreas``), the depth is the column count of the joined
    patterns, and every emitted resource state is consumed by fusion.
    """
    basic = simplify_basic(to_basic(circuit))
    routed = route_on_grid(basic)
    depth = baseline_depth(routed)
    areas = BaselineAreas.for_qubits(circuit.num_qubits, resource_state)
    return BaselineResult(
        name=name,
        num_qubits=circuit.num_qubits,
        areas=areas,
        depth=depth,
        num_fusions=depth * areas.physical_area,
        swap_count=routed.swap_count,
        routed_gate_count=len(routed.circuit),
    )
