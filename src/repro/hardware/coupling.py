"""The extendable space-time coupling graph (paper Sec. 3.1, Fig. 5).

Nodes of the coupling graph are resource states identified by
``(layer, row, col)``: the RSG at ``(row, col)`` emitted them at clock
cycle ``layer``.  Edges are fusion supports:

* *spatial* — same layer, 4-neighbour RSGs;
* *temporal* — same RSG, layers at most ``max_delay`` apart (delay lines).

Consecutive physical layers can be glued into an *extended physical
layer*: a ``rows x (cols * extension)`` logical grid in which boundary
temporal connections act like spatial ones (Fig. 5b / Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Tuple

import networkx as nx

from repro.hardware.resource_state import (
    THREE_LINE,
    ResourceStateType,
)

LayerCoord = Tuple[int, int]  # (row, col) within a (possibly extended) layer
SpaceTimeCoord = Tuple[int, int, int]  # (layer, row, col)


@dataclass(frozen=True)
class HardwareConfig:
    """Machine description consumed by both compilers.

    Attributes:
        rows, cols: RSG array shape; ``rows * cols`` is the physical area.
        resource_state: the emitted resource-state type.
        max_delay: max clock-cycle separation a delay line can bridge.
        extension: physical layers merged into one extended layer for
            mapping (1 = no extension).
    """

    rows: int
    cols: int
    resource_state: ResourceStateType = THREE_LINE
    max_delay: int = 2
    extension: int = 1

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("grid dimensions must be positive")
        if self.max_delay < 1:
            raise ValueError("max_delay must be at least 1")
        if self.extension < 1:
            raise ValueError("extension must be at least 1")

    @property
    def physical_area(self) -> int:
        """Number of RSGs (resource states per clock cycle)."""
        return self.rows * self.cols

    @property
    def extended_shape(self) -> Tuple[int, int]:
        """Grid shape of one extended physical layer."""
        return (self.rows, self.cols * self.extension)

    @classmethod
    def square(
        cls,
        side: int,
        resource_state: ResourceStateType = THREE_LINE,
        **kwargs,
    ) -> "HardwareConfig":
        """Square RSG array of a given side (paper's default shape)."""
        return cls(rows=side, cols=side, resource_state=resource_state, **kwargs)

    @classmethod
    def with_area(
        cls,
        area: int,
        ratio: float = 1.0,
        resource_state: ResourceStateType = THREE_LINE,
        **kwargs,
    ) -> "HardwareConfig":
        """Closest ``rows x cols`` grid to *area* with cols/rows ~= ratio.

        Used by the Fig. 13 (aspect ratio) and Fig. 15 (physical area)
        sweeps.
        """
        if area <= 0:
            raise ValueError("area must be positive")
        rows = max(1, round((area / ratio) ** 0.5))
        cols = max(1, round(area / rows))
        return cls(rows=rows, cols=cols, resource_state=resource_state, **kwargs)


@dataclass
class SpaceTimeCouplingGraph:
    """Materialized coupling graph over a window of physical layers.

    The compiler itself works layer-by-layer and never needs the full 3D
    graph; this class exists as the formal hardware model (Sec. 3.1) and
    is used by tests to validate the mapper's moves against actual
    hardware adjacency.
    """

    config: HardwareConfig
    num_layers: int
    graph: nx.Graph = field(init=False)

    def __post_init__(self) -> None:
        if self.num_layers <= 0:
            raise ValueError("num_layers must be positive")
        g = nx.Graph()
        cfg = self.config
        for t in range(self.num_layers):
            for r in range(cfg.rows):
                for c in range(cfg.cols):
                    g.add_node((t, r, c))
        for t in range(self.num_layers):
            for r in range(cfg.rows):
                for c in range(cfg.cols):
                    if r + 1 < cfg.rows:
                        g.add_edge((t, r, c), (t, r + 1, c), kind="spatial")
                    if c + 1 < cfg.cols:
                        g.add_edge((t, r, c), (t, r, c + 1), kind="spatial")
                    for dt in range(1, cfg.max_delay + 1):
                        if t + dt < self.num_layers:
                            g.add_edge((t, r, c), (t + dt, r, c), kind="temporal")
        self.graph = g

    def spatial_neighbors(self, coord: SpaceTimeCoord) -> Iterator[SpaceTimeCoord]:
        """Same-layer 4-neighbour RSG coordinates of *coord*."""
        for nbr in self.graph.neighbors(coord):
            if self.graph.edges[coord, nbr]["kind"] == "spatial":
                yield nbr

    def temporal_neighbors(self, coord: SpaceTimeCoord) -> Iterator[SpaceTimeCoord]:
        """Delay-line neighbours: same RSG, within ``max_delay`` cycles."""
        for nbr in self.graph.neighbors(coord):
            if self.graph.edges[coord, nbr]["kind"] == "temporal":
                yield nbr

    def max_active_couplings(self) -> int:
        """Per-location fusion bound from the resource-state size.

        The coupling graph offers up to ``4 + 2*max_delay`` supports per
        location but only ``size`` photons exist to burn (Sec. 3.1,
        difference (1) from solid-state coupling maps).
        """
        return self.config.resource_state.size


def extended_to_physical(
    coord: LayerCoord, config: HardwareConfig
) -> Tuple[int, LayerCoord]:
    """Map an extended-layer coordinate to (sub-layer, physical coord).

    Extended layers glue ``extension`` consecutive physical layers along
    the column axis, flipping odd sub-layers so boundary temporal links
    line up (Fig. 5b).
    """
    row, col = coord
    sub = col // config.cols
    within = col % config.cols
    if sub % 2 == 1:  # flipped in the horizontal direction
        within = config.cols - 1 - within
    return sub, (row, within)
