"""Photonic noise model and program fidelity estimation.

The paper motivates both compiler metrics with hardware physics: fusions
are the lowest-fidelity operation on the machine, and photons waiting in
delay lines suffer loss (Sec. 2.1, 3.1).  This module turns a compiled
program's resource counts into an estimated success probability /
fidelity so the two metrics can be compared on one axis.

The model is intentionally simple and multiplicative (independent error
events), which is the standard first-order treatment:

* each fusion succeeds with probability ``fusion_success`` (linear-optics
  Bell measurements are intrinsically probabilistic: 0.5 bare, 0.75 with
  ancilla boosting [Ewert & van Loock 2014]) and, when successful,
  introduces an error with probability ``fusion_error``;
* each photon surviving a clock cycle in a delay line keeps its state
  with probability ``1 - cycle_loss``;
* each single-qubit measurement errs with probability
  ``measurement_error``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class NoiseModel:
    """First-order photonic error model."""

    fusion_success: float = 0.75
    fusion_error: float = 0.01
    cycle_loss: float = 0.001
    measurement_error: float = 0.001

    def __post_init__(self) -> None:
        """Every rate is a probability; the degenerate bounds are legal
        and carry their limiting semantics: error/loss rates of exactly
        1 give ``-inf`` log-fidelity, and ``fusion_success=0`` means
        repeat-until-success never terminates
        (:func:`expected_fusion_attempts` reports ``inf``; the
        Monte-Carlo sampler rejects such runs with a clear message)."""
        for name in ("fusion_success", "fusion_error", "cycle_loss", "measurement_error"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")

    def scaled(self, severity: float) -> "NoiseModel":
        """Scale every failure probability by ``severity`` (clamped).

        One severity axis shared by sweeps and degradation scenarios:
        ``scaled(0.0)`` is perfect hardware (every failure channel off,
        fusions always succeed), ``scaled(1.0)`` is this model
        unchanged, and larger factors degrade it.  Each failure
        probability — the fusion *failure* rate ``1 - fusion_success``,
        ``fusion_error``, ``cycle_loss``, ``measurement_error`` —
        multiplies by ``severity`` and clamps into ``[0, 1]``, so the
        degenerate bounds are preserved as legal limits: a rate pushed
        past 1 pins at exactly 1.0 and ``fusion_success`` can reach
        exactly 0.0 (both retain their limiting semantics from
        ``__post_init__``).

        >>> noisy = NoiseModel(0.75, 0.25, 0.125, 0.0625)
        >>> noisy.scaled(0.0)
        NoiseModel(fusion_success=1.0, fusion_error=0.0, cycle_loss=0.0, measurement_error=0.0)
        >>> noisy.scaled(1.0) == noisy
        True
        >>> noisy.scaled(4.0)
        NoiseModel(fusion_success=0.0, fusion_error=1.0, cycle_loss=0.5, measurement_error=0.25)
        """
        if severity < 0.0:
            raise ValueError(f"severity cannot be negative, got {severity}")

        def clamp(p: float) -> float:
            return min(1.0, max(0.0, p * severity))

        return NoiseModel(
            fusion_success=1.0 - clamp(1.0 - self.fusion_success),
            fusion_error=clamp(self.fusion_error),
            cycle_loss=clamp(self.cycle_loss),
            measurement_error=clamp(self.measurement_error),
        )


#: A forgiving default for comparisons (boosted fusion, good optics).
DEFAULT_NOISE = NoiseModel()


def log_fidelity(
    num_fusions: int,
    num_measurements: int,
    photon_cycles: int,
    model: NoiseModel = DEFAULT_NOISE,
) -> float:
    """Natural-log probability that an execution sees *zero* error events.

    Args:
        num_fusions: fusion operations performed (each errs independently
            with probability ``model.fusion_error``).
        num_measurements: single-photon measurements, including the final
            readout of output photons (each flips with probability
            ``model.measurement_error``).
        photon_cycles: photon x clock-cycle delay-line waits (each loses
            the photon with probability ``model.cycle_loss``).

    Multiplies per-fusion error survival, per-measurement survival and
    per-cycle photon survival.  Returned in log space because realistic
    programs have thousands of events; ``-inf`` when any event is
    certain to fail (a rate of exactly 1 with a positive count).

    >>> model = NoiseModel(fusion_error=0.1, cycle_loss=0.0,
    ...                    measurement_error=0.0)
    >>> round(log_fidelity(2, 0, 0, model), 6) == round(2 * math.log(0.9), 6)
    True
    >>> log_fidelity(1, 0, 0, NoiseModel(fusion_error=1.0))
    -inf
    """
    if min(num_fusions, num_measurements, photon_cycles) < 0:
        raise ValueError("event counts cannot be negative")
    out = 0.0
    for rate, count in (
        (model.fusion_error, num_fusions),
        (model.measurement_error, num_measurements),
        (model.cycle_loss, photon_cycles),
    ):
        if rate >= 1.0:
            if count > 0:
                return float("-inf")
        elif rate > 0.0:
            out += count * math.log1p(-rate)
    return out


def success_probability(
    num_fusions: int,
    num_measurements: int,
    photon_cycles: int,
    model: NoiseModel = DEFAULT_NOISE,
) -> float:
    """Linear-space companion of :func:`log_fidelity`.

    The probability that one execution experiences no fusion error, no
    measurement flip and no photon loss — the quantity the Monte-Carlo
    sampler's fault-free shot rate estimates (``repro.sim.noisy``).

    >>> model = NoiseModel(fusion_error=0.1, cycle_loss=0.0,
    ...                    measurement_error=0.0)
    >>> round(success_probability(2, 0, 0, model), 4)
    0.81
    >>> success_probability(0, 0, 5, NoiseModel(cycle_loss=1.0))
    0.0
    """
    lf = log_fidelity(num_fusions, num_measurements, photon_cycles, model)
    return 0.0 if lf == float("-inf") else math.exp(lf)


def expected_fusion_attempts(
    num_fusions: int, model: NoiseModel = DEFAULT_NOISE
) -> float:
    """Expected fusion attempts given probabilistic success.

    Linear-optics fusions herald failure; with repeat-until-success
    (and enough resource-state supply) the expected attempt count is
    ``num_fusions / fusion_success`` — ``inf`` at the degenerate
    ``fusion_success=0`` bound (no fusion ever succeeds), mirroring the
    ``-inf`` log-fidelity bound of certain-failure rates.

    >>> expected_fusion_attempts(75)  # boosted fusions, p = 0.75
    100.0
    >>> expected_fusion_attempts(1, NoiseModel(fusion_success=0.0))
    inf
    >>> expected_fusion_attempts(0, NoiseModel(fusion_success=0.0))
    0.0
    """
    if num_fusions < 0:
        raise ValueError("num_fusions cannot be negative")
    if model.fusion_success == 0.0:
        return float("inf") if num_fusions else 0.0
    return num_fusions / model.fusion_success


def program_log_fidelity(program, model: NoiseModel = DEFAULT_NOISE) -> float:
    """Estimated log-fidelity of a compiled OneQ program.

    Uses the program's fusion tally, its pattern size (one computational
    measurement per graph node) and a pessimistic photon-cycle estimate:
    every resource state's photons wait on average one physical layer.
    """
    photons = program.resource_states_used * 3  # lower bound: >= 3 each
    return log_fidelity(
        num_fusions=program.num_fusions,
        num_measurements=program.pattern_nodes,
        photon_cycles=photons,
        model=model,
    )


def baseline_log_fidelity(result, model: NoiseModel = DEFAULT_NOISE) -> float:
    """Estimated log-fidelity of a baseline cluster-state execution.

    The baseline consumes ``depth * physical_area`` resource states and
    measures every qubit of every cluster layer (cluster_area per layer,
    most of them redundant Z measurements).
    """
    measurements = result.depth * result.cluster_area
    photons = result.num_fusions * 2 + measurements
    return log_fidelity(
        num_fusions=result.num_fusions,
        num_measurements=measurements,
        photon_cycles=photons,
        model=model,
    )


def fidelity_improvement_factor(program, result, model: NoiseModel = DEFAULT_NOISE) -> float:
    """Ratio of log-infidelities baseline/OneQ (>1 means OneQ wins).

    For small error rates ``-log F`` is approximately the expected number
    of errors, so this ratio reads as "the baseline accumulates k times
    more errors".
    """
    ours = -program_log_fidelity(program, model)
    base = -baseline_log_fidelity(result, model)
    if ours <= 0:
        return float("inf")
    return base / ours
