"""The resource-state zoo (paper Sec. 2.1, 7.2).

Practical photonic hardware emits small, *identical* entangled states
every clock cycle.  The paper evaluates four shapes: the 3-qubit line
(GHZ-class), 4-qubit line, 4-qubit star and 4-qubit ring.  A resource
state's two numbers that matter to the compiler are its *size* (photons —
each fusion permanently consumes one) and its *max degree* (how connected
a single photon can be, which bounds how fast high-degree graph nodes can
be synthesized).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import networkx as nx


@dataclass(frozen=True)
class ResourceStateType:
    """An immutable description of the hardware's emitted resource state."""

    name: str
    size: int
    edges: Tuple[Tuple[int, int], ...]

    def graph(self) -> nx.Graph:
        """The entanglement graph of one resource state."""
        g = nx.Graph()
        g.add_nodes_from(range(self.size))
        g.add_edges_from(self.edges)
        return g

    @property
    def max_degree(self) -> int:
        degree: Dict[int, int] = {q: 0 for q in range(self.size)}
        for u, v in self.edges:
            degree[u] += 1
            degree[v] += 1
        return max(degree.values())

    # ------------------------------------------------------------------
    # synthesis accounting (paper Sec. 5)
    # ------------------------------------------------------------------
    def states_for_degree(self, degree: int) -> int:
        """Resource states needed to synthesize a degree-*degree* node.

        Exact port-counting recurrence for the degree-increment pattern
        (Fig. 7a/8): the first state exposes ``m`` ports (its max-degree
        qubit is the synthesized node) and each further state trades one
        port for ``m`` new ones, a net gain of ``m - 1``.  For 3-qubit
        lines this gives the paper's ``n - 1`` exactly; for max degree
        ``m > 2`` it matches the paper's approximate ``n // m + 1`` on
        all the degrees arising in the evaluation and is exact beyond.
        """
        if degree <= 0:
            return 1
        m = self.max_degree
        if degree <= m:
            return 1
        # smallest k with m + (k - 1) * (m - 1) >= degree
        return 1 + -(-(degree - m) // (m - 1))

    def states_for_line(self, length: int) -> int:
        """Resource states to synthesize an *length*-node line.

        Line extension (Fig. 7b) joins two lines and loses two photons:
        ``k`` states of size ``s`` give a ``k*(s-2) + 2`` node line.
        """
        if length <= 2:
            return 1
        span = self.size - 2
        if span <= 0:  # pragma: no cover - all our states have size >= 3
            raise ValueError("resource state too small for line synthesis")
        return max(1, -(-(length - 2) // span))

    def fusion_capacity(self) -> int:
        """Max fusions a single resource state can participate in.

        Each fusion destroys one photon of the state, so the capacity is
        simply its photon count.
        """
        return self.size


#: The four shapes evaluated in the paper (Fig. 12).
THREE_LINE = ResourceStateType("3-line", 3, ((0, 1), (1, 2)))
FOUR_LINE = ResourceStateType("4-line", 4, ((0, 1), (1, 2), (2, 3)))
FOUR_STAR = ResourceStateType("4-star", 4, ((0, 1), (0, 2), (0, 3)))
FOUR_RING = ResourceStateType("4-ring", 4, ((0, 1), (1, 2), (2, 3), (3, 0)))

RESOURCE_STATES: Dict[str, ResourceStateType] = {
    rst.name: rst
    for rst in (THREE_LINE, FOUR_LINE, FOUR_STAR, FOUR_RING)
}


def get_resource_state(name: str) -> ResourceStateType:
    """Look up a resource-state type by its paper name (e.g. ``"3-line"``)."""
    try:
        return RESOURCE_STATES[name]
    except KeyError:
        raise ValueError(
            f"unknown resource state {name!r}; "
            f"available: {sorted(RESOURCE_STATES)}"
        ) from None
