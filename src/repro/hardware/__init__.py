"""Hardware model: resource states, coupling graph and fusion accounting."""

from repro.hardware.coupling import (
    HardwareConfig,
    SpaceTimeCouplingGraph,
    extended_to_physical,
)
from repro.hardware.degradation import (
    SCENARIOS,
    SiteNoiseMap,
    SiteProfile,
    dead_assigned_fusions,
    make_scenario,
    program_site_profile,
    site_analytic_yield,
)
from repro.hardware.fusion import FusionTally
from repro.hardware.noise import (
    DEFAULT_NOISE,
    NoiseModel,
    baseline_log_fidelity,
    expected_fusion_attempts,
    fidelity_improvement_factor,
    log_fidelity,
    program_log_fidelity,
    success_probability,
)
from repro.hardware.resource_state import (
    FOUR_LINE,
    FOUR_RING,
    FOUR_STAR,
    RESOURCE_STATES,
    THREE_LINE,
    ResourceStateType,
    get_resource_state,
)

__all__ = [
    "DEFAULT_NOISE",
    "FOUR_LINE",
    "FOUR_RING",
    "FOUR_STAR",
    "FusionTally",
    "NoiseModel",
    "HardwareConfig",
    "RESOURCE_STATES",
    "ResourceStateType",
    "SCENARIOS",
    "SiteNoiseMap",
    "SiteProfile",
    "SpaceTimeCouplingGraph",
    "THREE_LINE",
    "baseline_log_fidelity",
    "dead_assigned_fusions",
    "expected_fusion_attempts",
    "extended_to_physical",
    "fidelity_improvement_factor",
    "log_fidelity",
    "make_scenario",
    "program_log_fidelity",
    "program_site_profile",
    "site_analytic_yield",
    "success_probability",
    "get_resource_state",
]
