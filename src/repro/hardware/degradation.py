"""Per-site hardware degradation: calibration maps and fault scenarios.

The uniform :class:`repro.hardware.noise.NoiseModel` treats every
resource-state generator (RSG) of the machine as identical.  Real
photonic hardware is not: RSGs die, fusion sites degrade unevenly, and
delay lines have spatially heterogeneous loss (the FBQC architecture the
paper targets is an array of physical devices, Sec. 2.1).  This module
is the per-site refinement:

* :class:`SiteNoiseMap` — per-physical-cell ``fusion_success`` /
  ``fusion_error`` / ``cycle_loss`` arrays over one (possibly extended)
  physical layer, plus a dead-site mask.  A dead site is unusable: no
  fusion there ever succeeds and every photon parked there is lost.
* scenario generators (:func:`make_scenario`) — parameterized hardware
  degradation families sharing one ``severity in [0, 1]`` axis: random
  dead-RSG fractions, spatial loss gradients and hotspots, per-site
  degraded fusion success.  Severity 0 is always the pristine uniform
  map.
* JSON calibration-map persistence (:meth:`SiteNoiseMap.save` /
  :meth:`SiteNoiseMap.load`) so measured device calibration data can be
  replayed through the same machinery.
* :class:`SiteProfile` / :func:`program_site_profile` — the bridge to a
  compiled program: a per-fault-event site assignment derived from the
  program's layer layouts, consumed by the Monte-Carlo sampler
  (:mod:`repro.sim.noisy`) and the analytic per-site yield
  (:func:`site_analytic_yield`).

The attribution model is first-order: each fusion / photon-cycle event
is assigned round-robin over the cells the compiled program actually
occupies (node cells and auxiliary routing cells, in layer order), so
unoccupied cells host no events and a program that avoids a bad region
genuinely escapes its noise.  A uniform map reproduces the scalar
``NoiseModel`` yield exactly, and the sampler pins the uniform case
bit-identical to the scalar path at a fixed seed.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.hardware.noise import DEFAULT_NOISE, NoiseModel

Coord = Tuple[int, int]

#: Scenario families accepted by :func:`make_scenario`, one severity
#: axis each (severity 0 = pristine uniform map in every family).
SCENARIOS: Tuple[str, ...] = (
    "dead-rsg",
    "loss-gradient",
    "loss-hotspot",
    "degraded-fusion",
)

#: Added cycle loss at the far edge of a severity-1 loss gradient.
LOSS_GRADIENT_SPAN = 0.02
#: Added cycle loss at the core of a severity-1 hotspot.
LOSS_HOTSPOT_PEAK = 0.1
#: Cells at or above this absolute cycle loss are worth routing around
#: even though they are not dead (see :meth:`SiteNoiseMap.avoid_mask`).
AVOID_CYCLE_LOSS = 0.05
#: Cells at or below this fusion success are worth routing around.
AVOID_FUSION_SUCCESS = 0.1


def _as_plane(value: Union[float, np.ndarray], shape: Coord) -> np.ndarray:
    """Broadcast *value* to a read-only float64 plane of *shape*."""
    plane = np.broadcast_to(np.asarray(value, dtype=np.float64), shape)
    plane = np.array(plane, dtype=np.float64)  # own the memory
    plane.setflags(write=False)
    return plane


@dataclass
class SiteNoiseMap:
    """Per-site noise rates over one (extended) physical layer.

    Attributes:
        shape: ``(rows, cols)`` of the layer grid
            (``HardwareConfig.extended_shape``).
        base: the scalar model the map degrades; supplies the (scalar)
            ``measurement_error`` channel and the pristine rates.
        fusion_success: per-site fusion success probability plane.
        fusion_error: per-site fusion Pauli-error probability plane.
        cycle_loss: per-site per-photon per-cycle loss probability plane.
        dead: boolean dead-site mask.  Dead sites are normalized to
            ``fusion_success=0`` / ``cycle_loss=1`` (nothing survives a
            dead RSG) at construction.
    """

    shape: Coord
    base: NoiseModel = DEFAULT_NOISE
    fusion_success: Optional[np.ndarray] = None
    fusion_error: Optional[np.ndarray] = None
    cycle_loss: Optional[np.ndarray] = None
    dead: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        rows, cols = self.shape
        if rows <= 0 or cols <= 0:
            raise ValueError("site map shape must be positive")
        if self.fusion_success is None:
            self.fusion_success = _as_plane(self.base.fusion_success, self.shape)
        if self.fusion_error is None:
            self.fusion_error = _as_plane(self.base.fusion_error, self.shape)
        if self.cycle_loss is None:
            self.cycle_loss = _as_plane(self.base.cycle_loss, self.shape)
        if self.dead is None:
            dead = np.zeros(self.shape, dtype=bool)
        else:
            dead = np.array(self.dead, dtype=bool)
        if dead.shape != tuple(self.shape):
            raise ValueError(
                f"dead mask shape {dead.shape} != map shape {self.shape}"
            )
        planes = {}
        for name in ("fusion_success", "fusion_error", "cycle_loss"):
            plane = np.array(getattr(self, name), dtype=np.float64)
            if plane.shape != tuple(self.shape):
                raise ValueError(
                    f"{name} plane shape {plane.shape} != map shape "
                    f"{self.shape}"
                )
            if np.any(plane < 0.0) or np.any(plane > 1.0):
                raise ValueError(f"{name} entries must be probabilities")
            planes[name] = plane
        # dead-site semantics: no fusion ever succeeds there and every
        # photon parked there is lost
        planes["fusion_success"][dead] = 0.0
        planes["cycle_loss"][dead] = 1.0
        for name, plane in planes.items():
            plane.setflags(write=False)
            setattr(self, name, plane)
        dead.setflags(write=False)
        self.dead = dead

    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls, model: NoiseModel, shape: Coord
    ) -> "SiteNoiseMap":
        """The pristine map: every site at the scalar model's rates."""
        return cls(shape=shape, base=model)

    @property
    def n_sites(self) -> int:
        return self.shape[0] * self.shape[1]

    @property
    def dead_fraction(self) -> float:
        assert self.dead is not None
        return float(self.dead.sum()) / self.n_sites

    @property
    def dead_cells(self) -> Tuple[Coord, ...]:
        """Dead-site coordinates in (row, col) order."""
        assert self.dead is not None
        return tuple(
            (int(r), int(c)) for r, c in np.argwhere(self.dead)
        )

    def as_uniform_model(self) -> Optional[NoiseModel]:
        """The scalar model this map reduces to, or None.

        A map with any dead site is never uniform (dead semantics are
        not expressible as one scalar rate plus a healthy grid).  The
        Monte-Carlo sampler uses this to delegate uniform maps to the
        scalar path so they stay bit-identical to ``NoiseModel`` runs.
        """
        assert self.dead is not None
        if bool(self.dead.any()):
            return None
        planes = (self.fusion_success, self.fusion_error, self.cycle_loss)
        values = []
        for plane in planes:
            assert plane is not None
            if float(np.ptp(plane)) != 0.0:
                return None
            values.append(float(plane.flat[0]))
        return NoiseModel(
            fusion_success=values[0],
            fusion_error=values[1],
            cycle_loss=values[2],
            measurement_error=self.base.measurement_error,
        )

    def avoid_mask(
        self,
        max_cycle_loss: float = AVOID_CYCLE_LOSS,
        min_fusion_success: float = AVOID_FUSION_SUCCESS,
    ) -> np.ndarray:
        """Sites recovery policies should route around.

        Dead sites plus alive-but-degraded ones past the absolute
        thresholds: cells losing ``max_cycle_loss`` of their photons per
        cycle, or fusing successfully at most ``min_fusion_success`` of
        the time, hurt yield more than the detour costs.
        """
        assert self.dead is not None
        assert self.cycle_loss is not None
        assert self.fusion_success is not None
        return (
            self.dead
            | (self.cycle_loss >= max_cycle_loss)
            | (self.fusion_success <= min_fusion_success)
        )

    def avoid_cells(
        self,
        max_cycle_loss: float = AVOID_CYCLE_LOSS,
        min_fusion_success: float = AVOID_FUSION_SUCCESS,
    ) -> Tuple[Coord, ...]:
        """:meth:`avoid_mask` as sorted (row, col) coordinates."""
        mask = self.avoid_mask(max_cycle_loss, min_fusion_success)
        return tuple((int(r), int(c)) for r, c in np.argwhere(mask))

    # -- calibration-map persistence -----------------------------------
    def to_json(self) -> Dict[str, object]:
        """JSON-serializable calibration-map payload."""
        assert self.fusion_success is not None
        assert self.fusion_error is not None
        assert self.cycle_loss is not None
        assert self.dead is not None
        return {
            "schema": "site-noise-map/v1",
            "shape": list(self.shape),
            "base": {
                "fusion_success": self.base.fusion_success,
                "fusion_error": self.base.fusion_error,
                "cycle_loss": self.base.cycle_loss,
                "measurement_error": self.base.measurement_error,
            },
            "fusion_success": self.fusion_success.tolist(),
            "fusion_error": self.fusion_error.tolist(),
            "cycle_loss": self.cycle_loss.tolist(),
            "dead": self.dead.astype(int).tolist(),
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "SiteNoiseMap":
        schema = payload.get("schema")
        if schema != "site-noise-map/v1":
            raise ValueError(f"unknown calibration-map schema {schema!r}")
        shape_raw = payload["shape"]
        assert isinstance(shape_raw, (list, tuple))
        shape = (int(shape_raw[0]), int(shape_raw[1]))
        base_raw = payload.get("base", {})
        assert isinstance(base_raw, dict)
        base = NoiseModel(**{k: float(v) for k, v in base_raw.items()})
        return cls(
            shape=shape,
            base=base,
            fusion_success=np.asarray(payload["fusion_success"], dtype=np.float64),
            fusion_error=np.asarray(payload["fusion_error"], dtype=np.float64),
            cycle_loss=np.asarray(payload["cycle_loss"], dtype=np.float64),
            dead=np.asarray(payload["dead"], dtype=bool),
        )

    def save(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the calibration map as JSON (atomic via temp+rename)."""
        from repro.serve.store import atomic_write_json

        path = pathlib.Path(path)
        atomic_write_json(path, self.to_json())
        return path

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "SiteNoiseMap":
        """Read a calibration map written by :meth:`save`."""
        return cls.from_json(json.loads(pathlib.Path(path).read_text()))


# ----------------------------------------------------------------------
# scenario generators
# ----------------------------------------------------------------------
def scenario_dead_rsg(
    shape: Coord,
    severity: float,
    base: NoiseModel = DEFAULT_NOISE,
    seed: int = 7,
) -> SiteNoiseMap:
    """Random dead-RSG fraction: ``severity`` IS the dead fraction.

    ``round(severity * n_sites)`` uniformly chosen sites die outright;
    severity 1 kills the whole array (the degenerate no-viable-sites
    case recompilation must reject cleanly).
    """
    rows, cols = shape
    n = rows * cols
    k = int(round(severity * n))
    dead = np.zeros(shape, dtype=bool)
    if k > 0:
        rng = np.random.default_rng(seed)
        chosen = rng.choice(n, size=min(k, n), replace=False)
        dead.flat[chosen] = True
    return SiteNoiseMap(shape=shape, base=base, dead=dead)


def scenario_loss_gradient(
    shape: Coord,
    severity: float,
    base: NoiseModel = DEFAULT_NOISE,
    seed: int = 7,
) -> SiteNoiseMap:
    """Spatial loss gradient along the column axis.

    Cycle loss ramps linearly from the base rate at column 0 to
    ``base + severity * LOSS_GRADIENT_SPAN`` at the far edge — the
    delay-line-length asymmetry of a real interleaved module.
    """
    del seed  # deterministic family; signature shared with the others
    rows, cols = shape
    ramp = np.linspace(0.0, 1.0, cols) if cols > 1 else np.zeros(1)
    loss = base.cycle_loss + severity * LOSS_GRADIENT_SPAN * ramp
    plane = np.clip(np.tile(loss, (rows, 1)), 0.0, 1.0)
    return SiteNoiseMap(shape=shape, base=base, cycle_loss=plane)


def scenario_loss_hotspot(
    shape: Coord,
    severity: float,
    base: NoiseModel = DEFAULT_NOISE,
    seed: int = 7,
) -> SiteNoiseMap:
    """Gaussian loss hotspot centred on the layer.

    Peak added loss is ``severity * LOSS_HOTSPOT_PEAK`` with a spatial
    sigma of a quarter of the short side — a localized thermal/alignment
    failure.  The mapper seeds placements at the grid centre, so this is
    the adversarial worst case for the survive policy.
    """
    del seed
    rows, cols = shape
    r0, c0 = (rows - 1) / 2.0, (cols - 1) / 2.0
    sigma = max(1.0, min(rows, cols) / 4.0)
    rr, cc = np.meshgrid(
        np.arange(rows, dtype=np.float64),
        np.arange(cols, dtype=np.float64),
        indexing="ij",
    )
    bump = np.exp(-((rr - r0) ** 2 + (cc - c0) ** 2) / (2.0 * sigma**2))
    plane = np.clip(
        base.cycle_loss + severity * LOSS_HOTSPOT_PEAK * bump, 0.0, 1.0
    )
    return SiteNoiseMap(shape=shape, base=base, cycle_loss=plane)


def scenario_degraded_fusion(
    shape: Coord,
    severity: float,
    base: NoiseModel = DEFAULT_NOISE,
    seed: int = 7,
) -> SiteNoiseMap:
    """Per-site degraded fusion success with correlated error inflation.

    Each site draws a degradation depth ``u ~ U[0, 1)``: its fusion
    success shrinks by ``severity * u`` (relative) while its fusion
    error inflates by ``1 + 9 * severity * u`` — a badly aligned fusion
    site both fails more often and errs more when it succeeds.
    """
    rng = np.random.default_rng(seed)
    u = rng.random(shape)
    success = np.clip(base.fusion_success * (1.0 - severity * u), 0.0, 1.0)
    error = np.clip(base.fusion_error * (1.0 + 9.0 * severity * u), 0.0, 1.0)
    return SiteNoiseMap(
        shape=shape, base=base, fusion_success=success, fusion_error=error
    )


_SCENARIO_FNS = {
    "dead-rsg": scenario_dead_rsg,
    "loss-gradient": scenario_loss_gradient,
    "loss-hotspot": scenario_loss_hotspot,
    "degraded-fusion": scenario_degraded_fusion,
}


def make_scenario(
    name: str,
    shape: Coord,
    severity: float,
    base: NoiseModel = DEFAULT_NOISE,
    seed: int = 7,
) -> SiteNoiseMap:
    """Build one named degradation scenario at the given severity.

    All families share the ``severity in [0, 1]`` axis and degrade the
    same *base* model; severity 0 returns the pristine uniform map in
    every family, so survival curves all start from the clean yield.
    """
    if name not in _SCENARIO_FNS:
        raise ValueError(
            f"unknown scenario {name!r}; use one of {', '.join(SCENARIOS)}"
        )
    if not 0.0 <= severity <= 1.0:
        raise ValueError(f"severity must be in [0, 1], got {severity}")
    return _SCENARIO_FNS[name](shape, severity, base=base, seed=seed)


# ----------------------------------------------------------------------
# compiled-program site assignment
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SiteProfile:
    """Per-fault-event site assignment of one compiled program.

    ``fusion_sites[i]`` / ``cycle_sites[i]`` is the flat site index
    (``row * cols + col``) hosting the i-th fusion / photon-cycle event
    of :class:`repro.sim.noisy.FaultCounts` accounting.  Built by
    :func:`program_site_profile`; consumed by the sampler's per-site
    fault-configuration path and :func:`site_analytic_yield`.
    """

    shape: Coord
    fusion_sites: np.ndarray = field(repr=False)
    cycle_sites: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        rows, cols = self.shape
        for name in ("fusion_sites", "cycle_sites"):
            sites = np.asarray(getattr(self, name), dtype=np.int64)
            if sites.size and (
                sites.min() < 0 or sites.max() >= rows * cols
            ):
                raise ValueError(f"{name} contains out-of-grid site indices")
            sites.setflags(write=False)
            object.__setattr__(self, name, sites)

    @property
    def active_sites(self) -> np.ndarray:
        """Sorted unique flat site indices hosting any event."""
        return np.unique(
            np.concatenate([self.fusion_sites, self.cycle_sites])
        )


def active_cells(program: object) -> List[Coord]:
    """Cells a compiled program occupies, in layer-major order.

    Per mapped layer: node cells first (sorted), then auxiliary routing
    cells (sorted).  These are the cells that host fusions and parked
    photons; everything else on the grid is idle for this program.
    """
    cells: List[Coord] = []
    for layout in getattr(program, "layouts", []):
        cells.extend(sorted(layout.node_at.keys()))
        cells.extend(sorted(layout.aux_cells))
    return cells


def program_site_profile(
    program: object, shape: Optional[Coord] = None
) -> SiteProfile:
    """Derive the per-event site assignment of a compiled program.

    Fault events (``FaultCounts.from_program`` accounting: the mapper's
    fusion tally and three photon-cycles per resource state) are
    distributed round-robin over :func:`active_cells` in deterministic
    order — a first-order spatial attribution that preserves the key
    invariant: cells the program does not occupy host no events, so
    re-routing or recompiling around a bad region genuinely escapes it.
    """
    layouts = getattr(program, "layouts", [])
    if shape is None:
        if not layouts:
            raise ValueError(
                "program has no layer layouts; pass shape explicitly"
            )
        shape = layouts[0].shape
    rows, cols = shape
    cells = active_cells(program)
    if not cells:
        raise ValueError("program occupies no cells; nothing to profile")
    for r, c in cells:
        if not (0 <= r < rows and 0 <= c < cols):
            raise ValueError(
                f"program cell {(r, c)} is outside the {shape} site map"
            )
    flat = np.array([r * cols + c for r, c in cells], dtype=np.int64)
    fusions = int(getattr(program, "num_fusions"))
    cycles = int(getattr(program, "resource_states_used")) * 3
    return SiteProfile(
        shape=shape,
        fusion_sites=np.resize(flat, fusions) if fusions else flat[:0],
        cycle_sites=np.resize(flat, cycles) if cycles else flat[:0],
    )


def site_analytic_yield(
    profile: SiteProfile,
    site_map: SiteNoiseMap,
    measurements: int,
) -> float:
    """Closed-form zero-fault probability under a per-site map.

    The per-site companion of
    :func:`repro.hardware.noise.success_probability`: the product over
    assigned fusion events of ``1 - fusion_error[site]``, over assigned
    photon-cycle events of ``1 - cycle_loss[site]``, and the scalar
    measurement channel.  Any assigned event at a certain-failure site
    (dead cell, rate 1) or any fusion at a zero-success site makes the
    yield exactly 0: the program cannot complete there.
    """
    if profile.shape != site_map.shape:
        raise ValueError(
            f"profile shape {profile.shape} != site map shape "
            f"{site_map.shape}"
        )
    if measurements < 0:
        raise ValueError("measurements cannot be negative")
    assert site_map.fusion_error is not None
    assert site_map.cycle_loss is not None
    assert site_map.fusion_success is not None
    fe = site_map.fusion_error.ravel()[profile.fusion_sites]
    cl = site_map.cycle_loss.ravel()[profile.cycle_sites]
    fs = site_map.fusion_success.ravel()[profile.fusion_sites]
    if fs.size and bool((fs <= 0.0).any()):
        return 0.0  # repeat-until-success never terminates at the site
    log_yield = 0.0
    for rates in (fe, cl):
        if rates.size == 0:
            continue
        if bool((rates >= 1.0).any()):
            return 0.0
        log_yield += float(np.log1p(-rates).sum())
    me = site_map.base.measurement_error
    if me >= 1.0:
        if measurements > 0:
            return 0.0
    elif me > 0.0:
        log_yield += measurements * math.log1p(-me)
    return math.exp(log_yield)


def dead_assigned_fusions(
    profile: SiteProfile, site_map: SiteNoiseMap
) -> int:
    """Fusion events assigned to dead / zero-success sites.

    Non-zero means the program cannot run to completion on this
    hardware as mapped: repeat-until-success never terminates at those
    sites, so the yield is exactly 0 and there is nothing to sample —
    the case the recovery policies (re-route / recompile) exist for.
    """
    assert site_map.fusion_success is not None
    fs = site_map.fusion_success.ravel()[profile.fusion_sites]
    return int((fs <= 0.0).sum())
