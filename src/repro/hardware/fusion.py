"""Fusion accounting: the cost model shared by both compilers.

Fusions are the lowest-fidelity, most expensive operation on the machine
(each destroys two photons), so the compiler tracks them by purpose:

* ``synthesis`` — chain fusions building high-degree nodes (Fig. 8);
* ``edge`` — fusions realizing graph-state edges directly (Fig. 7c);
* ``routing`` — fusions along in-layer routing paths (Sec. 6);
* ``shuffling`` — fusions on inter-layer shuffle paths (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class FusionTally:
    """Mutable counter of fusions by category plus photon bookkeeping."""

    synthesis: int = 0
    edge: int = 0
    routing: int = 0
    shuffling: int = 0
    z_measurements: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """All fusions across the four categories (units: fusions)."""
        return self.synthesis + self.edge + self.routing + self.shuffling

    @property
    def photons_consumed_by_fusion(self) -> int:
        """Every fusion destroys exactly two photons."""
        return 2 * self.total

    def add(self, kind: str, count: int = 1) -> None:
        """Add *count* fusions of *kind* (synthesis / edge / routing /
        shuffling); negative counts and unknown kinds raise."""
        if count < 0:
            raise ValueError("fusion count cannot be negative")
        if kind == "synthesis":
            self.synthesis += count
        elif kind == "edge":
            self.edge += count
        elif kind == "routing":
            self.routing += count
        elif kind == "shuffling":
            self.shuffling += count
        else:
            raise ValueError(f"unknown fusion kind {kind!r}")

    def merge(self, other: "FusionTally") -> None:
        """Accumulate *other*'s counters (including ``extra``) in place."""
        self.synthesis += other.synthesis
        self.edge += other.edge
        self.routing += other.routing
        self.shuffling += other.shuffling
        self.z_measurements += other.z_measurements
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + value

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict snapshot (category counts, total, Z measurements)."""
        return {
            "synthesis": self.synthesis,
            "edge": self.edge,
            "routing": self.routing,
            "shuffling": self.shuffling,
            "total": self.total,
            "z_measurements": self.z_measurements,
        }
