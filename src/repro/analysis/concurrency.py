"""Concurrency/effect static analysis of the repo's own source.

The pattern linter (:mod:`repro.analysis.lint`) checks compiled
*artifacts*; this module checks the *code that serves them*.  The
serving stack is a long-lived concurrent process — an asyncio socket
server over a session thread pool over a compile process pool, with
three lock-guarded shared structures — and a dropped ``with
self._lock``, a blocking call sneaking onto the event loop, or a lock
acquired in the wrong order ships silently unless something looks for
it.  This is that something: a stdlib-``ast`` pass (no third-party
dependencies, same design as ``scripts/lint_rules.py``) with stable
``CC`` finding codes, suppressible per line with ``# noqa: CCxxx``.

Rule families:

**Lock discipline** (per class, attributes; per function, locals)
  * ``CC101`` — write to a lock-guarded attribute/local outside the
    guarding lock.  An attribute is *guarded* once any method mutates
    it inside ``with self.<lock>``; every other mutation must then hold
    one of the guarding locks.  ``__init__``/``__post_init__``/
    ``__del__`` are exempt (the object is not shared yet / anymore),
    as are methods named ``*_locked`` (the caller-holds-the-lock
    convention).  For function-scope locals only *mutations* count
    (``x += 1``, ``d[k] = v``, ``xs.append(...)``): rebinding a name
    creates a new object and is how locals are initialized.
  * ``CC102`` — read of a lock-guarded *attribute* outside the
    guarding lock (a torn/dirty read).  Function-scope locals are not
    read-checked: reading aggregation locals after ``Thread.join()``
    is the closed-loop harness idiom and is indistinguishable
    statically.

**Async effects** (inside ``async def``)
  * ``CC201`` — blocking call on the event loop: ``time.sleep``, the
    ``subprocess`` family, ``os.system``-style process waits, sync
    socket construction, builtin ``open`` and ``pathlib`` file IO.
    Calls routed through ``loop.run_in_executor(...)`` or
    ``asyncio.to_thread(...)`` are exempt.
  * ``CC202`` — synchronous ``.result()`` on a future inside a
    coroutine: blocks the loop; ``await`` the work or wrap it.
  * ``CC203`` — fire-and-forget task: ``asyncio.create_task`` /
    ``ensure_future`` (or ``loop.create_task``) as a bare expression
    statement.  A dropped task's exception is swallowed and the task
    itself may be garbage-collected mid-flight; keep a reference.

**Lock order** (cross-module)
  * ``CC301`` — cycle in the lock-acquisition-order graph.  Edges come
    from lexically nested ``with`` blocks *and* from call edges: a
    method called while lock *A* is held that (transitively) acquires
    lock *B* contributes ``A -> B``.  Intra-class calls
    (``self.method(...)``) and calls through typed attributes
    (``self._memory = MemoryLRU(...)`` then ``self._memory.put(...)``)
    are resolved.  The same graph is exported via
    :meth:`ConcurrencyAnalyzer.lock_order_edges` so the runtime
    sanitizer (:mod:`repro.utils.sync`) can cross-check its dynamic
    witness against it.

**Resource lifetimes**
  * ``CC401`` — executor/pool/socket/server constructed without a
    guaranteed release: not under ``with``, and no ``shutdown``/
    ``close``/``terminate`` reachable on the binding (for ``self.X``
    bindings the whole class is searched, including locals aliased
    from the attribute; for locals, the enclosing function).
  * ``CC402`` — raw JSON artifact write (``json.dump(...)`` or
    ``path.write_text(json.dumps(...))``) in a function that never
    calls ``os.replace``: bypasses the store's atomic tmp +
    ``os.replace`` publish and can be read torn.  Route artifact
    writes through :func:`repro.serve.store.atomic_write_json`.

Lock identities are ``ClassName.attr`` for ``self.attr`` locks and
``function.varname`` (``Class.method.varname`` inside methods) for
locals — the same names the serve stack passes to
:func:`repro.utils.sync.make_lock`, which is what makes the
static/dynamic cross-check possible.
"""

from __future__ import annotations

import ast
import pathlib
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.utils.sync import find_cycle

__all__ = [
    "CC_CODES",
    "ConcurrencyAnalyzer",
    "ConcurrencyFinding",
    "analyze_paths",
    "analyze_source",
]

#: stable code -> one-line description (the lint-code table in docs)
CC_CODES: Dict[str, str] = {
    "CC101": "write to a lock-guarded attribute/local outside its lock",
    "CC102": "read of a lock-guarded attribute outside its lock",
    "CC201": "blocking call inside async def",
    "CC202": "synchronous Future.result() inside async def",
    "CC203": "fire-and-forget create_task/ensure_future (result dropped)",
    "CC301": "lock-acquisition-order cycle (potential deadlock)",
    "CC401": "executor/socket/server constructed without shutdown/close",
    "CC402": "raw JSON artifact write bypassing atomic tmp+os.replace",
}

_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*))?",
    re.IGNORECASE,
)

#: method names exempt from lock-discipline flagging
_EXEMPT_METHODS = ("__init__", "__post_init__", "__del__")

#: callables that construct a lock (last element of the call chain)
_LOCK_CTORS = ("Lock", "RLock", "make_lock", "TrackedLock")

#: container/obj methods that mutate their receiver in place
_MUTATORS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "move_to_end", "pop", "popitem", "popleft",
    "remove", "reverse", "rotate", "setdefault", "sort", "update",
})

#: fully-qualified call prefixes that block the event loop
_BLOCKING_CALLS = frozenset({
    "time.sleep",
    "os.system", "os.popen", "os.wait", "os.waitpid",
    "socket.create_connection", "socket.getaddrinfo",
    "urllib.request.urlopen",
})
_BLOCKING_MODULES = ("subprocess", "requests")

#: method names that are file IO regardless of receiver type
_BLOCKING_METHODS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})

#: resource constructor -> method names that release it
_RESOURCE_CTORS: Dict[str, Tuple[str, ...]] = {
    "concurrent.futures.ThreadPoolExecutor": ("shutdown",),
    "concurrent.futures.ProcessPoolExecutor": ("shutdown",),
    "concurrent.futures.thread.ThreadPoolExecutor": ("shutdown",),
    "concurrent.futures.process.ProcessPoolExecutor": ("shutdown",),
    "multiprocessing.Pool": ("close", "terminate"),
    "multiprocessing.pool.Pool": ("close", "terminate"),
    "socket.socket": ("close", "detach"),
    "socket.create_connection": ("close", "detach"),
    "asyncio.start_server": ("close",),
}

#: wrappers that move a callable off the event loop
_EXECUTOR_WRAPPERS = frozenset({"run_in_executor", "to_thread"})

_TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})


@dataclass(frozen=True)
class ConcurrencyFinding:
    """One static concurrency finding (CC-coded, line-addressed)."""

    path: pathlib.Path
    line: int
    code: str
    check: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} [{self.check}] {self.message}"


def _attr_chain(node: ast.AST) -> List[str]:
    """``self._memory.put`` -> ``["self", "_memory", "put"]`` (or [])."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def _unwrap_await(node: ast.AST) -> ast.AST:
    return node.value if isinstance(node, ast.Await) else node


def _noqa_codes(source_line: str) -> Optional[Set[str]]:
    """Codes suppressed on this line; empty set = suppress everything."""
    match = _NOQA_RE.search(source_line)
    if match is None:
        return None
    codes = match.group("codes")
    if not codes:
        return set()
    return {c.strip().upper() for c in codes.split(",")}


# ----------------------------------------------------------------------
# per-module facts
# ----------------------------------------------------------------------
@dataclass
class _Access:
    """One read/write of ``self.<attr>`` inside a class method."""

    attr: str
    is_write: bool
    held: Tuple[str, ...]
    method: str
    line: int


@dataclass
class _ClassScan:
    """Lock-relevant facts for one class."""

    name: str
    path: pathlib.Path
    lock_attrs: Set[str] = field(default_factory=set)
    #: self.<attr> -> constructor class name (``self._memory = MemoryLRU(...)``)
    attr_types: Dict[str, str] = field(default_factory=dict)
    accesses: List[_Access] = field(default_factory=list)
    #: method -> lock ids acquired directly (any ``with`` in its body)
    direct_locks: Dict[str, Set[str]] = field(default_factory=dict)
    #: (held, callee_class, callee_method, line) call records under lock
    lock_calls: List[Tuple[Tuple[str, ...], str, str, int]] = field(
        default_factory=list
    )
    #: self.<attr> -> release method names observed anywhere in the class
    attr_releases: Dict[str, Set[str]] = field(default_factory=dict)
    method_names: Set[str] = field(default_factory=set)


@dataclass
class _ModuleScan:
    """Everything one source file contributes to the analysis."""

    path: pathlib.Path
    lines: List[str]
    findings: List[ConcurrencyFinding] = field(default_factory=list)
    classes: List[_ClassScan] = field(default_factory=list)
    #: (outer, inner) -> site of a lexically nested acquisition
    nested_edges: Dict[Tuple[str, str], Tuple[pathlib.Path, int]] = field(
        default_factory=dict
    )


class _ImportMap:
    """Resolve local names to dotted module paths (``np`` -> ``numpy``)."""

    def __init__(self, tree: ast.Module) -> None:
        self.modules: Dict[str, str] = {}
        self.names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve_call(self, chain: List[str]) -> Optional[str]:
        """Dotted path of a call chain, or ``None`` if not import-rooted."""
        if not chain:
            return None
        head, rest = chain[0], chain[1:]
        if head in self.modules:
            return ".".join([self.modules[head], *rest])
        if head in self.names:
            return ".".join([self.names[head], *rest])
        return None


def _is_lock_ctor(node: ast.AST) -> bool:
    node = _unwrap_await(node)
    if not isinstance(node, ast.Call):
        return False
    chain = _attr_chain(node.func)
    return bool(chain) and chain[-1] in _LOCK_CTORS


def _target_write_roots(
    target: ast.AST,
) -> Iterator[Tuple[str, str]]:
    """Yield ``(kind, root)`` for every store target in *target*.

    ``kind`` is ``"attr"`` for ``self.<root>...`` chains, ``"name"``
    for plain-name roots (mutations like ``d[k] = v`` report the name
    ``d``; a bare rebind ``x = v`` reports kind ``"rebind"``).
    """
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_write_roots(element)
    elif isinstance(target, ast.Starred):
        yield from _target_write_roots(target.value)
    elif isinstance(target, ast.Name):
        yield "rebind", target.id
    elif isinstance(target, (ast.Attribute, ast.Subscript)):
        node: ast.AST = target
        saw_subscript = False
        while isinstance(node, ast.Subscript):
            saw_subscript = True
            node = node.value
        chain = _attr_chain(node)
        if len(chain) >= 2 and chain[0] == "self":
            yield "attr", chain[1]
        elif len(chain) == 1:
            # plain-name root: x[k] = v mutates, x.f = v mutates
            if saw_subscript or isinstance(target, ast.Attribute):
                yield "name", chain[0]


class _FunctionLockWalker(ast.NodeVisitor):
    """Walk one function/method body tracking the held-lock stack.

    Collects, in a single pass: self-attribute accesses (class
    context), function-local mutations, direct lock acquisitions,
    nested-with order edges, and under-lock call records.
    """

    def __init__(
        self,
        module: _ModuleScan,
        cls: Optional[_ClassScan],
        method: str,
        local_locks: Dict[str, str],
    ) -> None:
        self.module = module
        self.cls = cls
        self.method = method
        self.local_locks = local_locks
        self.held: List[str] = []
        #: name -> (is_mutation_under_lock sites / unguarded sites)
        self.local_mutations: List[Tuple[str, Tuple[str, ...], int]] = []

    # -- helpers -------------------------------------------------------
    def _lock_id(self, expr: ast.AST) -> Optional[str]:
        chain = _attr_chain(expr)
        if (
            self.cls is not None
            and len(chain) == 2
            and chain[0] == "self"
            and chain[1] in self.cls.lock_attrs
        ):
            return f"{self.cls.name}.{chain[1]}"
        if len(chain) == 1 and chain[0] in self.local_locks:
            return self.local_locks[chain[0]]
        return None

    def _record_attr(self, attr: str, is_write: bool, line: int) -> None:
        if self.cls is None or attr in self.cls.lock_attrs:
            return
        self.cls.accesses.append(
            _Access(attr, is_write, tuple(self.held), self.method, line)
        )

    def _record_write_target(self, target: ast.AST, line: int) -> None:
        for kind, root in _target_write_roots(target):
            if kind == "attr":
                self._record_attr(root, True, line)
            elif kind == "name":
                self.local_mutations.append((root, tuple(self.held), line))
        # subscript slices and attribute bases carry reads of their own
        for child in ast.walk(target):
            if isinstance(child, ast.Subscript):
                self.visit(child.slice)

    # -- statements ----------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_write_target(target, node.lineno)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_write_target(node.target, node.lineno)
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        for kind, root in _target_write_roots(node.target):
            if kind == "attr":
                self._record_attr(root, True, node.lineno)
                self._record_attr(root, False, node.lineno)
            elif kind in ("name", "rebind"):
                # x += 1 reads-modifies-writes the existing binding:
                # treat as a mutation even for a plain name
                self.local_mutations.append(
                    (root, tuple(self.held), node.lineno)
                )
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_write_target(target, node.lineno)

    def _with_items(self, node: "ast.With | ast.AsyncWith") -> None:
        acquired: List[str] = []
        for item in node.items:
            lock = self._lock_id(item.context_expr)
            if lock is None:
                self.visit(item.context_expr)
                continue
            for outer in self.held:
                self.module.nested_edges.setdefault(
                    (outer, lock), (self.module.path, item.context_expr.lineno)
                )
            if self.cls is not None:
                self.cls.direct_locks.setdefault(self.method, set()).add(lock)
            self.held.append(lock)
            acquired.append(lock)
        for stmt in node.body:
            self.visit(stmt)
        for lock in reversed(acquired):
            self.held.remove(lock)

    def visit_With(self, node: ast.With) -> None:
        self._with_items(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._with_items(node)

    # -- expressions ---------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        handled_func = False
        if self.cls is not None and len(chain) == 3 and chain[0] == "self" \
                and chain[2] in _MUTATORS:
            # self.<attr>.append(...) mutates self.<attr>
            self._record_attr(chain[1], True, node.lineno)
            handled_func = True
        elif len(chain) == 2 and chain[1] in _MUTATORS \
                and chain[0] not in self.local_locks:
            self.local_mutations.append(
                (chain[0], tuple(self.held), node.lineno)
            )
            handled_func = True
        if self.held and self.cls is not None and len(chain) >= 2 \
                and chain[0] == "self":
            if len(chain) == 2:
                self.cls.lock_calls.append(
                    (tuple(self.held), self.cls.name, chain[1], node.lineno)
                )
            elif len(chain) == 3 and chain[1] in self.cls.attr_types:
                self.cls.lock_calls.append(
                    (
                        tuple(self.held),
                        self.cls.attr_types[chain[1]],
                        chain[2],
                        node.lineno,
                    )
                )
        if not handled_func:
            self.visit(node.func)
        for arg in node.args:
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = _attr_chain(node)
        if len(chain) >= 2 and chain[0] == "self":
            self._record_attr(chain[1], False, node.lineno)
            return
        self.generic_visit(node)

    # nested defs share the enclosing discipline context (closures over
    # the same locals/attributes), but keep the outer method name so
    # exemptions stay keyed on the real method
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        for stmt in node.body:
            self.visit(stmt)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        for stmt in node.body:
            self.visit(stmt)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.visit(node.body)


class _AsyncEffectsVisitor(ast.NodeVisitor):
    """CC201/CC202 checks inside one ``async def`` body."""

    def __init__(self, module: _ModuleScan, imports: _ImportMap) -> None:
        self.module = module
        self.imports = imports

    def _flag(self, node: ast.AST, code: str, check: str, msg: str) -> None:
        self.module.findings.append(
            ConcurrencyFinding(
                self.module.path, getattr(node, "lineno", 0), code, check, msg
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if chain and chain[-1] in _EXECUTOR_WRAPPERS:
            # args are shipped off-loop; only descend into the receiver
            self.visit(node.func)
            return
        resolved = self.imports.resolve_call(chain)
        if resolved is not None:
            if resolved in _BLOCKING_CALLS or resolved.split(".")[0] in \
                    _BLOCKING_MODULES:
                self._flag(
                    node, "CC201", "blocking-call-in-async",
                    f"{resolved} blocks the event loop; use "
                    "loop.run_in_executor(...) or asyncio.to_thread(...)",
                )
        elif chain == ["open"]:
            self._flag(
                node, "CC201", "blocking-call-in-async",
                "open() blocks the event loop; use run_in_executor or "
                "asyncio.to_thread",
            )
        elif len(chain) >= 2 and chain[-1] in _BLOCKING_METHODS:
            self._flag(
                node, "CC201", "blocking-call-in-async",
                f"{'.'.join(chain)} is synchronous file IO on the event "
                "loop; use run_in_executor or asyncio.to_thread",
            )
        elif len(chain) >= 2 and chain[-1] == "result" and not node.args \
                and not node.keywords:
            self._flag(
                node, "CC202", "sync-future-wait-in-async",
                f"{'.'.join(chain)}() blocks the coroutine on a future; "
                "await it (or wrap with asyncio.wrap_future)",
            )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # sync helper: runs wherever it is called, not on the loop

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass  # visited as its own root


# ----------------------------------------------------------------------
# the analyzer
# ----------------------------------------------------------------------
class ConcurrencyAnalyzer:
    """Multi-file concurrency analysis with a cross-module lock graph.

    Feed it sources (:meth:`add_source` / :meth:`add_paths`), then call
    :meth:`analyze` for findings.  :meth:`lock_order_edges` exposes the
    static acquisition graph for the runtime sanitizer cross-check.
    """

    def __init__(self) -> None:
        self._modules: List[_ModuleScan] = []

    # -- input ---------------------------------------------------------
    def add_source(
        self, source: str, path: pathlib.Path = pathlib.Path("<string>")
    ) -> None:
        path = pathlib.Path(path)
        lines = source.splitlines()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            module = _ModuleScan(path, lines)
            module.findings.append(
                ConcurrencyFinding(
                    path, exc.lineno or 0, "CC000", "syntax-error",
                    f"could not parse: {exc.msg}",
                )
            )
            self._modules.append(module)
            return
        module = _ModuleScan(path, lines)
        imports = _ImportMap(tree)
        self._scan_classes(module, tree)
        self._scan_functions(module, tree, imports)
        self._scan_async(module, tree, imports)
        self._scan_spawns(module, tree)
        self._modules.append(module)

    def add_paths(self, paths: Sequence[pathlib.Path]) -> None:
        for file_path in _iter_python_files(paths):
            self.add_source(
                file_path.read_text(encoding="utf-8"), file_path
            )

    # -- per-module scans ----------------------------------------------
    def _scan_classes(self, module: _ModuleScan, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            cls = _ClassScan(node.name, module.path)
            methods = [
                child for child in node.body
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
            ]
            cls.method_names = {m.name for m in methods}
            # pass 1: lock attributes + attribute construction types
            for method in methods:
                for stmt in ast.walk(method):
                    value: Optional[ast.AST]
                    if isinstance(stmt, ast.Assign):
                        targets, value = stmt.targets, stmt.value
                    elif isinstance(stmt, ast.AnnAssign):
                        targets, value = [stmt.target], stmt.value
                    else:
                        continue
                    if value is None:
                        continue
                    for target in targets:
                        chain = _attr_chain(target)
                        if len(chain) != 2 or chain[0] != "self":
                            continue
                        if _is_lock_ctor(value):
                            cls.lock_attrs.add(chain[1])
                        else:
                            ctor = _unwrap_await(value)
                            if isinstance(ctor, ast.Call):
                                ctor_chain = _attr_chain(ctor.func)
                                if ctor_chain:
                                    cls.attr_types[chain[1]] = ctor_chain[-1]
            # pass 2: accesses / acquisitions / release calls
            for method in methods:
                local_locks = _local_lock_vars(
                    method, prefix=f"{cls.name}.{method.name}"
                )
                walker = _FunctionLockWalker(
                    module, cls, method.name, local_locks
                )
                for stmt in method.body:
                    walker.visit(stmt)
                _collect_releases(cls, method)
            module.classes.append(cls)
            self._check_class_discipline(module, cls)

    def _check_class_discipline(
        self, module: _ModuleScan, cls: _ClassScan
    ) -> None:
        if not cls.lock_attrs:
            return
        guarded: Dict[str, Set[str]] = {}
        for access in cls.accesses:
            if access.is_write and access.held:
                guarded.setdefault(access.attr, set()).update(access.held)
        for access in cls.accesses:
            guards = guarded.get(access.attr)
            if not guards:
                continue
            if access.method in _EXEMPT_METHODS or \
                    access.method.endswith("_locked"):
                continue
            if set(access.held) & guards:
                continue
            kind = "write" if access.is_write else "read"
            code = "CC101" if access.is_write else "CC102"
            module.findings.append(
                ConcurrencyFinding(
                    module.path, access.line, code, f"unguarded-{kind}",
                    f"{cls.name}.{access.attr} is guarded by "
                    f"{', '.join(sorted(guards))} elsewhere but {kind} "
                    f"here in {access.method}() without it",
                )
            )

    def _scan_functions(
        self, module: _ModuleScan, tree: ast.Module, imports: _ImportMap
    ) -> None:
        class_funcs = {
            id(child)
            for node in ast.walk(tree) if isinstance(node, ast.ClassDef)
            for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        all_funcs = [
            node for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        top_funcs = [f for f in all_funcs if id(f) not in class_funcs]
        nested = {
            id(inner)
            for outer in all_funcs
            for inner in ast.walk(outer)
            if inner is not outer
            and isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for func in all_funcs:
            if id(func) in nested:
                continue  # handled inside their enclosing function's walk
            self._check_resources(module, func)
            self._check_atomic_writes(module, func, imports)
        for func in top_funcs:
            if id(func) in nested:
                continue
            local_locks = _local_lock_vars(func, prefix=func.name)
            if not local_locks:
                continue
            walker = _FunctionLockWalker(module, None, func.name, local_locks)
            for stmt in func.body:
                walker.visit(stmt)
            guarded: Dict[str, Set[str]] = {}
            for name, held, _ in walker.local_mutations:
                if held:
                    guarded.setdefault(name, set()).update(held)
            for name, held, line in walker.local_mutations:
                guards = guarded.get(name)
                if not guards or set(held) & guards:
                    continue
                module.findings.append(
                    ConcurrencyFinding(
                        module.path, line, "CC101", "unguarded-write",
                        f"local {name!r} is mutated under "
                        f"{', '.join(sorted(guards))} elsewhere in "
                        f"{func.name}() but mutated here without it",
                    )
                )

    def _scan_async(
        self, module: _ModuleScan, tree: ast.Module, imports: _ImportMap
    ) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.AsyncFunctionDef):
                visitor = _AsyncEffectsVisitor(module, imports)
                for stmt in node.body:
                    visitor.visit(stmt)

    def _scan_spawns(self, module: _ModuleScan, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)):
                continue
            chain = _attr_chain(node.value.func)
            if chain and chain[-1] in _TASK_SPAWNERS:
                module.findings.append(
                    ConcurrencyFinding(
                        module.path, node.lineno, "CC203",
                        "fire-and-forget-task",
                        f"{'.'.join(chain)}(...) result is dropped: the "
                        "task can be garbage-collected mid-flight and its "
                        "exception is silently lost; keep a reference",
                    )
                )

    def _check_resources(
        self, module: _ModuleScan, func: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        imports = self._imports_for(module)
        with_managed: Set[int] = set()
        for node in ast.walk(func):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    managed = _unwrap_await(item.context_expr)
                    if isinstance(managed, ast.Call):
                        with_managed.add(id(managed))

        local_released: Dict[str, Set[str]] = {}
        returned: Set[str] = set()
        self_assigned_from: Dict[str, str] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if len(chain) >= 2:
                    local_released.setdefault(chain[0], set()).add(chain[-1])
            elif isinstance(node, ast.Return) and node.value is not None:
                for name in _attr_chain(node.value)[:1]:
                    returned.add(name)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target_chain = _attr_chain(node.targets[0])
                value_chain = _attr_chain(node.value)
                if len(target_chain) == 2 and target_chain[0] == "self" \
                        and len(value_chain) == 1:
                    self_assigned_from[value_chain[0]] = target_chain[1]

        for node in ast.walk(func):
            stmts: List[Tuple[ast.Call, Optional[List[str]]]] = []
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                value = _unwrap_await(node.value)
                if isinstance(value, ast.Call):
                    stmts.append((value, _attr_chain(node.targets[0])))
            elif isinstance(node, ast.Expr):
                value = _unwrap_await(node.value)
                if isinstance(value, ast.Call):
                    stmts.append((value, None))
            for call, target_chain in stmts:
                if id(call) in with_managed:
                    continue
                resolved = imports.resolve_call(_attr_chain(call.func))
                releases = _RESOURCE_CTORS.get(resolved or "")
                if releases is None:
                    continue
                short = (resolved or "").rsplit(".", 1)[-1]
                release_names = "/".join(releases)
                if target_chain is None:
                    self._resource_finding(
                        module, call, short, release_names,
                        "constructed and immediately dropped",
                    )
                elif len(target_chain) == 2 and target_chain[0] == "self":
                    attr = target_chain[1]
                    released = self._class_releases(module, func, attr)
                    if not released & set(releases):
                        self._resource_finding(
                            module, call, short, release_names,
                            f"bound to self.{attr} but no method ever "
                            f"calls {release_names} on it",
                        )
                elif len(target_chain) == 1:
                    name = target_chain[0]
                    released = local_released.get(name, set())
                    attr_alias = self_assigned_from.get(name)
                    if attr_alias is not None:
                        released |= self._class_releases(
                            module, func, attr_alias
                        )
                    if name not in returned and not released & set(releases):
                        self._resource_finding(
                            module, call, short, release_names,
                            f"bound to {name!r} but never released in "
                            "this function (and not returned)",
                        )

    def _resource_finding(
        self, module: _ModuleScan, node: ast.Call, ctor: str,
        releases: str, detail: str,
    ) -> None:
        module.findings.append(
            ConcurrencyFinding(
                module.path, node.lineno, "CC401", "resource-leak",
                f"{ctor}(...) {detail}; use a with-block or guarantee "
                f"{releases} on every path",
            )
        )

    def _class_releases(
        self, module: _ModuleScan,
        func: "ast.FunctionDef | ast.AsyncFunctionDef", attr: str,
    ) -> Set[str]:
        for cls in module.classes:
            if func.name in cls.method_names:
                return cls.attr_releases.get(attr, set())
        return set()

    def _check_atomic_writes(
        self, module: _ModuleScan,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        imports: _ImportMap,
    ) -> None:
        candidates: List[Tuple[ast.Call, str]] = []
        has_replace = False
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            resolved = imports.resolve_call(chain)
            if resolved == "os.replace":
                has_replace = True
            elif resolved == "json.dump":
                candidates.append((node, "json.dump to an open file handle"))
            elif chain and chain[-1] == "write_text" and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Call) and \
                        imports.resolve_call(_attr_chain(arg.func)) == \
                        "json.dumps":
                    candidates.append(
                        (node, "write_text(json.dumps(...))")
                    )
        if has_replace:
            return  # this function IS an atomic-publish implementation
        for call, what in candidates:
            module.findings.append(
                ConcurrencyFinding(
                    module.path, call.lineno, "CC402", "non-atomic-write",
                    f"{what} publishes a JSON artifact non-atomically "
                    "(readers can see a torn file); use "
                    "repro.serve.store.atomic_write_json",
                )
            )

    def _imports_for(self, module: _ModuleScan) -> _ImportMap:
        # rebuilt cheaply from the stored source (modules are small)
        try:
            tree = ast.parse("\n".join(module.lines))
        except SyntaxError:
            tree = ast.Module(body=[], type_ignores=[])
        return _ImportMap(tree)

    # -- cross-module lock-order graph ---------------------------------
    def lock_order_edges(
        self,
    ) -> Dict[Tuple[str, str], Tuple[pathlib.Path, int]]:
        """Static ``outer -> inner`` acquisition edges with one site each.

        Union of lexically nested ``with`` blocks and call-derived
        edges (lock held at a call site x locks the callee eventually
        acquires, via a transitive-closure fixpoint over resolvable
        intra-class / typed-attribute calls).
        """
        edges: Dict[Tuple[str, str], Tuple[pathlib.Path, int]] = {}
        for module in self._modules:
            edges.update(module.nested_edges)

        classes: Dict[str, List[_ClassScan]] = {}
        for module in self._modules:
            for cls in module.classes:
                classes.setdefault(cls.name, []).append(cls)

        # Fixpoint over "locks this method eventually acquires": seed
        # with each method's direct acquisitions, then fold in every
        # resolvable callee's eventual set until stable.  Call records
        # are keyed by the method they appear in so the caller inherits
        # transitively-acquired locks too.
        eventual: Dict[Tuple[str, str], Set[str]] = {}
        for scans in classes.values():
            for cls in scans:
                for method, locks in cls.direct_locks.items():
                    eventual.setdefault((cls.name, method), set()).update(
                        locks
                    )
        call_records: List[
            Tuple[_ClassScan, Tuple[str, ...], str, str, int]
        ] = []
        for scans in classes.values():
            for cls in scans:
                for held, callee_cls, callee, line in cls.lock_calls:
                    call_records.append((cls, held, callee_cls, callee, line))

        call_edges: Dict[Tuple[str, str], Tuple[pathlib.Path, int]] = {}
        changed = True
        while changed:
            changed = False
            for cls, held, callee_cls, callee, line in call_records:
                callee_locks: Set[str] = set()
                for target in classes.get(callee_cls, []):
                    callee_locks |= eventual.get(
                        (target.name, callee), set()
                    )
                if not callee_locks:
                    continue
                for outer in held:
                    for inner in callee_locks:
                        if outer == inner:
                            continue  # re-entry is CC301-adjacent but
                            # self-deadlock, reported via the witness
                        edge = (outer, inner)
                        if edge not in call_edges:
                            call_edges[edge] = (cls.path, line)
                            changed = True
        edges.update(call_edges)
        return edges

    # -- output --------------------------------------------------------
    def analyze(self) -> List[ConcurrencyFinding]:
        """All surviving findings, path/line-ordered, ``noqa`` applied."""
        findings: List[ConcurrencyFinding] = []
        for module in self._modules:
            findings.extend(module.findings)
        findings.extend(self._cycle_findings())
        lines_for: Dict[pathlib.Path, List[str]] = {
            module.path: module.lines for module in self._modules
        }
        survivors = []
        for finding in findings:
            lines = lines_for.get(finding.path, [])
            line = (
                lines[finding.line - 1]
                if 0 < finding.line <= len(lines) else ""
            )
            suppressed = _noqa_codes(line)
            if suppressed is not None and (
                not suppressed or finding.code in suppressed
            ):
                continue
            survivors.append(finding)
        survivors.sort(key=lambda f: (str(f.path), f.line, f.code))
        return survivors

    def _cycle_findings(self) -> List[ConcurrencyFinding]:
        edges = self.lock_order_edges()
        findings: List[ConcurrencyFinding] = []
        remaining = dict(edges)
        seen_cycles: Set[Tuple[str, ...]] = set()
        while True:
            cycle = find_cycle(remaining)
            if cycle is None:
                break
            canon = _canonical_cycle(cycle)
            cycle_edges = list(zip(cycle, cycle[1:]))
            site = min(
                (remaining[e] for e in cycle_edges if e in remaining),
                key=lambda s: (str(s[0]), s[1]),
                default=(pathlib.Path("<unknown>"), 0),
            )
            if canon not in seen_cycles:
                seen_cycles.add(canon)
                findings.append(
                    ConcurrencyFinding(
                        site[0], site[1], "CC301", "lock-order-cycle",
                        "potential deadlock: locks are acquired in a "
                        f"cyclic order {' -> '.join(cycle)}",
                    )
                )
            for edge in cycle_edges:  # break the cycle, look for more
                remaining.pop(edge, None)
        return findings


def _canonical_cycle(cycle: List[str]) -> Tuple[str, ...]:
    nodes = cycle[:-1]
    pivot = nodes.index(min(nodes))
    return tuple(nodes[pivot:] + nodes[:pivot])


def _local_lock_vars(
    func: "ast.FunctionDef | ast.AsyncFunctionDef", prefix: str
) -> Dict[str, str]:
    """Function-local ``x = threading.Lock()`` vars -> lock identity."""
    locks: Dict[str, str] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and _is_lock_ctor(node.value):
            locks[node.targets[0].id] = f"{prefix}.{node.targets[0].id}"
    return locks


def _collect_releases(
    cls: _ClassScan, method: "ast.FunctionDef | ast.AsyncFunctionDef"
) -> None:
    """Record release-ish calls on ``self.<attr>`` (or local aliases)."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(method):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            chain = _attr_chain(node.value)
            if len(chain) == 2 and chain[0] == "self":
                aliases[node.targets[0].id] = chain[1]
    for node in ast.walk(method):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if len(chain) == 3 and chain[0] == "self":
            cls.attr_releases.setdefault(chain[1], set()).add(chain[2])
        elif len(chain) == 2 and chain[0] in aliases:
            cls.attr_releases.setdefault(
                aliases[chain[0]], set()
            ).add(chain[1])


def _iter_python_files(
    paths: Sequence[pathlib.Path],
) -> Iterator[pathlib.Path]:
    for path in paths:
        path = pathlib.Path(path)
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            yield from sorted(path.rglob("*.py"))


# ----------------------------------------------------------------------
# convenience entry points
# ----------------------------------------------------------------------
def analyze_source(
    source: str, path: pathlib.Path = pathlib.Path("<string>")
) -> List[ConcurrencyFinding]:
    """Findings for a single in-memory module (fixture/test helper)."""
    analyzer = ConcurrencyAnalyzer()
    analyzer.add_source(source, path)
    return analyzer.analyze()


def analyze_paths(
    paths: Sequence[pathlib.Path],
) -> List[ConcurrencyFinding]:
    """Findings for files/directories (cross-module lock graph included)."""
    analyzer = ConcurrencyAnalyzer()
    analyzer.add_paths(paths)
    return analyzer.analyze()


def render_findings(findings: Sequence[ConcurrencyFinding]) -> str:
    """One line per finding plus a per-code summary (CLI output body)."""
    lines = [finding.render() for finding in findings]
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    if counts:
        breakdown = ", ".join(
            f"{code}: {count}" for code, count in sorted(counts.items())
        )
        lines.append(f"{len(findings)} finding(s) ({breakdown})")
    return "\n".join(lines)
