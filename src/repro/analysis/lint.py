"""Static linting of compiled artifacts: patterns, frame programs, programs.

:class:`PatternLinter` checks the three artifact levels the compiler
emits, without executing anything:

* **measurement patterns** (:class:`repro.mbqc.pattern.MeasurementPattern`)
  — basis coverage, dependency well-formedness (no forward references,
  no cycles, no dangling sources), output hygiene, and — via the flow
  certifier (:mod:`repro.analysis.flow`) — a determinism certificate
  plus an exact diff of the recorded feed-forward sets against the
  flow-induced ones (which is what catches a dropped correction);
* **frame programs** (:class:`repro.sim.frame.FrameProgram`) — step
  coverage and ordering, basis consistency with the source pattern,
  dependency resolution, qubit-index hygiene, and detector-parity-check
  coverage of the output generators;
* **compiled programs** (:class:`repro.core.compiler.CompiledProgram`)
  — photon/fusion budget reconciliation against the hardware mapping,
  reusing the first-principles layout checks of
  :func:`repro.core.validate.validate_program`.

Every finding is a :class:`LintIssue` with a stable code (``P``
pattern-structure, ``F`` flow/feed-forward, ``R`` frame program, ``B``
budget/hardware); the mutation harness in :mod:`repro.analysis.mutate`
pins each corruption class to the codes that must flag it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.flow import (
    DeterminismCertificate,
    certify_pattern,
    flow_corrections,
)
from repro.mbqc.pattern import MeasurementPattern

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.compiler import CompiledProgram
    from repro.hardware.coupling import HardwareConfig
    from repro.sim.frame import FrameProgram


@dataclass(frozen=True)
class LintIssue:
    """One static finding.

    Attributes:
        code: stable identifier (``P001``, ``F002``, ``R003``, ...).
        check: kebab-case check name (``forward-reference``, ...).
        severity: ``"error"`` or ``"warning"``.
        where: the node / step / check index the issue localizes to, or
            ``None`` for artifact-global findings.
        message: human-readable description with the offending values.
    """

    code: str
    check: str
    severity: str
    where: Optional[int]
    message: str

    def render(self) -> str:
        loc = "" if self.where is None else f" @ {self.where}"
        return f"{self.code} [{self.check}]{loc}: {self.message}"


@dataclass
class LintReport:
    """All findings for one artifact.

    ``ok`` is true when no *error*-severity issue was found; warnings do
    not fail a lint gate.  ``certificate`` carries the determinism
    certificate when the pattern-level lint ran the flow search.
    """

    artifact: str
    issues: List[LintIssue] = field(default_factory=list)
    certificate: Optional[DeterminismCertificate] = None

    @property
    def ok(self) -> bool:
        return not any(i.severity == "error" for i in self.issues)

    def errors(self) -> List[LintIssue]:
        return [i for i in self.issues if i.severity == "error"]

    def codes(self) -> FrozenSet[str]:
        return frozenset(i.code for i in self.issues)

    def extend(self, other: "LintReport") -> "LintReport":
        """Fold *other*'s issues into this report (for combined gates)."""
        self.issues.extend(other.issues)
        if self.certificate is None:
            self.certificate = other.certificate
        return self

    def summary(self) -> str:
        errors = len(self.errors())
        warnings = len(self.issues) - errors
        status = "clean" if not self.issues else (
            f"{errors} error(s), {warnings} warning(s)"
        )
        cert = ""
        if self.certificate is not None:
            cert = f"; {self.certificate.summary()}"
        return f"{self.artifact}: {status}{cert}"

    def render(self) -> str:
        lines = [self.summary()]
        lines.extend(f"  {issue.render()}" for issue in self.issues)
        return "\n".join(lines)


def _issue(
    issues: List[LintIssue],
    code: str,
    check: str,
    where: Optional[int],
    message: str,
    severity: str = "error",
) -> None:
    issues.append(LintIssue(code, check, severity, where, message))


class PatternLinter:
    """Static checker for the compiler's artifact levels.

    Args:
        certify: run the flow/gflow determinism search during pattern
            lints (on by default; the search is milliseconds even on
            thousand-node patterns).
        max_issues: stop reporting after this many findings per artifact
            (corrupt artifacts can cascade).
    """

    def __init__(self, certify: bool = True, max_issues: int = 200) -> None:
        self.certify = certify
        self.max_issues = max_issues

    # ------------------------------------------------------------------
    # measurement patterns
    # ------------------------------------------------------------------
    def lint_pattern(
        self, pattern: MeasurementPattern, name: str = "pattern"
    ) -> LintReport:
        """Lint *pattern*: structural checks plus flow certification."""
        issues: List[LintIssue] = []
        nodes = set(pattern.graph.nodes())
        outputs = set(pattern.outputs)
        measured = nodes - outputs

        # --- node-set hygiene -----------------------------------------
        for v in pattern.inputs:
            if v not in nodes:
                _issue(issues, "P010", "input-invalid", v,
                       "input node is not a vertex of the graph")
        if len(set(pattern.inputs)) != len(pattern.inputs):
            _issue(issues, "P010", "input-invalid", None,
                   "duplicate input node")
        for v in pattern.outputs:
            if v not in nodes:
                _issue(issues, "P010", "output-invalid", v,
                       "output node is not a vertex of the graph")
        for u, v in pattern.graph.edges():
            if u == v:
                _issue(issues, "P011", "self-loop", u,
                       "entanglement edge is a self-loop (CZ with itself)")

        # --- basis coverage -------------------------------------------
        angled = set(pattern.angles)
        for v in sorted(measured - angled):
            _issue(issues, "P001", "missing-basis", v,
                   "measured node has no measurement angle")
        for v in sorted(angled & outputs):
            _issue(issues, "P002", "output-measured", v,
                   "output node carries a measurement angle")
        for v in sorted(angled - nodes):
            _issue(issues, "P003", "unknown-node", v,
                   "angle recorded for a node that is not in the graph")
        for v, alpha in pattern.angles.items():
            if not (isinstance(alpha, (int, float)) and math.isfinite(alpha)):
                _issue(issues, "P008", "angle-invalid", v,
                       f"measurement angle {alpha!r} is not a finite real")

        # --- dependency structure -------------------------------------
        dep_maps: Sequence[Tuple[str, Dict[int, FrozenSet[int]]]] = (
            ("X", pattern.x_deps),
            ("Z", pattern.z_deps),
            ("output X", pattern.output_x),
            ("output Z", pattern.output_z),
        )
        for kind, dep_map in dep_maps:
            for node, sources in dep_map.items():
                if node not in nodes:
                    _issue(issues, "P003", "unknown-node", node,
                           f"{kind}-correction target is not in the graph")
                for src in sorted(sources):
                    if src == node:
                        _issue(issues, "P009", "self-dependency", node,
                               f"{kind}-correction depends on its own "
                               "outcome")
                    elif src not in nodes:
                        _issue(issues, "P003", "unknown-node", node,
                               f"{kind}-correction source {src} is not in "
                               "the graph")
                    elif src not in measured:
                        _issue(issues, "P004", "unmeasured-source", node,
                               f"{kind}-correction source {src} is never "
                               "measured (it is an output)")

        # --- sequence / partial order ---------------------------------
        if pattern.sequence:
            seq = list(pattern.sequence)
            if set(seq) != measured or len(seq) != len(measured):
                _issue(issues, "P007", "sequence-mismatch", None,
                       f"sequence enumerates {len(seq)} nodes; the pattern "
                       f"measures {len(measured)}")
            pos = {v: i for i, v in enumerate(seq)}
            for node in seq:
                sources = pattern.x_deps.get(node, frozenset()) | \
                    pattern.z_deps.get(node, frozenset())
                for src in sorted(sources):
                    if src in pos and pos[src] >= pos[node]:
                        _issue(issues, "P005", "forward-reference", node,
                               f"measured at position {pos[node]} but "
                               f"depends on {src} measured at position "
                               f"{pos[src]}")
        cycle = _dependency_cycle(pattern, measured)
        if cycle:
            _issue(issues, "P006", "dependency-cycle", cycle[0],
                   "dependency cycle: " +
                   " -> ".join(str(v) for v in cycle))

        # --- determinism certificate + correction diff ----------------
        certificate: Optional[DeterminismCertificate] = None
        if self.certify and not issues:
            # only certify structurally sound patterns: a flow search on
            # a broken graph would chase ghosts
            certificate = certify_pattern(pattern)
            if not certificate.ok:
                violation = certificate.violation
                assert violation is not None
                _issue(issues, "F001", "no-determinism", violation.node,
                       f"{violation.condition} "
                       f"({len(violation.stalled)} stalled node(s))")
            elif certificate.kind == "flow":
                self._diff_corrections(pattern, certificate, issues)

        return LintReport(
            artifact=name,
            issues=issues[: self.max_issues],
            certificate=certificate,
        )

    def _diff_corrections(
        self,
        pattern: MeasurementPattern,
        certificate: DeterminismCertificate,
        issues: List[LintIssue],
    ) -> None:
        """Diff recorded feed-forward sets against the flow-induced ones.

        Only meaningful under a *causal* flow: the circuit translation
        emits exactly the flow corrections (pinned by
        ``tests/analysis/test_flow_certifier.py``), so any difference
        means a correction was dropped, invented or re-targeted.
        gflow-only patterns can carry legitimately different set-valued
        corrections, so the diff is skipped there.
        """
        assert certificate.successor is not None
        x_map, z_map = flow_corrections(
            pattern.graph, pattern.outputs, certificate.successor
        )
        outputs = set(pattern.outputs)
        for v in sorted(pattern.graph.nodes()):
            if v in outputs:
                rec_x = pattern.output_x.get(v, frozenset())
                rec_z = pattern.output_z.get(v, frozenset())
                code_x = code_z = "F004"
                check = "byproduct-mismatch"
            else:
                rec_x = pattern.x_deps.get(v, frozenset())
                rec_z = pattern.z_deps.get(v, frozenset())
                code_x, code_z = "F002", "F003"
                check = "correction-mismatch"
            if rec_x != x_map[v]:
                _issue(issues, code_x, check, v,
                       f"recorded X sources {sorted(rec_x)} != flow-induced "
                       f"{sorted(x_map[v])}")
            if rec_z != z_map[v]:
                _issue(issues, code_z, check, v,
                       f"recorded Z sources {sorted(rec_z)} != flow-induced "
                       f"{sorted(z_map[v])}")

    # ------------------------------------------------------------------
    # frame programs
    # ------------------------------------------------------------------
    def lint_frame_program(
        self,
        program: "FrameProgram",
        pattern: MeasurementPattern,
        name: str = "frame-program",
    ) -> LintReport:
        """Lint a compiled :class:`repro.sim.frame.FrameProgram` against
        its source *pattern*."""
        from repro.sim.pattern_sim import _pauli_sign_table

        issues: List[LintIssue] = []
        outputs = set(pattern.outputs)
        measured = set(pattern.graph.nodes()) - outputs

        step_nodes = [step.node for step in program.steps]
        if set(step_nodes) != measured or len(step_nodes) != len(measured):
            _issue(issues, "R001", "step-coverage", None,
                   f"{len(step_nodes)} steps cover "
                   f"{len(set(step_nodes))} distinct nodes; the pattern "
                   f"measures {len(measured)}")
        if dict(program.step_of_node) != {
            step.node: k for k, step in enumerate(program.steps)
        }:
            _issue(issues, "R008", "step-index-mismatch", None,
                   "step_of_node disagrees with the step sequence")

        seen_qubits: Set[int] = set()
        for k, step in enumerate(program.steps):
            if not 0 <= step.qubit < program.num_qubits:
                _issue(issues, "R005", "qubit-range", k,
                       f"step measures qubit {step.qubit} outside "
                       f"[0, {program.num_qubits})")
            elif step.qubit in seen_qubits:
                _issue(issues, "R005", "qubit-collision", k,
                       f"qubit {step.qubit} measured by more than one step")
            seen_qubits.add(step.qubit)
            for dep in tuple(step.x_deps) + tuple(step.z_deps):
                if not 0 <= dep < k:
                    _issue(issues, "R002", "forward-reference", k,
                           f"feed-forward source step {dep} is not strictly "
                           f"before step {k}")
            if step.node not in pattern.angles:
                continue  # covered by R001
            basis, _ = _pauli_sign_table(pattern.angles[step.node])
            if step.y_basis != (basis == "y"):
                _issue(issues, "R003", "basis-mismatch", k,
                       f"step measures {'Y' if step.y_basis else 'X'} but "
                       f"pattern angle {pattern.angles[step.node]} "
                       f"measures {basis.upper()}")
            want_x = self._dep_steps(
                pattern.x_deps.get(step.node, frozenset()), program
            )
            want_z = self._dep_steps(
                pattern.z_deps.get(step.node, frozenset()), program
            )
            if want_x is not None and tuple(sorted(step.x_deps)) != want_x:
                _issue(issues, "R004", "dep-mismatch", k,
                       f"step X deps {sorted(step.x_deps)} != pattern's "
                       f"{list(want_x)}")
            if want_z is not None and tuple(sorted(step.z_deps)) != want_z:
                _issue(issues, "R004", "dep-mismatch", k,
                       f"step Z deps {sorted(step.z_deps)} != pattern's "
                       f"{list(want_z)}")

        # detector parity checks must cover every output generator
        if len(program.checks) != len(pattern.outputs):
            _issue(issues, "R006", "check-coverage", None,
                   f"{len(program.checks)} output parity checks for "
                   f"{len(pattern.outputs)} output generators")
        for which, check in enumerate(program.checks):
            for qubit in tuple(check.frame_x) + tuple(check.frame_z):
                if not 0 <= qubit < program.num_qubits:
                    _issue(issues, "R007", "check-range", which,
                           f"check references qubit {qubit} outside "
                           f"[0, {program.num_qubits})")
            for step_idx in check.delta_steps:
                if not 0 <= step_idx < len(program.steps):
                    _issue(issues, "R007", "check-range", which,
                           f"check references step {step_idx} outside "
                           f"[0, {len(program.steps)})")
        return LintReport(artifact=name, issues=issues[: self.max_issues])

    @staticmethod
    def _dep_steps(
        sources: FrozenSet[int], program: "FrameProgram"
    ) -> Optional[Tuple[int, ...]]:
        """Pattern dep sources resolved to step indices, or ``None`` when
        unresolvable (already flagged by the coverage check)."""
        try:
            return tuple(sorted(program.step_of_node[src] for src in sources))
        except KeyError:
            return None

    # ------------------------------------------------------------------
    # compiled programs (budgets + hardware)
    # ------------------------------------------------------------------
    def lint_compiled_program(
        self,
        program: "CompiledProgram",
        hardware: "HardwareConfig",
        name: Optional[str] = None,
    ) -> LintReport:
        """Lint a :class:`repro.core.compiler.CompiledProgram`'s photon /
        fusion budgets and (when layouts are present) its hardware
        mapping."""
        from repro.core.validate import validate_program

        issues: List[LintIssue] = []
        artifact = name or program.name

        if program.photon_deficit > 0:
            _issue(issues, "B001", "photon-deficit", None,
                   f"program consumes {program.photon_deficit} more photons "
                   "than its resource states supply")
        size = hardware.resource_state.size
        supplied = program.resource_states_used * size
        consumed = (
            2 * program.fusions.total
            + program.pattern_nodes
            + program.fusions.z_measurements
        )
        if program.photon_deficit == 0 and supplied != consumed:
            _issue(issues, "B002", "photon-budget", None,
                   f"{program.resource_states_used} resource states supply "
                   f"{supplied} photons but the program accounts for "
                   f"{consumed} (2*{program.fusions.total} fusions + "
                   f"{program.pattern_nodes} nodes + "
                   f"{program.fusions.z_measurements} Z-measurements)")
        if program.layouts and len(program.layouts) != program.mapping_layers:
            _issue(issues, "B004", "layer-count", None,
                   f"{len(program.layouts)} layouts recorded for "
                   f"{program.mapping_layers} mapping layers")
        if program.layouts:
            ok, errors = validate_program(program, hardware)
            if not ok:
                for message in errors[:20]:
                    _issue(issues, "B003", "hardware-violation", None,
                           message)
        return LintReport(artifact=artifact, issues=issues[: self.max_issues])


def _dependency_cycle(
    pattern: MeasurementPattern, measured: Set[int]
) -> Optional[List[int]]:
    """A dependency cycle among measured nodes, or ``None``.

    Kahn peeling over the raw X/Z dependency edges; any residue after
    the peel lies on (or feeds) a cycle, from which one concrete cycle
    is walked out for the report.  Used instead of
    ``pattern.dependency_dag()`` + networkx so the linter stays robust
    on corrupt inputs.
    """
    deps: Dict[int, Set[int]] = {}
    for node in measured:
        merged = set(pattern.x_deps.get(node, frozenset()))
        merged |= set(pattern.z_deps.get(node, frozenset()))
        deps[node] = {s for s in merged if s in measured and s != node}
    indegree = {node: len(sources) for node, sources in deps.items()}
    dependents: Dict[int, List[int]] = {}
    for node, sources in deps.items():
        for src in sources:
            dependents.setdefault(src, []).append(node)
    ready = [node for node, deg in indegree.items() if deg == 0]
    removed = 0
    while ready:
        node = ready.pop()
        removed += 1
        for dependent in dependents.get(node, ()):
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                ready.append(dependent)
    if removed == len(deps):
        return None
    residue = {node for node, deg in indegree.items() if deg > 0}
    # walk predecessors inside the residue until a node repeats
    start = min(residue)
    path = [start]
    seen = {start}
    node = start
    while True:
        node = min(s for s in deps[node] if s in residue)
        if node in seen:
            return path[path.index(node):] + [node]
        seen.add(node)
        path.append(node)


# ----------------------------------------------------------------------
# module-level conveniences (a shared default linter)
# ----------------------------------------------------------------------
_DEFAULT = PatternLinter()


def lint_pattern(
    pattern: MeasurementPattern, name: str = "pattern"
) -> LintReport:
    """Lint *pattern* with the default :class:`PatternLinter`."""
    return _DEFAULT.lint_pattern(pattern, name=name)


def lint_frame_program(
    program: "FrameProgram",
    pattern: MeasurementPattern,
    name: str = "frame-program",
) -> LintReport:
    """Lint *program* against *pattern* with the default linter."""
    return _DEFAULT.lint_frame_program(program, pattern, name=name)


def lint_compiled_program(
    program: "CompiledProgram",
    hardware: "HardwareConfig",
    name: Optional[str] = None,
) -> LintReport:
    """Lint a compiled program's budgets with the default linter."""
    return _DEFAULT.lint_compiled_program(program, hardware, name=name)
