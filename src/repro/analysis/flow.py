"""Causal flow / gflow determinism certification (Mhalla & Perdrix).

A measurement pattern is *uniformly deterministic* — every outcome
branch produces the same output state, for any input — exactly when its
open graph ``(G, I, O)`` admits a generalized flow (Browne, Kashefi,
Mhalla & Perdrix; PAPERS.md).  This module implements the two
polynomial-time existence algorithms of Mhalla & Perdrix for patterns
measured on the X-Y equator (the only plane this codebase's translator
emits):

* :func:`find_causal_flow` — causal flow, the structure the
  Broadbent-Kashefi translation in :mod:`repro.mbqc.translate` produces
  by construction: a successor function ``f`` with ``u ~ f(u)`` where
  measuring ``u`` is repaired by ``X`` on ``f(u)`` and ``Z`` on the
  other neighbours of ``f(u)``;
* :func:`find_gflow` — generalized flow, where the repair is a *set*
  ``g(u)`` of later vertices with ``Odd(g(u))`` intersecting the
  unmeasured region exactly in ``{u}``; found layer by layer with GF(2)
  Gaussian elimination over the adjacency submatrix.

:func:`certify_pattern` packages the search as a
:class:`DeterminismCertificate` — either a proof (flow kind + layer
assignment + correction function) or a localized counterexample
(:class:`FlowViolation`: the stalled vertex set and the violated
condition).  The linter (:mod:`repro.analysis.lint`) additionally diffs
the pattern's recorded feed-forward sets against the flow-induced ones
(:func:`flow_corrections`), which is what catches a dropped correction
statically.

Layer convention: layer 0 contains the outputs; higher layers are
measured *earlier*.  A valid measurement order processes layers in
decreasing index (``depth`` down to 1), which matches the partial order
``u < f(u)`` of the flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from repro.mbqc.pattern import MeasurementPattern

#: Correction maps keyed by node: which measured sources feed the X / Z
#: repair of that node (the shape of ``MeasurementPattern.x_deps``).
CorrectionMap = Dict[int, FrozenSet[int]]


@dataclass(frozen=True)
class FlowViolation:
    """Localized counterexample: why no flow/gflow exists.

    Attributes:
        node: a canonical stalled vertex (the smallest), or ``None``
            when the failure is structural (e.g. an output inside the
            measured set).
        condition: the violated flow condition, in words.
        stalled: every vertex that could not be assigned a correction
            when the search reached a fixed point.
    """

    node: Optional[int]
    condition: str
    stalled: Tuple[int, ...] = ()


@dataclass
class DeterminismCertificate:
    """Result of one :func:`certify_pattern` call.

    Attributes:
        ok: a flow or gflow exists — the open graph supports a uniformly
            deterministic pattern.
        kind: ``"flow"`` (causal flow), ``"gflow"`` (generalized flow
            only), or ``"none"``.
        depth: number of correction layers (0 for output-only graphs);
            the feed-forward critical path implied by the flow.
        layer_of: node -> layer index (outputs at 0, earlier-measured
            nodes higher).
        successor: the causal-flow successor function ``f`` (empty for
            gflow-only certificates).
        corrector: node -> correction set ``g(u)`` (for causal flow,
            ``{f(u)}``).
        violation: the counterexample when ``ok`` is false.
    """

    ok: bool
    kind: str
    depth: int
    layer_of: Dict[int, int] = field(default_factory=dict)
    successor: Dict[int, int] = field(default_factory=dict)
    corrector: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    violation: Optional[FlowViolation] = None

    def summary(self) -> str:
        if self.ok:
            return (
                f"deterministic ({self.kind}, {self.depth} correction "
                f"layer{'s' if self.depth != 1 else ''}, "
                f"{len(self.corrector)} corrected nodes)"
            )
        assert self.violation is not None
        detail = self.violation.condition
        if self.violation.node is not None:
            detail = f"node {self.violation.node}: {detail}"
        return f"no determinism certificate ({detail})"


def _structural_violation(
    graph: nx.Graph, inputs: Sequence[int], outputs: Sequence[int]
) -> Optional[FlowViolation]:
    """Sanity conditions any open graph must satisfy before a search."""
    nodes = set(graph.nodes())
    for name, group in (("input", inputs), ("output", outputs)):
        missing = [v for v in group if v not in nodes]
        if missing:
            return FlowViolation(
                node=missing[0],
                condition=f"{name} node is not a vertex of the graph",
                stalled=tuple(missing),
            )
    if len(set(outputs)) != len(outputs):
        return FlowViolation(
            node=None, condition="duplicate output node", stalled=()
        )
    return None


def find_causal_flow(
    graph: nx.Graph,
    inputs: Sequence[int],
    outputs: Sequence[int],
) -> Optional[Tuple[Dict[int, int], Dict[int, int]]]:
    """Find a causal flow of the open graph, or ``None``.

    Returns ``(f, layer_of)``: the successor function over measured
    (non-output) vertices and the layer assignment (outputs at layer 0).
    Mhalla & Perdrix's round-based algorithm: a processed non-input
    vertex with exactly one unprocessed neighbour corrects that
    neighbour; repeat until everything is processed or no round makes
    progress.
    """
    nodes = set(graph.nodes())
    processed: Set[int] = set(outputs)
    correctors: Set[int] = set(outputs) - set(inputs)
    f: Dict[int, int] = {}
    layer_of: Dict[int, int] = {v: 0 for v in outputs}
    k = 1
    while processed != nodes:
        claimed: Dict[int, int] = {}
        used: Set[int] = set()
        for c in sorted(correctors):
            unprocessed = [u for u in graph.neighbors(c) if u not in processed]
            if len(unprocessed) == 1:
                u = unprocessed[0]
                if u not in claimed:
                    claimed[u] = c
                    used.add(c)
        if not claimed:
            return None
        for u, c in claimed.items():
            f[u] = c
            layer_of[u] = k
        processed |= set(claimed)
        correctors = (correctors - used) | {
            u for u in claimed if u not in inputs
        }
        k += 1
    return f, layer_of


# ----------------------------------------------------------------------
# GF(2) elimination for gflow
# ----------------------------------------------------------------------
def _gf2_solvable(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Which columns ``b`` of *B* satisfy ``A x = b`` over GF(2).

    *A* is ``(m, n)`` uint8, *B* is ``(m, t)`` uint8; returns a ``(t,)``
    boolean mask.  One forward elimination over the stacked ``[A | B]``
    system answers all targets at once: ``b`` is solvable iff it has no
    support on rows where ``A`` was eliminated to zero.
    """
    A = A.copy()
    B = B.copy()
    m, n = A.shape
    pivot_row = 0
    for col in range(n):
        if pivot_row >= m:
            break
        rows = np.nonzero(A[pivot_row:, col])[0]
        if rows.size == 0:
            continue
        target = pivot_row + int(rows[0])
        if target != pivot_row:
            A[[pivot_row, target]] = A[[target, pivot_row]]
            B[[pivot_row, target]] = B[[target, pivot_row]]
        elim = np.nonzero(A[:, col])[0]
        elim = elim[elim != pivot_row]
        if elim.size:
            A[elim] ^= A[pivot_row]
            B[elim] ^= B[pivot_row]
        pivot_row += 1
    # rows from pivot_row on have A == 0: any residual B support there
    # makes the system inconsistent for that target
    if pivot_row >= m:
        return np.ones(B.shape[1], dtype=bool)
    return ~np.any(B[pivot_row:], axis=0)


def _gf2_solve(A: np.ndarray, b: np.ndarray) -> Optional[np.ndarray]:
    """One solution ``x`` of ``A x = b`` over GF(2), or ``None``."""
    A = A.copy()
    b = b.copy()
    m, n = A.shape
    pivots: List[Tuple[int, int]] = []
    pivot_row = 0
    for col in range(n):
        if pivot_row >= m:
            break
        rows = np.nonzero(A[pivot_row:, col])[0]
        if rows.size == 0:
            continue
        target = pivot_row + int(rows[0])
        if target != pivot_row:
            A[[pivot_row, target]] = A[[target, pivot_row]]
            b[[pivot_row, target]] = b[[target, pivot_row]]
        elim = np.nonzero(A[:, col])[0]
        elim = elim[elim != pivot_row]
        if elim.size:
            A[elim] ^= A[pivot_row]
            b[elim] ^= b[pivot_row]
        pivots.append((pivot_row, col))
        pivot_row += 1
    if pivot_row < m and np.any(b[pivot_row:]):
        return None
    x = np.zeros(n, dtype=np.uint8)
    for row, col in pivots:
        x[col] = b[row]
    return x


def find_gflow(
    graph: nx.Graph,
    inputs: Sequence[int],
    outputs: Sequence[int],
) -> Optional[Tuple[Dict[int, FrozenSet[int]], Dict[int, int]]]:
    """Find a gflow of the open graph (all X-Y plane), or ``None``.

    Returns ``(g, layer_of)``: the correction-set function over measured
    vertices and the layer assignment.  Layer by layer (Mhalla &
    Perdrix): an unprocessed vertex ``u`` joins the next layer when some
    ``K`` of processed non-input vertices has odd neighbourhood
    intersecting the unprocessed region exactly in ``{u}`` — a GF(2)
    linear system over the bipartite adjacency submatrix.
    """
    nodes = sorted(graph.nodes())
    processed: Set[int] = set(outputs)
    g: Dict[int, FrozenSet[int]] = {}
    layer_of: Dict[int, int] = {v: 0 for v in outputs}
    input_set = set(inputs)
    k = 1
    while processed != set(nodes):
        unprocessed = sorted(v for v in nodes if v not in processed)
        candidates = sorted(v for v in processed if v not in input_set)
        found: Dict[int, FrozenSet[int]] = {}
        if candidates:
            row_of = {v: i for i, v in enumerate(unprocessed)}
            A = np.zeros((len(unprocessed), len(candidates)), dtype=np.uint8)
            for j, c in enumerate(candidates):
                for nbr in graph.neighbors(c):
                    i = row_of.get(nbr)
                    if i is not None:
                        A[i, j] ^= 1
            B = np.eye(len(unprocessed), dtype=np.uint8)
            solvable = _gf2_solvable(A, B)
            for i, u in enumerate(unprocessed):
                if not solvable[i]:
                    continue
                x = _gf2_solve(A, B[:, i])
                assert x is not None  # solvable mask said so
                found[u] = frozenset(
                    candidates[j] for j in np.nonzero(x)[0]
                )
        if not found:
            return None
        for u, K in found.items():
            g[u] = K
            layer_of[u] = k
        processed |= set(found)
        k += 1
    return g, layer_of


def flow_corrections(
    graph: nx.Graph,
    outputs: Sequence[int],
    successor: Dict[int, int],
) -> Tuple[CorrectionMap, CorrectionMap]:
    """Feed-forward sets induced by a causal flow.

    Measuring ``u`` is repaired by ``X^{s_u}`` on ``f(u)`` and
    ``Z^{s_u}`` on ``N(f(u)) \\ {u}``; accumulating over all measured
    vertices gives, per node ``v``, the XOR-set of outcome sources whose
    parity flips the sign (``x``) or adds pi (``z``) — exactly the shape
    of ``MeasurementPattern.x_deps`` / ``z_deps`` (and ``output_x`` /
    ``output_z`` on output nodes).  The Broadbent-Kashefi translator
    produces precisely these sets, so a compiled pattern whose recorded
    sets differ from the flow-induced ones has lost (or invented) a
    correction.
    """
    x_sources: Dict[int, Set[int]] = {v: set() for v in graph.nodes()}
    z_sources: Dict[int, Set[int]] = {v: set() for v in graph.nodes()}
    for u, v in successor.items():
        x_sources[v] ^= {u}
        for w in graph.neighbors(v):
            if w != u:
                z_sources[w] ^= {u}
    x_map = {v: frozenset(s) for v, s in x_sources.items()}
    z_map = {v: frozenset(s) for v, s in z_sources.items()}
    return x_map, z_map


def certify_pattern(pattern: MeasurementPattern) -> DeterminismCertificate:
    """Certify determinism of *pattern*'s open graph, or localize why not.

    Tries causal flow first (the structure the translator emits), then
    general gflow.  A certificate proves the open graph supports a
    uniformly deterministic X-Y pattern — it says nothing about *which*
    unitary the pattern implements (that is dynamic verification's job,
    :func:`repro.core.validate.verify_pattern`).
    """
    graph = pattern.graph
    structural = _structural_violation(graph, pattern.inputs, pattern.outputs)
    if structural is not None:
        return DeterminismCertificate(
            ok=False, kind="none", depth=0, violation=structural
        )
    flow = find_causal_flow(graph, pattern.inputs, pattern.outputs)
    if flow is not None:
        f, layer_of = flow
        return DeterminismCertificate(
            ok=True,
            kind="flow",
            depth=max(layer_of.values(), default=0),
            layer_of=layer_of,
            successor=f,
            corrector={u: frozenset((v,)) for u, v in f.items()},
        )
    gflow = find_gflow(graph, pattern.inputs, pattern.outputs)
    if gflow is not None:
        g, layer_of = gflow
        return DeterminismCertificate(
            ok=True,
            kind="gflow",
            depth=max(layer_of.values(), default=0),
            layer_of=layer_of,
            corrector=g,
        )
    # localize: rerun the gflow search one layer to collect the stall set
    stalled = _stalled_vertices(graph, pattern.inputs, pattern.outputs)
    node = min(stalled) if stalled else None
    return DeterminismCertificate(
        ok=False,
        kind="none",
        depth=0,
        violation=FlowViolation(
            node=node,
            condition=(
                "no correction set over measured-later vertices has odd "
                "neighbourhood isolating this vertex (gflow condition "
                "(g2)/(g3) for the X-Y plane)"
            ),
            stalled=tuple(stalled),
        ),
    )


def _stalled_vertices(
    graph: nx.Graph, inputs: Sequence[int], outputs: Sequence[int]
) -> List[int]:
    """The unprocessed set at the gflow search's fixed point."""
    nodes = sorted(graph.nodes())
    processed: Set[int] = set(outputs)
    input_set = set(inputs)
    while True:
        unprocessed = sorted(v for v in nodes if v not in processed)
        if not unprocessed:
            return []
        candidates = sorted(v for v in processed if v not in input_set)
        found: Set[int] = set()
        if candidates:
            row_of = {v: i for i, v in enumerate(unprocessed)}
            A = np.zeros((len(unprocessed), len(candidates)), dtype=np.uint8)
            for j, c in enumerate(candidates):
                for nbr in graph.neighbors(c):
                    i = row_of.get(nbr)
                    if i is not None:
                        A[i, j] ^= 1
            solvable = _gf2_solvable(A, np.eye(len(unprocessed), dtype=np.uint8))
            found = {u for i, u in enumerate(unprocessed) if solvable[i]}
        if not found:
            return unprocessed
        processed |= found
