"""Mutation harness: corrupt known-good artifacts, assert the linter bites.

A linter that has never seen a broken artifact proves nothing.  This
module seeds one corruption per *mutation class* — drop a correction,
reorder two dependent measurements, flip a basis, orphan an edge, ... —
into a deep copy of a known-good pattern or frame program, and
:func:`harness_report` asserts that :class:`repro.analysis.lint.PatternLinter`
flags every class with the exact codes pinned in
:data:`MUTATION_EXPECTED_CODES`.  ``tests/analysis/test_mutation.py``
runs the harness over translated benchmark patterns; CI runs it as part
of the tier-1 suite.

Mutations are deterministic: each picks its victim as the *first*
eligible element in sorted order, so a harness failure reproduces
exactly.  Pattern mutations bypass
:meth:`repro.mbqc.pattern.MeasurementPattern.validate` on purpose — the
point is artifacts corrupted *after* construction (a cache bit-rot, a
buggy transformation pass), which constructor validation never sees.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Dict, FrozenSet, Tuple

from repro.analysis.lint import PatternLinter
from repro.mbqc.pattern import MeasurementPattern
from repro.sim.frame import FrameProgram

#: pattern-level corruption classes, in the order the harness runs them
PATTERN_MUTATIONS: Tuple[str, ...] = (
    "drop-x-correction",
    "drop-z-correction",
    "drop-output-byproduct",
    "reorder-dependents",
    "orphan-edge",
    "measure-output",
    "dangling-dependency",
    "self-dependency",
    "dependency-cycle",
)

#: frame-program corruption classes
FRAME_MUTATIONS: Tuple[str, ...] = (
    "flip-basis",
    "frame-forward-reference",
    "retarget-qubit",
    "drop-check",
)

#: mutation class -> lint codes that MUST appear in the report
MUTATION_EXPECTED_CODES: Dict[str, FrozenSet[str]] = {
    "drop-x-correction": frozenset({"F002"}),
    "drop-z-correction": frozenset({"F003"}),
    "drop-output-byproduct": frozenset({"F004"}),
    "reorder-dependents": frozenset({"P005"}),
    "orphan-edge": frozenset({"P001"}),
    "measure-output": frozenset({"P002"}),
    "dangling-dependency": frozenset({"P003"}),
    "self-dependency": frozenset({"P009"}),
    "dependency-cycle": frozenset({"P006"}),
    "flip-basis": frozenset({"R003"}),
    "frame-forward-reference": frozenset({"R002"}),
    "retarget-qubit": frozenset({"R005"}),
    "drop-check": frozenset({"R006"}),
}


class MutationError(ValueError):
    """The artifact offers no site for the requested mutation class."""


# ----------------------------------------------------------------------
# pattern corruption
# ----------------------------------------------------------------------
def corrupt_pattern(
    pattern: MeasurementPattern, mutation: str
) -> MeasurementPattern:
    """A deep copy of *pattern* with one seeded corruption.

    Raises :class:`MutationError` when the pattern has no site for the
    class (e.g. ``drop-x-correction`` on a pattern with no X
    dependencies) and :class:`ValueError` on an unknown class name.
    """
    if mutation not in PATTERN_MUTATIONS:
        raise ValueError(f"unknown pattern mutation {mutation!r}")
    bad = copy.deepcopy(pattern)
    measured = set(bad.graph.nodes()) - set(bad.outputs)

    if mutation == "drop-x-correction":
        victim = _first_nonempty(bad.x_deps, mutation)
        bad.x_deps[victim] = frozenset()
    elif mutation == "drop-z-correction":
        victim = _first_nonempty(bad.z_deps, mutation)
        bad.z_deps[victim] = frozenset()
    elif mutation == "drop-output-byproduct":
        for dep_map in (bad.output_x, bad.output_z):
            sites = [v for v in sorted(dep_map) if dep_map[v]]
            if sites:
                dep_map[sites[0]] = frozenset()
                break
        else:
            raise MutationError(f"no site for {mutation}")
    elif mutation == "reorder-dependents":
        if not bad.sequence:
            raise MutationError("pattern has no recorded sequence")
        seq = list(bad.sequence)
        pos = {v: i for i, v in enumerate(seq)}
        for node in seq:  # earliest dependent measured after its source
            sources = bad.x_deps.get(node, frozenset()) | \
                bad.z_deps.get(node, frozenset())
            candidates = [s for s in sources if s in pos]
            if not candidates:
                continue
            src = max(candidates, key=lambda s: pos[s])
            if pos[src] < pos[node]:
                seq[pos[src]], seq[pos[node]] = node, src
                bad.sequence = tuple(seq)
                break
        else:
            raise MutationError(f"no site for {mutation}")
    elif mutation == "orphan-edge":
        # hang an edge onto a brand-new node nobody measures
        ghost = max(bad.graph.nodes()) + 1
        anchor = min(bad.graph.nodes())
        bad.graph.add_edge(anchor, ghost)
    elif mutation == "measure-output":
        bad.angles[bad.outputs[0]] = 0.0
    elif mutation == "dangling-dependency":
        victim = min(measured)
        ghost = max(bad.graph.nodes()) + 1
        bad.x_deps[victim] = bad.x_deps.get(victim, frozenset()) | {ghost}
    elif mutation == "self-dependency":
        victim = min(measured)
        bad.z_deps[victim] = bad.z_deps.get(victim, frozenset()) | {victim}
    elif mutation == "dependency-cycle":
        # close the earliest existing dependency edge into a 2-cycle
        for node in sorted(measured):
            sources = bad.x_deps.get(node, frozenset()) | \
                bad.z_deps.get(node, frozenset())
            in_measured = sorted(s for s in sources if s in measured)
            if in_measured:
                src = in_measured[0]
                bad.x_deps[src] = bad.x_deps.get(src, frozenset()) | {node}
                break
        else:
            raise MutationError(f"no site for {mutation}")
    return bad


# ----------------------------------------------------------------------
# frame-program corruption
# ----------------------------------------------------------------------
def corrupt_frame_program(
    program: FrameProgram, mutation: str
) -> FrameProgram:
    """A rebuilt copy of *program* with one seeded corruption.

    ``FrameProgram`` and its steps are frozen dataclasses, so each
    mutation rebuilds the affected tuples via :func:`dataclasses.replace`.
    """
    if mutation not in FRAME_MUTATIONS:
        raise ValueError(f"unknown frame mutation {mutation!r}")
    steps = list(program.steps)

    if mutation == "flip-basis":
        if not steps:
            raise MutationError("program has no steps")
        steps[0] = dataclasses.replace(steps[0], y_basis=not steps[0].y_basis)
    elif mutation == "frame-forward-reference":
        if not steps:
            raise MutationError("program has no steps")
        # first step's sign reads its own (not-yet-recorded) outcome
        steps[0] = dataclasses.replace(
            steps[0], z_deps=tuple(steps[0].z_deps) + (0,)
        )
    elif mutation == "retarget-qubit":
        if len(steps) < 2:
            raise MutationError("program has fewer than two steps")
        steps[1] = dataclasses.replace(steps[1], qubit=steps[0].qubit)
    elif mutation == "drop-check":
        if not program.checks:
            raise MutationError("program has no output checks")
        return dataclasses.replace(program, checks=program.checks[:-1])
    return dataclasses.replace(program, steps=tuple(steps))


# ----------------------------------------------------------------------
# the harness
# ----------------------------------------------------------------------
def harness_report(
    pattern: MeasurementPattern,
    frame_program: FrameProgram = None,
    linter: PatternLinter = None,
) -> Dict[str, Dict[str, object]]:
    """Run every applicable mutation class and lint the corrupted copy.

    Returns ``{mutation: {"expected": codes, "found": codes,
    "caught": bool}}``; a class is *caught* when every expected code
    appears in the lint report.  Classes without a site on this
    particular artifact are reported with ``"caught": None`` (skipped),
    so callers can require specific classes to be exercised.  The clean
    artifacts are linted first and must pass — a linter that already
    fires on the pristine input proves nothing about the mutations.
    """
    linter = linter or PatternLinter()
    results: Dict[str, Dict[str, object]] = {}

    clean = linter.lint_pattern(pattern, name="pristine")
    if not clean.ok:
        raise MutationError(
            "harness needs a clean baseline; pristine pattern fails lint:\n"
            + clean.render()
        )
    if frame_program is not None:
        clean_frame = linter.lint_frame_program(
            frame_program, pattern, name="pristine-frame"
        )
        if not clean_frame.ok:
            raise MutationError(
                "pristine frame program fails lint:\n" + clean_frame.render()
            )

    for mutation in PATTERN_MUTATIONS:
        expected = MUTATION_EXPECTED_CODES[mutation]
        try:
            bad = corrupt_pattern(pattern, mutation)
        except MutationError:
            results[mutation] = {
                "expected": expected, "found": frozenset(), "caught": None,
            }
            continue
        report = linter.lint_pattern(bad, name=mutation)
        results[mutation] = {
            "expected": expected,
            "found": report.codes(),
            "caught": expected <= report.codes(),
        }

    if frame_program is not None:
        for mutation in FRAME_MUTATIONS:
            expected = MUTATION_EXPECTED_CODES[mutation]
            try:
                bad_frame = corrupt_frame_program(frame_program, mutation)
            except MutationError:
                results[mutation] = {
                    "expected": expected, "found": frozenset(),
                    "caught": None,
                }
                continue
            report = linter.lint_frame_program(
                bad_frame, pattern, name=mutation
            )
            results[mutation] = {
                "expected": expected,
                "found": report.codes(),
                "caught": expected <= report.codes(),
            }
    return results


def _first_nonempty(
    dep_map: Dict[int, FrozenSet[int]], mutation: str
) -> int:
    for node in sorted(dep_map):
        if dep_map[node]:
            return node
    raise MutationError(f"no site for {mutation}")
