"""Static verification of compiled artifacts (patterns, frame programs).

The simulation engines in :mod:`repro.sim` check compiled patterns
*dynamically* — by executing them.  This package gives the static
answer: structural linting of the artifacts themselves
(:mod:`repro.analysis.lint`) and causal-flow / gflow determinism
certification of the underlying open graph
(:mod:`repro.analysis.flow`), the Mhalla-Perdrix machinery that proves
a pattern is runnable and deterministic without a single shot.  The
mutation harness (:mod:`repro.analysis.mutate`) validates the linter by
corrupting known-good artifacts and asserting every corruption class is
flagged.  :mod:`repro.analysis.concurrency` turns the same static lens
on the repo's own serving/eval source: lock discipline, async blocking
effects, lock-order cycles and resource lifetimes, CC-coded.
"""

from repro.analysis.concurrency import (
    CC_CODES,
    ConcurrencyAnalyzer,
    ConcurrencyFinding,
    analyze_paths,
    analyze_source,
)
from repro.analysis.flow import (
    DeterminismCertificate,
    FlowViolation,
    certify_pattern,
    find_causal_flow,
    find_gflow,
    flow_corrections,
)
from repro.analysis.lint import (
    LintIssue,
    LintReport,
    PatternLinter,
    lint_compiled_program,
    lint_frame_program,
    lint_pattern,
)
from repro.analysis.mutate import (
    FRAME_MUTATIONS,
    MUTATION_EXPECTED_CODES,
    PATTERN_MUTATIONS,
    corrupt_frame_program,
    corrupt_pattern,
    harness_report,
)

__all__ = [
    "CC_CODES",
    "ConcurrencyAnalyzer",
    "ConcurrencyFinding",
    "DeterminismCertificate",
    "FlowViolation",
    "FRAME_MUTATIONS",
    "analyze_paths",
    "analyze_source",
    "LintIssue",
    "LintReport",
    "MUTATION_EXPECTED_CODES",
    "PATTERN_MUTATIONS",
    "PatternLinter",
    "certify_pattern",
    "corrupt_frame_program",
    "corrupt_pattern",
    "find_causal_flow",
    "find_gflow",
    "flow_corrections",
    "harness_report",
    "lint_compiled_program",
    "lint_frame_program",
    "lint_pattern",
]
