"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``compile``  — compile a benchmark (or QASM file) with OneQ and print
  metrics and optionally the layer layouts;
* ``baseline`` — run the baseline cluster-state interpreter;
* ``table1`` / ``table2`` / ``fig12`` / ``fig13`` / ``fig14`` /
  ``fig15`` / ``ablation`` — regenerate the paper's tables and figures;
* ``bench``    — batch-compile the Table-2 grid (multiprocessing +
  on-disk cache) and persist run-table / BENCH artifacts;
* ``noise-sweep`` — Monte-Carlo yield sweep across noise-model and
  resource-state coordinates (``BENCH_noise_sweep.json`` artifact);
* ``degrade-sweep`` — hardware-degradation survival sweep: per-site
  scenarios x recovery policies (``BENCH_degradation.json`` artifact;
  ``--check-recovery`` gates on the ladder actually rescuing);
* ``lint``     — statically lint a compiled measurement pattern (flow
  determinism certificate + structural checks; exit 1 on errors);
* ``serve``    — run the long-lived compile server (async socket
  front-end + worker process pool + two-tier artifact store);
* ``loadgen``  — drive a compile server with closed-loop load cells
  and persist the serving table (``serving_table.csv`` +
  ``BENCH_<label>.json``); ``--spawn`` hosts a throwaway server
  in-process first;
* ``export``   — emit a benchmark circuit as OpenQASM 2.0.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.baseline import compile_baseline, physical_side
from repro.circuit import get_benchmark
from repro.circuit.qasm import from_qasm, to_qasm
from repro.core import OneQCompiler, OneQConfig, render_program
from repro.hardware import HardwareConfig, get_resource_state
from repro.sim.noisy import ENGINES as MC_ENGINES


def _add_hardware_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rows", type=int, default=None, help="RSG rows")
    parser.add_argument("--cols", type=int, default=None, help="RSG cols")
    parser.add_argument(
        "--resource-state",
        default="3-line",
        choices=["3-line", "4-line", "4-star", "4-ring"],
    )
    parser.add_argument("--extension", type=int, default=1)
    parser.add_argument("--max-delay", type=int, default=2)


def _load_circuit(args) -> tuple:
    if args.qasm:
        with open(args.qasm) as handle:
            return from_qasm(handle.read()), args.qasm
    circuit = get_benchmark(args.benchmark, args.qubits, seed=args.seed)
    return circuit, f"{args.benchmark}-{args.qubits}"


def _hardware_from(args, num_qubits: int) -> HardwareConfig:
    rst = get_resource_state(args.resource_state)
    rows = args.rows
    cols = args.cols
    if rows is None and cols is None:
        side = physical_side(num_qubits, rst)
        rows = cols = side
    elif rows is None or cols is None:
        rows = cols = rows or cols
    return HardwareConfig(
        rows=rows,
        cols=cols,
        resource_state=rst,
        extension=args.extension,
        max_delay=args.max_delay,
    )


def cmd_compile(args) -> int:
    circuit, name = _load_circuit(args)
    hardware = _hardware_from(args, circuit.num_qubits)
    compiler = OneQCompiler(OneQConfig(hardware=hardware))
    program = compiler.compile(circuit, name=name)
    if args.layout:
        print(render_program(program, max_layers=args.layout))
    else:
        print(program.summary())
    return 0


def cmd_baseline(args) -> int:
    circuit, name = _load_circuit(args)
    result = compile_baseline(
        circuit, name=name, resource_state=get_resource_state(args.resource_state)
    )
    print(
        f"{name}: depth={result.depth} fusions={result.num_fusions:,} "
        f"cluster={result.areas.cluster_side}x{result.areas.cluster_side} "
        f"physical={result.areas.physical_side}x{result.areas.physical_side} "
        f"swaps={result.swap_count}"
    )
    return 0


def cmd_export(args) -> int:
    circuit, _ = _load_circuit(args)
    text = to_qasm(circuit)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
    else:
        print(text, end="")
    return 0


#: ``--quick`` restricts figure sweeps to the cheapest/most contrasting
#: benchmark pair (QFT worst case, BV best case).
_QUICK_FIG_BENCHMARKS = ("QFT", "BV")


def cmd_table(args, which: str) -> int:
    from repro import eval as evaluation

    quick = getattr(args, "quick", False)
    fig_benchmarks = (
        _QUICK_FIG_BENCHMARKS if quick else ("QFT", "QAOA", "RCA", "BV")
    )
    if which == "table1":
        print(evaluation.render_table1(evaluation.run_table1()))
    elif which == "table2":
        benchmarks = None
        if quick:
            benchmarks = [("QFT", 16), ("QAOA", 16), ("RCA", 16), ("BV", 16)]
        print(evaluation.render_table2(evaluation.run_table2(benchmarks)))
    elif which == "fig12":
        print(
            evaluation.render_fig12(
                evaluation.run_fig12(
                    num_qubits=args.qubits, benchmarks=fig_benchmarks
                )
            )
        )
    elif which == "fig13":
        print(
            evaluation.render_fig13(
                evaluation.run_fig13(
                    num_qubits=args.qubits, benchmarks=fig_benchmarks
                )
            )
        )
    elif which == "fig14":
        print(evaluation.render_fig14(evaluation.run_fig14(num_qubits=args.qubits)))
    elif which == "fig15":
        print(
            evaluation.render_fig15(
                evaluation.run_fig15(
                    num_qubits=args.qubits, benchmarks=fig_benchmarks
                )
            )
        )
    elif which == "ablation":
        print(
            evaluation.render_ablation(
                evaluation.run_ablation(num_qubits=args.qubits)
            )
        )
    return 0


def cmd_bench(args) -> int:
    import pathlib

    from repro import eval as evaluation

    benchmarks = None
    if args.quick:
        benchmarks = [("QFT", 16), ("QAOA", 16), ("RCA", 16), ("BV", 16)]
    out_dir = pathlib.Path(args.out)
    cache_dir = pathlib.Path(args.cache) if args.cache else None
    records = evaluation.run_grid(
        benchmarks=benchmarks,
        jobs=args.jobs,
        cache_dir=cache_dir,
        out_dir=out_dir,
        stem=args.stem,
        seed=args.seed,
        resource_state=args.resource_state,
        verify=args.verify,
    )
    reference = None
    if args.reference:
        import json

        ref_path = pathlib.Path(args.reference)
        if not ref_path.exists():
            print(f"error: reference file not found: {ref_path}", file=sys.stderr)
            return 2
        payload = json.loads(ref_path.read_text())
        reference = payload.get("runs", payload)
    bench_path = evaluation.write_bench_json(
        records,
        out_dir / f"BENCH_{args.label}.json",
        label=args.label,
        reference=reference,
    )
    print(evaluation.render_run_records(records))
    if args.profile:
        print()
        print(evaluation.render_stage_profile(records))
    print(f"run table: {out_dir / (args.stem + '.json')}")
    print(f"bench:     {bench_path}")
    if args.verify and any(r.verified is False for r in records):
        print("error: verification failed for at least one run", file=sys.stderr)
        return 1
    return 0


def cmd_lint(args) -> int:
    if args.concurrency:
        return _lint_concurrency(args)

    from repro.analysis import lint_compiled_program, lint_pattern
    from repro.mbqc.translate import circuit_to_pattern

    circuit, name = _load_circuit(args)
    pattern = circuit_to_pattern(circuit)
    report = lint_pattern(pattern, name=name)
    print(report.render())

    if args.frame:
        from repro.analysis import lint_frame_program
        from repro.sim.pattern_sim import pattern_is_clifford
        from repro.sim.stabilizer import StabilizerState

        if not pattern_is_clifford(pattern):
            print(f"{name}: frame lint skipped (non-Clifford pattern)")
        else:
            circuit_state = StabilizerState(circuit.num_qubits)
            circuit_state.apply_circuit(circuit)
            from repro.sim.frame import FrameProgram

            _, index = StabilizerState.graph_state(
                pattern.graph, zero_nodes=pattern.inputs
            )
            frame = FrameProgram.compile(
                pattern, circuit_state.stabilizer_rows(), index
            )
            frame_report = lint_frame_program(
                frame, pattern, name=f"{name} (frame program)"
            )
            print(frame_report.render())
            report.extend(frame_report)

    if args.compile:
        hardware = _hardware_from(args, circuit.num_qubits)
        compiler = OneQCompiler(OneQConfig(hardware=hardware))
        program = compiler.compile_pattern(
            pattern, name=name, num_qubits=circuit.num_qubits
        )
        program_report = lint_compiled_program(
            program, hardware, name=f"{name} (compiled program)"
        )
        print(program_report.render())
        report.extend(program_report)

    return 0 if report.ok else 1


def _lint_concurrency(args) -> int:
    import pathlib

    import repro
    from repro.analysis.concurrency import (
        ConcurrencyAnalyzer,
        render_findings,
    )

    paths = [pathlib.Path(p) for p in args.paths] or [
        pathlib.Path(repro.__file__).resolve().parent
    ]
    analyzer = ConcurrencyAnalyzer()
    analyzer.add_paths(paths)
    findings = analyzer.analyze()
    if findings:
        print(render_findings(findings))
        return 1
    edges = analyzer.lock_order_edges()
    scanned = ", ".join(str(p) for p in paths)
    print(
        f"concurrency lint clean: {scanned} "
        f"({len(edges)} static lock-order edge(s), no findings)"
    )
    return 0


def cmd_serve(args) -> int:
    from repro.serve.server import run_server

    return run_server(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=args.cache,
        memory_capacity=args.mem_capacity,
    )


def cmd_loadgen(args) -> int:
    import pathlib

    from repro.serve.loadgen import (
        render_cells,
        run_load,
        write_serving_table,
    )
    from repro.serve.store import atomic_write_json

    handle = None
    host, port = args.host, args.port
    if args.spawn:
        from repro.serve.server import ServerThread

        handle = ServerThread(
            workers=args.workers, cache_dir=args.cache
        ).start()
        host, port = handle.host, handle.port
        print(f"spawned server on {host}:{port}")
    elif port is None:
        print("error: --port is required without --spawn", file=sys.stderr)
        return 2
    try:
        cells = run_load(
            host, port, args.workloads, args.concurrency, args.requests
        )
    finally:
        if handle is not None:
            handle.stop()
    print(render_cells(cells))
    out_dir = pathlib.Path(args.out)
    json_path, csv_path = write_serving_table(
        cells,
        out_dir,
        stem=args.stem,
        meta={
            "requests_per_cell": args.requests,
            "workloads": list(args.workloads),
            "concurrency": list(args.concurrency),
            "spawned": bool(args.spawn),
        },
    )
    bench_path = out_dir / f"BENCH_{args.label}.json"
    atomic_write_json(
        bench_path,
        {
            "schema_version": 1,
            "label": args.label,
            "cells": [cell.row() for cell in cells],
        },
    )
    print(f"serving table: {json_path}")
    print(f"serving csv:   {csv_path}")
    print(f"bench:         {bench_path}")
    failed = [cell for cell in cells if cell.failure_rate > 0]
    if failed:
        for cell in failed:
            print(
                f"error: {cell.workload} x{cell.concurrency}: "
                f"failure_rate={cell.failure_rate:.3f} "
                f"({'; '.join(cell.errors[:3])})",
                file=sys.stderr,
            )
        return 1
    return 0


def cmd_noise_sweep(args) -> int:
    import pathlib

    from repro import eval as evaluation

    benchmarks = [(name, args.qubits) for name in args.benchmarks]
    out_dir = pathlib.Path(args.out)
    records = evaluation.run_noise_sweep(
        benchmarks=benchmarks,
        fusion_success=args.fusion_success,
        cycle_loss=args.cycle_loss,
        resource_states=args.resource_state,
        shots=args.shots,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=pathlib.Path(args.cache) if args.cache else None,
        out_dir=out_dir,
        stem=args.stem,
        label=args.label,
        mc_engine=args.mc_engine,
    )
    print(evaluation.render_run_records(records))
    print(f"run table: {out_dir / (args.stem + '.json')}")
    print(f"sweep:     {out_dir / ('BENCH_' + args.label + '.json')}")
    return 0


def cmd_degrade_sweep(args) -> int:
    import pathlib

    from repro import eval as evaluation

    if args.quick:
        benchmarks = [("BV", 8)]
        severities = [0.0, 0.1, 0.3]
        shots = 0
    else:
        benchmarks = [(name, args.qubits) for name in args.benchmarks]
        severities = args.severities
        shots = args.shots
    out_dir = pathlib.Path(args.out)
    records = evaluation.run_degrade_sweep(
        benchmarks=benchmarks,
        scenarios=args.scenarios,
        severities=severities,
        policies=args.policies,
        shots=shots,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=pathlib.Path(args.cache) if args.cache else None,
        out_dir=out_dir,
        stem=args.stem,
        label=args.label,
    )
    print(evaluation.render_survival_table(records))
    print(f"run table: {out_dir / (args.stem + '.json')}")
    print(f"survival:  {out_dir / ('BENCH_' + args.label + '.json')}")
    status = 0
    if args.check_recovery:
        failures = evaluation.check_recovery(records)
        for failure in failures:
            print(f"error: recovery gate: {failure}", file=sys.stderr)
        if failures:
            status = 1
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OneQ photonic one-way compilation framework (ISCA'23 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for cmd in ("compile", "baseline", "export", "lint"):
        p = sub.add_parser(
            cmd,
            help=(
                "statically lint the compiled measurement pattern "
                "(structural checks + flow determinism certificate); "
                "exit 1 on any error"
                if cmd == "lint" else None
            ),
        )
        p.add_argument("--benchmark", default="QFT", help="QFT|QAOA|RCA|BV")
        p.add_argument("--qubits", type=int, default=16)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--qasm", help="compile a QASM file instead")
        if cmd == "lint":
            _add_hardware_args(p)
            p.add_argument(
                "--frame", action="store_true",
                help="also compile and lint the bit-packed frame program "
                "(Clifford patterns only)",
            )
            p.add_argument(
                "--compile", action="store_true",
                help="also run the OneQ compiler and lint the compiled "
                "program's photon/fusion budgets and hardware mapping",
            )
            p.add_argument(
                "--concurrency", action="store_true",
                help="lint the repo's own source for concurrency defects "
                "(lock discipline, async blocking, lock-order cycles, "
                "resource leaks) instead of linting a circuit",
            )
            p.add_argument(
                "paths", nargs="*", default=[],
                help="files/dirs for --concurrency (default: the "
                "installed repro package)",
            )
        elif cmd == "compile":
            _add_hardware_args(p)
            p.add_argument(
                "--layout", type=int, default=0,
                help="print the first N layer layouts",
            )
        elif cmd == "baseline":
            p.add_argument(
                "--resource-state", default="3-line",
                choices=["3-line", "4-line", "4-star", "4-ring"],
            )
        else:
            p.add_argument("--output", help="write QASM here")

    for which in (
        "table1", "table2", "fig12", "fig13", "fig14", "fig15", "ablation",
    ):
        p = sub.add_parser(which)
        p.add_argument("--qubits", type=int, default=16)
        # only offer --quick where it actually changes the run: table1
        # is already cheap, fig14/ablation run a single benchmark
        if which == "table2":
            p.add_argument(
                "--quick", action="store_true", help="16-qubit rows only"
            )
        elif which in ("fig12", "fig13", "fig15"):
            p.add_argument(
                "--quick", action="store_true", help="QFT+BV benchmarks only"
            )

    p = sub.add_parser(
        "bench", help="batch-compile the Table-2 grid, persist run table"
    )
    p.add_argument("--jobs", type=int, default=None, help="worker processes")
    p.add_argument(
        "--out", default="benchmarks/results", help="artifact directory"
    )
    p.add_argument("--cache", default=None, help="on-disk result cache dir")
    p.add_argument("--stem", default="run_table", help="artifact file stem")
    p.add_argument("--label", default="run", help="BENCH_<label>.json name")
    p.add_argument(
        "--reference", default=None,
        help="earlier BENCH_*.json to compute speedups against",
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--resource-state", default="3-line",
        choices=["3-line", "4-line", "4-star", "4-ring"],
    )
    p.add_argument("--quick", action="store_true", help="16-qubit rows only")
    p.add_argument(
        "--verify", action="store_true",
        help="semantically verify each compiled pattern against its "
        "circuit (stabilizer engine for Clifford patterns, dense "
        "simulator for small ones)",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="print the per-stage (translate/schedule/partition/map/"
        "shuffle/verify) timing breakdown",
    )

    p = sub.add_parser(
        "serve",
        help="run the compile server: accepts circuits (library spec or "
        "QASM) over a length-prefixed JSON socket protocol, compiles on "
        "a worker process pool, caches artifacts in a two-tier "
        "(memory LRU + disk) store",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=7711,
        help="TCP port (0 binds an ephemeral port)",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="compile worker processes (default: min(4, cpu_count))",
    )
    p.add_argument("--cache", default=None, help="artifact store disk dir")
    p.add_argument(
        "--mem-capacity", type=int, default=256,
        help="in-memory LRU tier capacity (artifacts)",
    )

    p = sub.add_parser(
        "loadgen",
        help="drive a compile server with (workload x concurrency) "
        "closed-loop load cells and persist the serving table "
        "(throughput_rps / avg / p95 latency / failure_rate / "
        "cache_hit_rate per cell); exit 1 when any cell records "
        "failures",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=None,
        help="server port (required unless --spawn)",
    )
    p.add_argument(
        "--spawn", action="store_true",
        help="host a throwaway in-process server on an ephemeral port "
        "for the duration of the run",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for the spawned server",
    )
    p.add_argument(
        "--cache", default=None, help="cache dir for the spawned server"
    )
    p.add_argument(
        "--workloads", nargs="+",
        default=["hot-qft16", "mixed-16"],
        choices=["hot-qft16", "mixed-16", "cold-seeds", "qasm-bv12"],
        help="workload generators to sweep",
    )
    p.add_argument(
        "--concurrency", type=int, nargs="+", default=[1, 4],
        help="closed-loop client counts to sweep",
    )
    p.add_argument(
        "--requests", type=int, default=50,
        help="measured requests per cell",
    )
    p.add_argument(
        "--out", default="benchmarks/results", help="artifact directory"
    )
    p.add_argument("--stem", default="serving_table", help="table file stem")
    p.add_argument(
        "--label", default="serving", help="BENCH_<label>.json name"
    )

    p = sub.add_parser(
        "noise-sweep",
        help="Monte-Carlo yield sweep across noise and hardware "
        "coordinates (Clifford benchmarks sample on the stabilizer "
        "engine; others report the analytic yield only)",
    )
    p.add_argument(
        "--benchmarks", nargs="+", default=["QFT", "QAOA", "RCA", "BV"],
        help="benchmark names to sweep (QFT|QAOA|RCA|BV)",
    )
    p.add_argument("--qubits", type=int, default=16)
    p.add_argument(
        "--shots", type=int, default=2000,
        help="Monte-Carlo shots per noise point (>=2000 recommended)",
    )
    p.add_argument(
        "--fusion-success", type=float, nargs="+", default=[0.5, 0.75],
        help="fusion success probabilities to sweep (0.5 bare, "
        "0.75 boosted)",
    )
    p.add_argument(
        "--cycle-loss", type=float, nargs="+", default=[0.001, 0.01],
        help="per-photon per-clock-cycle delay-line loss probabilities",
    )
    p.add_argument(
        "--resource-state", nargs="+", default=["3-line"],
        choices=["3-line", "4-line", "4-star", "4-ring"],
        help="resource-state types to sweep",
    )
    p.add_argument("--jobs", type=int, default=None, help="worker processes")
    p.add_argument(
        "--out", default="benchmarks/results", help="artifact directory"
    )
    p.add_argument("--cache", default=None, help="on-disk result cache dir")
    p.add_argument("--stem", default="noise_sweep", help="run-table stem")
    p.add_argument(
        "--label", default="noise_sweep", help="BENCH_<label>.json name"
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--mc-engine", default=MC_ENGINES[0], choices=list(MC_ENGINES),
        help="Monte-Carlo execution path: 'frame' (default) propagates "
        "bit-packed Pauli flip frames (per-shot cost independent of "
        "qubit count), 'batched' runs chunked shared-symplectic "
        "tableaus, 'per-shot' is the original reference engine — all "
        "three produce bit-identical tallies, each ~10x+ slower than "
        "the previous",
    )

    p = sub.add_parser(
        "degrade-sweep",
        help="hardware-degradation survival sweep: per-site noise "
        "scenarios (dead generators, loss gradients/hotspots, detuned "
        "fusion) x recovery policies (survive/reroute/recompile); "
        "writes run-table + BENCH_degradation.json survival artifacts",
    )
    p.add_argument(
        "--benchmarks", nargs="+", default=["BV", "QFT"],
        help="benchmark names to sweep (QFT|QAOA|RCA|BV)",
    )
    p.add_argument("--qubits", type=int, default=8)
    p.add_argument(
        "--scenarios", nargs="+",
        default=["dead-rsg", "loss-gradient", "loss-hotspot",
                 "degraded-fusion"],
        choices=["dead-rsg", "loss-gradient", "loss-hotspot",
                 "degraded-fusion"],
        help="degradation scenarios to sweep",
    )
    p.add_argument(
        "--severities", type=float, nargs="+",
        default=[0.0, 0.05, 0.1, 0.2, 0.3],
        help="scenario severities in [0, 1] (0 = pristine control row)",
    )
    p.add_argument(
        "--policies", nargs="+",
        default=["survive", "reroute", "recompile"],
        choices=["survive", "reroute", "recompile", "auto"],
        help="recovery policies to evaluate per scenario point "
        "('auto' walks the ladder and records the winner)",
    )
    p.add_argument(
        "--shots", type=int, default=0,
        help="Monte-Carlo shots sampling the recovered program under "
        "the per-site map (0 = analytic-only; Clifford benchmarks "
        "only)",
    )
    p.add_argument("--jobs", type=int, default=None, help="worker processes")
    p.add_argument(
        "--out", default="benchmarks/results", help="artifact directory"
    )
    p.add_argument("--cache", default=None, help="on-disk result cache dir")
    p.add_argument("--stem", default="degrade_sweep", help="run-table stem")
    p.add_argument(
        "--label", default="degradation", help="BENCH_<label>.json name"
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--quick", action="store_true",
        help="CI smoke grid: BV-8, severities 0/0.1/0.3, no shots",
    )
    p.add_argument(
        "--check-recovery", action="store_true",
        help="exit 1 unless the sweep shows survive collapsing and "
        "both reroute and recompile rescuing at least one scenario, "
        "with every severity-0 row recovered",
    )

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "compile":
        return cmd_compile(args)
    if args.command == "baseline":
        return cmd_baseline(args)
    if args.command == "export":
        return cmd_export(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "noise-sweep":
        return cmd_noise_sweep(args)
    if args.command == "degrade-sweep":
        return cmd_degrade_sweep(args)
    if args.command == "lint":
        return cmd_lint(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "loadgen":
        return cmd_loadgen(args)
    return cmd_table(args, args.command)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
