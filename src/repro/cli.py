"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``compile``  — compile a benchmark (or QASM file) with OneQ and print
  metrics and optionally the layer layouts;
* ``baseline`` — run the baseline cluster-state interpreter;
* ``table1`` / ``table2`` / ``fig12`` / ``fig13`` / ``fig15`` — regenerate
  the paper's tables and figures;
* ``export``   — emit a benchmark circuit as OpenQASM 2.0.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.baseline import compile_baseline, physical_side
from repro.circuit import get_benchmark
from repro.circuit.qasm import from_qasm, to_qasm
from repro.core import OneQCompiler, OneQConfig, render_program
from repro.hardware import HardwareConfig, get_resource_state


def _add_hardware_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rows", type=int, default=None, help="RSG rows")
    parser.add_argument("--cols", type=int, default=None, help="RSG cols")
    parser.add_argument(
        "--resource-state",
        default="3-line",
        choices=["3-line", "4-line", "4-star", "4-ring"],
    )
    parser.add_argument("--extension", type=int, default=1)
    parser.add_argument("--max-delay", type=int, default=2)


def _load_circuit(args) -> tuple:
    if args.qasm:
        with open(args.qasm) as handle:
            return from_qasm(handle.read()), args.qasm
    circuit = get_benchmark(args.benchmark, args.qubits, seed=args.seed)
    return circuit, f"{args.benchmark}-{args.qubits}"


def _hardware_from(args, num_qubits: int) -> HardwareConfig:
    rst = get_resource_state(args.resource_state)
    rows = args.rows
    cols = args.cols
    if rows is None and cols is None:
        side = physical_side(num_qubits, rst)
        rows = cols = side
    elif rows is None or cols is None:
        rows = cols = rows or cols
    return HardwareConfig(
        rows=rows,
        cols=cols,
        resource_state=rst,
        extension=args.extension,
        max_delay=args.max_delay,
    )


def cmd_compile(args) -> int:
    circuit, name = _load_circuit(args)
    hardware = _hardware_from(args, circuit.num_qubits)
    compiler = OneQCompiler(OneQConfig(hardware=hardware))
    program = compiler.compile(circuit, name=name)
    if args.layout:
        print(render_program(program, max_layers=args.layout))
    else:
        print(program.summary())
    return 0


def cmd_baseline(args) -> int:
    circuit, name = _load_circuit(args)
    result = compile_baseline(
        circuit, name=name, resource_state=get_resource_state(args.resource_state)
    )
    print(
        f"{name}: depth={result.depth} fusions={result.num_fusions:,} "
        f"cluster={result.areas.cluster_side}x{result.areas.cluster_side} "
        f"physical={result.areas.physical_side}x{result.areas.physical_side} "
        f"swaps={result.swap_count}"
    )
    return 0


def cmd_export(args) -> int:
    circuit, _ = _load_circuit(args)
    text = to_qasm(circuit)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
    else:
        print(text, end="")
    return 0


def cmd_table(args, which: str) -> int:
    from repro import eval as evaluation

    if which == "table1":
        print(evaluation.render_table1(evaluation.run_table1()))
    elif which == "table2":
        benchmarks = None
        if args.quick:
            benchmarks = [("QFT", 16), ("QAOA", 16), ("RCA", 16), ("BV", 16)]
        print(evaluation.render_table2(evaluation.run_table2(benchmarks)))
    elif which == "fig12":
        print(evaluation.render_fig12(evaluation.run_fig12(num_qubits=args.qubits)))
    elif which == "fig13":
        print(evaluation.render_fig13(evaluation.run_fig13(num_qubits=args.qubits)))
    elif which == "fig15":
        print(evaluation.render_fig15(evaluation.run_fig15(num_qubits=args.qubits)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OneQ photonic one-way compilation framework (ISCA'23 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for cmd in ("compile", "baseline", "export"):
        p = sub.add_parser(cmd)
        p.add_argument("--benchmark", default="QFT", help="QFT|QAOA|RCA|BV")
        p.add_argument("--qubits", type=int, default=16)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--qasm", help="compile a QASM file instead")
        if cmd == "compile":
            _add_hardware_args(p)
            p.add_argument(
                "--layout", type=int, default=0,
                help="print the first N layer layouts",
            )
        elif cmd == "baseline":
            p.add_argument(
                "--resource-state", default="3-line",
                choices=["3-line", "4-line", "4-star", "4-ring"],
            )
        else:
            p.add_argument("--output", help="write QASM here")

    for which in ("table1", "table2", "fig12", "fig13", "fig15"):
        p = sub.add_parser(which)
        p.add_argument("--qubits", type=int, default=16)
        p.add_argument("--quick", action="store_true", help="16-qubit rows only")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "compile":
        return cmd_compile(args)
    if args.command == "baseline":
        return cmd_baseline(args)
    if args.command == "export":
        return cmd_export(args)
    return cmd_table(args, args.command)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
