"""Benchmark circuit generators used in the paper's evaluation (Sec. 7.1).

The paper evaluates four programs: Quantum Fourier Transform (QFT), QAOA
for MaxCut on random graphs, the Cuccaro ripple-carry adder (RCA) and
Bernstein-Vazirani (BV).  All generators are deterministic given their
``seed`` so experiments are reproducible.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from repro.circuit.circuit import Circuit

_PI = math.pi


def qft(num_qubits: int, include_swaps: bool = True) -> Circuit:
    """Quantum Fourier Transform on *num_qubits* qubits.

    Uses the textbook H + controlled-phase ladder; ``include_swaps``
    appends the final bit-reversal SWAP network (the paper's benchmark
    uses the full QFT).
    """
    circuit = Circuit(num_qubits)
    for i in range(num_qubits):
        circuit.h(i)
        for j in range(i + 1, num_qubits):
            circuit.cp(_PI / 2 ** (j - i), j, i)
    if include_swaps:
        for i in range(num_qubits // 2):
            circuit.swap(i, num_qubits - 1 - i)
    return circuit


def random_maxcut_edges(
    num_qubits: int, seed: int = 7
) -> List[Tuple[int, int]]:
    """Random graph with half of all possible edges, as in the paper."""
    rng = random.Random(seed)
    all_edges = [
        (i, j) for i in range(num_qubits) for j in range(i + 1, num_qubits)
    ]
    rng.shuffle(all_edges)
    keep = len(all_edges) // 2
    return sorted(all_edges[:keep])


def qaoa_maxcut(
    num_qubits: int,
    rounds: int = 1,
    seed: int = 7,
    edges: Optional[Sequence[Tuple[int, int]]] = None,
) -> Circuit:
    """QAOA MaxCut ansatz on a random graph.

    Each round applies ``exp(-i*gamma*Z_i Z_j)`` per edge (via CX-RZ-CX)
    followed by ``RX(2*beta)`` mixers. Angles are drawn deterministically
    from ``seed``.
    """
    if edges is None:
        edges = random_maxcut_edges(num_qubits, seed=seed)
    rng = random.Random(seed + 1)
    circuit = Circuit(num_qubits)
    for q in range(num_qubits):
        circuit.h(q)
    for _ in range(rounds):
        gamma = rng.uniform(0.1, _PI - 0.1)
        beta = rng.uniform(0.1, _PI / 2 - 0.1)
        for (i, j) in edges:
            circuit.cx(i, j)
            circuit.rz(2.0 * gamma, j)
            circuit.cx(i, j)
        for q in range(num_qubits):
            circuit.rx(2.0 * beta, q)
    return circuit


def _maj(circuit: Circuit, c: int, b: int, a: int) -> None:
    circuit.cx(a, b)
    circuit.cx(a, c)
    circuit.ccx(c, b, a)


def _uma(circuit: Circuit, c: int, b: int, a: int) -> None:
    circuit.ccx(c, b, a)
    circuit.cx(a, c)
    circuit.cx(c, b)


def ripple_carry_adder(num_qubits: int) -> Circuit:
    """Cuccaro ripple-carry adder sized to *num_qubits* total qubits.

    The adder proper needs ``2n + 2`` qubits (carry-in, two n-bit
    registers, carry-out); we use the largest ``n`` fitting in
    ``num_qubits`` and leave any remainder idle, matching how the paper
    reports RCA-16/25/36 by total qubit count.

    Qubit layout: ``cin = 0``, then interleaved ``b_i, a_i`` pairs, then
    the carry-out ``z = 2n + 1``.
    """
    n = (num_qubits - 2) // 2
    if n < 1:
        raise ValueError("ripple_carry_adder needs at least 4 qubits")
    circuit = Circuit(num_qubits)
    cin = 0
    b = [1 + 2 * i for i in range(n)]
    a = [2 + 2 * i for i in range(n)]
    z = 2 * n + 1

    _maj(circuit, cin, b[0], a[0])
    for i in range(1, n):
        _maj(circuit, a[i - 1], b[i], a[i])
    circuit.cx(a[n - 1], z)
    for i in range(n - 1, 0, -1):
        _uma(circuit, a[i - 1], b[i], a[i])
    _uma(circuit, cin, b[0], a[0])
    return circuit


def random_secret_string(num_bits: int, seed: int = 7) -> str:
    """Secret string with roughly half ones, as in the paper's setup."""
    rng = random.Random(seed)
    ones = num_bits // 2
    bits = ["1"] * ones + ["0"] * (num_bits - ones)
    rng.shuffle(bits)
    return "".join(bits)


def bernstein_vazirani(
    num_qubits: int, secret: Optional[str] = None, seed: int = 7
) -> Circuit:
    """Bernstein-Vazirani on *num_qubits* qubits (inputs + one ancilla).

    ``secret`` has ``num_qubits - 1`` bits; if omitted a random string
    with half ones is drawn from ``seed``.
    """
    num_inputs = num_qubits - 1
    if secret is None:
        secret = random_secret_string(num_inputs, seed=seed)
    if len(secret) != num_inputs:
        raise ValueError(
            f"secret must have {num_inputs} bits, got {len(secret)}"
        )
    ancilla = num_qubits - 1
    circuit = Circuit(num_qubits)
    circuit.x(ancilla)
    for q in range(num_qubits):
        circuit.h(q)
    for q, bit in enumerate(secret):
        if bit == "1":
            circuit.cx(q, ancilla)
    for q in range(num_inputs):
        circuit.h(q)
    return circuit


#: Registry used by the evaluation harness (name -> generator).
BENCHMARKS = {
    "QFT": qft,
    "QAOA": qaoa_maxcut,
    "RCA": ripple_carry_adder,
    "BV": bernstein_vazirani,
}


def get_benchmark(name: str, num_qubits: int, seed: int = 7) -> Circuit:
    """Build a named paper benchmark at a given size."""
    name = name.upper()
    if name == "QFT":
        return qft(num_qubits)
    if name == "QAOA":
        return qaoa_maxcut(num_qubits, seed=seed)
    if name == "RCA":
        return ripple_carry_adder(num_qubits)
    if name == "BV":
        return bernstein_vazirani(num_qubits, seed=seed)
    raise ValueError(f"unknown benchmark {name!r}")
