"""Circuit IR: gates, circuits, lowering passes and paper benchmarks."""

from repro.circuit.benchmarks import (
    BENCHMARKS,
    bernstein_vazirani,
    get_benchmark,
    qaoa_maxcut,
    qft,
    random_maxcut_edges,
    random_secret_string,
    ripple_carry_adder,
)
from repro.circuit.circuit import Circuit
from repro.circuit.gates import CLIFFORD_1Q, GATE_SIGNATURES, Gate
from repro.circuit.library import simplify_basic, to_basic, to_jcz
from repro.circuit.qasm import from_qasm, to_qasm

__all__ = [
    "BENCHMARKS",
    "CLIFFORD_1Q",
    "Circuit",
    "GATE_SIGNATURES",
    "Gate",
    "bernstein_vazirani",
    "from_qasm",
    "get_benchmark",
    "qaoa_maxcut",
    "qft",
    "random_maxcut_edges",
    "random_secret_string",
    "ripple_carry_adder",
    "simplify_basic",
    "to_basic",
    "to_jcz",
    "to_qasm",
]
