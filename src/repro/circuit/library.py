"""Gate-set lowering passes.

Two target gate sets matter in this project:

* the *basic* set ``{h, rz, rx, cz}`` — convenient for simulation and for
  the baseline cluster-state interpreter;
* the *MBQC-native* set ``{J(alpha), CZ}`` — the universal set the paper's
  translation to measurement patterns is defined on, where
  ``J(alpha) = H @ Rz(alpha)``.

Both passes are purely structural; a statevector equivalence test pins the
conventions (see ``tests/circuit/test_library.py``).
"""

from __future__ import annotations

import math
from typing import List

from repro.circuit.circuit import Circuit
from repro.circuit.gates import Gate
from repro.utils.angles import ANGLE_ATOL, normalize_angle

_PI = math.pi


def _lower_to_basic(gate: Gate) -> List[Gate]:
    """Lower a single gate to the ``{h, rz, rx, cz}`` set (program order)."""
    name = gate.name
    qs = gate.qubits
    if name in ("h", "rz", "rx", "cz"):
        return [gate]
    if name == "i":
        return []
    if name == "x":
        return [Gate("rx", qs, (_PI,))]
    if name == "y":
        # Y = i·X·Z: apply Z first, then X (global phase dropped).
        return [Gate("rz", qs, (_PI,)), Gate("rx", qs, (_PI,))]
    if name == "z":
        return [Gate("rz", qs, (_PI,))]
    if name == "s":
        return [Gate("rz", qs, (_PI / 2,))]
    if name == "sdg":
        return [Gate("rz", qs, (-_PI / 2,))]
    if name == "t":
        return [Gate("rz", qs, (_PI / 4,))]
    if name == "tdg":
        return [Gate("rz", qs, (-_PI / 4,))]
    if name == "sx":
        return [Gate("rx", qs, (_PI / 2,))]
    if name == "p":
        return [Gate("rz", qs, gate.params)]
    if name == "ry":
        # Ry(t) = Rz(pi/2) @ Rx(t) @ Rz(-pi/2)   (rightmost applied first)
        theta = gate.params[0]
        return [
            Gate("rz", qs, (-_PI / 2,)),
            Gate("rx", qs, (theta,)),
            Gate("rz", qs, (_PI / 2,)),
        ]
    if name == "j":
        # J(alpha) = H @ Rz(alpha): apply Rz first, then H.
        return [Gate("rz", qs, gate.params), Gate("h", qs)]
    if name == "cx":
        control, target = qs
        return [
            Gate("h", (target,)),
            Gate("cz", (control, target)),
            Gate("h", (target,)),
        ]
    if name == "cp":
        theta = gate.params[0]
        a, b = qs
        steps = [
            Gate("p", (a,), (theta / 2,)),
            Gate("cx", (a, b)),
            Gate("p", (b,), (-theta / 2,)),
            Gate("cx", (a, b)),
            Gate("p", (b,), (theta / 2,)),
        ]
        return [g for step in steps for g in _lower_to_basic(step)]
    if name == "swap":
        a, b = qs
        steps = [Gate("cx", (a, b)), Gate("cx", (b, a)), Gate("cx", (a, b))]
        return [g for step in steps for g in _lower_to_basic(step)]
    if name == "ccx":
        c1, c2, t = qs
        steps = [
            Gate("h", (t,)),
            Gate("cx", (c2, t)),
            Gate("tdg", (t,)),
            Gate("cx", (c1, t)),
            Gate("t", (t,)),
            Gate("cx", (c2, t)),
            Gate("tdg", (t,)),
            Gate("cx", (c1, t)),
            Gate("t", (c2,)),
            Gate("t", (t,)),
            Gate("h", (t,)),
            Gate("cx", (c1, c2)),
            Gate("t", (c1,)),
            Gate("tdg", (c2,)),
            Gate("cx", (c1, c2)),
        ]
        return [g for step in steps for g in _lower_to_basic(step)]
    raise ValueError(f"cannot lower gate {gate}")  # pragma: no cover


def to_basic(circuit: Circuit) -> Circuit:
    """Lower *circuit* to the ``{h, rz, rx, cz}`` gate set."""
    out = Circuit(circuit.num_qubits)
    for gate in circuit:
        for lowered in _lower_to_basic(gate):
            out.append(lowered)
    return out


def _is_zero_angle(theta: float) -> bool:
    return abs(normalize_angle(theta)) < ANGLE_ATOL


def simplify_basic(circuit: Circuit) -> Circuit:
    """Peephole simplification on a basic-set circuit.

    Rules (applied to fixpoint):
    * adjacent ``rz``/``rz`` (or ``rx``/``rx``) on the same wire merge;
    * ``rz(0)`` and ``rx(0)`` are dropped;
    * adjacent ``h h`` on the same wire cancel.

    "Adjacent" means no intervening gate touches the wire.
    """
    gates = list(circuit.gates)
    changed = True
    while changed:
        changed = False
        out: List[Gate] = []
        last_on_wire: dict = {}
        for gate in gates:
            if gate.arity == 1:
                q = gate.qubits[0]
                if gate.name in ("rz", "rx") and _is_zero_angle(gate.params[0]):
                    changed = True
                    continue
                prev_idx = last_on_wire.get(q)
                prev = out[prev_idx] if prev_idx is not None else None
                if prev is not None and prev.qubits == gate.qubits:
                    if prev.name == gate.name and gate.name in ("rz", "rx"):
                        merged = normalize_angle(prev.params[0] + gate.params[0])
                        out.pop(prev_idx)
                        _reindex(last_on_wire, prev_idx)
                        last_on_wire.pop(q, None)
                        changed = True
                        if not _is_zero_angle(merged):
                            out.append(Gate(gate.name, gate.qubits, (merged,)))
                            last_on_wire[q] = len(out) - 1
                        continue
                    if prev.name == "h" and gate.name == "h":
                        out.pop(prev_idx)
                        _reindex(last_on_wire, prev_idx)
                        last_on_wire.pop(q, None)
                        changed = True
                        continue
                out.append(gate)
                last_on_wire[q] = len(out) - 1
            else:
                out.append(gate)
                for q in gate.qubits:
                    last_on_wire[q] = len(out) - 1
        gates = out
    return Circuit(circuit.num_qubits, gates)


def _reindex(last_on_wire: dict, removed_idx: int) -> None:
    """Shift wire->index bookkeeping after removing position *removed_idx*."""
    for wire, idx in list(last_on_wire.items()):
        if idx > removed_idx:
            last_on_wire[wire] = idx - 1
        elif idx == removed_idx:
            del last_on_wire[wire]


def to_jcz(circuit: Circuit, simplify: bool = True) -> Circuit:
    """Lower *circuit* to the MBQC-native ``{j, cz}`` gate set.

    With ``simplify=True`` (default) the basic-set circuit is peephole
    simplified first and trailing/leading trivial ``J(0)`` pairs produced
    by ``h h`` are already gone; the only remaining rule applied at the
    ``{j, cz}`` level is ``J(0) J(0) = I`` cancellation.
    """
    basic = to_basic(circuit)
    if simplify:
        basic = simplify_basic(basic)
    out: List[Gate] = []
    for gate in basic:
        if gate.name == "cz":
            out.append(gate)
        elif gate.name == "h":
            out.append(Gate("j", gate.qubits, (0.0,)))
        elif gate.name == "rz":
            # Rz(t) = J(0) @ J(t): apply J(t) first.
            out.append(Gate("j", gate.qubits, (normalize_angle(gate.params[0]),)))
            out.append(Gate("j", gate.qubits, (0.0,)))
        elif gate.name == "rx":
            # Rx(t) = J(t) @ J(0): apply J(0) first.
            out.append(Gate("j", gate.qubits, (0.0,)))
            out.append(Gate("j", gate.qubits, (normalize_angle(gate.params[0]),)))
        else:  # pragma: no cover - to_basic guarantees the set above
            raise ValueError(f"unexpected basic gate {gate}")
    if simplify:
        out = _cancel_j0_pairs(out)
    return Circuit(circuit.num_qubits, out)


def _cancel_j0_pairs(gates: List[Gate]) -> List[Gate]:
    """Cancel adjacent ``J(0) J(0)`` pairs on the same wire (fixpoint)."""
    changed = True
    while changed:
        changed = False
        out: List[Gate] = []
        last_on_wire: dict = {}
        for gate in gates:
            if gate.name == "j" and _is_zero_angle(gate.params[0]):
                q = gate.qubits[0]
                prev_idx = last_on_wire.get(q)
                prev = out[prev_idx] if prev_idx is not None else None
                if (
                    prev is not None
                    and prev.name == "j"
                    and prev.qubits == gate.qubits
                    and _is_zero_angle(prev.params[0])
                ):
                    out.pop(prev_idx)
                    _reindex(last_on_wire, prev_idx)
                    changed = True
                    continue
            out.append(gate)
            for q in gate.qubits:
                last_on_wire[q] = len(out) - 1
        gates = out
    return gates
