"""The :class:`Circuit` container used throughout the compiler."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.circuit.gates import Gate


class Circuit:
    """An ordered list of gates on ``num_qubits`` wires.

    The class is intentionally thin: it stores gates in program order and
    offers the structural queries the compiler needs (depth, moments,
    two-qubit interaction list).  Gate-set lowering lives in
    :mod:`repro.circuit.library`.
    """

    def __init__(self, num_qubits: int, gates: Optional[Iterable[Gate]] = None):
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        self.num_qubits = num_qubits
        self._gates: List[Gate] = []
        if gates is not None:
            for gate in gates:
                self.append(gate)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> "Circuit":
        """Append *gate*, validating its qubits fit this circuit."""
        if max(gate.qubits) >= self.num_qubits:
            raise ValueError(
                f"gate {gate} outside circuit with {self.num_qubits} qubits"
            )
        self._gates.append(gate)
        return self

    def add(self, name: str, *qubits: int, params: Tuple[float, ...] = ()) -> "Circuit":
        """Convenience: build and append a gate in one call."""
        return self.append(Gate(name, tuple(qubits), tuple(params)))

    # one-liners for the common gates -----------------------------------
    def i(self, q: int) -> "Circuit":
        return self.add("i", q)

    def x(self, q: int) -> "Circuit":
        return self.add("x", q)

    def y(self, q: int) -> "Circuit":
        return self.add("y", q)

    def z(self, q: int) -> "Circuit":
        return self.add("z", q)

    def h(self, q: int) -> "Circuit":
        return self.add("h", q)

    def s(self, q: int) -> "Circuit":
        return self.add("s", q)

    def sdg(self, q: int) -> "Circuit":
        return self.add("sdg", q)

    def t(self, q: int) -> "Circuit":
        return self.add("t", q)

    def tdg(self, q: int) -> "Circuit":
        return self.add("tdg", q)

    def rx(self, theta: float, q: int) -> "Circuit":
        return self.add("rx", q, params=(theta,))

    def ry(self, theta: float, q: int) -> "Circuit":
        return self.add("ry", q, params=(theta,))

    def rz(self, theta: float, q: int) -> "Circuit":
        return self.add("rz", q, params=(theta,))

    def p(self, theta: float, q: int) -> "Circuit":
        return self.add("p", q, params=(theta,))

    def j(self, alpha: float, q: int) -> "Circuit":
        return self.add("j", q, params=(alpha,))

    def cz(self, a: int, b: int) -> "Circuit":
        return self.add("cz", a, b)

    def cx(self, control: int, target: int) -> "Circuit":
        return self.add("cx", control, target)

    def cp(self, theta: float, a: int, b: int) -> "Circuit":
        return self.add("cp", a, b, params=(theta,))

    def swap(self, a: int, b: int) -> "Circuit":
        return self.add("swap", a, b)

    def ccx(self, c1: int, c2: int, target: int) -> "Circuit":
        return self.add("ccx", c1, c2, target)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def gates(self) -> Tuple[Gate, ...]:
        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return self.num_qubits == other.num_qubits and self._gates == other._gates

    def count_ops(self) -> Dict[str, int]:
        """Histogram of gate names, e.g. ``{'h': 4, 'cz': 2}``."""
        return dict(Counter(g.name for g in self._gates))

    def two_qubit_pairs(self) -> List[Tuple[int, int]]:
        """Ordered list of interacting qubit pairs (for mapping/routing)."""
        return [
            (g.qubits[0], g.qubits[1]) for g in self._gates if g.arity == 2
        ]

    def depth(self) -> int:
        """Standard circuit depth (longest chain of gates per wire)."""
        frontier = [0] * self.num_qubits
        for gate in self._gates:
            level = 1 + max(frontier[q] for q in gate.qubits)
            for q in gate.qubits:
                frontier[q] = level
        return max(frontier, default=0)

    def moments(self) -> List[List[Gate]]:
        """Greedy as-soon-as-possible schedule into parallel moments."""
        frontier = [0] * self.num_qubits
        layers: List[List[Gate]] = []
        for gate in self._gates:
            level = max(frontier[q] for q in gate.qubits)
            while len(layers) <= level:
                layers.append([])
            layers[level].append(gate)
            for q in gate.qubits:
                frontier[q] = level + 1
        return layers

    def copy(self) -> "Circuit":
        return Circuit(self.num_qubits, self._gates)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Circuit(num_qubits={self.num_qubits}, gates={len(self._gates)})"
