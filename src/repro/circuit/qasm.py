"""Minimal OpenQASM 2.0 interop for the circuit IR.

Supports the gate set this project uses; enough to exchange benchmark
circuits with Qiskit-era tooling.  The importer handles the subset the
exporter emits (one quantum register, no classical control).
"""

from __future__ import annotations

import math
import re
from typing import List

from repro.circuit.circuit import Circuit
from repro.circuit.gates import GATE_SIGNATURES, Gate

#: IR name -> QASM name (identical where omitted).
_TO_QASM = {
    "i": "id",
    "j": None,  # expanded to rz + h below
    # ``p`` is not in OpenQASM 2.0's qelib1.inc; ``u1`` is its exact
    # equivalent there and round-trips through _FROM_QASM
    "p": "u1",
}
_FROM_QASM = {
    "id": "i",
    "u1": "p",
}

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def to_qasm(circuit: Circuit, register: str = "q") -> str:
    """Serialize *circuit* as OpenQASM 2.0 text."""
    lines: List[str] = [_HEADER.rstrip(), f"qreg {register}[{circuit.num_qubits}];"]
    for gate in circuit:
        lines.append(_gate_to_qasm(gate, register))
    return "\n".join(lines) + "\n"


def _gate_to_qasm(gate: Gate, register: str) -> str:
    name = gate.name
    qubits = ",".join(f"{register}[{q}]" for q in gate.qubits)
    if name == "j":
        # J(a) = H Rz(a): two QASM statements
        alpha = gate.params[0]
        return (
            f"rz({_fmt(alpha)}) {register}[{gate.qubits[0]}];\n"
            f"h {register}[{gate.qubits[0]}];"
        )
    qasm_name = _TO_QASM.get(name, name)
    if gate.params:
        args = ",".join(_fmt(p) for p in gate.params)
        return f"{qasm_name}({args}) {qubits};"
    return f"{qasm_name} {qubits};"


def _fmt(value: float) -> str:
    """Render an angle, using pi fractions when exact."""
    for denom in (1, 2, 3, 4, 6, 8):
        for num in range(-8 * denom, 8 * denom + 1):
            if num == 0:
                continue
            if abs(value - num * math.pi / denom) < 1e-12:
                frac = f"pi/{denom}" if denom > 1 else "pi"
                if num == 1:
                    return frac
                if num == -1:
                    return f"-{frac}"
                return f"{num}*{frac}"
    if abs(value) < 1e-12:
        return "0"
    return repr(float(value))


_STMT = re.compile(
    r"^\s*(?P<name>[a-z][a-z0-9]*)\s*"
    r"(?:\((?P<params>[^)]*)\))?\s*"
    r"(?P<qubits>[^;]+);\s*$"
)
_QUBIT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*\[(\d+)\]$")


def _eval_angle(text: str) -> float:
    """Evaluate a QASM angle expression (numbers, pi, * / + -)."""
    cleaned = text.strip().replace("pi", repr(math.pi))
    if not re.fullmatch(r"[0-9eE\.\+\-\*/\s\(\)]+", cleaned):
        raise ValueError(f"unsupported angle expression: {text!r}")
    return float(eval(cleaned, {"__builtins__": {}}))  # noqa: S307 - sanitized

def from_qasm(text: str) -> Circuit:
    """Parse OpenQASM 2.0 text produced by :func:`to_qasm` (or similar)."""
    num_qubits = None
    gates: List[Gate] = []
    for raw in text.splitlines():
        line = raw.split("//")[0].strip()
        if not line:
            continue
        if line.startswith(("OPENQASM", "include")):
            continue
        if line.startswith("qreg"):
            match = re.match(r"qreg\s+\w+\[(\d+)\];", line)
            if not match:
                raise ValueError(f"cannot parse qreg: {line!r}")
            if num_qubits is not None:
                raise ValueError("only one quantum register is supported")
            num_qubits = int(match.group(1))
            continue
        if line.startswith(("creg", "barrier", "measure")):
            continue
        match = _STMT.match(line)
        if not match:
            raise ValueError(f"cannot parse statement: {line!r}")
        name = _FROM_QASM.get(match.group("name"), match.group("name"))
        if name not in GATE_SIGNATURES:
            raise ValueError(f"unsupported gate {name!r} in {line!r}")
        params = ()
        if match.group("params"):
            params = tuple(
                _eval_angle(p) for p in match.group("params").split(",")
            )
        qubits = []
        for token in match.group("qubits").split(","):
            qmatch = _QUBIT.match(token.strip())
            if not qmatch:
                raise ValueError(f"cannot parse qubit ref {token!r}")
            qubits.append(int(qmatch.group(1)))
        gates.append(Gate(name, tuple(qubits), params))
    if num_qubits is None:
        raise ValueError("no qreg declaration found")
    return Circuit(num_qubits, gates)
