"""Gate data model for the circuit IR.

A :class:`Gate` is an immutable record of a named operation applied to an
ordered tuple of qubit indices, with an optional tuple of real parameters.
The set of recognised names is deliberately small and closed — the rest of
the stack (decomposition, simulation, MBQC translation) dispatches on the
name, and an unknown name is a programming error we want to surface early.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Gate names accepted by the IR, mapped to their expected (arity, #params).
GATE_SIGNATURES = {
    "i": (1, 0),
    "x": (1, 0),
    "y": (1, 0),
    "z": (1, 0),
    "h": (1, 0),
    "s": (1, 0),
    "sdg": (1, 0),
    "t": (1, 0),
    "tdg": (1, 0),
    "sx": (1, 0),
    "rx": (1, 1),
    "ry": (1, 1),
    "rz": (1, 1),
    "p": (1, 1),
    "j": (1, 1),
    "cz": (2, 0),
    "cx": (2, 0),
    "cp": (2, 1),
    "swap": (2, 0),
    "ccx": (3, 0),
}

#: Names of 1-qubit gates that are Clifford regardless of parameters.
CLIFFORD_1Q = frozenset({"i", "x", "y", "z", "h", "s", "sdg", "sx"})


@dataclass(frozen=True)
class Gate:
    """A single quantum operation.

    Attributes:
        name: lower-case gate name, one of :data:`GATE_SIGNATURES`.
        qubits: ordered qubit indices the gate acts on.
        params: real-valued parameters (rotation angles in radians).
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.name not in GATE_SIGNATURES:
            raise ValueError(f"unknown gate name: {self.name!r}")
        arity, n_params = GATE_SIGNATURES[self.name]
        if len(self.qubits) != arity:
            raise ValueError(
                f"gate {self.name!r} expects {arity} qubits, got {self.qubits!r}"
            )
        if len(self.params) != n_params:
            raise ValueError(
                f"gate {self.name!r} expects {n_params} params, got {self.params!r}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"gate {self.name!r} has duplicate qubits {self.qubits!r}")
        if any(q < 0 for q in self.qubits):
            raise ValueError(f"gate {self.name!r} has negative qubit index")

    @property
    def arity(self) -> int:
        return len(self.qubits)

    @property
    def is_two_qubit(self) -> bool:
        return self.arity == 2

    def remapped(self, mapping) -> "Gate":
        """Return a copy with qubit indices sent through *mapping*."""
        return Gate(self.name, tuple(mapping[q] for q in self.qubits), self.params)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.params:
            args = ", ".join(f"{p:.4g}" for p in self.params)
            return f"{self.name}({args}) {list(self.qubits)}"
        return f"{self.name} {list(self.qubits)}"
