"""Simulation substrates: statevector, MBQC pattern, stabilizer,
Pauli frames, noisy MC."""

from repro.sim.frame import FrameProgram, PauliFrameSimulator
from repro.sim.noisy import (
    FaultCounts,
    NoisySampler,
    NoisySampleResult,
    sample_yield,
)
from repro.sim.pattern_sim import (
    BatchedStabilizerPatternResult,
    BatchedStabilizerPatternSimulator,
    PatternResult,
    PatternSimulator,
    StabilizerPatternResult,
    StabilizerPatternSimulator,
    pattern_is_clifford,
    simulate_pattern,
    simulate_pattern_stabilizer,
)
from repro.sim.stabilizer import PauliString, StabilizerState
from repro.sim.stabilizer_batch import BatchedStabilizerState
from repro.sim.statevector import (
    Statevector,
    basis_state_distribution,
    circuit_unitary,
    fidelity,
    gate_matrix,
    j_matrix,
    simulate,
    states_equal_up_to_phase,
    unitaries_equal_up_to_phase,
)

__all__ = [
    "BatchedStabilizerPatternResult",
    "BatchedStabilizerPatternSimulator",
    "BatchedStabilizerState",
    "FaultCounts",
    "FrameProgram",
    "NoisySampleResult",
    "NoisySampler",
    "PauliFrameSimulator",
    "PatternResult",
    "PatternSimulator",
    "PauliString",
    "StabilizerPatternResult",
    "StabilizerPatternSimulator",
    "StabilizerState",
    "Statevector",
    "basis_state_distribution",
    "circuit_unitary",
    "fidelity",
    "gate_matrix",
    "j_matrix",
    "pattern_is_clifford",
    "sample_yield",
    "simulate",
    "simulate_pattern",
    "simulate_pattern_stabilizer",
    "states_equal_up_to_phase",
    "unitaries_equal_up_to_phase",
]
