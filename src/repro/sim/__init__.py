"""Simulation substrates: dense statevector, MBQC pattern, stabilizer."""

from repro.sim.pattern_sim import PatternResult, PatternSimulator, simulate_pattern
from repro.sim.statevector import (
    Statevector,
    basis_state_distribution,
    circuit_unitary,
    fidelity,
    gate_matrix,
    j_matrix,
    simulate,
    states_equal_up_to_phase,
    unitaries_equal_up_to_phase,
)

__all__ = [
    "PatternResult",
    "PatternSimulator",
    "Statevector",
    "basis_state_distribution",
    "circuit_unitary",
    "fidelity",
    "gate_matrix",
    "j_matrix",
    "simulate",
    "simulate_pattern",
    "states_equal_up_to_phase",
    "unitaries_equal_up_to_phase",
]
