"""Dense statevector simulation of circuits.

Used as the ground truth when validating gate-set lowering and the MBQC
translation.  Qubit ordering is little-endian: basis index bit ``q`` is
the value of qubit ``q``.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np

from repro.circuit.circuit import Circuit
from repro.circuit.gates import Gate

_SQRT2 = math.sqrt(2.0)


def _rz(theta: float) -> np.ndarray:
    return np.array(
        [[np.exp(-0.5j * theta), 0.0], [0.0, np.exp(0.5j * theta)]],
        dtype=complex,
    )


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def j_matrix(alpha: float) -> np.ndarray:
    """The paper's ``J(alpha)`` gate: ``H @ Rz(alpha)`` up to phase."""
    return np.array(
        [[1.0, np.exp(1j * alpha)], [1.0, -np.exp(1j * alpha)]], dtype=complex
    ) / _SQRT2


_H = np.array([[1.0, 1.0], [1.0, -1.0]], dtype=complex) / _SQRT2
_X = np.array([[0.0, 1.0], [1.0, 0.0]], dtype=complex)
_Y = np.array([[0.0, -1j], [1j, 0.0]], dtype=complex)
_Z = np.array([[1.0, 0.0], [0.0, -1.0]], dtype=complex)
_I = np.eye(2, dtype=complex)

_CZ = np.diag([1.0, 1.0, 1.0, -1.0]).astype(complex)
# Little-endian CX with (control, target) = (first, second) qubit argument.
_SWAP = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)


def gate_matrix(gate: Gate) -> np.ndarray:
    """Unitary matrix of *gate* on its own qubits (slot order = args)."""
    name = gate.name
    if name == "i":
        return _I
    if name == "x":
        return _X
    if name == "y":
        return _Y
    if name == "z":
        return _Z
    if name == "h":
        return _H
    if name == "s":
        return np.diag([1.0, 1j]).astype(complex)
    if name == "sdg":
        return np.diag([1.0, -1j]).astype(complex)
    if name == "t":
        return np.diag([1.0, np.exp(1j * math.pi / 4)]).astype(complex)
    if name == "tdg":
        return np.diag([1.0, np.exp(-1j * math.pi / 4)]).astype(complex)
    if name == "sx":
        return 0.5 * np.array(
            [[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex
        )
    if name == "rx":
        return _rx(gate.params[0])
    if name == "ry":
        return _ry(gate.params[0])
    if name == "rz":
        return _rz(gate.params[0])
    if name == "p":
        return np.diag([1.0, np.exp(1j * gate.params[0])]).astype(complex)
    if name == "j":
        return j_matrix(gate.params[0])
    if name == "cz":
        return _CZ
    if name == "cx":
        # Slot 0 = control, slot 1 = target; slot 0 is the most significant
        # bit of the matrix index, so the control-on states are 2 and 3.
        m = np.eye(4, dtype=complex)
        m[[2, 3]] = m[[3, 2]]
        return m
    if name == "cp":
        return np.diag(
            [1.0, 1.0, 1.0, np.exp(1j * gate.params[0])]
        ).astype(complex)
    if name == "swap":
        return _SWAP
    if name == "ccx":
        # Slots 0,1 = controls, slot 2 = target: swap |110> and |111>.
        m = np.eye(8, dtype=complex)
        m[[6, 7]] = m[[7, 6]]
        return m
    raise ValueError(f"no matrix for gate {gate}")  # pragma: no cover


class Statevector:
    """A mutable dense state over *num_qubits* little-endian qubits."""

    def __init__(
        self, num_qubits: int, data: Optional[np.ndarray] = None
    ) -> None:
        self.num_qubits = num_qubits
        if data is None:
            self.data = np.zeros(2**num_qubits, dtype=complex)
            self.data[0] = 1.0
        else:
            data = np.asarray(data, dtype=complex)
            if data.shape != (2**num_qubits,):
                raise ValueError("statevector has wrong dimension")
            self.data = data.copy()

    def copy(self) -> "Statevector":
        """Independent deep copy (amplitudes are duplicated)."""
        return Statevector(self.num_qubits, self.data)

    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        """Apply *matrix* to the listed qubits (slot order = list order)."""
        k = len(qubits)
        n = self.num_qubits
        tensor = self.data.reshape((2,) * n)
        # axis of qubit q in the reshaped tensor
        axes = [n - 1 - q for q in qubits]
        op = matrix.reshape((2,) * (2 * k))
        tensor = np.tensordot(op, tensor, axes=(list(range(k, 2 * k)), axes))
        # tensordot puts the new (output) axes first, in slot order.
        tensor = np.moveaxis(tensor, list(range(k)), axes)
        self.data = tensor.reshape(2**n)

    def apply_gate(self, gate: Gate) -> None:
        """Apply one circuit :class:`Gate` (looked up via ``gate_matrix``)."""
        self.apply_matrix(gate_matrix(gate), list(gate.qubits))

    def probabilities(self) -> np.ndarray:
        """Basis-state probability vector (little-endian index order)."""
        return np.abs(self.data) ** 2

    def measure_probability(self, qubit: int, outcome: int) -> float:
        """Probability of observing *outcome* on a Z measurement."""
        probs = self.probabilities()
        mask = (np.arange(len(probs)) >> qubit) & 1
        return float(probs[mask == outcome].sum())


def simulate(circuit: Circuit, initial: Optional[np.ndarray] = None) -> np.ndarray:
    """Run *circuit* on ``|0...0>`` (or *initial*) and return the state."""
    state = Statevector(circuit.num_qubits, initial)
    for gate in circuit:
        state.apply_gate(gate)
    return state.data


def circuit_unitary(circuit: Circuit) -> np.ndarray:
    """Full unitary of *circuit* (exponential in qubits — tests only)."""
    dim = 2**circuit.num_qubits
    unitary = np.eye(dim, dtype=complex)
    for col in range(dim):
        basis = np.zeros(dim, dtype=complex)
        basis[col] = 1.0
        unitary[:, col] = simulate(circuit, basis)
    return unitary


def states_equal_up_to_phase(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-8
) -> bool:
    """True when two normalized states differ only by a global phase."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    overlap = np.vdot(a, b)
    return bool(abs(abs(overlap) - 1.0) < atol)


def unitaries_equal_up_to_phase(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-8
) -> bool:
    """True when two unitaries differ only by a global phase."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    # find the first non-negligible entry of b to fix the phase
    idx = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    if abs(b[idx]) < atol:
        return bool(np.allclose(a, b, atol=atol))
    phase = a[idx] / b[idx]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(a, phase * b, atol=atol))


def fidelity(a: np.ndarray, b: np.ndarray) -> float:
    """State fidelity ``|<a|b>|^2`` between two pure states."""
    return float(abs(np.vdot(a, b)) ** 2)


def basis_state_distribution(state: np.ndarray) -> Dict[int, float]:
    """Map basis index -> probability, dropping negligible entries."""
    probs = np.abs(np.asarray(state)) ** 2
    return {i: float(p) for i, p in enumerate(probs) if p > 1e-12}
