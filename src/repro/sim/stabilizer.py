"""Bit-packed Aaronson-Gottesman (CHP) stabilizer tableau simulator.

Built to verify graph-state identities and photonic fusion semantics at
sizes far beyond dense simulation.  Supports the Clifford gates used in
this project, Z measurements, and measurements of arbitrary Pauli
products (the XZ/ZX joint measurements that realize fusion).

Representation follows arXiv:quant-ph/0406196: ``2n`` rows of binary
``x``/``z`` vectors plus a sign bit; rows ``0..n-1`` are destabilizers and
rows ``n..2n-1`` stabilizers.  Rows are packed 64 qubits per ``uint64``
word, and the phase function of a row product is evaluated over whole
rows at once with popcount identities (the per-qubit branchy ``g`` of the
paper becomes two bitmasks: positions contributing ``+i`` and ``-i``).
One Pauli measurement is a handful of vectorized word operations instead
of an interpreted O(n^2) loop; the seed implementation is preserved in
``tests/sim/reference_stabilizer.py`` and pinned bit-identical by
``tests/sim/test_stabilizer_equivalence.py``.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import networkx as nx
import numpy as np

from repro.utils.angles import is_clifford_angle, normalize_angle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuit.circuit import Circuit
    from repro.circuit.gates import Gate

_ONE = np.uint64(1)
_SIX3 = np.uint64(63)

try:
    _bitwise_count = np.bitwise_count
except AttributeError:  # pragma: no cover - NumPy < 2.0
    _POPCOUNT8 = np.array(
        [bin(i).count("1") for i in range(256)], dtype=np.uint8
    )
    def _bitwise_count(words: np.ndarray) -> np.ndarray:
        # per-byte counts; callers only ever sum along the last axis
        return _POPCOUNT8[np.ascontiguousarray(words).view(np.uint8)]


def _num_words(num_qubits: int) -> int:
    return (num_qubits + 63) >> 6


def _bit_positions(qubits: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Map qubit indices to (word index, bit mask) pairs."""
    qubits = np.asarray(qubits, dtype=np.int64)
    return qubits >> 6, _ONE << (qubits.astype(np.uint64) & _SIX3)


def _pack_bits(bits: Sequence[int], num_words: int) -> np.ndarray:
    """Pack a 0/1 vector into little-bit-order ``uint64`` words."""
    bits = np.asarray(bits, dtype=np.uint64)
    words, masks = _bit_positions(np.flatnonzero(bits))
    out = np.zeros(num_words, dtype=np.uint64)
    np.bitwise_or.at(out, words, masks)
    return out


def _unpack_bits(words: np.ndarray, num_qubits: int) -> np.ndarray:
    """Inverse of :func:`_pack_bits`: words -> uint8 vector of length n."""
    idx = np.arange(num_qubits, dtype=np.int64)
    shifts = idx.astype(np.uint64) & _SIX3
    return ((words[idx >> 6] >> shifts) & _ONE).astype(np.uint8)


def _phase_sum_packed(
    ix: np.ndarray, iz: np.ndarray, hx: np.ndarray, hz: np.ndarray
) -> np.ndarray:
    """Signed sum of the AG phase function ``g`` over whole packed rows.

    ``(ix, iz)`` is the multiplier row, ``(hx, hz)`` the row(s) being
    updated (broadcasting applies; the last axis is words).  ``g`` is
    ``+1``/``-1`` exactly on the positions captured by the two masks, so
    the per-qubit case analysis collapses into popcounts.  Padding bits
    beyond qubit ``n-1`` are zero in every non-complemented operand, and
    every mask term contains at least one, so they never contribute.
    """
    plus = (ix & iz & hz & ~hx) | (ix & ~iz & hx & hz) | (~ix & iz & hx & ~hz)
    minus = (ix & iz & hx & ~hz) | (ix & ~iz & hz & ~hx) | (~ix & iz & hx & hz)
    return _bitwise_count(plus).sum(axis=-1, dtype=np.int64) - _bitwise_count(
        minus
    ).sum(axis=-1, dtype=np.int64)


class PauliString:
    """A signed Pauli product on *n* qubits, e.g. ``+X0*Z3``."""

    def __init__(self, num_qubits: int) -> None:
        self.n = num_qubits
        self.x = np.zeros(num_qubits, dtype=np.uint8)
        self.z = np.zeros(num_qubits, dtype=np.uint8)
        self.sign = 0  # 0 -> +1, 1 -> -1

    @classmethod
    def from_ops(
        cls, num_qubits: int, ops: Dict[int, str], sign: int = 0
    ) -> "PauliString":
        """Build from a map qubit -> 'x' | 'y' | 'z'."""
        p = cls(num_qubits)
        for qubit, op in ops.items():
            op = op.lower()
            if op == "x":
                p.x[qubit] = 1
            elif op == "z":
                p.z[qubit] = 1
            elif op == "y":
                p.x[qubit] = 1
                p.z[qubit] = 1
            else:
                raise ValueError(f"unknown Pauli {op!r}")
        p.sign = sign & 1
        return p

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        for q in range(self.n):
            if self.x[q] and self.z[q]:
                parts.append(f"Y{q}")
            elif self.x[q]:
                parts.append(f"X{q}")
            elif self.z[q]:
                parts.append(f"Z{q}")
        body = "*".join(parts) if parts else "I"
        return ("-" if self.sign else "+") + body


class StabilizerState:
    """A stabilizer state on ``num_qubits`` qubits, initially ``|0...0>``."""

    def __init__(self, num_qubits: int, seed: Optional[int] = None) -> None:
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        n = num_qubits
        self.n = n
        self.num_words = _num_words(n)
        self.x = np.zeros((2 * n, self.num_words), dtype=np.uint64)
        self.z = np.zeros((2 * n, self.num_words), dtype=np.uint64)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        rows = np.arange(n, dtype=np.int64)
        words, masks = _bit_positions(rows)
        self.x[rows, words] = masks          # destabilizer X_i
        self.z[n + rows, words] = masks      # stabilizer Z_i
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def graph_state(
        cls,
        graph: nx.Graph,
        order: Optional[Sequence] = None,
        seed: Optional[int] = None,
        zero_nodes: Iterable = (),
    ) -> Tuple["StabilizerState", Dict]:
        """Build the graph state of *graph*; returns (state, node->qubit).

        The whole tableau is written directly (one vectorized pass over a
        packed adjacency matrix) instead of replaying ``n`` H gates and
        ``|E|`` CZ gates: each row holds at most one X bit throughout that
        gate sequence, so no phase ever appears and the final tableau is
        the closed form written here.

        ``zero_nodes`` are prepared in ``|0>`` instead of ``|+>`` (no H
        before the CZ layer) — the initialization the measurement-pattern
        semantics gives input nodes.
        """
        nodes = list(order) if order is not None else sorted(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        state = cls(len(nodes), seed=seed)
        n = state.n
        zeros = {index[v] for v in zero_nodes}
        if not zeros <= set(range(n)):  # pragma: no cover - guarded by index
            raise ValueError("zero_nodes must be graph nodes")

        adj = np.zeros((n, state.num_words), dtype=np.uint64)
        if graph.number_of_edges():
            pairs = np.array(
                [(index[u], index[v]) for u, v in graph.edges()], dtype=np.int64
            )
            a, b = pairs[:, 0], pairs[:, 1]
            wb, mb = _bit_positions(b)
            wa, ma = _bit_positions(a)
            np.bitwise_or.at(adj, (a, wb), mb)
            np.bitwise_or.at(adj, (b, wa), ma)

        state.x[:] = 0
        state.z[:] = 0
        zero_idx = np.array(sorted(zeros), dtype=np.int64)
        plus_idx = np.array(
            [i for i in range(n) if i not in zeros], dtype=np.int64
        )
        if zero_idx.size:
            words, masks = _bit_positions(zero_idx)
            state.x[zero_idx, words] = masks        # destabilizer X_i ...
            state.z[zero_idx] = adj[zero_idx]       # ... times Z on neighbors
            state.z[n + zero_idx, words] = masks    # stabilizer Z_i
        if plus_idx.size:
            words, masks = _bit_positions(plus_idx)
            state.z[plus_idx, words] = masks        # destabilizer Z_i
            state.x[n + plus_idx, words] = masks    # stabilizer X_i prod Z_nbr
            state.z[n + plus_idx] = adj[plus_idx]
        return state, index

    def copy(self) -> "StabilizerState":
        """Independent deep copy with a forked (never shared) RNG."""
        out = object.__new__(StabilizerState)
        out.n = self.n
        out.num_words = self.num_words
        out.x = self.x.copy()
        out.z = self.z.copy()
        out.r = self.r.copy()
        out._destabilizers_valid = self._destabilizers_valid
        # Fork (never share) the generator: a shared generator would let a
        # measurement on the copy silently perturb the original's stream.
        # Spawning goes through the seed sequence, so the parent's own
        # draw stream is untouched either way.
        try:
            out.rng = self.rng.spawn(1)[0]
        except AttributeError:  # pragma: no cover - NumPy < 1.25
            bit_gen = self.rng.bit_generator
            seed_seq = getattr(bit_gen, "seed_seq", None) or bit_gen._seed_seq
            out.rng = np.random.Generator(type(bit_gen)(seed_seq.spawn(1)[0]))
        return out

    # ------------------------------------------------------------------
    # internal row algebra
    # ------------------------------------------------------------------
    def _column(self, mat: np.ndarray, q: int) -> np.ndarray:
        """Bit of qubit *q* in every row of *mat* (as 0/1 uint64)."""
        return (mat[:, q >> 6] >> np.uint64(q & 63)) & _ONE

    def _rowsum_rows(self, rows: np.ndarray, pivot: int) -> None:
        """Batched ``row := row * pivot`` with AG phase tracking.

        All target rows multiply by the same (unchanged) pivot row, so
        the updates are independent and run as whole-array operations.
        Stabilizer-row products must be Hermitian; destabilizer rows may
        pick up factors of i whose sign bit is irrelevant (same contract
        as the seed engine's ``strict`` flag).
        """
        hx, hz = self.x[rows], self.z[rows]
        ix, iz = self.x[pivot], self.z[pivot]
        phase = 2 * (self.r[rows].astype(np.int64) + int(self.r[pivot]))
        phase += _phase_sum_packed(ix, iz, hx, hz)
        phase = np.mod(phase, 4)
        if np.any(phase[rows >= self.n] & 1):
            raise RuntimeError("non-Hermitian product in stabilizer rowsum")
        self.x[rows] = hx ^ ix
        self.z[rows] = hz ^ iz
        self.r[rows] = ((phase >> 1) & 1).astype(np.uint8)

    def _anticommuting_rows(self, px: np.ndarray, pz: np.ndarray) -> np.ndarray:
        """Boolean mask over all 2n rows: symplectic product with P is odd."""
        sym = _bitwise_count(self.x & pz).sum(axis=1, dtype=np.int64)
        sym += _bitwise_count(self.z & px).sum(axis=1, dtype=np.int64)
        return (sym & 1).astype(bool)

    def _accumulate_stabilizers(
        self, anti_destab: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Product of stabilizer rows whose destabilizer partners are in
        *anti_destab* (ascending), with sign tracking."""
        accx = np.zeros(self.num_words, dtype=np.uint64)
        accz = np.zeros(self.num_words, dtype=np.uint64)
        accr = 0
        for i in np.flatnonzero(anti_destab):
            row = self.n + int(i)
            phase = 2 * (accr + int(self.r[row]))
            phase += int(_phase_sum_packed(self.x[row], self.z[row], accx, accz))
            phase %= 4
            if phase & 1:
                raise RuntimeError("non-Hermitian product in stabilizer rowsum")
            accx = accx ^ self.x[row]
            accz = accz ^ self.z[row]
            accr = (phase >> 1) & 1
        return accx, accz, accr

    def _deterministic_outcome(
        self, px: np.ndarray, pz: np.ndarray, anti_destab: np.ndarray, sign: int
    ) -> int:
        """Outcome of a commuting (deterministic) Pauli measurement.

        Accumulates the product of stabilizers whose destabilizer
        partners anticommute with the measured Pauli; that product must
        reproduce the Pauli itself or the tableau is corrupt.
        """
        accx, accz, accr = self._accumulate_stabilizers(anti_destab)
        if not (np.array_equal(accx, px) and np.array_equal(accz, pz)):
            raise RuntimeError(
                "deterministic measurement does not reproduce the Pauli; "
                "tableau is corrupt"
            )
        return (accr + sign) % 2

    # ------------------------------------------------------------------
    # Clifford gates
    # ------------------------------------------------------------------
    def h(self, q: int) -> None:
        """Hadamard on qubit *q* (swaps the X and Z columns)."""
        w, mask = (q >> 6), _ONE << np.uint64(q & 63)
        xw, zw = self.x[:, w], self.z[:, w]
        self.r ^= (((xw & zw) & mask) != 0).astype(np.uint8)
        diff = (xw ^ zw) & mask
        self.x[:, w] ^= diff
        self.z[:, w] ^= diff

    def s(self, q: int) -> None:
        """Phase gate S on qubit *q*."""
        w, mask = (q >> 6), _ONE << np.uint64(q & 63)
        xw, zw = self.x[:, w], self.z[:, w]
        self.r ^= (((xw & zw) & mask) != 0).astype(np.uint8)
        self.z[:, w] ^= xw & mask

    def sdg(self, q: int) -> None:
        """Inverse phase gate S-dagger on qubit *q*."""
        w, mask = (q >> 6), _ONE << np.uint64(q & 63)
        xw, zw = self.x[:, w], self.z[:, w]
        self.r ^= (((xw & ~zw) & mask) != 0).astype(np.uint8)
        self.z[:, w] ^= xw & mask

    def x_gate(self, q: int) -> None:
        """Pauli X on qubit *q* (sign flip on rows with a Z there)."""
        self.r ^= self._column(self.z, q).astype(np.uint8)

    def y_gate(self, q: int) -> None:
        """Pauli Y on qubit *q*."""
        self.r ^= (self._column(self.x, q) ^ self._column(self.z, q)).astype(
            np.uint8
        )

    def z_gate(self, q: int) -> None:
        """Pauli Z on qubit *q* (sign flip on rows with an X there)."""
        self.r ^= self._column(self.x, q).astype(np.uint8)

    def cnot(self, control: int, target: int) -> None:
        """CNOT with the given control and target qubits."""
        if control == target:
            raise ValueError("cnot needs distinct qubits")
        xc = self._column(self.x, control)
        zc = self._column(self.z, control)
        xt = self._column(self.x, target)
        zt = self._column(self.z, target)
        self.r ^= (xc & zt & (xt ^ zc ^ _ONE)).astype(np.uint8)
        self.x[:, target >> 6] ^= xc << np.uint64(target & 63)
        self.z[:, control >> 6] ^= zt << np.uint64(control & 63)

    def cz(self, a: int, b: int) -> None:
        """Direct column update (the seed engine lowered CZ to H-CNOT-H)."""
        if a == b:
            raise ValueError("cz needs distinct qubits")
        xa = self._column(self.x, a)
        za = self._column(self.z, a)
        xb = self._column(self.x, b)
        zb = self._column(self.z, b)
        self.r ^= (xa & xb & (za ^ zb)).astype(np.uint8)
        self.z[:, a >> 6] ^= xb << np.uint64(a & 63)
        self.z[:, b >> 6] ^= xa << np.uint64(b & 63)

    def swap(self, a: int, b: int) -> None:
        """Exchange qubits *a* and *b* (bit swap in every row)."""
        if a == b:
            return
        for mat in (self.x, self.z):
            bit_a = (mat[:, a >> 6] >> np.uint64(a & 63)) & _ONE
            bit_b = (mat[:, b >> 6] >> np.uint64(b & 63)) & _ONE
            diff = bit_a ^ bit_b
            mat[:, a >> 6] ^= diff << np.uint64(a & 63)
            mat[:, b >> 6] ^= diff << np.uint64(b & 63)

    # ------------------------------------------------------------------
    # batched circuit application
    # ------------------------------------------------------------------
    def apply_gate(self, gate: "Gate") -> None:
        """Apply one circuit gate (duck-typed: ``name``/``qubits``/``params``).

        Supports the Clifford gate set plus ``rz``/``p`` at Clifford
        angles (multiples of pi/2, which only differ from I/S/Z/Sdg by a
        global phase); raises ``ValueError`` for anything non-Clifford.
        """
        _dispatch_gate(self, gate)

    def apply_circuit(self, circuit: "Circuit") -> "StabilizerState":
        """Apply every gate of a (Clifford) circuit; returns ``self``."""
        for gate in circuit:
            _dispatch_gate(self, gate)
        return self

    # ------------------------------------------------------------------
    # measurements
    # ------------------------------------------------------------------
    def _require_destabilizers(self, operation: str) -> None:
        """Refuse outcome computation on a stale symplectic pair.

        :meth:`discard` rebuilds only the stabilizer half of the tableau
        and zeroes the destabilizers; a measurement would then rowsum
        over those zeroed rows and return a silently wrong (always
        identity-product) outcome instead of failing loudly.
        """
        if not self._destabilizers_valid:
            raise RuntimeError(
                f"{operation} on a state with stale destabilizers (the "
                "state came from discard()); re-derive it from a full "
                "tableau instead"
            )

    def measure_z(self, q: int, force: Optional[int] = None) -> int:
        """Z measurement of qubit *q*; returns ``m`` for outcome ``(-1)^m``."""
        pauli = PauliString.from_ops(self.n, {q: "z"})
        return self.measure_pauli(pauli, force=force)

    def measure_pauli(self, pauli: PauliString, force: Optional[int] = None) -> int:
        """Measure a Pauli product; returns outcome ``m`` for ``(-1)^m``.

        ``force`` postselects an outcome for the random case (raises if
        the forced outcome has zero probability in the deterministic
        case).  Raises on a state whose destabilizers were invalidated
        by :meth:`discard`: both the random-case rowsum and the
        deterministic accumulation walk destabilizer rows, and zeroed
        rows would yield silently wrong outcomes.
        """
        self._require_destabilizers("measure_pauli")
        n = self.n
        px = _pack_bits(pauli.x, self.num_words)
        pz = _pack_bits(pauli.z, self.num_words)
        anti = self._anticommuting_rows(px, pz)
        anti_stab = np.flatnonzero(anti[n:])
        if anti_stab.size:
            p = n + int(anti_stab[0])
            outcome = (
                int(force) if force is not None else int(self.rng.integers(2))
            )
            rows = np.flatnonzero(anti)
            rows = rows[rows != p]
            if rows.size:
                self._rowsum_rows(rows, p)
            # old stabilizer becomes the destabilizer of the new one
            self.x[p - n] = self.x[p]
            self.z[p - n] = self.z[p]
            self.r[p - n] = self.r[p]
            self.x[p] = px
            self.z[p] = pz
            self.r[p] = (pauli.sign + outcome) % 2
            return outcome
        outcome = self._deterministic_outcome(px, pz, anti[:n], pauli.sign)
        if force is not None and int(force) != outcome:
            raise RuntimeError(
                f"forced outcome {force} has zero probability (got {outcome})"
            )
        return outcome

    def measure_many(
        self,
        paulis: Sequence[PauliString],
        force: Optional[Sequence[Optional[int]]] = None,
    ) -> List[int]:
        """Measure a sequence of Pauli products in order.

        ``force`` optionally postselects per measurement (``None``
        entries stay random).  Outcome order matches input order.
        """
        if force is None:
            force = [None] * len(paulis)
        if len(force) != len(paulis):
            raise ValueError("force must match paulis in length")
        return [
            self.measure_pauli(pauli, force=f) for pauli, f in zip(paulis, force)
        ]

    def expectation(self, pauli: PauliString) -> Optional[int]:
        """Outcome of measuring *pauli* if deterministic, else ``None``.

        Read-only: a deterministic CHP measurement never updates the
        tableau, and the random case returns before touching it.
        """
        self._require_destabilizers("expectation")
        px = _pack_bits(pauli.x, self.num_words)
        pz = _pack_bits(pauli.z, self.num_words)
        anti = self._anticommuting_rows(px, pz)
        if anti[self.n:].any():
            return None
        return self._deterministic_outcome(px, pz, anti[: self.n], pauli.sign)

    # ------------------------------------------------------------------
    # group inspection
    # ------------------------------------------------------------------
    def stabilizer_rows(self) -> List[Tuple[np.ndarray, np.ndarray, int]]:
        """The ``n`` stabilizer generators as unpacked ``(x, z, sign)``
        rows (0/1 vectors of length ``n``; sign ``0`` = +1, ``1`` = -1)."""
        return [
            (
                _unpack_bits(self.x[i], self.n),
                _unpack_bits(self.z[i], self.n),
                int(self.r[i]),
            )
            for i in range(self.n, 2 * self.n)
        ]

    def canonical_stabilizers(self) -> List[Tuple[Tuple[int, ...], int]]:
        """Canonical (RREF) generating set as hashable rows.

        Each row is ``((x|z) bits, sign)``; two states are equal iff their
        canonical sets are equal.
        """
        rows = [
            (np.concatenate([x, z]), r) for (x, z, r) in self.stabilizer_rows()
        ]
        return _canonicalize(rows, self.n)

    def equals(self, other: "StabilizerState") -> bool:
        """State equality via canonical stabilizer generating sets."""
        if self.n != other.n:
            return False
        return self.canonical_stabilizers() == other.canonical_stabilizers()

    def discard(self, qubits: Iterable[int]) -> "StabilizerState":
        """Project out *qubits* that must be unentangled with the rest.

        Returns a new state on the remaining qubits.  Raises if the
        stabilizer group restricted to the kept qubits has fewer than
        ``n - len(qubits)`` generators, i.e. the discarded qubits are
        still entangled with the rest.
        """
        drop = sorted(set(qubits))
        keep = [q for q in range(self.n) if q not in drop]
        rows = [
            (np.concatenate([x, z]), r) for (x, z, r) in self.stabilizer_rows()
        ]
        # eliminate support on dropped qubits: pivot those columns first
        priority_cols = []
        for q in drop:
            priority_cols.append(q)          # x column
            priority_cols.append(self.n + q)  # z column
        reduced = _eliminate(rows, priority_cols, self.n)
        survivors = [
            (vec, r)
            for vec, r in reduced
            if not any(vec[c] for c in priority_cols)
        ]
        if len(survivors) < len(keep):
            raise ValueError(
                "discarded qubits are still entangled with the rest"
            )
        out = StabilizerState(len(keep))
        keep_arr = np.array(keep, dtype=np.int64)
        for i, (vec, r) in enumerate(survivors[: len(keep)]):
            out.x[len(keep) + i] = _pack_bits(vec[keep_arr], out.num_words)
            out.z[len(keep) + i] = _pack_bits(
                vec[self.n + keep_arr], out.num_words
            )
            out.r[len(keep) + i] = r
        # destabilizers of `out` are now stale; rebuild a consistent pair
        # set by completing the symplectic basis is unnecessary for the
        # comparisons we support, so mark them unusable instead.
        out._destabilizers_valid = False
        return out

    _destabilizers_valid = True


#: Single-qubit circuit-gate name -> tableau method sequence.
_SINGLE_QUBIT_GATES: Dict[str, Tuple[str, ...]] = {
    "i": (),
    "x": ("x_gate",),
    "y": ("y_gate",),
    "z": ("z_gate",),
    "h": ("h",),
    "s": ("s",),
    "sdg": ("sdg",),
    "sx": ("h", "s", "h"),  # HSH = sqrt(X) exactly
}


def _dispatch_gate(state: "StabilizerState", gate: "Gate") -> None:
    """Circuit-gate -> tableau-method dispatch, shared by the scalar and
    batched engines (both expose the same gate-method names), so the
    gate vocabulary and the rz/p quarter-turn lowering live exactly
    once."""
    name = gate.name
    qubits = gate.qubits
    if name in _SINGLE_QUBIT_GATES:
        for method in _SINGLE_QUBIT_GATES[name]:
            getattr(state, method)(qubits[0])
    elif name == "cx":
        state.cnot(qubits[0], qubits[1])
    elif name == "cz":
        state.cz(qubits[0], qubits[1])
    elif name == "swap":
        state.swap(qubits[0], qubits[1])
    elif name in ("rz", "p"):
        alpha = gate.params[0]
        if not is_clifford_angle(alpha):
            raise ValueError(
                f"gate {name}({alpha}) is not Clifford; "
                "use the statevector simulator"
            )
        quarter = int(round(normalize_angle(alpha) / (np.pi / 2.0))) % 4
        for method in ((), ("s",), ("z_gate",), ("sdg",))[quarter]:
            getattr(state, method)(qubits[0])
    else:
        raise ValueError(
            f"gate {name!r} is not Clifford; use the statevector simulator"
        )


def _gate_is_clifford(gate: "Gate") -> bool:
    """One gate of the vocabulary :meth:`StabilizerState.apply_gate`
    accepts (the Clifford set, plus ``rz``/``p`` at Clifford angles)."""
    if gate.name in _SINGLE_QUBIT_GATES or gate.name in ("cx", "cz", "swap"):
        return True
    return gate.name in ("rz", "p") and is_clifford_angle(gate.params[0])


def circuit_is_clifford(circuit: "Circuit") -> bool:
    """True when every gate of *circuit* is stabilizer-simulable."""
    return all(_gate_is_clifford(gate) for gate in circuit)


def non_clifford_gate_counts(circuit: "Circuit") -> Dict[str, int]:
    """Gate name -> count of the gates the stabilizer engine rejects.

    ``rz``/``p`` at Clifford angles (quarter turns) are exempt, exactly
    as in :func:`circuit_is_clifford`; an empty dict means the circuit
    is Clifford.  Used to name the offenders in rejection messages.
    """
    counts: Dict[str, int] = {}
    for gate in circuit:
        if not _gate_is_clifford(gate):
            counts[gate.name] = counts.get(gate.name, 0) + 1
    return counts


def _g_sum(
    ix: np.ndarray, iz: np.ndarray, hx: np.ndarray, hz: np.ndarray
) -> int:
    """Sum of the AG phase function over unpacked 0/1 rows (i times h).

    Packs and delegates so the plus/minus mask formula exists exactly
    once (:func:`_phase_sum_packed`).
    """
    num_words = _num_words(len(ix))
    return int(
        _phase_sum_packed(
            _pack_bits(ix, num_words),
            _pack_bits(iz, num_words),
            _pack_bits(hx, num_words),
            _pack_bits(hz, num_words),
        )
    )


def _phase_product(
    a: Tuple[np.ndarray, int], b: Tuple[np.ndarray, int], n: int
) -> Tuple[np.ndarray, int]:
    """Multiply two (x|z, sign) rows with correct sign tracking."""
    phase = 2 * (a[1] + b[1])
    phase += _g_sum(b[0][:n], b[0][n:], a[0][:n], a[0][n:])
    phase %= 4
    if phase not in (0, 2):  # pragma: no cover
        raise RuntimeError("non-Hermitian product")
    return a[0] ^ b[0], phase // 2


def _eliminate(
    rows: List[Tuple[np.ndarray, int]], cols: List[int], n: int
) -> List[Tuple[np.ndarray, int]]:
    """Gaussian elimination over GF(2), pivoting *cols* first."""
    rows = [(vec.copy(), r) for vec, r in rows]
    width = 2 * n
    all_cols = cols + [c for c in range(width) if c not in cols]
    pivot_row = 0
    for col in all_cols:
        pivot = next(
            (i for i in range(pivot_row, len(rows)) if rows[i][0][col]), None
        )
        if pivot is None:
            continue
        rows[pivot_row], rows[pivot] = rows[pivot], rows[pivot_row]
        for i in range(len(rows)):
            if i != pivot_row and rows[i][0][col]:
                rows[i] = _phase_product(rows[i], rows[pivot_row], n)
        pivot_row += 1
        if pivot_row == len(rows):
            break
    return rows


def _canonicalize(
    rows: List[Tuple[np.ndarray, int]], n: int
) -> List[Tuple[Tuple[int, ...], int]]:
    reduced = _eliminate(rows, [], n)
    out = [
        (tuple(int(b) for b in vec), int(r))
        for vec, r in reduced
        if vec.any()
    ]
    return sorted(out)


def graph_state_stabilizers(
    graph: nx.Graph, order: Optional[Sequence] = None
) -> List[Tuple[Tuple[int, ...], int]]:
    """Canonical stabilizer set of a graph state (for comparisons)."""
    state, _ = StabilizerState.graph_state(graph, order=order)
    return state.canonical_stabilizers()
