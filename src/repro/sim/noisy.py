"""Monte-Carlo noisy execution of Clifford measurement patterns.

The closed-form :mod:`repro.hardware.noise` model predicts the
probability that one execution of a compiled program sees *zero* error
events.  This module samples the actual fault process shot by shot and
executes the pattern under each sampled fault configuration on the
bit-packed stabilizer tableau, producing two yields per run:

* ``fault_free_yield`` — the fraction of shots in which no error event
  fired at all.  Its expectation is exactly the analytic
  :func:`repro.hardware.noise.success_probability`, which makes the two
  code paths cross-validate each other (the CI gate in
  ``tests/sim/test_noisy.py`` enforces 3-sigma binomial agreement).
* ``yield_mc`` — the fraction of shots whose *executed* output state
  still satisfies every stabilizer generator of the ideal circuit
  output.  This is new information the closed form cannot provide:
  faults that land in the output state's stabilizer group (e.g. Z errors
  on a basis-state output) are benign, so ``yield_mc >=
  fault_free_yield`` and the gap measures the benign-fault fraction.

Sampled fault channels, per shot (probabilities are per event):

* **fusion failure** (``p = 1 - fusion_success``): linear-optics fusions
  herald failure; with repeat-until-success the shot still proceeds but
  burns extra attempts, tallied in ``fusion_attempts`` (expected
  ``fusions / fusion_success``).
* **photon loss** (``cycle_loss`` per photon per clock cycle in a delay
  line): loss is heralded by the fusion/measurement detectors, so a lost
  photon aborts the shot outright (``loss_aborts``).
* **fusion Pauli error** (``fusion_error`` per fusion): a uniformly
  random X/Y/Z on a uniformly random cluster photon, injected into the
  tableau as a sign update before the measurement sequence runs.
* **measurement flip** (``measurement_error`` per measurement, counting
  output readout): a measured node's *recorded* outcome bit is
  complemented — feed-forward and byproduct corrections then act on the
  wrong bit.  Flips that land on output-readout slots corrupt the
  classical result directly and fail the shot.

Shots with zero fault events never touch the tableau: a fault-free
execution deterministically passes the stabilizer check (verified once
per sampler as a calibration shot), so only faulty shots pay for a full
tableau run.  At realistic error rates this makes large shot counts
cheap.

Faulty shots themselves run **batched**: all supported fault channels
perturb only tableau *signs* (Pauli faults are sign updates, measurement
flips act on classical bits), so a whole chunk of faulty shots shares
one symplectic tableau and executes the measurement sequence once on
:class:`repro.sim.stabilizer_batch.BatchedStabilizerState` — per-shot
cost collapses to vectorized sign algebra.  ``engine="per-shot"`` keeps
the original one-tableau-per-shot path as the reference; the two produce
bit-identical tallies at a fixed seed (pass/fail per shot is a
deterministic function of the sampled fault configuration — random
measurement outcomes are a gauge the feed-forward corrections cancel —
and the fault configurations are drawn identically), which
``tests/sim/test_noisy.py`` pins and
``benchmarks/bench_noisy.py`` gates at >= 10x speedup.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuit.circuit import Circuit
from repro.hardware.noise import DEFAULT_NOISE, NoiseModel, success_probability
from repro.mbqc.pattern import MeasurementPattern
from repro.sim.pattern_sim import (
    StabilizerPatternResult,
    StabilizerPatternSimulator,
    pattern_is_clifford,
)
from repro.sim.stabilizer import StabilizerState, circuit_is_clifford

#: Default faulty shots per batched tableau chunk.  Peak chunk memory is
#: about ``chunk * 2 * pattern_nodes`` sign bytes plus the per-node
#: outcome vectors — a few MB at hundreds of nodes — while big enough to
#: amortize the shared symplectic work across the whole chunk.
DEFAULT_CHUNK_SHOTS = 512


@dataclass(frozen=True)
class FaultCounts:
    """Error-prone event counts of one program execution.

    Attributes:
        fusions: fusion operations (units: fusions; each may fail or
            introduce a Pauli error).
        measurements: single-photon measurements *including* the final
            readout of output photons (units: measurements).
        photon_cycles: photon x clock-cycle waits in delay lines (units:
            photon-cycles; each may lose the photon).
    """

    fusions: int
    measurements: int
    photon_cycles: int

    def __post_init__(self) -> None:
        if min(self.fusions, self.measurements, self.photon_cycles) < 0:
            raise ValueError("event counts cannot be negative")

    @classmethod
    def from_pattern(cls, pattern: MeasurementPattern) -> "FaultCounts":
        """Pattern-level accounting: one fusion per graph edge, one
        measurement per node (outputs are read out), one cycle of delay
        per photon.  The leanest consistent estimate for a pattern that
        has not been mapped to hardware."""
        n = pattern.graph.number_of_nodes()
        return cls(
            fusions=pattern.graph.number_of_edges(),
            measurements=n,
            photon_cycles=n,
        )

    @classmethod
    def from_program(cls, program) -> "FaultCounts":
        """Compiled-program accounting, matching
        :func:`repro.hardware.noise.program_log_fidelity`: the mapper's
        fusion tally, one measurement per pattern node, and a pessimistic
        three photon-cycles per resource state consumed."""
        return cls(
            fusions=program.num_fusions,
            measurements=program.pattern_nodes,
            photon_cycles=program.resource_states_used * 3,
        )

    def analytic_yield(self, model: NoiseModel = DEFAULT_NOISE) -> float:
        """Closed-form probability of a zero-fault execution."""
        return success_probability(
            self.fusions, self.measurements, self.photon_cycles, model
        )


@dataclass
class NoisySampleResult:
    """Tally of one :meth:`NoisySampler.run` call.

    All counters are shot counts except ``fusion_attempts`` (total
    fusion attempts, including repeat-until-success retries, over the
    shots that actually ran their fusion sequence — loss-aborted shots
    stop before their fusions and contribute nothing) and ``seconds``
    (wall time of the run).  ``engine`` records which execution path
    produced the tally (``"batched"`` or ``"per-shot"``; both are
    bit-identical at a fixed seed).
    """

    shots: int
    successes: int
    fault_free: int
    loss_aborts: int
    logical_failures: int
    executed: int
    fusion_attempts: int
    counts: FaultCounts
    model: NoiseModel
    seconds: float = 0.0
    engine: str = "batched"

    @property
    def yield_mc(self) -> float:
        """Fraction of shots whose output state passed the stabilizer
        check (fault-free shots pass by calibration)."""
        return self.successes / self.shots

    @property
    def fault_free_yield(self) -> float:
        """Fraction of shots with zero sampled fault events — the
        Monte-Carlo estimator of :meth:`FaultCounts.analytic_yield`."""
        return self.fault_free / self.shots

    @property
    def yield_analytic(self) -> float:
        """Closed-form prediction for ``fault_free_yield``."""
        return self.counts.analytic_yield(self.model)

    @property
    def sigma(self) -> float:
        """Binomial standard error of ``fault_free_yield`` at the
        analytic success probability."""
        p = self.yield_analytic
        return math.sqrt(p * (1.0 - p) / self.shots)

    @property
    def completed(self) -> int:
        """Shots that ran their full fusion sequence — everything except
        heralded loss aborts (which stop before their fusions)."""
        return self.shots - self.loss_aborts

    @property
    def shots_per_second(self) -> float:
        """Sampling throughput of the run (shots / wall seconds)."""
        if self.seconds <= 0.0:
            return float("inf")
        return self.shots / self.seconds

    @property
    def attempts_per_fusion(self) -> float:
        """Mean sampled fusion attempts per required fusion over the
        shots that completed their fusion sequence (expected
        ``1 / fusion_success`` under repeat-until-success; vacuously 1.0
        when no fusions completed)."""
        total = self.completed * self.counts.fusions
        if total == 0:
            return 1.0
        return self.fusion_attempts / total

    def agrees_with_analytic(self, k: float = 3.0) -> bool:
        """True when the sampled fault-free rate is within ``k`` binomial
        standard errors of the closed-form prediction (exact match
        required when the prediction is degenerate, i.e. 0 or 1)."""
        return abs(self.fault_free_yield - self.yield_analytic) <= k * self.sigma

    def summary(self) -> str:
        """One-line human-readable digest of the tally."""
        return (
            f"shots={self.shots} yield_mc={self.yield_mc:.4f} "
            f"fault_free={self.fault_free_yield:.4f} "
            f"analytic={self.yield_analytic:.4f} "
            f"(loss_aborts={self.loss_aborts}, "
            f"logical_failures={self.logical_failures}, "
            f"executed={self.executed}, "
            f"attempts/fusion={self.attempts_per_fusion:.3f})"
        )


class NoisySampler:
    """Batched Monte-Carlo noisy executor for Clifford patterns.

    Args:
        circuit: the source circuit (defines the ideal output stabilizer
            group the per-shot check tests against).  Must be Clifford.
        pattern: the measurement pattern to execute; defaults to the
            translation of *circuit*.  Must be Clifford (every
            measurement at a Pauli angle).
        model: per-event error probabilities (see
            :class:`repro.hardware.noise.NoiseModel`).  The degenerate
            ``fusion_success=0`` bound is rejected here (with fusions to
            perform, repeat-until-success never terminates: the yield is
            exactly 0 and attempts diverge — nothing to sample).
        counts: fault-event counts per shot; defaults to
            :meth:`FaultCounts.from_pattern`.  Pass
            :meth:`FaultCounts.from_program` for compiled-program
            accounting.
        seed: seeds the fault sampling and all tableau RNGs; two
            samplers with equal arguments and seed produce identical
            tallies bit for bit, on either engine.

    Fault configurations for all shots are sampled vectorized up front;
    only shots with at least one non-loss fault event execute on the
    tableau.  The default ``batched`` engine runs those faulty shots in
    chunks on one shared-symplectic batched tableau
    (:class:`repro.sim.stabilizer_batch.BatchedStabilizerState`);
    ``per-shot`` copies the base graph state per shot (the original
    reference path).
    """

    def __init__(
        self,
        circuit: Circuit,
        pattern: Optional[MeasurementPattern] = None,
        model: NoiseModel = DEFAULT_NOISE,
        counts: Optional[FaultCounts] = None,
        seed: Optional[int] = None,
    ):
        from repro.mbqc.translate import circuit_to_pattern

        if not circuit_is_clifford(circuit):
            raise ValueError(
                "NoisySampler needs a Clifford circuit; non-Clifford "
                "programs have no scalable exact reference"
            )
        if pattern is None:
            pattern = circuit_to_pattern(circuit)
        if not pattern_is_clifford(pattern):
            raise ValueError(
                "NoisySampler needs a Clifford pattern (every measurement "
                "at a Pauli angle)"
            )
        if len(pattern.outputs) != circuit.num_qubits:
            raise ValueError(
                f"pattern has {len(pattern.outputs)} outputs for a "
                f"{circuit.num_qubits}-qubit circuit"
            )
        self.circuit = circuit
        self.pattern = pattern
        self.model = model
        self.counts = counts or FaultCounts.from_pattern(pattern)
        if model.fusion_success == 0.0 and self.counts.fusions > 0:
            raise ValueError(
                f"fusion_success=0 with {self.counts.fusions} fusions to "
                "perform: repeat-until-success never terminates, the "
                "yield is exactly 0 and fusion attempts diverge "
                "(expected_fusion_attempts reports inf) — nothing to "
                "sample"
            )
        self.seed = seed
        self._outputs = frozenset(pattern.outputs)
        # node list in tableau-qubit order: graph_state sorts nodes, so
        # qubit i of the base tableau hosts self._nodes[i]
        self._nodes: List[int] = sorted(pattern.graph.nodes())
        self._base, self._index = StabilizerState.graph_state(
            pattern.graph, zero_nodes=pattern.inputs
        )
        circuit_state = StabilizerState(circuit.num_qubits)
        circuit_state.apply_circuit(circuit)
        self._circuit_rows = circuit_state.stabilizer_rows()
        # calibration: a fault-free execution must pass the stabilizer
        # check, or counting zero-fault shots as successes would be wrong
        if not self._execute_shot(
            np.random.default_rng(self.seed), (), frozenset()
        ):
            raise RuntimeError(
                "fault-free execution failed the stabilizer check; "
                "the pattern does not implement the circuit"
            )

    # ------------------------------------------------------------------
    def _stabilizers_hold(self, result: StabilizerPatternResult) -> bool:
        """All ideal-circuit stabilizer generators hold, with sign, on
        the pattern's output qubits."""
        for gx, gz, gr in self._circuit_rows:
            pauli = result.output_pauli(self.pattern.outputs, gx, gz)
            if result.state.expectation(pauli) != gr:
                return False
        return True

    def _execute_shot(
        self,
        rng: np.random.Generator,
        pauli_faults: Tuple[Tuple[int, str], ...],
        outcome_flips: frozenset,
    ) -> bool:
        """Run one shot on a copy of the base tableau; True on success."""
        state = self._base.copy()
        state.rng = rng
        for qubit, kind in pauli_faults:
            getattr(state, f"{kind}_gate")(qubit)
        simulator = StabilizerPatternSimulator(
            self.pattern, outcome_flips=outcome_flips
        )
        result = simulator.run(prepared=(state, self._index))
        return self._stabilizers_hold(result)

    def _execute_chunk(
        self,
        chunk: List[Tuple[Optional[np.random.Generator], tuple, frozenset]],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Run a chunk of faulty shots on one batched tableau; returns
        the per-shot boolean pass mask of the output stabilizer check."""
        from repro.sim.pattern_sim import BatchedStabilizerPatternSimulator
        from repro.sim.stabilizer_batch import BatchedStabilizerState

        size = len(chunk)
        state = BatchedStabilizerState.from_state(self._base, size)
        state.rng = rng
        flip_map: Dict[int, np.ndarray] = {}
        for element, (_, pauli_faults, flips) in enumerate(chunk):
            for qubit, kind in pauli_faults:
                state.inject_pauli(element, qubit, kind)
            for node in flips:
                flip_map.setdefault(
                    node, np.zeros(size, dtype=np.uint8)
                )[element] = 1
        simulator = BatchedStabilizerPatternSimulator(
            self.pattern, outcome_flips=flip_map
        )
        result = simulator.run(prepared=(state, self._index))
        ok = np.ones(size, dtype=bool)
        for gx, gz, gr in self._circuit_rows:
            pauli = result.output_pauli(self.pattern.outputs, gx, gz)
            values = result.state.expectation(pauli)
            if values is None:  # pragma: no cover - faults are sign-only
                raise RuntimeError(
                    "output stabilizer became random under sign-only faults"
                )
            ok &= values == gr
        return ok

    # ------------------------------------------------------------------
    def run(
        self,
        shots: int,
        engine: str = "batched",
        chunk_size: int = DEFAULT_CHUNK_SHOTS,
    ) -> NoisySampleResult:
        """Sample and execute *shots* noisy shots; returns the tally.

        Args:
            shots: number of Monte-Carlo shots (> 0).
            engine: ``"batched"`` (default) executes faulty shots in
                chunks on the shared-symplectic batched tableau;
                ``"per-shot"`` is the original reference path.  Tallies
                are bit-identical between the two at a fixed seed.
            chunk_size: faulty shots per batched tableau; bounds peak
                memory at roughly ``chunk_size * 2 * pattern_nodes``
                sign bytes (ignored by ``per-shot``).
        """
        if shots <= 0:
            raise ValueError("shots must be positive")
        if engine not in ("batched", "per-shot"):
            raise ValueError(
                f"unknown engine {engine!r}; use 'batched' or 'per-shot'"
            )
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        t0 = time.perf_counter()
        counts, model = self.counts, self.model
        root = np.random.SeedSequence(self.seed)
        master_seed, *shot_seeds = root.spawn(shots + 1)
        rng = np.random.default_rng(master_seed)

        def event_counts(n_events: int, rate: float) -> np.ndarray:
            if n_events == 0 or rate <= 0.0:
                return np.zeros(shots, dtype=np.int64)
            return rng.binomial(n_events, min(rate, 1.0), size=shots)

        losses = event_counts(counts.photon_cycles, model.cycle_loss)
        fusion_errors = event_counts(counts.fusions, model.fusion_error)
        meas_errors = event_counts(counts.measurements, model.measurement_error)
        if counts.fusions and model.fusion_success < 1.0:
            attempts = counts.fusions + rng.negative_binomial(
                counts.fusions, model.fusion_success, size=shots
            )
        else:
            attempts = np.full(shots, counts.fusions, dtype=np.int64)

        n_qubits = self._base.n
        n_nodes = len(self._nodes)
        fault_free = loss_aborts = logical_failures = 0
        pending: List[Tuple[Optional[np.random.Generator], tuple, frozenset]] = []
        for i in range(shots):
            if losses[i] > 0:
                loss_aborts += 1
                continue
            n_fus, n_meas = int(fusion_errors[i]), int(meas_errors[i])
            if n_fus == 0 and n_meas == 0:
                fault_free += 1
                continue
            shot_rng = np.random.default_rng(shot_seeds[i])
            pauli_faults = tuple(
                (int(q), "xyz"[int(p)])
                for q, p in zip(
                    shot_rng.integers(0, n_qubits, size=n_fus),
                    shot_rng.integers(0, 3, size=n_fus),
                )
            )
            # the binomial draw counts *distinct* erring measurements, so
            # flip slots are placed without replacement
            flips = set()
            readout_flip = False
            for slot in shot_rng.choice(
                counts.measurements, size=n_meas, replace=False
            ):
                node = self._nodes[slot] if slot < n_nodes else None
                if node is None or node in self._outputs:
                    readout_flip = True
                else:
                    flips.add(node)
            if readout_flip:
                # a flipped output readout is classically wrong whatever
                # the quantum state; no tableau run needed
                logical_failures += 1
                continue
            # only the per-shot engine consumes the generator later; the
            # batched engine draws from the master rng, so holding every
            # pending generator would waste memory at large shot counts
            pending.append((
                shot_rng if engine == "per-shot" else None,
                pauli_faults,
                frozenset(flips),
            ))

        executed = len(pending)
        successes = fault_free
        if engine == "per-shot":
            for shot_rng, pauli_faults, flips in pending:
                if self._execute_shot(shot_rng, pauli_faults, flips):
                    successes += 1
                else:
                    logical_failures += 1
        else:
            for start in range(0, executed, chunk_size):
                ok = self._execute_chunk(
                    pending[start : start + chunk_size], rng
                )
                passed = int(ok.sum())
                successes += passed
                logical_failures += len(ok) - passed

        # loss-aborted shots stop before their fusion sequence, so their
        # pre-sampled attempt counts never happened and are not tallied
        fusion_attempts = int(attempts[losses == 0].sum())
        return NoisySampleResult(
            shots=shots,
            successes=successes,
            fault_free=fault_free,
            loss_aborts=loss_aborts,
            logical_failures=logical_failures,
            executed=executed,
            fusion_attempts=fusion_attempts,
            counts=counts,
            model=model,
            seconds=time.perf_counter() - t0,
            engine=engine,
        )


def sample_yield(
    circuit: Circuit,
    shots: int = 2000,
    pattern: Optional[MeasurementPattern] = None,
    model: NoiseModel = DEFAULT_NOISE,
    counts: Optional[FaultCounts] = None,
    seed: Optional[int] = 7,
    engine: str = "batched",
    chunk_size: int = DEFAULT_CHUNK_SHOTS,
) -> NoisySampleResult:
    """One-call convenience wrapper around :class:`NoisySampler`."""
    sampler = NoisySampler(
        circuit, pattern=pattern, model=model, counts=counts, seed=seed
    )
    return sampler.run(shots, engine=engine, chunk_size=chunk_size)
