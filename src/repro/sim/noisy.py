"""Monte-Carlo noisy execution of Clifford measurement patterns.

The closed-form :mod:`repro.hardware.noise` model predicts the
probability that one execution of a compiled program sees *zero* error
events.  This module samples the actual fault process shot by shot and
executes the pattern under each sampled fault configuration on the
bit-packed stabilizer tableau, producing two yields per run:

* ``fault_free_yield`` — the fraction of shots in which no error event
  fired at all.  Its expectation is exactly the analytic
  :func:`repro.hardware.noise.success_probability`, which makes the two
  code paths cross-validate each other (the CI gate in
  ``tests/sim/test_noisy.py`` enforces 3-sigma binomial agreement).
* ``yield_mc`` — the fraction of shots whose *executed* output state
  still satisfies every stabilizer generator of the ideal circuit
  output.  This is new information the closed form cannot provide:
  faults that land in the output state's stabilizer group (e.g. Z errors
  on a basis-state output) are benign, so ``yield_mc >=
  fault_free_yield`` and the gap measures the benign-fault fraction.

Sampled fault channels, per shot (probabilities are per event):

* **fusion failure** (``p = 1 - fusion_success``): linear-optics fusions
  herald failure; with repeat-until-success the shot still proceeds but
  burns extra attempts, tallied in ``fusion_attempts`` (expected
  ``fusions / fusion_success``).
* **photon loss** (``cycle_loss`` per photon per clock cycle in a delay
  line): loss is heralded by the fusion/measurement detectors, so a lost
  photon aborts the shot outright (``loss_aborts``).
* **fusion Pauli error** (``fusion_error`` per fusion): a uniformly
  random X/Y/Z on a uniformly random cluster photon, injected into the
  tableau as a sign update before the measurement sequence runs.
* **measurement flip** (``measurement_error`` per measurement, counting
  output readout): a measured node's *recorded* outcome bit is
  complemented — feed-forward and byproduct corrections then act on the
  wrong bit.  Flips that land on output-readout slots corrupt the
  classical result directly and fail the shot.

Shots with zero fault events never touch the tableau: a fault-free
execution deterministically passes the stabilizer check (verified once
per sampler as a calibration shot), so only faulty shots pay for a full
tableau run.  At realistic error rates this makes large shot counts
cheap.

Faulty shots themselves run on one of three engines, fastest first:

* ``engine="frame"`` (default): the bit-packed Pauli-frame engine
  (:mod:`repro.sim.frame`).  Every supported fault channel is a
  sign-only perturbation of one fixed Clifford execution, so after a
  single reference tableau run each faulty shot reduces to an X/Z flip
  frame XOR-propagated 64 shots per ``uint64`` word — per-shot cost is
  independent of qubit count.
* ``engine="batched"``: a whole chunk of faulty shots shares one
  symplectic tableau and executes the measurement sequence once on
  :class:`repro.sim.stabilizer_batch.BatchedStabilizerState` — per-shot
  cost collapses to vectorized sign algebra over the ``(batch, 2n)``
  sign plane.
* ``engine="per-shot"``: the original one-tableau-per-shot reference
  path.

All three produce bit-identical tallies at a fixed seed: pass/fail per
shot is a deterministic function of the sampled fault configuration —
random measurement outcomes are a gauge the feed-forward corrections
cancel — and the fault configurations are drawn identically (sampling
is separated from execution).  ``tests/sim/test_noisy.py`` pins the
equivalence across engines, seeds, chunk sizes and noise grids;
``benchmarks/bench_noisy.py`` gates batched >= 10x over per-shot and
``benchmarks/bench_frame.py`` gates frame >= 10x over batched.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.circuit.circuit import Circuit
from repro.hardware.degradation import (
    SiteNoiseMap,
    SiteProfile,
    dead_assigned_fusions,
    site_analytic_yield,
)
from repro.hardware.noise import DEFAULT_NOISE, NoiseModel, success_probability
from repro.mbqc.pattern import MeasurementPattern
from repro.sim.pattern_sim import (
    StabilizerPatternResult,
    StabilizerPatternSimulator,
    pattern_is_clifford,
)
from repro.sim.stabilizer import StabilizerState, non_clifford_gate_counts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.compiler import CompiledProgram
    from repro.sim.frame import PauliFrameSimulator

#: Default faulty shots per batched tableau chunk.  Peak chunk memory is
#: about ``chunk * 2 * pattern_nodes`` sign bytes plus the per-node
#: outcome vectors — a few MB at hundreds of nodes — while big enough to
#: amortize the shared symplectic work across the whole chunk.
DEFAULT_CHUNK_SHOTS = 512

#: Default faulty shots per frame-engine chunk.  Frames pack 64 shots
#: per uint64 word, and each measurement step costs a handful of
#: word-vector XORs regardless of chunk size — so much larger chunks
#: amortize the per-step Python dispatch; 64k shots is ~1k words, i.e.
#: ``(2n + steps) * 8`` KB of frame matrices.
DEFAULT_FRAME_CHUNK_SHOTS = 1 << 16

#: Engines `NoisySampler.run` accepts, fastest first.
ENGINES = ("frame", "batched", "per-shot")

#: Random-key matrix budget (elements) per block when placing distinct
#: measurement-flip slots; bounds peak memory at ~32 MB of float64 keys
#: however many shots carry flips.
_FLIP_KEY_BLOCK = 1 << 22


@dataclass(frozen=True)
class FaultCounts:
    """Error-prone event counts of one program execution.

    Attributes:
        fusions: fusion operations (units: fusions; each may fail or
            introduce a Pauli error).
        measurements: single-photon measurements *including* the final
            readout of output photons (units: measurements).
        photon_cycles: photon x clock-cycle waits in delay lines (units:
            photon-cycles; each may lose the photon).
    """

    fusions: int
    measurements: int
    photon_cycles: int

    def __post_init__(self) -> None:
        if min(self.fusions, self.measurements, self.photon_cycles) < 0:
            raise ValueError("event counts cannot be negative")

    @classmethod
    def from_pattern(cls, pattern: MeasurementPattern) -> "FaultCounts":
        """Pattern-level accounting: one fusion per graph edge, one
        measurement per node (outputs are read out), one cycle of delay
        per photon.  The leanest consistent estimate for a pattern that
        has not been mapped to hardware."""
        n = pattern.graph.number_of_nodes()
        return cls(
            fusions=pattern.graph.number_of_edges(),
            measurements=n,
            photon_cycles=n,
        )

    @classmethod
    def from_program(cls, program: "CompiledProgram") -> "FaultCounts":
        """Compiled-program accounting, matching
        :func:`repro.hardware.noise.program_log_fidelity`: the mapper's
        fusion tally, one measurement per pattern node, and a pessimistic
        three photon-cycles per resource state consumed."""
        return cls(
            fusions=program.num_fusions,
            measurements=program.pattern_nodes,
            photon_cycles=program.resource_states_used * 3,
        )

    def analytic_yield(self, model: NoiseModel = DEFAULT_NOISE) -> float:
        """Closed-form probability of a zero-fault execution."""
        return success_probability(
            self.fusions, self.measurements, self.photon_cycles, model
        )


@dataclass
class NoisySampleResult:
    """Tally of one :meth:`NoisySampler.run` call.

    All counters are shot counts except ``fusion_attempts`` (total
    fusion attempts, including repeat-until-success retries, over the
    shots that actually ran their fusion sequence — loss-aborted shots
    stop before their fusions and contribute nothing) and ``seconds``
    (wall time of the run).  ``engine`` records which execution path
    produced the tally (``"frame"``, ``"batched"`` or ``"per-shot"``;
    all bit-identical at a fixed seed).
    """

    shots: int
    successes: int
    fault_free: int
    loss_aborts: int
    logical_failures: int
    executed: int
    fusion_attempts: int
    counts: FaultCounts
    model: NoiseModel
    seconds: float = 0.0
    engine: str = "frame"
    #: Per-site closed-form zero-fault probability when the run sampled
    #: a heterogeneous :class:`repro.hardware.degradation.SiteNoiseMap`
    #: (None for scalar/uniform runs, where ``counts`` + ``model``
    #: already determine the analytic yield).
    analytic_override: Optional[float] = None

    @property
    def yield_mc(self) -> float:
        """Fraction of shots whose output state passed the stabilizer
        check (fault-free shots pass by calibration)."""
        return self.successes / self.shots

    @property
    def fault_free_yield(self) -> float:
        """Fraction of shots with zero sampled fault events — the
        Monte-Carlo estimator of :meth:`FaultCounts.analytic_yield`."""
        return self.fault_free / self.shots

    @property
    def yield_analytic(self) -> float:
        """Closed-form prediction for ``fault_free_yield`` (the
        per-site product when the run used a heterogeneous site map)."""
        if self.analytic_override is not None:
            return self.analytic_override
        return self.counts.analytic_yield(self.model)

    @property
    def sigma(self) -> float:
        """Binomial standard error of ``fault_free_yield`` at the
        analytic success probability."""
        p = self.yield_analytic
        return math.sqrt(p * (1.0 - p) / self.shots)

    @property
    def completed(self) -> int:
        """Shots that ran their full fusion sequence — everything except
        heralded loss aborts (which stop before their fusions)."""
        return self.shots - self.loss_aborts

    @property
    def shots_per_second(self) -> float:
        """Sampling throughput of the run (shots / wall seconds)."""
        if self.seconds <= 0.0:
            return float("inf")
        return self.shots / self.seconds

    @property
    def attempts_per_fusion(self) -> float:
        """Mean sampled fusion attempts per required fusion over the
        shots that completed their fusion sequence (expected
        ``1 / fusion_success`` under repeat-until-success; vacuously 1.0
        when no fusions completed)."""
        total = self.completed * self.counts.fusions
        if total == 0:
            return 1.0
        return self.fusion_attempts / total

    def agrees_with_analytic(self, k: float = 3.0) -> bool:
        """True when the sampled fault-free rate is within ``k`` binomial
        standard errors of the closed-form prediction (exact match
        required when the prediction is degenerate, i.e. 0 or 1)."""
        return abs(self.fault_free_yield - self.yield_analytic) <= k * self.sigma

    def summary(self) -> str:
        """One-line human-readable digest of the tally."""
        return (
            f"shots={self.shots} yield_mc={self.yield_mc:.4f} "
            f"fault_free={self.fault_free_yield:.4f} "
            f"analytic={self.yield_analytic:.4f} "
            f"(loss_aborts={self.loss_aborts}, "
            f"logical_failures={self.logical_failures}, "
            f"executed={self.executed}, "
            f"attempts/fusion={self.attempts_per_fusion:.3f})"
        )


class NoisySampler:
    """Batched Monte-Carlo noisy executor for Clifford patterns.

    Args:
        circuit: the source circuit (defines the ideal output stabilizer
            group the per-shot check tests against).  Must be Clifford.
        pattern: the measurement pattern to execute; defaults to the
            translation of *circuit*.  Must be Clifford (every
            measurement at a Pauli angle).
        model: per-event error probabilities (see
            :class:`repro.hardware.noise.NoiseModel`).  The degenerate
            ``fusion_success=0`` bound is rejected here (with fusions to
            perform, repeat-until-success never terminates: the yield is
            exactly 0 and attempts diverge — nothing to sample).
        counts: fault-event counts per shot; defaults to
            :meth:`FaultCounts.from_pattern`.  Pass
            :meth:`FaultCounts.from_program` for compiled-program
            accounting.
        seed: seeds the fault sampling and all tableau RNGs; two
            samplers with equal arguments and seed produce identical
            tallies bit for bit, on every engine.
        site_map: optional per-site
            :class:`repro.hardware.degradation.SiteNoiseMap`.  When
            given it takes precedence over *model*: a map that is
            uniform (no dead sites, constant planes) collapses to its
            scalar model and runs the unchanged scalar sampling path —
            bit-identical to passing that ``NoiseModel`` directly —
            while a heterogeneous map switches the fault-config sampler
            to per-event probability vectors indexed by *site_profile*.
            A map assigning any fusion to a dead / zero-success site is
            rejected here (repeat-until-success never terminates there;
            the yield is exactly 0 — re-route or recompile instead).
        site_profile: per-event site assignment
            (:func:`repro.hardware.degradation.program_site_profile`);
            required with a heterogeneous *site_map*, and its event
            counts must match *counts*.

    Fault configurations for all shots are sampled vectorized up front,
    and the shot classification (loss abort / fault free / readout
    flip) is pure numpy mask algebra — tally-only shots never cost a
    Python iteration.  Only shots with at least one non-loss,
    non-readout fault event execute, on the engine of choice: the
    default ``frame`` engine reduces them to bit-packed Pauli flip
    frames (:class:`repro.sim.frame.PauliFrameSimulator`; per-shot cost
    independent of qubit count), ``batched`` runs chunks on one
    shared-symplectic batched tableau
    (:class:`repro.sim.stabilizer_batch.BatchedStabilizerState`), and
    ``per-shot`` copies the base graph state per shot (the original
    reference path).
    """

    def __init__(
        self,
        circuit: Circuit,
        pattern: Optional[MeasurementPattern] = None,
        model: NoiseModel = DEFAULT_NOISE,
        counts: Optional[FaultCounts] = None,
        seed: Optional[int] = None,
        site_map: Optional[SiteNoiseMap] = None,
        site_profile: Optional[SiteProfile] = None,
    ) -> None:
        from repro.mbqc.translate import circuit_to_pattern

        offenders = non_clifford_gate_counts(circuit)
        if offenders:
            listing = ", ".join(
                f"{name} x{count}"
                for name, count in sorted(
                    offenders.items(), key=lambda item: (-item[1], item[0])
                )
            )
            raise ValueError(
                f"NoisySampler needs a Clifford circuit; found "
                f"{sum(offenders.values())} non-Clifford gate(s): "
                f"{listing} — non-Clifford programs have no scalable "
                "exact reference"
            )
        if pattern is None:
            pattern = circuit_to_pattern(circuit)
        if not pattern_is_clifford(pattern):
            raise ValueError(
                "NoisySampler needs a Clifford pattern (every measurement "
                "at a Pauli angle)"
            )
        if len(pattern.outputs) != circuit.num_qubits:
            raise ValueError(
                f"pattern has {len(pattern.outputs)} outputs for a "
                f"{circuit.num_qubits}-qubit circuit"
            )
        self.circuit = circuit
        self.pattern = pattern
        self.counts = counts or FaultCounts.from_pattern(pattern)
        # per-site sampling state: probability vectors indexed per fault
        # event (None -> scalar path), plus the per-site closed form
        self._site_rates: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = None
        self._analytic_override: Optional[float] = None
        if site_map is not None:
            uniform = site_map.as_uniform_model()
            if uniform is not None:
                # uniform map == scalar model: run the unchanged scalar
                # path so the tallies stay bit-identical to NoiseModel
                model = uniform
            else:
                if site_profile is None:
                    raise ValueError(
                        "a heterogeneous site_map needs a site_profile "
                        "assigning each fault event to its site (see "
                        "repro.hardware.degradation.program_site_profile)"
                    )
                if site_profile.shape != site_map.shape:
                    raise ValueError(
                        f"site_profile shape {site_profile.shape} != "
                        f"site_map shape {site_map.shape}"
                    )
                if (
                    site_profile.fusion_sites.size != self.counts.fusions
                    or site_profile.cycle_sites.size
                    != self.counts.photon_cycles
                ):
                    raise ValueError(
                        "site_profile event counts "
                        f"({site_profile.fusion_sites.size} fusions, "
                        f"{site_profile.cycle_sites.size} photon-cycles) "
                        f"do not match FaultCounts ({self.counts.fusions} "
                        f"fusions, {self.counts.photon_cycles} "
                        "photon-cycles)"
                    )
                dead = dead_assigned_fusions(site_profile, site_map)
                if dead:
                    raise ValueError(
                        f"{dead} fusion(s) assigned to dead / "
                        "zero-fusion-success sites: repeat-until-success "
                        "never terminates there and the yield is exactly "
                        "0 — re-route or recompile around the dead cells "
                        "(repro.core.recovery) instead of sampling"
                    )
                assert site_map.fusion_error is not None
                assert site_map.cycle_loss is not None
                assert site_map.fusion_success is not None
                self._site_rates = (
                    site_map.fusion_error.ravel()[site_profile.fusion_sites],
                    site_map.cycle_loss.ravel()[site_profile.cycle_sites],
                    site_map.fusion_success.ravel()[
                        site_profile.fusion_sites
                    ],
                )
                self._analytic_override = site_analytic_yield(
                    site_profile, site_map, self.counts.measurements
                )
                model = site_map.base
        self.model = model
        if model.fusion_success == 0.0 and self.counts.fusions > 0:
            raise ValueError(
                f"fusion_success=0 with {self.counts.fusions} fusions to "
                "perform: repeat-until-success never terminates, the "
                "yield is exactly 0 and fusion attempts diverge "
                "(expected_fusion_attempts reports inf) — nothing to "
                "sample"
            )
        self.seed = seed
        self._frame_sim = None  # compiled lazily on first engine="frame"
        self._outputs = frozenset(pattern.outputs)
        # node list in tableau-qubit order: graph_state sorts nodes, so
        # qubit i of the base tableau hosts self._nodes[i]
        self._nodes: List[int] = sorted(pattern.graph.nodes())
        self._base, self._index = StabilizerState.graph_state(
            pattern.graph, zero_nodes=pattern.inputs
        )
        # measurement slot -> does a flip there corrupt the classical
        # readout directly?  Slots land on tableau qubits in order (the
        # node list is sorted exactly like the graph-state qubits);
        # slots at or beyond the node count model extra hardware
        # readouts, which are classical by definition.
        slot_readout = np.ones(self.counts.measurements, dtype=bool)
        for slot in range(min(self.counts.measurements, len(self._nodes))):
            slot_readout[slot] = self._nodes[slot] in self._outputs
        self._slot_readout = slot_readout
        circuit_state = StabilizerState(circuit.num_qubits)
        circuit_state.apply_circuit(circuit)
        self._circuit_rows = circuit_state.stabilizer_rows()
        # calibration: a fault-free execution must pass the stabilizer
        # check, or counting zero-fault shots as successes would be wrong
        if not self._execute_shot(
            np.random.default_rng(self.seed), (), frozenset()
        ):
            raise RuntimeError(
                "fault-free execution failed the stabilizer check; "
                "the pattern does not implement the circuit"
            )

    # ------------------------------------------------------------------
    def _stabilizers_hold(self, result: StabilizerPatternResult) -> bool:
        """All ideal-circuit stabilizer generators hold, with sign, on
        the pattern's output qubits."""
        for gx, gz, gr in self._circuit_rows:
            pauli = result.output_pauli(self.pattern.outputs, gx, gz)
            if result.state.expectation(pauli) != gr:
                return False
        return True

    def _execute_shot(
        self,
        rng: np.random.Generator,
        pauli_faults: Tuple[Tuple[int, str], ...],
        outcome_flips: frozenset,
    ) -> bool:
        """Run one shot on a copy of the base tableau; True on success."""
        state = self._base.copy()
        state.rng = rng
        for qubit, kind in pauli_faults:
            getattr(state, f"{kind}_gate")(qubit)
        simulator = StabilizerPatternSimulator(
            self.pattern, outcome_flips=outcome_flips
        )
        result = simulator.run(prepared=(state, self._index))
        return self._stabilizers_hold(result)

    def _execute_chunk(
        self,
        chunk: List[Tuple[tuple, frozenset]],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Run a chunk of faulty shots on one batched tableau; returns
        the per-shot boolean pass mask of the output stabilizer check."""
        from repro.sim.pattern_sim import BatchedStabilizerPatternSimulator
        from repro.sim.stabilizer_batch import BatchedStabilizerState

        size = len(chunk)
        state = BatchedStabilizerState.from_state(self._base, size)
        state.rng = rng
        flip_map: Dict[int, np.ndarray] = {}
        for element, (pauli_faults, flips) in enumerate(chunk):
            for qubit, kind in pauli_faults:
                state.inject_pauli(element, qubit, kind)
            for node in flips:
                flip_map.setdefault(
                    node, np.zeros(size, dtype=np.uint8)
                )[element] = 1
        simulator = BatchedStabilizerPatternSimulator(
            self.pattern, outcome_flips=flip_map
        )
        result = simulator.run(prepared=(state, self._index))
        ok = np.ones(size, dtype=bool)
        for gx, gz, gr in self._circuit_rows:
            pauli = result.output_pauli(self.pattern.outputs, gx, gz)
            values = result.state.expectation(pauli)
            if values is None:  # pragma: no cover - faults are sign-only
                raise RuntimeError(
                    "output stabilizer became random under sign-only faults"
                )
            ok &= values == gr
        return ok

    def _place_flips(
        self, n_meas: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Place each faulty shot's erring-measurement slots, in bulk.

        The binomial event count is the number of *distinct* erring
        measurements, so slots are placed without replacement: every
        shot with flips gets a row of random keys over the measurement
        slots and takes its ``n_meas`` smallest (drawn in fixed-size
        blocks to bound the key matrix at ``_FLIP_KEY_BLOCK``
        elements).  Returns ``(readout, flip_shot, flip_qubit)``:
        ``readout`` flags faulty rows with a flip on an output-readout
        slot (classically wrong whatever the quantum state — those
        shots never execute); the flat, shot-sorted ``(flip_shot,
        flip_qubit)`` entries are the remaining rows' flips on
        measured, non-output tableau qubits.
        """
        readout = np.zeros(n_meas.size, dtype=bool)
        rows = np.flatnonzero(n_meas)
        if rows.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return readout, empty, empty
        m_slots = self.counts.measurements
        shot_parts = []
        qubit_parts = []
        block = max(1, _FLIP_KEY_BLOCK // max(1, m_slots))
        for start in range(0, rows.size, block):
            sub = rows[start : start + block]
            keys = rng.random((sub.size, m_slots))
            order = np.argsort(keys, axis=1)
            chosen = np.arange(m_slots)[None, :] < n_meas[sub][:, None]
            local = np.nonzero(chosen)[0]  # block-row per chosen slot
            slots = order[chosen]
            block_readout = np.zeros(sub.size, dtype=bool)
            np.logical_or.at(block_readout, local, self._slot_readout[slots])
            readout[sub] = block_readout
            keep = ~block_readout[local]
            shot_parts.append(sub[local[keep]])
            qubit_parts.append(slots[keep])
        return (
            readout,
            np.concatenate(shot_parts),
            np.concatenate(qubit_parts),
        )

    def _frame_simulator(self) -> "PauliFrameSimulator":
        """Compile (once) and return the bit-packed frame engine.

        The simulator stays self-contained: its own reference run
        re-checks the calibration this sampler's ``__init__`` already
        proved (one extra scalar pattern execution, once per sampler)
        and its gauge reseeds stay enabled even though this caller only
        consumes the tally-invariant pass mask — the frames it would
        hand out are distribution-correct either way.
        """
        if self._frame_sim is None:
            from repro.sim.frame import PauliFrameSimulator

            self._frame_sim = PauliFrameSimulator(
                self.pattern,
                circuit_rows=self._circuit_rows,
                prepared=(self._base.copy(), self._index),
                seed=self.seed,
            )
        return self._frame_sim

    # ------------------------------------------------------------------
    def run(
        self,
        shots: int,
        engine: str = "frame",
        chunk_size: Optional[int] = None,
    ) -> NoisySampleResult:
        """Sample and execute *shots* noisy shots; returns the tally.

        Args:
            shots: number of Monte-Carlo shots (> 0).
            engine: ``"frame"`` (default) executes faulty shots as
                bit-packed Pauli flip frames; ``"batched"`` runs them in
                chunks on the shared-symplectic batched tableau;
                ``"per-shot"`` is the original reference path.  Tallies
                are bit-identical across the three at a fixed seed.
            chunk_size: faulty shots per execution chunk (ignored by
                ``per-shot``).  Defaults per engine: 64k for ``frame``
                (~1k uint64 words per frame row), 512 for ``batched``
                (bounding peak memory at roughly ``chunk_size * 2 *
                pattern_nodes`` sign bytes).
        """
        if shots <= 0:
            raise ValueError("shots must be positive")
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; use one of {', '.join(ENGINES)}"
            )
        if chunk_size is None:
            chunk_size = (
                DEFAULT_FRAME_CHUNK_SHOTS
                if engine == "frame"
                else DEFAULT_CHUNK_SHOTS
            )
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        t0 = time.perf_counter()
        counts, model = self.counts, self.model
        rng = np.random.default_rng(self.seed)

        def event_counts(n_events: int, rate: float) -> np.ndarray:
            if n_events == 0 or rate <= 0.0:
                return np.zeros(shots, dtype=np.int64)
            return rng.binomial(n_events, min(rate, 1.0), size=shots)

        def hetero_event_counts(rates: np.ndarray) -> np.ndarray:
            # Poisson-binomial draw over per-event probabilities: group
            # events by unique rate (site maps have few distinct values)
            # and draw one binomial per group.  np.unique sorts, so the
            # draw order — hence the tally at a fixed seed — is a pure
            # function of the rate multiset.
            out = np.zeros(shots, dtype=np.int64)
            for value, group in zip(*np.unique(rates, return_counts=True)):
                if value > 0.0:
                    out += rng.binomial(
                        int(group), min(float(value), 1.0), size=shots
                    )
            return out

        if self._site_rates is not None:
            # heterogeneous site map: per-fusion / per-cycle rates are
            # vectors indexed by the program's site assignment (the
            # measurement channel stays scalar — readout is not a grid
            # operation).  The engines downstream are untouched: they
            # consume fault placements, never probabilities.
            fe_rates, cl_rates, fs_rates = self._site_rates
            losses = hetero_event_counts(cl_rates)
            fusion_errors = hetero_event_counts(fe_rates)
            meas_errors = event_counts(
                counts.measurements, model.measurement_error
            )
            attempts = np.full(shots, counts.fusions, dtype=np.int64)
            for value, group in zip(*np.unique(fs_rates, return_counts=True)):
                if value < 1.0:  # init rejects 0-success assignments
                    attempts += rng.negative_binomial(
                        int(group), float(value), size=shots
                    )
        else:
            losses = event_counts(counts.photon_cycles, model.cycle_loss)
            fusion_errors = event_counts(counts.fusions, model.fusion_error)
            meas_errors = event_counts(
                counts.measurements, model.measurement_error
            )
            if counts.fusions and model.fusion_success < 1.0:
                attempts = counts.fusions + rng.negative_binomial(
                    counts.fusions, model.fusion_success, size=shots
                )
            else:
                attempts = np.full(shots, counts.fusions, dtype=np.int64)

        # shot classification is pure mask algebra: a lost shot aborts
        # whatever else it drew, and a shot with zero non-loss events is
        # tally-only — neither costs a Python iteration
        loss_mask = losses > 0
        faulty_mask = ~loss_mask & ((fusion_errors > 0) | (meas_errors > 0))
        loss_aborts = int(loss_mask.sum())
        fault_free = int(shots - loss_aborts - faulty_mask.sum())

        # fault placement for every faulty shot, in bulk from the master
        # stream (execution never feeds back into sampling, so tallies
        # cannot depend on the engine or the chunking)
        n_fus = fusion_errors[faulty_mask]
        fault_shot = np.repeat(np.arange(n_fus.size), n_fus)
        fault_qubit = rng.integers(0, self._base.n, size=fault_shot.size)
        fault_kind = rng.integers(0, 3, size=fault_shot.size)  # "xyz" index
        readout, flip_shot, flip_qubit = self._place_flips(
            meas_errors[faulty_mask], rng
        )

        # a flipped output readout is classically wrong whatever the
        # quantum state, so those shots skip execution outright
        logical_failures = int(readout.sum())
        executed = int(n_fus.size - logical_failures)
        position = np.cumsum(~readout) - 1  # faulty row -> executed slot
        keep = ~readout[fault_shot]
        fault_shot = position[fault_shot[keep]]
        fault_qubit, fault_kind = fault_qubit[keep], fault_kind[keep]
        flip_shot = position[flip_shot]  # flips only land on executed rows

        successes = fault_free
        if engine == "frame" and executed:
            frame_sim = self._frame_simulator()
            for start in range(0, executed, chunk_size):
                stop = min(start + chunk_size, executed)
                f_lo, f_hi = np.searchsorted(fault_shot, (start, stop))
                l_lo, l_hi = np.searchsorted(flip_shot, (start, stop))
                ok = frame_sim.run_shots(
                    stop - start,
                    fault_qubit[f_lo:f_hi],
                    fault_kind[f_lo:f_hi],
                    fault_shot[f_lo:f_hi] - start,
                    flip_qubit[l_lo:l_hi],
                    flip_shot[l_lo:l_hi] - start,
                    rng,
                )
                passed = int(ok.sum())
                successes += passed
                logical_failures += len(ok) - passed
        elif executed:
            # the tableau engines want per-shot Python structures; build
            # them from the flat placement arrays
            f_bounds = np.searchsorted(fault_shot, np.arange(executed + 1))
            l_bounds = np.searchsorted(flip_shot, np.arange(executed + 1))
            pending: List[Tuple[tuple, frozenset]] = [
                (
                    tuple(
                        (int(q), "xyz"[int(k)])
                        for q, k in zip(
                            fault_qubit[f_bounds[j] : f_bounds[j + 1]],
                            fault_kind[f_bounds[j] : f_bounds[j + 1]],
                        )
                    ),
                    frozenset(
                        self._nodes[int(q)]
                        for q in flip_qubit[l_bounds[j] : l_bounds[j + 1]]
                    ),
                )
                for j in range(executed)
            ]
            if engine == "per-shot":
                for pauli_faults, flips in pending:
                    if self._execute_shot(rng, pauli_faults, flips):
                        successes += 1
                    else:
                        logical_failures += 1
            else:
                for start in range(0, executed, chunk_size):
                    ok = self._execute_chunk(
                        pending[start : start + chunk_size], rng
                    )
                    passed = int(ok.sum())
                    successes += passed
                    logical_failures += len(ok) - passed

        # loss-aborted shots stop before their fusion sequence, so their
        # pre-sampled attempt counts never happened and are not tallied
        fusion_attempts = int(attempts[losses == 0].sum())
        return NoisySampleResult(
            shots=shots,
            successes=successes,
            fault_free=fault_free,
            loss_aborts=loss_aborts,
            logical_failures=logical_failures,
            executed=executed,
            fusion_attempts=fusion_attempts,
            counts=counts,
            model=model,
            seconds=time.perf_counter() - t0,
            engine=engine,
            analytic_override=self._analytic_override,
        )


def sample_yield(
    circuit: Circuit,
    shots: int = 2000,
    pattern: Optional[MeasurementPattern] = None,
    model: NoiseModel = DEFAULT_NOISE,
    counts: Optional[FaultCounts] = None,
    seed: Optional[int] = 7,
    engine: str = "frame",
    chunk_size: Optional[int] = None,
    site_map: Optional[SiteNoiseMap] = None,
    site_profile: Optional[SiteProfile] = None,
) -> NoisySampleResult:
    """One-call convenience wrapper around :class:`NoisySampler`."""
    sampler = NoisySampler(
        circuit,
        pattern=pattern,
        model=model,
        counts=counts,
        seed=seed,
        site_map=site_map,
        site_profile=site_profile,
    )
    return sampler.run(shots, engine=engine, chunk_size=chunk_size)
