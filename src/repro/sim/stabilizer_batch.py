"""Batch axis for the bit-packed CHP tableau engine.

:class:`BatchedStabilizerState` executes *batch* stabilizer states at
once — the workload of the Monte-Carlo noisy sampler, where thousands of
shots run the same Clifford measurement pattern and differ only in their
injected Pauli faults and feed-forward signs.

The representation exploits a structural fact of that workload instead
of naively tiling the scalar tableau ``batch`` times: every batched
operation this engine supports — uniform Clifford gates, per-batch Pauli
(sign) injection, Pauli measurements with per-batch basis signs — updates
the symplectic part of the tableau (the ``x``/``z`` bit matrices)
*identically* across the batch:

* Pauli gates and injected Pauli faults only flip sign bits ``r``;
* a measurement's pivot choice and row updates depend only on
  (anti)commutation, i.e. on ``x``/``z``, never on signs or outcomes —
  the random outcome lands exclusively in the new stabilizer's sign bit.

So the ``(2n, words)`` ``x``/``z`` arrays are stored **once** and shared
by the whole batch, while the sign column ``r`` carries the batch axis
as a ``(batch, 2n)`` bit array.  One batched Pauli measurement costs one
scalar-tableau row update plus a vectorized ``(batch, rows)`` sign
update and a single vectorized outcome draw — per-shot cost is O(rows)
bytes of sign algebra instead of a full tableau copy and rowsum.

Scalar-engine equivalence is pinned by
``tests/sim/test_stabilizer_batch.py`` (per-element extraction via
:meth:`BatchedStabilizerState.extract` against :class:`StabilizerState`
on random Clifford circuits).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Optional, Tuple

import networkx as nx
import numpy as np

from repro.sim.stabilizer import (
    _ONE,
    PauliString,
    StabilizerState,
    _bit_positions,
    _bitwise_count,
    _dispatch_gate,
    _num_words,
    _pack_bits,
    _phase_sum_packed,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuit.circuit import Circuit
    from repro.circuit.gates import Gate

#: injected-Pauli kind -> which tableau columns flip a row's sign:
#: X flips rows with a Z there, Z flips rows with an X, Y flips both.
_PAULI_KINDS = ("x", "y", "z")


class BatchedStabilizerState:
    """``batch`` stabilizer states sharing one symplectic tableau.

    All states start identical (``|0...0>`` per qubit, or a prepared
    scalar tableau via :meth:`from_state`) and may only diverge in their
    sign bits — which is exactly what uniform Clifford evolution with
    per-batch Pauli frames and random measurement outcomes produces (see
    the module docstring for why ``x``/``z`` stay shared).

    Attributes:
        n: qubits per state.
        batch: number of states.
        x, z: shared ``(2n, words)`` uint64 bit matrices (rows ``0..n-1``
            destabilizers, ``n..2n-1`` stabilizers).
        r: per-state sign bits, ``(batch, 2n)`` uint8.
        rng: one generator; measurement outcomes for the whole batch come
            from single vectorized draws.
    """

    def __init__(
        self, num_qubits: int, batch: int, seed: Optional[int] = None
    ) -> None:
        if num_qubits <= 0:
            raise ValueError("num_qubits must be positive")
        if batch <= 0:
            raise ValueError("batch must be positive")
        n = num_qubits
        self.n = n
        self.batch = batch
        self.num_words = _num_words(n)
        self.x = np.zeros((2 * n, self.num_words), dtype=np.uint64)
        self.z = np.zeros((2 * n, self.num_words), dtype=np.uint64)
        self.r = np.zeros((batch, 2 * n), dtype=np.uint8)
        rows = np.arange(n, dtype=np.int64)
        words, masks = _bit_positions(rows)
        self.x[rows, words] = masks          # destabilizer X_i
        self.z[n + rows, words] = masks      # stabilizer Z_i
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_state(
        cls,
        state: StabilizerState,
        batch: int,
        seed: Optional[int] = None,
    ) -> "BatchedStabilizerState":
        """Fan a scalar tableau out into *batch* identical states.

        The scalar tableau is copied, never aliased.  States whose
        destabilizers were invalidated (:meth:`StabilizerState.discard`)
        are rejected: batched measurement needs the full symplectic pair.
        """
        if batch <= 0:
            raise ValueError("batch must be positive")
        if not state._destabilizers_valid:
            raise ValueError(
                "cannot batch a state with stale destabilizers "
                "(produced by discard()); measurements there are invalid"
            )
        out = object.__new__(cls)
        out.n = state.n
        out.batch = batch
        out.num_words = state.num_words
        out.x = state.x.copy()
        out.z = state.z.copy()
        out.r = np.broadcast_to(state.r, (batch, 2 * state.n)).copy()
        out.rng = np.random.default_rng(seed)
        return out

    @classmethod
    def graph_state(
        cls,
        graph: nx.Graph,
        batch: int,
        seed: Optional[int] = None,
        zero_nodes: Iterable = (),
    ) -> Tuple["BatchedStabilizerState", Dict]:
        """Batched :meth:`StabilizerState.graph_state`; returns
        ``(state, node -> qubit)``."""
        base, index = StabilizerState.graph_state(
            graph, zero_nodes=zero_nodes
        )
        return cls.from_state(base, batch, seed=seed), index

    def extract(self, element: int) -> StabilizerState:
        """Copy one batch element out as a scalar :class:`StabilizerState`
        (forked RNG; for comparisons and tests)."""
        out = object.__new__(StabilizerState)
        out.n = self.n
        out.num_words = self.num_words
        out.x = self.x.copy()
        out.z = self.z.copy()
        out.r = self.r[element].copy()
        # fork from the batch generator's seed sequence rather than the
        # OS entropy pool: the extracted copy stays reproducible under
        # the batch's seed, and the parent's draw stream is untouched
        try:
            out.rng = self.rng.spawn(1)[0]
        except AttributeError:  # pragma: no cover - NumPy < 1.25
            bit_gen = self.rng.bit_generator
            seed_seq = getattr(bit_gen, "seed_seq", None) or bit_gen._seed_seq
            out.rng = np.random.Generator(type(bit_gen)(seed_seq.spawn(1)[0]))
        return out

    # ------------------------------------------------------------------
    # internal row algebra
    # ------------------------------------------------------------------
    def _column(self, mat: np.ndarray, q: int) -> np.ndarray:
        """Bit of qubit *q* in every shared row (0/1 uint8, shape (2n,))."""
        return ((mat[:, q >> 6] >> np.uint64(q & 63)) & _ONE).astype(np.uint8)

    def _flip_signs(self, flips: np.ndarray, mask: Optional[np.ndarray]) -> None:
        """XOR the per-row flip vector into every (or the masked) batch
        element's sign bits."""
        if mask is None:
            self.r ^= flips[None, :]
        else:
            self.r[np.asarray(mask, dtype=bool)] ^= flips[None, :]

    def _rowsum_rows(self, rows: np.ndarray, pivot: int) -> None:
        """Batched ``row := row * pivot`` with AG phase tracking.

        The symplectic update is shared; the phase update runs over the
        ``(batch, rows)`` sign plane.  The i/-i parity of each product is
        batch-independent (it only reads ``x``/``z``), so the Hermitian
        check for stabilizer rows is done once.
        """
        hx, hz = self.x[rows], self.z[rows]
        ix, iz = self.x[pivot], self.z[pivot]
        g = _phase_sum_packed(ix, iz, hx, hz)  # (rows,) shared phase part
        if np.any(g[rows >= self.n] & 1):
            raise RuntimeError("non-Hermitian product in stabilizer rowsum")
        phase = 2 * (
            self.r[:, rows].astype(np.int64)
            + self.r[:, pivot].astype(np.int64)[:, None]
        )
        phase += g[None, :]
        self.x[rows] = hx ^ ix
        self.z[rows] = hz ^ iz
        self.r[:, rows] = ((np.mod(phase, 4) >> 1) & 1).astype(np.uint8)

    def _anticommuting_rows(self, px: np.ndarray, pz: np.ndarray) -> np.ndarray:
        """Boolean mask over the 2n shared rows: odd symplectic product."""
        counts = _bitwise_count(self.x & pz).sum(axis=-1, dtype=np.int64)
        counts += _bitwise_count(self.z & px).sum(axis=-1, dtype=np.int64)
        return (counts & 1).astype(bool)

    def _accumulate_stabilizers(
        self, anti_destab: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Product of stabilizer rows whose destabilizer partners are in
        *anti_destab*; the accumulated sign is per batch element."""
        accx = np.zeros(self.num_words, dtype=np.uint64)
        accz = np.zeros(self.num_words, dtype=np.uint64)
        accr = np.zeros(self.batch, dtype=np.int64)
        for i in np.flatnonzero(anti_destab):
            row = self.n + int(i)
            g = int(_phase_sum_packed(self.x[row], self.z[row], accx, accz))
            if g & 1:
                raise RuntimeError(
                    "non-Hermitian product in stabilizer rowsum"
                )
            phase = 2 * (accr + self.r[:, row].astype(np.int64)) + g
            accx = accx ^ self.x[row]
            accz = accz ^ self.z[row]
            accr = (np.mod(phase, 4) >> 1) & 1
        return accx, accz, accr.astype(np.uint8)

    # ------------------------------------------------------------------
    # Clifford gates (uniform across the batch)
    # ------------------------------------------------------------------
    def h(self, q: int) -> None:
        """Hadamard on qubit *q* of every batch element."""
        w, mask = (q >> 6), _ONE << np.uint64(q & 63)
        xw, zw = self.x[:, w], self.z[:, w]
        self._flip_signs((((xw & zw) & mask) != 0).astype(np.uint8), None)
        diff = (xw ^ zw) & mask
        self.x[:, w] ^= diff
        self.z[:, w] ^= diff

    def s(self, q: int) -> None:
        """Phase gate S on qubit *q* of every batch element."""
        w, mask = (q >> 6), _ONE << np.uint64(q & 63)
        xw, zw = self.x[:, w], self.z[:, w]
        self._flip_signs((((xw & zw) & mask) != 0).astype(np.uint8), None)
        self.z[:, w] ^= xw & mask

    def sdg(self, q: int) -> None:
        """Inverse phase gate on qubit *q* of every batch element."""
        w, mask = (q >> 6), _ONE << np.uint64(q & 63)
        xw, zw = self.x[:, w], self.z[:, w]
        self._flip_signs((((xw & ~zw) & mask) != 0).astype(np.uint8), None)
        self.z[:, w] ^= xw & mask

    def x_gate(self, q: int, mask: Optional[np.ndarray] = None) -> None:
        """Pauli X on qubit *q*; *mask* (batch bools) restricts which
        elements it applies to (per-shot byproduct corrections)."""
        self._flip_signs(self._column(self.z, q), mask)

    def y_gate(self, q: int, mask: Optional[np.ndarray] = None) -> None:
        """Pauli Y on qubit *q*, optionally masked per batch element."""
        self._flip_signs(self._column(self.x, q) ^ self._column(self.z, q), mask)

    def z_gate(self, q: int, mask: Optional[np.ndarray] = None) -> None:
        """Pauli Z on qubit *q*, optionally masked per batch element."""
        self._flip_signs(self._column(self.x, q), mask)

    def cnot(self, control: int, target: int) -> None:
        """CNOT on every batch element."""
        if control == target:
            raise ValueError("cnot needs distinct qubits")
        xc = (self.x[:, control >> 6] >> np.uint64(control & 63)) & _ONE
        zc = (self.z[:, control >> 6] >> np.uint64(control & 63)) & _ONE
        xt = (self.x[:, target >> 6] >> np.uint64(target & 63)) & _ONE
        zt = (self.z[:, target >> 6] >> np.uint64(target & 63)) & _ONE
        self._flip_signs((xc & zt & (xt ^ zc ^ _ONE)).astype(np.uint8), None)
        self.x[:, target >> 6] ^= xc << np.uint64(target & 63)
        self.z[:, control >> 6] ^= zt << np.uint64(control & 63)

    def cz(self, a: int, b: int) -> None:
        """CZ on every batch element (direct column update)."""
        if a == b:
            raise ValueError("cz needs distinct qubits")
        xa = (self.x[:, a >> 6] >> np.uint64(a & 63)) & _ONE
        za = (self.z[:, a >> 6] >> np.uint64(a & 63)) & _ONE
        xb = (self.x[:, b >> 6] >> np.uint64(b & 63)) & _ONE
        zb = (self.z[:, b >> 6] >> np.uint64(b & 63)) & _ONE
        self._flip_signs((xa & xb & (za ^ zb)).astype(np.uint8), None)
        self.z[:, a >> 6] ^= xb << np.uint64(a & 63)
        self.z[:, b >> 6] ^= xa << np.uint64(b & 63)

    def swap(self, a: int, b: int) -> None:
        """Exchange qubits *a* and *b* on every batch element."""
        if a == b:
            return
        for mat in (self.x, self.z):
            bit_a = (mat[:, a >> 6] >> np.uint64(a & 63)) & _ONE
            bit_b = (mat[:, b >> 6] >> np.uint64(b & 63)) & _ONE
            diff = bit_a ^ bit_b
            mat[:, a >> 6] ^= diff << np.uint64(a & 63)
            mat[:, b >> 6] ^= diff << np.uint64(b & 63)

    def apply_gate(self, gate: "Gate") -> None:
        """Apply one circuit gate uniformly (same contract as
        :meth:`StabilizerState.apply_gate`)."""
        _dispatch_gate(self, gate)

    def apply_circuit(self, circuit: "Circuit") -> "BatchedStabilizerState":
        """Apply every gate of a (Clifford) circuit; returns ``self``."""
        for gate in circuit:
            _dispatch_gate(self, gate)
        return self

    # ------------------------------------------------------------------
    # per-batch Pauli (sign) injection
    # ------------------------------------------------------------------
    def inject_pauli(self, element: int, qubit: int, kind: str) -> None:
        """Apply Pauli *kind* (``'x'``/``'y'``/``'z'``) on *qubit* of one
        batch element — a pure sign update on that element's ``r`` row."""
        if kind not in _PAULI_KINDS:
            raise ValueError(f"unknown Pauli {kind!r}")
        if kind == "x":
            flips = self._column(self.z, qubit)
        elif kind == "z":
            flips = self._column(self.x, qubit)
        else:
            flips = self._column(self.x, qubit) ^ self._column(self.z, qubit)
        self.r[element] ^= flips

    # ------------------------------------------------------------------
    # measurements
    # ------------------------------------------------------------------
    def measure_z(
        self, q: int, signs: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Batched Z measurement of qubit *q*; returns ``(batch,)`` bits."""
        return self.measure_pauli(PauliString.from_ops(self.n, {q: "z"}), signs)

    def measure_pauli(
        self, pauli: PauliString, signs: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Measure one Pauli product on every batch element.

        The Pauli *operator* is shared across the batch; *signs* (uint8
        ``(batch,)``, XORed with ``pauli.sign``) lets each element
        measure the operator with its own sign — how feed-forward-adapted
        Pauli bases differ per shot.  Random outcomes for the whole batch
        come from **one** vectorized ``rng.integers`` draw; returns the
        ``(batch,)`` outcome bits ``m`` for eigenvalues ``(-1)^m``.
        """
        n = self.n
        total_sign = np.full(self.batch, pauli.sign & 1, dtype=np.uint8)
        if signs is not None:
            total_sign ^= np.asarray(signs, dtype=np.uint8)
        px = _pack_bits(pauli.x, self.num_words)
        pz = _pack_bits(pauli.z, self.num_words)
        anti = self._anticommuting_rows(px, pz)
        anti_stab = np.flatnonzero(anti[n:])
        if anti_stab.size:
            p = n + int(anti_stab[0])
            outcomes = self.rng.integers(
                0, 2, size=self.batch, dtype=np.uint8
            )
            rows = np.flatnonzero(anti)
            rows = rows[rows != p]
            if rows.size:
                self._rowsum_rows(rows, p)
            # old stabilizer becomes the destabilizer of the new one
            self.x[p - n] = self.x[p]
            self.z[p - n] = self.z[p]
            self.r[:, p - n] = self.r[:, p]
            self.x[p] = px
            self.z[p] = pz
            self.r[:, p] = total_sign ^ outcomes
            return outcomes
        accx, accz, accr = self._accumulate_stabilizers(anti[:n])
        if not (np.array_equal(accx, px) and np.array_equal(accz, pz)):
            raise RuntimeError(
                "deterministic measurement does not reproduce the Pauli; "
                "tableau is corrupt"
            )
        return accr ^ total_sign

    def expectation(self, pauli: PauliString) -> Optional[np.ndarray]:
        """Per-element outcome of measuring *pauli* if deterministic
        (``(batch,)`` bits), else ``None``.  Read-only."""
        px = _pack_bits(pauli.x, self.num_words)
        pz = _pack_bits(pauli.z, self.num_words)
        anti = self._anticommuting_rows(px, pz)
        if anti[self.n:].any():
            return None
        accx, accz, accr = self._accumulate_stabilizers(anti[: self.n])
        if not (np.array_equal(accx, px) and np.array_equal(accz, pz)):
            raise RuntimeError(
                "deterministic measurement does not reproduce the Pauli; "
                "tableau is corrupt"
            )
        sign = np.full(self.batch, pauli.sign & 1, dtype=np.uint8)
        return accr ^ sign
