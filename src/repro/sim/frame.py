"""Bit-packed Pauli-frame Monte-Carlo engine for Clifford patterns.

The third and final leap of the noisy-sampler trajectory.  The per-shot
engine copies a tableau per shot; the batched engine shares one
symplectic tableau across a chunk and keeps per-shot sign planes.  This
module removes the tableau from the faulty-shot path altogether: every
fault channel :class:`repro.sim.noisy.NoisySampler` supports is a
sign-only Pauli perturbation of one fixed Clifford execution, so after a
single noiseless reference run the *entire* per-shot state collapses to
a Pauli **frame** — which X/Z flips the shot carries relative to the
reference — XOR-propagated 64 shots per ``uint64`` word (Gidney's *Stim*
frame propagation, PAPERS.md).

Why a frame suffices
--------------------

A pattern execution applies no gates: the graph state is prepared up
front and nodes are then measured in single-qubit Pauli bases (X or Y,
with a feed-forward-adapted sign).  A faulty shot's state before any
measurement is ``E |psi>`` with ``E`` the injected Pauli frame and
``|psi>`` the reference state.  Aligning each measurement's random
collapse branch with the reference run (a gauge choice — pass/fail is
branch-independent, the same fact that makes the batched engine's
tallies bit-identical to the per-shot engine's):

* the physical outcome flips iff ``E`` anticommutes with the measured
  basis operator, and the post-measurement state is again ``E`` times
  the reference post-state — the frame passes through unchanged;
* at Pauli angles the feed-forward ``(-1)^s alpha + t pi`` moves only
  the measured operator's *sign*, and that sign is an affine GF(2)
  function ``sign = c ^ (basis==Y)*s ^ t`` of the dependency parities
  (derived per node through the scalar executor's sign table, so the
  paths cannot drift);
* hence the *recorded*-outcome difference against the reference obeys a
  linear recurrence::

      delta[k] = anticommute(E, P_k) ^ detector_flip[k]
                 ^ (basis_k==Y) * XOR(delta[x_deps]) ^ XOR(delta[z_deps])

* output byproduct corrections differ by ``X^XOR(delta[output_x])
  Z^XOR(delta[output_z])`` per output node, which simply joins the
  frame; and a circuit stabilizer generator ``G`` (which the reference
  run satisfies — the calibration check) holds on the faulty output iff
  the final frame commutes with ``G``.

Every quantity above is one bit per shot, so a chunk of shots executes
as ``(2n, ceil(shots/64))`` uint64 frame matrices (X rows and Z rows)
plus a ``(steps, words)`` delta matrix: fault injection, measurement
flips, feed-forward and byproduct corrections are all masked XOR/AND
word operations, and per-shot cost is independent of qubit count.
After each measurement the frame component along the measured operator
is re-randomized (``P`` acts as +-1 on its own eigenstate): a fresh
random reseed on the measured qubit keeps the frame *distribution*
correct — tallies are invariant under it (measured qubits never feed
the output checks), which the reseed-off regression test pins.

:class:`PauliFrameSimulator` compiles the frame program by running the
noiseless pattern once on the scalar tableau
(:class:`repro.sim.pattern_sim.StabilizerPatternSimulator`) — the
calibration run that anchors the reference — and then executes faulty
chunks via :meth:`PauliFrameSimulator.run_chunk`.
``NoisySampler.run(engine="frame")`` is the production entry point;
``tests/sim/test_noisy.py`` pins frame tallies bit-identical to the
batched and per-shot engines and ``benchmarks/bench_frame.py`` gates
the speedup (>= 10x over the batched engine at 4000 faulty shots).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.mbqc.pattern import MeasurementPattern
from repro.sim.pattern_sim import (
    StabilizerPatternSimulator,
    _pauli_sign_table,
    pattern_is_clifford,
)
from repro.sim.stabilizer import StabilizerState, _bit_positions, _unpack_bits

_U64_MAX = np.iinfo(np.uint64).max
_ONE = np.uint64(1)


@dataclass(frozen=True)
class FrameStep:
    """One measurement of the flat frame program.

    Attributes:
        node: pattern node this step measures.
        qubit: its tableau qubit (frame row) index.
        y_basis: measured operator is Y (else X).  Doubles as the
            feed-forward coefficient: at Pauli angles the measured sign
            depends on the X-dependency parity ``s`` iff the basis is Y
            (asserted against the scalar sign table at compile time).
        x_deps, z_deps: earlier step indices whose recorded-outcome
            deltas feed this step's sign (the pattern's X-/Z-dependency
            sources, resolved to frame-program positions).
    """

    node: int
    qubit: int
    y_basis: bool
    x_deps: Tuple[int, ...]
    z_deps: Tuple[int, ...]


@dataclass(frozen=True)
class FrameCheck:
    """One output stabilizer check as frame-bit parities.

    A circuit stabilizer generator holds on a shot's output state iff
    the XOR of the listed frame rows (X rows over ``frame_x`` qubits,
    Z rows over ``frame_z`` qubits) and outcome-delta rows
    (``delta_steps``, covering the byproduct-correction differences) is
    zero for that shot.
    """

    frame_x: Tuple[int, ...]
    frame_z: Tuple[int, ...]
    delta_steps: Tuple[int, ...]


@dataclass(frozen=True)
class FrameProgram:
    """Flat compiled form of a Clifford pattern for frame execution.

    Attributes:
        num_qubits: tableau qubits (= pattern nodes).
        steps: the measurement sequence, in pattern measurement order.
        step_of_node: measured pattern node -> step index (where a
            sampled detector flip on that node lands).
        checks: one :class:`FrameCheck` per circuit stabilizer
            generator; a shot passes iff every check parity is zero.
    """

    num_qubits: int
    steps: Tuple[FrameStep, ...]
    step_of_node: Dict[int, int]
    checks: Tuple[FrameCheck, ...]

    @classmethod
    def compile(
        cls,
        pattern: MeasurementPattern,
        circuit_rows: Sequence[Tuple[np.ndarray, np.ndarray, int]],
        index: Dict[int, int],
    ) -> "FrameProgram":
        """Flatten *pattern* + ideal-output generators into a program.

        ``circuit_rows`` are the unpacked ``(x, z, sign)`` stabilizer
        generators of the ideal circuit output
        (:meth:`repro.sim.stabilizer.StabilizerState.stabilizer_rows`);
        ``index`` maps pattern nodes to tableau qubits.
        """
        steps = []
        step_of: Dict[int, int] = {}
        for node in pattern.measurement_order():
            basis, table = _pauli_sign_table(pattern.angles[node])
            a_s = int(table[1, 0]) ^ int(table[0, 0])
            a_t = int(table[0, 1]) ^ int(table[0, 0])
            affine = int(table[1, 1]) == int(table[0, 0]) ^ a_s ^ a_t
            if not (affine and a_t == 1 and a_s == (basis == "y")):
                # impossible for Pauli angles; guards the delta recurrence
                raise ValueError(
                    f"node {node}: sign table of angle "
                    f"{pattern.angles[node]} is not the affine "
                    "c ^ (basis==Y)*s ^ t form the frame engine assumes"
                )
            try:
                x_deps = tuple(
                    sorted(step_of[src] for src in pattern.x_deps.get(node, ()))
                )
                z_deps = tuple(
                    sorted(step_of[src] for src in pattern.z_deps.get(node, ()))
                )
            except KeyError as exc:
                raise ValueError(
                    f"node {node} depends on node {exc.args[0]} which is "
                    "not measured before it; the pattern order is invalid"
                ) from None
            step_of[node] = len(steps)
            steps.append(
                FrameStep(
                    node=node,
                    qubit=index[node],
                    y_basis=basis == "y",
                    x_deps=x_deps,
                    z_deps=z_deps,
                )
            )

        checks = []
        for gx, gz, _ in circuit_rows:
            frame_x = []
            frame_z = []
            parity: Dict[int, int] = {}
            for wire, node in enumerate(pattern.outputs):
                # frame X components anticommute with the generator's Z
                # part and vice versa; byproduct deltas join the frame
                if gz[wire]:
                    frame_x.append(index[node])
                    for src in pattern.output_x.get(node, ()):
                        parity[step_of[src]] = parity.get(step_of[src], 0) ^ 1
                if gx[wire]:
                    frame_z.append(index[node])
                    for src in pattern.output_z.get(node, ()):
                        parity[step_of[src]] = parity.get(step_of[src], 0) ^ 1
            checks.append(
                FrameCheck(
                    frame_x=tuple(frame_x),
                    frame_z=tuple(frame_z),
                    delta_steps=tuple(
                        sorted(s for s, odd in parity.items() if odd)
                    ),
                )
            )
        return cls(
            num_qubits=len(index),
            steps=tuple(steps),
            step_of_node=step_of,
            checks=tuple(checks),
        )


class PauliFrameSimulator:
    """Executes faulty shots of a Clifford pattern as bit-packed frames.

    Construction runs the noiseless pattern once on the scalar tableau —
    the reference execution every frame is relative to, and the
    calibration proof that a fault-free shot passes every output
    stabilizer check — then compiles the flat :class:`FrameProgram`.

    Args:
        pattern: the Clifford measurement pattern.
        circuit: source circuit defining the ideal output stabilizer
            group; its ``stabilizer_rows()`` become the output checks.
        circuit_rows: those rows directly (callers that already built
            them, e.g. :class:`repro.sim.noisy.NoisySampler`).  Exactly
            one of *circuit* / *circuit_rows* must be given.
        prepared: optional ``(state, node->qubit)`` base graph-state
            tableau; consumed by the reference run.  Defaults to a fresh
            :meth:`StabilizerState.graph_state` build.
        seed: seeds the reference run's (gauge) outcome draws and the
            default reseed stream of :meth:`run_chunk`.
        reseed: draw a fresh random frame component along each measured
            operator after its measurement (the Stim-style gauge
            randomization that keeps the frame distribution correct).
            Tallies are invariant either way — measured qubits never
            feed the output checks — so ``False`` skips the draws.

    Attributes:
        program: the compiled :class:`FrameProgram`.
        reference_outcomes: measured node -> outcome bit of the
            reference run (one sampled gauge branch).
    """

    def __init__(
        self,
        pattern: MeasurementPattern,
        circuit: Optional["Circuit"] = None,
        circuit_rows: Optional[
            Sequence[Tuple[np.ndarray, np.ndarray, int]]
        ] = None,
        prepared: Optional[Tuple[StabilizerState, Dict[int, int]]] = None,
        seed: Optional[int] = None,
        reseed: bool = True,
    ) -> None:
        if (circuit is None) == (circuit_rows is None):
            raise ValueError("pass exactly one of circuit / circuit_rows")
        if not pattern_is_clifford(pattern):
            raise ValueError(
                "pattern has non-Pauli measurement angles; the frame "
                "engine needs a Clifford pattern"
            )
        if circuit is not None:
            if len(pattern.outputs) != circuit.num_qubits:
                raise ValueError(
                    f"pattern has {len(pattern.outputs)} outputs for a "
                    f"{circuit.num_qubits}-qubit circuit"
                )
            circuit_state = StabilizerState(circuit.num_qubits)
            circuit_state.apply_circuit(circuit)
            circuit_rows = circuit_state.stabilizer_rows()
        if len(circuit_rows) != len(pattern.outputs):
            raise ValueError(
                f"{len(circuit_rows)} output stabilizer generators for "
                f"{len(pattern.outputs)} pattern outputs"
            )
        self.pattern = pattern
        self.reseed = reseed
        self.rng = np.random.default_rng(seed)

        if prepared is None:
            state, index = StabilizerState.graph_state(
                pattern.graph, zero_nodes=pattern.inputs
            )
        else:
            state, index = prepared
        self.program = FrameProgram.compile(pattern, circuit_rows, index)

        # reference run + calibration: the noiseless execution must pass
        # every output check, or "frame commutes with G" would not mean
        # "G holds" and zero-frame shots could not be counted as passes
        state.rng = np.random.default_rng(seed)
        result = StabilizerPatternSimulator(pattern).run(
            prepared=(state, index)
        )
        for which, (gx, gz, gr) in enumerate(circuit_rows):
            pauli = result.output_pauli(pattern.outputs, gx, gz)
            if result.state.expectation(pauli) != gr:
                raise RuntimeError(
                    f"reference execution violates output stabilizer "
                    f"generator {which}; the pattern does not implement "
                    "the circuit"
                )
        self.reference_outcomes: Dict[int, int] = dict(result.outcomes)
        # measured tableau qubit -> step index (-1: output, never a step)
        self._step_of_qubit = np.full(self.program.num_qubits, -1, np.int64)
        for k, step in enumerate(self.program.steps):
            self._step_of_qubit[step.qubit] = k
        self._qubit_of_node = {s.node: s.qubit for s in self.program.steps}

    # ------------------------------------------------------------------
    def run_chunk(
        self,
        chunk: Sequence[Tuple[Iterable[Tuple[int, str]], Iterable[int]]],
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Execute a chunk of faulty shots; returns the (len(chunk),)
        boolean pass mask of the output stabilizer checks.

        Each chunk entry is ``(pauli_faults, outcome_flips)``:
        ``pauli_faults`` iterates ``(tableau_qubit, 'x'|'y'|'z')``
        injected Pauli faults, ``outcome_flips`` iterates measured
        pattern nodes whose recorded outcome bit is complemented
        (detector errors).  Convenience converter onto
        :meth:`run_shots`, the flat bulk entry point.
        """
        fault_shot, fault_qubit, fault_kind = [], [], []
        flip_shot, flip_qubit = [], []
        for element, (pauli_faults, flips) in enumerate(chunk):
            for qubit, kind in pauli_faults:
                fault_shot.append(element)
                fault_qubit.append(qubit)
                fault_kind.append("xyz".index(kind))
            for node in flips:
                flip_shot.append(element)
                flip_qubit.append(self._qubit_of_node[node])
        return self.run_shots(
            len(chunk),
            np.asarray(fault_qubit, dtype=np.int64),
            np.asarray(fault_kind, dtype=np.int64),
            np.asarray(fault_shot, dtype=np.int64),
            np.asarray(flip_qubit, dtype=np.int64),
            np.asarray(flip_shot, dtype=np.int64),
            rng,
        )

    def run_shots(
        self,
        num_shots: int,
        fault_qubit: np.ndarray,
        fault_kind: np.ndarray,
        fault_shot: np.ndarray,
        flip_qubit: np.ndarray,
        flip_shot: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Execute *num_shots* faulty shots from flat fault arrays;
        returns the ``(num_shots,)`` boolean pass mask.

        Entry ``e`` of the fault arrays injects Pauli
        ``"xyz"[fault_kind[e]]`` on tableau qubit ``fault_qubit[e]`` of
        shot ``fault_shot[e]``; entry ``e`` of the flip arrays
        complements the recorded outcome of the measured tableau qubit
        ``flip_qubit[e]`` on shot ``flip_shot[e]`` (a detector error —
        output qubits are rejected, their readout flips are classical
        failures the caller tallies without executing).  *rng* feeds
        the gauge reseeds only: the pass mask is a deterministic
        function of the fault arrays.
        """
        if num_shots == 0:
            return np.zeros(0, dtype=bool)
        rng = rng if rng is not None else self.rng
        program = self.program
        words = (num_shots + 63) >> 6
        frame_x = np.zeros((program.num_qubits, words), dtype=np.uint64)
        frame_z = np.zeros((program.num_qubits, words), dtype=np.uint64)
        delta = np.zeros((len(program.steps), words), dtype=np.uint64)
        if fault_shot.size:
            word, mask = _bit_positions(fault_shot)
            x_part = fault_kind != 2  # X and Y components flip frame_x
            z_part = fault_kind != 0  # Z and Y components flip frame_z
            np.bitwise_xor.at(
                frame_x, (fault_qubit[x_part], word[x_part]), mask[x_part]
            )
            np.bitwise_xor.at(
                frame_z, (fault_qubit[z_part], word[z_part]), mask[z_part]
            )
        if flip_shot.size:
            steps = self._step_of_qubit[flip_qubit]
            if np.any(steps < 0):
                raise ValueError(
                    "outcome flip on a qubit the pattern never measures"
                )
            word, mask = _bit_positions(flip_shot)
            # seed delta with the detector flips
            np.bitwise_xor.at(delta, (steps, word), mask)

        for k, step in enumerate(program.steps):
            row = delta[k]  # in-place view: holds detector flips so far
            row ^= frame_z[step.qubit]  # anticommutation with X or Y
            if step.y_basis:
                row ^= frame_x[step.qubit]
                for dep in step.x_deps:  # sign feed-forward: s parity
                    row ^= delta[dep]
            for dep in step.z_deps:  # sign feed-forward: t parity
                row ^= delta[dep]
            if self.reseed:
                # the measured operator acts as +-1 on its own
                # eigenstate: randomize the frame along it
                words_r = rng.integers(
                    0, _U64_MAX, size=words, dtype=np.uint64, endpoint=True
                )
                frame_x[step.qubit] ^= words_r
                if step.y_basis:
                    frame_z[step.qubit] ^= words_r

        failed = np.zeros(words, dtype=np.uint64)
        for check in program.checks:
            acc = np.zeros(words, dtype=np.uint64)
            for qubit in check.frame_x:
                acc ^= frame_x[qubit]
            for qubit in check.frame_z:
                acc ^= frame_z[qubit]
            for step_idx in check.delta_steps:
                acc ^= delta[step_idx]
            failed |= acc
        return _unpack_bits(failed, num_shots) == 0
