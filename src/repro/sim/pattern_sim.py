"""Execution of measurement patterns: dense (lazy window) and stabilizer.

:class:`PatternSimulator` plays the role of the photonic machine: qubits
come into existence when first needed, are entangled by CZ along graph
edges, measured once in an adaptive equatorial basis, and destroyed.
Keeping only the *active* window of qubits (the frontier) makes the
memory cost ``O(2^(wires+1))`` rather than ``O(2^nodes)``.  It is the
end-to-end correctness oracle for the whole stack: the output state of a
translated pattern must equal the circuit's output state.

:class:`StabilizerPatternSimulator` executes *Clifford* patterns (every
measurement at a Pauli angle — the translator emits these exactly for
Clifford circuits) on the bit-packed CHP engine instead, which scales
verification to hundreds of qubits.  ``repro.core.validate.verify_pattern``
picks between the two automatically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.mbqc.pattern import MeasurementPattern
from repro.sim.stabilizer import PauliString, StabilizerState
from repro.utils.angles import is_pauli_angle, normalize_angle

_SQRT2 = math.sqrt(2.0)


@dataclass
class PatternResult:
    """Outcome record of one pattern execution.

    Attributes:
        state: statevector over the pattern's output nodes, little-endian
            in output order, with all byproducts corrected.
        outcomes: measured node -> outcome bit.
    """

    state: np.ndarray
    outcomes: Dict[int, int]


class PatternSimulator:
    """Executes a :class:`MeasurementPattern` with adaptive angles."""

    def __init__(
        self,
        pattern: MeasurementPattern,
        seed: Optional[int] = None,
        force_outcomes: Optional[Dict[int, int]] = None,
        max_active: int = 22,
    ) -> None:
        self.pattern = pattern
        self.rng = np.random.default_rng(seed)
        self.force_outcomes = force_outcomes or {}
        self.max_active = max_active
        self._reset()

    # ------------------------------------------------------------------
    def _reset(self) -> None:
        self._state = np.ones(1, dtype=complex)
        self._pos: Dict[int, int] = {}
        self._applied_edges = set()
        self.outcomes: Dict[int, int] = {}

    def run(
        self, input_state: Optional[Dict[int, Sequence[complex]]] = None
    ) -> PatternResult:
        """Execute the pattern; inputs default to ``|0>`` per input node.

        ``input_state`` maps an input node to a 2-amplitude vector.
        """
        self._reset()
        pattern = self.pattern
        inits: Dict[int, np.ndarray] = {}
        for node in pattern.inputs:
            amp = np.array([1.0, 0.0], dtype=complex)
            if input_state and node in input_state:
                amp = np.asarray(input_state[node], dtype=complex)
                amp = amp / np.linalg.norm(amp)
            inits[node] = amp

        for node in pattern.measurement_order():
            self._activate_with_neighbors(node, inits)
            self._measure(node)

        for node in pattern.outputs:
            self._activate_with_neighbors(node, inits)

        self._apply_output_byproducts()
        state = self._extract_output_state()
        return PatternResult(state=state, outcomes=dict(self.outcomes))

    # ------------------------------------------------------------------
    # qubit window management
    # ------------------------------------------------------------------
    def _add_qubit(self, node: int, amp: np.ndarray) -> None:
        if len(self._pos) >= self.max_active:
            raise RuntimeError(
                f"active window exceeded {self.max_active} qubits; "
                "pattern order keeps too many qubits alive"
            )
        self._state = np.kron(amp, self._state)
        self._pos[node] = len(self._pos)

    def _activate_with_neighbors(self, node: int, inits: Dict[int, np.ndarray]) -> None:
        """Ensure *node* and its graph neighbourhood are live and entangled."""
        plus = np.array([1.0, 1.0], dtype=complex) / _SQRT2
        if node not in self._pos:
            if node in self.outcomes:
                raise RuntimeError(f"node {node} measured twice")
            self._add_qubit(node, inits.get(node, plus))
        for nbr in self.pattern.graph.neighbors(node):
            key = (min(node, nbr), max(node, nbr))
            if key in self._applied_edges:
                continue
            if nbr in self.outcomes:
                raise RuntimeError(
                    f"edge {key} activates after endpoint {nbr} was destroyed"
                )
            if nbr not in self._pos:
                self._add_qubit(nbr, inits.get(nbr, plus))
            self._apply_cz(node, nbr)
            self._applied_edges.add(key)

    def _apply_cz(self, a: int, b: int) -> None:
        ia, ib = self._pos[a], self._pos[b]
        n = len(self._pos)
        idx = np.arange(2**n)
        mask = ((idx >> ia) & 1) & ((idx >> ib) & 1)
        self._state = self._state * np.where(mask, -1.0, 1.0)

    def _apply_pauli(self, node: int, which: str) -> None:
        i = self._pos[node]
        n = len(self._pos)
        idx = np.arange(2**n)
        bit = (idx >> i) & 1
        if which == "z":
            self._state = self._state * np.where(bit, -1.0, 1.0)
        elif which == "x":
            flipped = idx ^ (1 << i)
            out = np.empty_like(self._state)
            out[flipped] = self._state[idx]
            self._state = out
        else:  # pragma: no cover
            raise ValueError(which)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def _actual_angle(self, node: int) -> float:
        alpha = self.pattern.angles[node]
        s = 0
        for src in self.pattern.x_deps.get(node, frozenset()):
            s ^= self.outcomes[src]
        t = 0
        for src in self.pattern.z_deps.get(node, frozenset()):
            t ^= self.outcomes[src]
        return ((-1.0) ** s) * alpha + t * math.pi

    def _measure(self, node: int) -> None:
        """Equatorial measurement ``E(theta)``, destroying the photon."""
        theta = self._actual_angle(node)
        i = self._pos[node]
        n = len(self._pos)
        tensor = self._state.reshape((2,) * n)
        axis = n - 1 - i
        zero = np.take(tensor, 0, axis=axis)
        one = np.take(tensor, 1, axis=axis)
        phase = np.exp(-1j * theta)
        # <+_theta| = (<0| + e^{-i theta} <1|) / sqrt(2)
        branch0 = (zero + phase * one) / _SQRT2
        branch1 = (zero - phase * one) / _SQRT2
        p0 = float(np.sum(np.abs(branch0) ** 2))
        p1 = float(np.sum(np.abs(branch1) ** 2))
        total = p0 + p1
        if total < 1e-12:  # pragma: no cover - would mean a zero state
            raise RuntimeError("state collapsed to zero norm")
        if node in self.force_outcomes:
            outcome = self.force_outcomes[node]
            if (outcome == 0 and p0 / total < 1e-12) or (
                outcome == 1 and p1 / total < 1e-12
            ):
                raise RuntimeError(
                    f"forced outcome {outcome} on node {node} has zero probability"
                )
        else:
            outcome = int(self.rng.random() >= p0 / total)
        branch = branch0 if outcome == 0 else branch1
        norm = math.sqrt(p0 if outcome == 0 else p1)
        self._state = (branch / norm).reshape(-1)
        self.outcomes[node] = outcome
        # compact the position table
        del self._pos[node]
        for other, pos in list(self._pos.items()):
            if pos > i:
                self._pos[other] = pos - 1

    # ------------------------------------------------------------------
    # output handling
    # ------------------------------------------------------------------
    def _apply_output_byproducts(self) -> None:
        for node in self.pattern.outputs:
            t = 0
            for src in self.pattern.output_z.get(node, frozenset()):
                t ^= self.outcomes[src]
            if t:
                self._apply_pauli(node, "z")
            s = 0
            for src in self.pattern.output_x.get(node, frozenset()):
                s ^= self.outcomes[src]
            if s:
                self._apply_pauli(node, "x")

    def _extract_output_state(self) -> np.ndarray:
        """Reorder the surviving qubits into output order (little-endian)."""
        outputs = self.pattern.outputs
        if set(self._pos) != set(outputs):
            extra = set(self._pos) - set(outputs)
            raise RuntimeError(f"non-output qubits still active: {sorted(extra)}")
        n = len(outputs)
        tensor = self._state.reshape((2,) * n)
        # current axis of output k is n - 1 - pos[output_k]; we want output
        # k at axis n - 1 - k.
        perm = [0] * n
        for k, node in enumerate(outputs):
            perm[n - 1 - k] = n - 1 - self._pos[node]
        tensor = np.transpose(tensor, axes=perm)
        return tensor.reshape(-1)


def simulate_pattern(
    pattern: MeasurementPattern,
    seed: Optional[int] = None,
    input_state: Optional[Dict[int, Sequence[complex]]] = None,
) -> PatternResult:
    """One-shot convenience wrapper around :class:`PatternSimulator`."""
    return PatternSimulator(pattern, seed=seed).run(input_state=input_state)


# ----------------------------------------------------------------------
# stabilizer execution of Clifford patterns
# ----------------------------------------------------------------------
def pattern_is_clifford(pattern: MeasurementPattern) -> bool:
    """True when every measurement is at a Pauli (X/Y-basis) angle.

    Such patterns arise exactly from Clifford circuits and can be
    executed on the stabilizer engine at any size.
    """
    return all(is_pauli_angle(alpha) for alpha in pattern.angles.values())


def _pauli_basis(theta: float) -> Tuple[str, int]:
    """Map an equatorial Pauli angle to ``(basis, sign)``.

    ``E(0)`` measures ``X``, ``E(pi/2)`` measures ``Y``, and the pi
    shifts negate the observable (``sign=1``).
    """
    ratio = normalize_angle(theta) / (math.pi / 2.0)
    quarter = int(round(ratio))
    if abs(ratio - quarter) > 1e-7:
        raise ValueError(f"angle {theta} is not a Pauli measurement basis")
    return [("x", 0), ("y", 0), ("x", 1), ("y", 1)][quarter % 4]


@dataclass
class StabilizerPatternResult:
    """Outcome record of one stabilizer pattern execution.

    Attributes:
        state: the full tableau over *all* pattern nodes (measured nodes
            are disentangled product qubits after execution); output
            byproducts are already corrected.
        qubit_of: pattern node -> tableau qubit index.
        outcomes: measured node -> outcome bit.
    """

    state: StabilizerState
    qubit_of: Dict[int, int]
    outcomes: Dict[int, int]

    def output_pauli(
        self, outputs: Sequence[int], x: Sequence[int], z: Sequence[int]
    ) -> PauliString:
        """Lift a Pauli on the output register onto the full tableau."""
        pauli = PauliString(self.state.n)
        for wire, node in enumerate(outputs):
            qubit = self.qubit_of[node]
            pauli.x[qubit] = x[wire]
            pauli.z[qubit] = z[wire]
        return pauli


class StabilizerPatternSimulator:
    """Executes a Clifford :class:`MeasurementPattern` on the CHP engine.

    Unlike :class:`PatternSimulator` the whole graph state is built up
    front (one vectorized tableau write) and every node is measured in
    its *actual* Pauli basis — the adaptive angle ``(-1)^s alpha + t pi``
    stays a Pauli angle when ``alpha`` is one.  Input nodes are prepared
    in ``|0>`` exactly as the dense simulator does.

    ``outcome_flips`` models classical measurement (detector) errors: for
    each listed node the *recorded* outcome bit — the one feed-forward
    and byproduct corrections consume — is the complement of the physical
    collapse branch.  :class:`repro.sim.noisy.NoisySampler` uses this to
    inject sampled measurement errors.
    """

    def __init__(
        self,
        pattern: MeasurementPattern,
        seed: Optional[int] = None,
        force_outcomes: Optional[Dict[int, int]] = None,
        outcome_flips: Optional[Iterable[int]] = None,
    ) -> None:
        if not pattern_is_clifford(pattern):
            raise ValueError(
                "pattern has non-Pauli measurement angles; "
                "use the dense PatternSimulator"
            )
        self.pattern = pattern
        self.seed = seed
        self.force_outcomes = force_outcomes or {}
        self.outcome_flips = frozenset(outcome_flips or ())

    def run(
        self,
        prepared: Optional[Tuple[StabilizerState, Dict[int, int]]] = None,
    ) -> StabilizerPatternResult:
        """Execute the pattern; returns the full-tableau result record.

        ``prepared`` optionally supplies a ``(state, node->qubit)`` pair —
        a graph-state tableau built ahead of time (possibly with Pauli
        faults already injected).  The caller owns that state: it is
        consumed in place, so pass a copy when reusing a base tableau
        across shots.  When omitted, the graph state is built fresh from
        the pattern.
        """
        pattern = self.pattern
        if prepared is None:
            state, index = StabilizerState.graph_state(
                pattern.graph, seed=self.seed, zero_nodes=pattern.inputs
            )
        else:
            state, index = prepared
        outcomes: Dict[int, int] = {}
        for node in pattern.measurement_order():
            alpha = pattern.angles[node]
            s = 0
            for src in pattern.x_deps.get(node, frozenset()):
                s ^= outcomes[src]
            t = 0
            for src in pattern.z_deps.get(node, frozenset()):
                t ^= outcomes[src]
            theta = ((-1.0) ** s) * alpha + t * math.pi
            basis, sign = _pauli_basis(theta)
            pauli = PauliString.from_ops(state.n, {index[node]: basis}, sign=sign)
            outcome = state.measure_pauli(
                pauli, force=self.force_outcomes.get(node)
            )
            if node in self.outcome_flips:
                outcome ^= 1
            outcomes[node] = outcome
        for node in pattern.outputs:
            t = 0
            for src in pattern.output_z.get(node, frozenset()):
                t ^= outcomes[src]
            if t:
                state.z_gate(index[node])
            s = 0
            for src in pattern.output_x.get(node, frozenset()):
                s ^= outcomes[src]
            if s:
                state.x_gate(index[node])
        return StabilizerPatternResult(
            state=state, qubit_of=index, outcomes=outcomes
        )


def simulate_pattern_stabilizer(
    pattern: MeasurementPattern, seed: Optional[int] = None
) -> StabilizerPatternResult:
    """One-shot wrapper around :class:`StabilizerPatternSimulator`."""
    return StabilizerPatternSimulator(pattern, seed=seed).run()


# ----------------------------------------------------------------------
# batched stabilizer execution of Clifford patterns
# ----------------------------------------------------------------------
@dataclass
class BatchedStabilizerPatternResult:
    """Outcome record of one batched pattern execution.

    Attributes:
        state: the batched tableau over all pattern nodes after
            execution (output byproducts corrected per batch element).
        qubit_of: pattern node -> tableau qubit index (shared).
        outcomes: measured node -> ``(batch,)`` recorded outcome bits.
    """

    state: "BatchedStabilizerState"
    qubit_of: Dict[int, int]
    outcomes: Dict[int, np.ndarray]

    def output_pauli(
        self, outputs: Sequence[int], x: Sequence[int], z: Sequence[int]
    ) -> PauliString:
        """Lift a Pauli on the output register onto the full tableau."""
        pauli = PauliString(self.state.n)
        for wire, node in enumerate(outputs):
            qubit = self.qubit_of[node]
            pauli.x[qubit] = x[wire]
            pauli.z[qubit] = z[wire]
        return pauli


def _pauli_sign_table(alpha: float) -> Tuple[str, np.ndarray]:
    """Basis and feed-forward sign table of a Pauli measurement angle.

    The runtime angle of a node is ``(-1)^s alpha + t pi``; for Pauli
    *alpha* the measured operator's basis (X or Y) is independent of
    ``(s, t)`` and only the sign varies.  Returns ``(basis, table)``
    with ``table[s, t]`` the sign bit — derived through the scalar
    executor's :func:`_pauli_basis` so the two paths cannot drift.
    """
    table = np.zeros((2, 2), dtype=np.uint8)
    bases = set()
    for s in (0, 1):
        for t in (0, 1):
            theta = ((-1.0) ** s) * alpha + t * math.pi
            basis, sign = _pauli_basis(theta)
            bases.add(basis)
            table[s, t] = sign
    if len(bases) != 1:  # pragma: no cover - impossible for Pauli alpha
        raise ValueError(f"angle {alpha} has no batch-uniform Pauli basis")
    return bases.pop(), table


class BatchedStabilizerPatternSimulator:
    """Executes a Clifford pattern for a whole batch of shots at once.

    The measurement sequence runs **once**: at each node the measured
    operator is shared across the batch (feed-forward at Pauli angles
    only moves the *sign*, computed per shot as boolean vectors from the
    recorded outcomes so far), so one batched
    :meth:`BatchedStabilizerState.measure_pauli` call advances every
    shot.  Output byproduct corrections apply as per-shot masks.

    ``outcome_flips`` maps a node to a ``(batch,)`` 0/1 array of
    measurement (detector) errors: flagged elements record — and
    feed-forward on — the complement of the physical outcome, exactly as
    the scalar executor's ``outcome_flips`` does per shot.
    """

    def __init__(
        self,
        pattern: MeasurementPattern,
        seed: Optional[int] = None,
        outcome_flips: Optional[Dict[int, np.ndarray]] = None,
    ) -> None:
        if not pattern_is_clifford(pattern):
            raise ValueError(
                "pattern has non-Pauli measurement angles; "
                "use the dense PatternSimulator"
            )
        self.pattern = pattern
        self.seed = seed
        self.outcome_flips = outcome_flips or {}

    def run(
        self,
        batch: Optional[int] = None,
        prepared: Optional[Tuple["BatchedStabilizerState", Dict[int, int]]] = None,
    ) -> BatchedStabilizerPatternResult:
        """Execute the pattern for *batch* shots; returns the batched
        result record.

        ``prepared`` optionally supplies a ``(state, node->qubit)`` pair
        (a batched graph-state tableau, possibly with Pauli faults
        already injected per element); it is consumed in place.  When
        omitted, *batch* is required and the graph state is built fresh.
        """
        from repro.sim.stabilizer_batch import BatchedStabilizerState

        pattern = self.pattern
        if prepared is None:
            if batch is None:
                raise ValueError("pass either batch or prepared")
            state, index = BatchedStabilizerState.graph_state(
                pattern.graph,
                batch,
                seed=self.seed,
                zero_nodes=pattern.inputs,
            )
        else:
            state, index = prepared
        n_batch = state.batch
        zeros = np.zeros(n_batch, dtype=np.uint8)
        outcomes: Dict[int, np.ndarray] = {}
        for node in pattern.measurement_order():
            s = zeros.copy()
            for src in pattern.x_deps.get(node, frozenset()):
                s ^= outcomes[src]
            t = zeros.copy()
            for src in pattern.z_deps.get(node, frozenset()):
                t ^= outcomes[src]
            basis, sign_table = _pauli_sign_table(pattern.angles[node])
            pauli = PauliString.from_ops(state.n, {index[node]: basis})
            outcome = state.measure_pauli(pauli, signs=sign_table[s, t])
            flips = self.outcome_flips.get(node)
            if flips is not None:
                outcome = outcome ^ np.asarray(flips, dtype=np.uint8)
            outcomes[node] = outcome
        for node in pattern.outputs:
            t = zeros.copy()
            for src in pattern.output_z.get(node, frozenset()):
                t ^= outcomes[src]
            if t.any():
                state.z_gate(index[node], mask=t.astype(bool))
            s = zeros.copy()
            for src in pattern.output_x.get(node, frozenset()):
                s ^= outcomes[src]
            if s.any():
                state.x_gate(index[node], mask=s.astype(bool))
        return BatchedStabilizerPatternResult(
            state=state, qubit_of=index, outcomes=outcomes
        )
