"""Runtime lock-order sanitizer: instrumented locks + dynamic witness.

The static concurrency pass (:mod:`repro.analysis.concurrency`) proves
properties of the *source*; this module witnesses the same properties
at *runtime*, ThreadSanitizer-style.  Every lock in the serving stack
is constructed through :func:`make_lock`, which normally hands back a
plain ``threading.Lock`` (zero overhead).  With the sanitizer enabled —
``REPRO_SYNC_SANITIZE=1`` in the environment, or
:func:`enable_sanitizer` from a test fixture — it returns a
:class:`TrackedLock` instead, which records into the process-global
:data:`GLOBAL_REGISTRY`:

* the **held-lock stack** per thread (what this thread holds right now);
* the **lock-order witness**: a directed edge ``outer -> inner`` with a
  count, recorded every time ``inner`` is acquired while ``outer`` is
  held;
* per-lock **acquisition counts** (proof the instrumentation actually
  ran — an empty witness on an untouched registry proves nothing).

Acquiring a lock whose witness edge would close a cycle raises
:class:`LockOrderError` *at the acquisition site*: the interleaving
that would deadlock is named the first time the conflicting order is
even attempted, not the one unlucky run where both threads interleave
badly.

Lock names are chosen to match the identities the static analyzer
derives from the source (``ClassName.attr`` for ``self.attr`` locks,
``function.varname`` for function-local locks), so a dynamic witness
edge can be cross-checked against the static acquisition graph with
:func:`check_witness_against`.
"""

from __future__ import annotations

import os
import threading
from types import TracebackType
from typing import Dict, Iterable, List, Mapping, Optional, Protocol, Tuple

#: environment flag that turns :func:`make_lock` into TrackedLock mode
SANITIZER_ENV = "REPRO_SYNC_SANITIZE"

_TRUTHY = ("1", "true", "yes", "on")


class LockOrderError(RuntimeError):
    """A lock acquisition closed a cycle in the dynamic order witness."""


class LockLike(Protocol):
    """The mutex surface shared by ``threading.Lock`` and TrackedLock."""

    def acquire(self, blocking: bool = ..., timeout: float = ...) -> bool:
        ...

    def release(self) -> None:
        ...

    def locked(self) -> bool:
        ...

    def __enter__(self) -> bool:
        ...

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> object:
        ...


def find_cycle(edges: Iterable[Tuple[str, str]]) -> Optional[List[str]]:
    """A cycle in the directed graph *edges*, or ``None``.

    Returns the cycle as a node list ``[a, b, ..., a]`` (first node
    repeated at the end).  Deterministic: neighbors are explored in
    sorted order, so the same graph always reports the same cycle.
    """
    adjacency: Dict[str, List[str]] = {}
    for src, dst in edges:
        adjacency.setdefault(src, []).append(dst)
    for neighbors in adjacency.values():
        neighbors.sort()

    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[str, int] = {}
    parent: Dict[str, str] = {}

    def visit(root: str) -> Optional[List[str]]:
        stack: List[Tuple[str, Iterable[str]]] = [
            (root, iter(adjacency.get(root, ())))
        ]
        color[root] = GRAY
        while stack:
            node, neighbors = stack[-1]
            advanced = False
            for nxt in neighbors:
                state = color.get(nxt, WHITE)
                if state == GRAY:  # back edge: walk parents to recover
                    cycle = [nxt, node]
                    cur = node
                    while cur != nxt:
                        cur = parent[cur]
                        cycle.append(cur)
                    cycle.reverse()
                    return cycle
                if state == WHITE:
                    color[nxt] = GRAY
                    parent[nxt] = node
                    stack.append((nxt, iter(adjacency.get(nxt, ()))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
        return None

    for start in sorted(adjacency):
        if color.get(start, WHITE) == WHITE:
            cycle = visit(start)
            if cycle is not None:
                return cycle
    return None


class _HeldStack(threading.local):
    """Per-thread stack of held TrackedLock names."""

    def __init__(self) -> None:
        self.stack: List[str] = []


class WitnessRegistry:
    """Process-global accumulator for the dynamic lock-order witness.

    Thread-safe; the registry's own mutex is a plain ``threading.Lock``
    (it must not record itself).  One module-level instance
    (:data:`GLOBAL_REGISTRY`) backs every :class:`TrackedLock` unless a
    test injects its own.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._edges: Dict[Tuple[str, str], int] = {}
        self._acquisitions: Dict[str, int] = {}
        self._held = _HeldStack()

    # -- recording (called by TrackedLock) -----------------------------
    def record_acquire(self, name: str) -> None:
        """Record that the current thread acquired *name*.

        Raises :class:`LockOrderError` — *before* recording — when the
        new ``held -> name`` edge would close a cycle in the witness.
        """
        held = list(self._held.stack)
        with self._mutex:
            new_edges = [
                (outer, name)
                for outer in held
                if (outer, name) not in self._edges
            ]
            if new_edges:
                cycle = find_cycle(list(self._edges) + new_edges)
                if cycle is not None:
                    raise LockOrderError(
                        f"acquiring {name!r} while holding "
                        f"[{', '.join(held)}] closes a lock-order "
                        f"cycle: {' -> '.join(cycle)}"
                    )
            self._acquisitions[name] = self._acquisitions.get(name, 0) + 1
            for outer in held:
                edge = (outer, name)
                self._edges[edge] = self._edges.get(edge, 0) + 1
        self._held.stack.append(name)

    def record_release(self, name: str) -> None:
        """Pop *name*'s most recent entry off this thread's held stack."""
        stack = self._held.stack
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    # -- inspection ----------------------------------------------------
    def edges(self) -> Dict[Tuple[str, str], int]:
        """Witnessed ``(outer, inner) -> count`` acquisition-order edges."""
        with self._mutex:
            return dict(self._edges)

    def acquisitions(self) -> Dict[str, int]:
        """Per-lock acquisition counts since the last :meth:`reset`."""
        with self._mutex:
            return dict(self._acquisitions)

    def held(self) -> Tuple[str, ...]:
        """Locks the *calling thread* holds right now, outermost first."""
        return tuple(self._held.stack)

    def assert_acyclic(self) -> None:
        """Raise :class:`LockOrderError` if the witness graph has a cycle.

        :meth:`record_acquire` already refuses cycle-closing edges, so
        this only fires if the registry was populated out-of-band; it
        exists as the explicit end-of-test assertion.
        """
        cycle = find_cycle(self.edges())
        if cycle is not None:
            raise LockOrderError(
                f"lock-order witness contains a cycle: {' -> '.join(cycle)}"
            )

    def reset(self) -> None:
        """Drop all recorded edges and counts (held stacks are per-thread
        and survive only within their threads)."""
        with self._mutex:
            self._edges.clear()
            self._acquisitions.clear()


#: default registry every TrackedLock records into
GLOBAL_REGISTRY = WitnessRegistry()


class TrackedLock:
    """A ``threading.Lock`` wrapper that records the lock-order witness.

    Same acquire/release/context-manager surface as the lock it wraps;
    every successful acquire pushes onto the per-thread held stack and
    records order edges from every lock already held.
    """

    def __init__(
        self, name: str, registry: Optional[WitnessRegistry] = None
    ) -> None:
        self.name = name
        self._registry = registry if registry is not None else GLOBAL_REGISTRY
        self._inner = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            try:
                self._registry.record_acquire(self.name)
            except LockOrderError:
                self._inner.release()  # don't wedge the failing test
                raise
        return acquired

    def release(self) -> None:
        self._registry.record_release(self.name)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self._inner.locked() else "unlocked"
        return f"<TrackedLock {self.name!r} {state}>"


# ----------------------------------------------------------------------
# construction-time switch
# ----------------------------------------------------------------------
_FORCED: Optional[bool] = None


def sanitizer_enabled() -> bool:
    """Whether :func:`make_lock` currently returns tracked locks."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get(SANITIZER_ENV, "").strip().lower() in _TRUTHY


def enable_sanitizer(enabled: Optional[bool] = True) -> None:
    """Override the environment switch (``None`` restores env control).

    Takes effect for locks constructed *after* the call — test fixtures
    enable it before building the store/service under test.
    """
    global _FORCED
    _FORCED = enabled


def make_lock(name: str) -> LockLike:
    """A lock named for the sanitizer: tracked when enabled, plain otherwise.

    *name* must match the identity the static analyzer derives for the
    acquisition site (``ClassName.attr`` / ``function.varname``), so
    dynamic witness edges line up with the static lock-order graph.
    """
    if sanitizer_enabled():
        return TrackedLock(name)
    return threading.Lock()


def check_witness_against(
    static_edges: Iterable[Tuple[str, str]],
    registry: Optional[WitnessRegistry] = None,
    require_locks: Iterable[str] = (),
) -> Dict[Tuple[str, str], int]:
    """Cross-check the dynamic witness against the static order graph.

    Asserts (raising :class:`LockOrderError`) that the witness is
    acyclic, that it stays acyclic when unioned with the statically
    inferred acquisition edges (a dynamic order contradicting the
    static one is a latent deadlock even if this run survived), and
    that every lock in *require_locks* was actually acquired at least
    once (guarding against a silently disabled sanitizer).  Returns the
    witnessed edges.
    """
    registry = registry if registry is not None else GLOBAL_REGISTRY
    witness = registry.edges()
    counts = registry.acquisitions()
    missing = sorted(set(require_locks) - {n for n, c in counts.items() if c})
    if missing:
        raise LockOrderError(
            "sanitizer recorded no acquisitions for: " + ", ".join(missing)
        )
    registry.assert_acyclic()
    union: Mapping[Tuple[str, str], int] = {
        **{edge: 0 for edge in static_edges},
        **witness,
    }
    cycle = find_cycle(union)
    if cycle is not None:
        raise LockOrderError(
            "dynamic witness contradicts the static acquisition order: "
            + " -> ".join(cycle)
        )
    return witness
