"""Small 2D grid geometry helpers used by the mapping stage."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Tuple

Coord = Tuple[int, int]


@lru_cache(maxsize=None)
def grid_neighbor_table(shape: Tuple[int, int]) -> Dict[Coord, List[Coord]]:
    """4-neighbour adjacency for every cell of a *shape* grid.

    Cached per shape and shared by all grid consumers (mapper layers,
    shuffle layers) so hot BFS loops avoid recomputing bounds checks.
    """
    rows, cols = shape
    return {
        (r, c): [
            (rr, cc)
            for rr, cc in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1))
            if 0 <= rr < rows and 0 <= cc < cols
        ]
        for r in range(rows)
        for c in range(cols)
    }


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle given by inclusive corner coordinates."""

    x_min: int
    y_min: int
    x_max: int
    y_max: int

    @property
    def width(self) -> int:
        return self.x_max - self.x_min + 1

    @property
    def height(self) -> int:
        return self.y_max - self.y_min + 1

    @property
    def area(self) -> int:
        return self.width * self.height

    def contains(self, coord: Coord) -> bool:
        x, y = coord
        return self.x_min <= x <= self.x_max and self.y_min <= y <= self.y_max

    def expanded_to(self, coord: Coord) -> "Rect":
        """Return the smallest rectangle covering both self and *coord*."""
        x, y = coord
        return Rect(
            min(self.x_min, x),
            min(self.y_min, y),
            max(self.x_max, x),
            max(self.y_max, y),
        )


def bounding_rect(coords: Iterable[Coord]) -> Rect:
    """Smallest rectangle enclosing *coords* (which must be non-empty)."""
    coords = list(coords)
    if not coords:
        raise ValueError("bounding_rect() requires at least one coordinate")
    xs = [c[0] for c in coords]
    ys = [c[1] for c in coords]
    return Rect(min(xs), min(ys), max(xs), max(ys))


def manhattan(a: Coord, b: Coord) -> int:
    """Manhattan (L1) distance between two grid coordinates."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])
