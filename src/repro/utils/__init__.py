"""Shared utilities: angles, geometry, RNG and lock instrumentation."""

from repro.utils.angles import (
    ANGLE_ATOL,
    is_clifford_angle,
    is_pauli_angle,
    normalize_angle,
)
from repro.utils.bitgrid import BitGridSpec, expand, lexmin_path, nearest_free, spec_for
from repro.utils.geometry import Rect, bounding_rect, manhattan
from repro.utils.sync import (
    GLOBAL_REGISTRY,
    LockOrderError,
    TrackedLock,
    WitnessRegistry,
    check_witness_against,
    enable_sanitizer,
    find_cycle,
    make_lock,
    sanitizer_enabled,
)

__all__ = [
    "ANGLE_ATOL",
    "BitGridSpec",
    "GLOBAL_REGISTRY",
    "LockOrderError",
    "Rect",
    "TrackedLock",
    "WitnessRegistry",
    "bounding_rect",
    "check_witness_against",
    "enable_sanitizer",
    "expand",
    "find_cycle",
    "is_clifford_angle",
    "is_pauli_angle",
    "lexmin_path",
    "make_lock",
    "manhattan",
    "nearest_free",
    "normalize_angle",
    "sanitizer_enabled",
    "spec_for",
]
