"""Shared utilities: angles, geometry and deterministic RNG helpers."""

from repro.utils.angles import (
    ANGLE_ATOL,
    is_clifford_angle,
    is_pauli_angle,
    normalize_angle,
)
from repro.utils.bitgrid import BitGridSpec, expand, lexmin_path, nearest_free, spec_for
from repro.utils.geometry import Rect, bounding_rect, manhattan

__all__ = [
    "ANGLE_ATOL",
    "BitGridSpec",
    "Rect",
    "bounding_rect",
    "expand",
    "is_clifford_angle",
    "is_pauli_angle",
    "lexmin_path",
    "manhattan",
    "nearest_free",
    "normalize_angle",
    "spec_for",
]
