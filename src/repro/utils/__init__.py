"""Shared utilities: angles, geometry and deterministic RNG helpers."""

from repro.utils.angles import (
    ANGLE_ATOL,
    is_clifford_angle,
    is_pauli_angle,
    normalize_angle,
)
from repro.utils.geometry import Rect, bounding_rect, manhattan

__all__ = [
    "ANGLE_ATOL",
    "Rect",
    "bounding_rect",
    "is_clifford_angle",
    "is_pauli_angle",
    "manhattan",
    "normalize_angle",
]
