"""Helpers for measurement angles.

Angles in this codebase are always expressed in radians on the X-Y equator
of the Bloch sphere (the paper's ``E(alpha)`` measurements).  Two families
of angles get special treatment by the compiler:

* *Pauli angles* (multiples of ``pi/2``): the measurement is in the X or Y
  basis, so byproduct corrections can be absorbed classically and the
  measurement never needs to be adaptive.
* *Clifford angles*: same set in this single-qubit equatorial setting; the
  name is kept separate because the paper talks about "Clifford gates"
  executing simultaneously (Section 4).
"""

from __future__ import annotations

import math

#: Absolute tolerance used when classifying angles.
ANGLE_ATOL = 1e-9

_TWO_PI = 2.0 * math.pi


def normalize_angle(alpha: float) -> float:
    """Map *alpha* into the canonical interval ``[0, 2*pi)``.

    >>> round(normalize_angle(-math.pi / 2), 6) == round(3 * math.pi / 2, 6)
    True
    """
    alpha = math.fmod(alpha, _TWO_PI)
    if alpha < 0.0:
        alpha += _TWO_PI
    if abs(alpha - _TWO_PI) < ANGLE_ATOL:
        alpha = 0.0
    return alpha


def _is_multiple_of(alpha: float, unit: float) -> bool:
    alpha = normalize_angle(alpha)
    ratio = alpha / unit
    return abs(ratio - round(ratio)) < 1e-7


def is_pauli_angle(alpha: float) -> bool:
    """Return True when ``E(alpha)`` is an X- or Y-basis measurement.

    These are the angles ``0, pi/2, pi, 3*pi/2``; measurements at these
    angles never need adaptive corrections because Pauli byproducts only
    flip the (classical) outcome.
    """
    return _is_multiple_of(alpha, math.pi / 2.0)


def is_clifford_angle(alpha: float) -> bool:
    """Return True when a ``J(alpha)`` gate at this angle is Clifford."""
    return _is_multiple_of(alpha, math.pi / 2.0)
