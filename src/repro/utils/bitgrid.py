"""Bit-packed grid planes: word-parallel kernels for the compile path.

A grid occupancy set is packed into one Python integer (an arbitrary-
precision *bitboard*): cell ``(r, c)`` lives at bit ``r * stride + c``
with ``stride = cols + 1``.  The extra **guard column** keeps the four
neighbour shifts from wrapping between rows — shifting a bit off the
left edge lands it in the previous row's guard bit, which every kernel
masks away with ``full`` (the set of real cells).  One shift/OR/AND
sequence therefore advances a whole BFS frontier at once, and
``int.bit_count()`` evaluates set sizes word-parallel — the compile-side
analogue of the packed rows in :mod:`repro.sim.stabilizer`.

The routing kernel :func:`lexmin_path` reproduces the scalar FIFO BFS of
the seed mapper/shuffler **bit for bit**.  The scalar search expands
neighbours in U, D, L, R order and lets the first claimer of a cell keep
it, which makes the returned path the lexicographically minimal
direction string (priority ``U < D < L < R``) among all shortest paths:
within one BFS depth the queue is ordered by that string, so the first
parent that reaches the goal carries the minimal prefix.  The packed
kernel recovers exactly that path from one *backward* BFS flood: walking
from the start and taking, at each step ``k``, the smallest direction
whose cell sits at backward depth ``L - k - 1`` — greedy by direction is
lexicographic by construction, the level planes guarantee the walk never
dead-ends, and a forward flood is unnecessary: a free cell adjacent to
the walk position (forward depth ``k``) with backward depth
``L - k - 1`` is automatically at forward depth exactly ``k + 1``, since
any shorter route to it would yield a start-goal path shorter than
``L``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Tuple

Coord = Tuple[int, int]


class BitGridSpec:
    """Precomputed packing tables for one grid shape (cached, shared).

    Attributes:
        rows / cols: grid shape.
        stride: bits per packed row (``cols + 1``; one guard bit).
        nbits: total packed length (``rows * stride``).
        full: bitboard of every real cell (guard column clear).
        bit: per-index single-bit masks (``bit[i] == 1 << i``).
        nbr_idx: in-bounds neighbour indices per cell index in U, D, L, R
            order — the same order as
            :func:`repro.utils.geometry.grid_neighbor_table`.
        nbr_mask: OR of each cell's neighbour bits (popcount against an
            occupancy plane counts blocked neighbours word-parallel).
        coord: per-index ``(row, col)`` tuples (avoids a divmod per
            unpacked cell on hot paths; guard slots hold their divmod
            value and are never looked up).
        free0: initial free-neighbour count per cell index on an empty
            grid (2 at corners, 3 on edges, 4 in the interior).
    """

    __slots__ = ("rows", "cols", "stride", "nbits", "full", "bit",
                 "nbr_idx", "nbr_mask", "coord", "free0")

    def __init__(self, shape: Coord) -> None:
        rows, cols = shape
        if rows < 1 or cols < 1:
            raise ValueError("grid shape must be positive")
        self.rows = rows
        self.cols = cols
        stride = cols + 1
        self.stride = stride
        self.nbits = rows * stride
        full = 0
        for r in range(rows):
            full |= ((1 << cols) - 1) << (r * stride)
        self.full = full
        self.bit: List[int] = [1 << i for i in range(self.nbits)]
        nbr_idx: List[Tuple[int, ...]] = []
        free0: List[int] = []
        for r in range(rows):
            for c in range(cols):
                nbrs = tuple(
                    rr * stride + cc
                    for rr, cc in ((r - 1, c), (r + 1, c), (r, c - 1), (r, c + 1))
                    if 0 <= rr < rows and 0 <= cc < cols
                )
                nbr_idx.append(nbrs)
                free0.append(len(nbrs))
            nbr_idx.append(())  # guard slot
            free0.append(0)
        self.nbr_idx = nbr_idx
        self.nbr_mask: List[int] = [
            sum(1 << j for j in nbrs) for nbrs in nbr_idx
        ]
        self.coord: List[Coord] = [
            divmod(i, stride) for i in range(self.nbits)
        ]
        self.free0 = free0

    def index_of(self, coord: Coord) -> int:
        return coord[0] * self.stride + coord[1]

    def coord_of(self, index: int) -> Coord:
        return divmod(index, self.stride)


@lru_cache(maxsize=None)
def spec_for(shape: Coord) -> BitGridSpec:
    """The (cached) packing spec for *shape*."""
    return BitGridSpec(shape)


def expand(spec: BitGridSpec, mask: int) -> int:
    """All real cells 4-adjacent to *mask* (the BFS frontier step)."""
    stride = spec.stride
    return (
        (mask >> stride) | (mask << stride) | (mask >> 1) | (mask << 1)
    ) & spec.full


def lexmin_path(
    spec: BitGridSpec,
    free: int,
    start: int,
    goal: int,
    max_len: Optional[int] = None,
) -> Optional[List[int]]:
    """Shortest *start* → *goal* path with free interior, or ``None``.

    ``free`` is the bitboard of traversable cells; ``start`` and
    ``goal`` themselves may be occupied (they are endpoints, not
    interior).  ``max_len`` bounds the path length in steps (a scalar
    BFS that refuses to expand nodes at depth ``max_len`` finds the goal
    only at depth ``<= max_len``).  The returned index path includes
    both endpoints and is the lexicographically minimal direction string
    among all shortest paths (see module docstring), i.e. exactly the
    path the seed scalar BFS returns.
    """
    stride = spec.stride
    full = spec.full
    start_bit = 1 << start
    # backward BFS level planes: rlevels[i] = free cells at distance i
    # from the goal (the start, like the goal, may be non-free, so it is
    # detected at frontier generation before the free mask applies)
    rfrontier = 1 << goal
    rreach = rfrontier
    rlevels = [rfrontier]
    depth = 0
    while True:
        if max_len is not None and depth >= max_len:
            return None
        gen = (
            (rfrontier >> stride) | (rfrontier << stride)
            | (rfrontier >> 1) | (rfrontier << 1)
        ) & full
        if gen & start_bit:
            length = depth + 1
            break
        rfrontier = gen & free & ~rreach
        if not rfrontier:
            return None
        rlevels.append(rfrontier)
        rreach |= rfrontier
        depth += 1
    if length == 1:
        return [start, goal]
    bit = spec.bit
    nbits = spec.nbits
    path = [start]
    cur = start
    for step in range(1, length):
        want = rlevels[length - step]
        for delta in (-stride, stride, -1, 1):  # U, D, L, R
            nxt = cur + delta
            if 0 <= nxt < nbits and want & bit[nxt]:
                cur = nxt
                break
        else:  # pragma: no cover - level-plane invariant
            raise RuntimeError("lexmin walk left the shortest-path planes")
        path.append(cur)
    path.append(goal)
    return path


def nearest_free(spec: BitGridSpec, occupied: int, center: int) -> Optional[int]:
    """Nearest free cell to *center* by (manhattan distance, row, col).

    Scans expanding distance rings (the ring at step ``d`` of repeated
    frontier expansion over all in-bounds cells is exactly the set of
    cells at manhattan distance ``d`` — the grid rectangle is convex);
    within the first ring holding a free cell the lowest set bit is the
    (row, col)-minimal coordinate.  ``center`` itself is never returned.
    """
    stride = spec.stride
    full = spec.full
    free = full & ~occupied
    reach = 1 << center
    while True:
        grown = (
            reach
            | (reach >> stride) | (reach << stride)
            | (reach >> 1) | (reach << 1)
        ) & full
        ring = grown & ~reach
        if not ring:
            return None
        hit = ring & free
        if hit:
            return ((hit & -hit).bit_length()) - 1
        reach = grown
