"""MBQC substrate: graph states, patterns, translation and flow analysis."""

from repro.mbqc.flow import (
    adaptive_depth,
    blocking_sources,
    dependency_layers,
    layer_assignment,
    verify_layering,
)
from repro.mbqc.graph_state import (
    disjoint_union,
    fuse,
    graph_state_vector,
    grid_graph,
    linear_graph,
    max_degree,
    neighborhood,
    relabeled,
    ring_graph,
    star_graph,
    z_measure,
)
from repro.mbqc.pattern import MeasurementPattern
from repro.mbqc.translate import circuit_to_pattern

__all__ = [
    "MeasurementPattern",
    "adaptive_depth",
    "blocking_sources",
    "circuit_to_pattern",
    "dependency_layers",
    "disjoint_union",
    "fuse",
    "graph_state_vector",
    "grid_graph",
    "layer_assignment",
    "linear_graph",
    "max_degree",
    "neighborhood",
    "relabeled",
    "ring_graph",
    "star_graph",
    "verify_layering",
    "z_measure",
]
