"""Executability analysis: Lemma 1 and dependency layers (paper Sec. 4).

A measurement is *executable* once all of its X-dependency sources are
measured and all Z-dependency sources of those X-dependency sources are
measured (Lemma 1).  Z-dependencies of the node itself never block
execution: flipping an angle by ``pi`` merely relabels the two outcomes.
Pauli-basis measurements are never adaptive, so all Clifford measurements
land in the first dependency layer — the paper's observation that Clifford
gates execute simultaneously.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.mbqc.pattern import MeasurementPattern


def blocking_sources(pattern: MeasurementPattern, node: int) -> FrozenSet[int]:
    """Nodes that must be measured before *node* is executable (Lemma 1)."""
    sources = set()
    for xsrc in pattern.effective_x_deps(node):
        sources.add(xsrc)
        sources.update(pattern.z_deps.get(xsrc, frozenset()))
    sources.discard(node)
    return frozenset(sources)


def dependency_layers(pattern: MeasurementPattern) -> List[List[int]]:
    """Partition all graph nodes into executability layers.

    Layer ``k`` contains nodes whose blocking sources are all in layers
    ``< k``.  Output nodes are treated as non-adaptive (their readout is a
    fixed-basis measurement), so they are placed according to graph
    proximity of their producers: an output's layer is the layer of its
    latest blocking source, or 0 when it has none.

    Level-synchronous Kahn: indegree counters over the blocking DAG with
    a ready queue, each blocking edge relaxed exactly once — a node's
    counter hits zero in the round after its last source, which is the
    same layer the seed's rescan-every-remaining-node loop assigned
    (pinned by the equivalence tests in ``tests/mbqc/test_flow.py``).
    """
    blocking = {v: blocking_sources(pattern, v) for v in pattern.graph.nodes()}
    indegree: Dict[int, int] = {}
    dependents: Dict[int, List[int]] = {}
    for node, sources in blocking.items():
        indegree[node] = len(sources)
        for src in sources:
            dependents.setdefault(src, []).append(node)
    current = [node for node, degree in indegree.items() if degree == 0]
    layers: List[List[int]] = []
    assigned = 0
    while current:
        layers.append(sorted(current))
        assigned += len(current)
        ready: List[int] = []
        for node in current:
            for dependent in dependents.get(node, ()):
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
        current = ready
    if assigned != len(blocking):
        raise RuntimeError(
            "dependency cycle detected; pattern dependencies are corrupt"
        )
    return layers


def layer_assignment(pattern: MeasurementPattern) -> Dict[int, int]:
    """Map node -> dependency layer index."""
    assignment: Dict[int, int] = {}
    for idx, layer in enumerate(dependency_layers(pattern)):
        for node in layer:
            assignment[node] = idx
    return assignment


def adaptive_depth(pattern: MeasurementPattern) -> int:
    """Number of dependency layers (the feed-forward critical path)."""
    return len(dependency_layers(pattern))


def scheduling_ranks(pattern: MeasurementPattern) -> Dict[int, int]:
    """Geometry-preserving executability rank per node (Sec. 4).

    Longest-path rank in the *raw* dependency DAG (X- and Z-dependencies
    without the Pauli filter, plus output byproduct sources).  Because
    the translator threads an X-dependency along every wire, consecutive
    wire nodes get consecutive ranks — this is the paper's "concurrently
    consider dependencies and overall geometry": grouping consecutive
    ranks keeps wire chains together while never scheduling a node before
    its blocking sources (every dependency source has a strictly smaller
    rank, which is stronger than Lemma 1).
    """
    # Kahn-style longest-path ranking: dependencies are merged once per
    # node and each edge is relaxed once, instead of re-scanning every
    # unranked node per fixed-point round (quadratic on deep patterns).
    deps: Dict[int, Set[int]] = {}
    dependents: Dict[int, List[int]] = {}
    for node in pattern.graph.nodes():
        merged = set(pattern.x_deps.get(node, frozenset()))
        merged |= pattern.z_deps.get(node, frozenset())
        merged |= pattern.output_x.get(node, frozenset())
        merged |= pattern.output_z.get(node, frozenset())
        merged.discard(node)
        deps[node] = merged
    for node, sources in deps.items():
        for src in sources:
            if src in deps:
                dependents.setdefault(src, []).append(node)
    indegree = {node: len(sources) for node, sources in deps.items()}
    ready = deque(node for node, deg in indegree.items() if deg == 0)
    rank: Dict[int, int] = {}
    while ready:
        node = ready.popleft()
        rank[node] = 1 + max(
            (rank[src] for src in deps[node]), default=-1
        )
        for dependent in dependents.get(node, ()):
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                ready.append(dependent)
    if len(rank) != len(deps):
        raise RuntimeError("cycle in raw dependency DAG")
    return rank


def rank_layers(pattern: MeasurementPattern) -> List[List[int]]:
    """Nodes grouped by scheduling rank, in ascending rank order."""
    ranks = scheduling_ranks(pattern)
    depth = max(ranks.values(), default=0)
    layers: List[List[int]] = [[] for _ in range(depth + 1)]
    for node, r in ranks.items():
        layers[r].append(node)
    return [sorted(layer) for layer in layers if layer]


def verify_layering(
    pattern: MeasurementPattern, layers: List[List[int]]
) -> Tuple[bool, str]:
    """Check that *layers* is a valid Lemma-1 layering of *pattern*.

    Returns ``(ok, message)`` so tests can assert with context.
    """
    layer_of: Dict[int, int] = {}
    for idx, layer in enumerate(layers):
        for node in layer:
            if node in layer_of:
                return False, f"node {node} appears twice"
            layer_of[node] = idx
    if set(layer_of) != set(pattern.graph.nodes()):
        return False, "layers do not cover all nodes"
    for node in pattern.graph.nodes():
        for src in blocking_sources(pattern, node):
            if layer_of[src] >= layer_of[node]:
                return False, (
                    f"node {node} in layer {layer_of[node]} blocked by "
                    f"{src} in layer {layer_of[src]}"
                )
    return True, "ok"
