"""Graph states and the photonic fusion rule.

A *graph state* on a graph ``G = (V, E)`` is the stabilizer state obtained
by preparing every vertex qubit in ``|+>`` and applying a CZ along every
edge.  This module stores graph states purely combinatorially (as a
:class:`networkx.Graph`); dense vectors for verification are produced by
:func:`graph_state_vector`.

The *fusion* operation (paper Fig. 2) is the native photonic entangling
primitive: a destructive joint measurement in the XZ- and ZX-bases of two
qubits ``c`` and ``d`` from (possibly different) graph states.  Both
photons vanish and, for the even-outcome branch, the surviving qubits form
the graph state whose edge set is toggled by the complete bipartite graph
``N(c) x N(d)`` (verified against dense simulation in the tests).
"""

from __future__ import annotations

from itertools import product
from typing import Hashable, Iterable, Optional, Tuple

import networkx as nx
import numpy as np


def linear_graph(num_nodes: int) -> nx.Graph:
    """Path graph 0-1-...-(n-1): the n-qubit linear cluster state."""
    return nx.path_graph(num_nodes)


def star_graph(num_leaves: int) -> nx.Graph:
    """Star with centre 0 and *num_leaves* leaves (a GHZ-class state)."""
    return nx.star_graph(num_leaves)


def ring_graph(num_nodes: int) -> nx.Graph:
    """Cycle graph: the n-qubit ring cluster state."""
    return nx.cycle_graph(num_nodes)


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """2D lattice cluster-state graph with (row, col) node labels."""
    return nx.grid_2d_graph(rows, cols)


def fuse(
    graph: nx.Graph, c: Hashable, d: Hashable, allow_neighbors: bool = False
) -> nx.Graph:
    """Fuse qubits *c* and *d* of (a disjoint union) graph state.

    Returns a new graph where ``c`` and ``d`` have vanished and every pair
    ``(u, w)`` with ``u in N(c)``, ``w in N(d)`` has had its edge toggled
    (CZ is an involution, so fusing onto an existing edge erases it).

    Raises ``ValueError`` if ``c`` and ``d`` are adjacent — fusing
    neighbouring qubits is not used by the paper's patterns and has
    different semantics — unless ``allow_neighbors`` is set.
    """
    if c == d:
        raise ValueError("cannot fuse a qubit with itself")
    if c not in graph or d not in graph:
        raise ValueError("fusion endpoints must be in the graph")
    if not allow_neighbors and graph.has_edge(c, d):
        raise ValueError(f"fusion endpoints {c!r}, {d!r} are adjacent")
    nc = set(graph.neighbors(c)) - {d}
    nd = set(graph.neighbors(d)) - {c}
    out = graph.copy()
    out.remove_node(c)
    out.remove_node(d)
    for u, w in product(nc, nd):
        if u == w:
            continue
        if out.has_edge(u, w):
            out.remove_edge(u, w)
        else:
            out.add_edge(u, w)
    return out


def z_measure(graph: nx.Graph, node: Hashable) -> nx.Graph:
    """Remove *node* by a Z measurement (even-outcome branch).

    A Z measurement simply deletes the qubit and its edges — this is how
    redundant resource-state qubits are discarded (paper Sec. 2.2.2/5).
    """
    if node not in graph:
        raise ValueError(f"node {node!r} not in graph")
    out = graph.copy()
    out.remove_node(node)
    return out


def graph_state_vector(
    graph: nx.Graph,
    order: Optional[Tuple[Hashable, ...]] = None,
    input_states: Optional[dict] = None,
) -> np.ndarray:
    """Dense statevector of the graph state of *graph* (testing helper).

    ``order`` fixes the qubit ordering (little-endian: ``order[0]`` is the
    least significant bit).  ``input_states`` optionally maps a node to a
    length-2 amplitude pair used instead of ``|+>``.
    """
    nodes = tuple(order) if order is not None else tuple(sorted(graph.nodes()))
    if set(nodes) != set(graph.nodes()):
        raise ValueError("order must enumerate exactly the graph nodes")
    index_of = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    plus = np.array([1.0, 1.0], dtype=complex) / np.sqrt(2.0)
    state = np.ones(1, dtype=complex)
    for node in nodes:  # little-endian: later qubits are more significant
        amp = plus
        if input_states and node in input_states:
            amp = np.asarray(input_states[node], dtype=complex)
            amp = amp / np.linalg.norm(amp)
        state = np.kron(amp, state)
    for u, v in graph.edges():
        iu, iv = index_of[u], index_of[v]
        idx = np.arange(2**n)
        mask = ((idx >> iu) & 1) & ((idx >> iv) & 1)
        state = state * np.where(mask, -1.0, 1.0)
    return state


def disjoint_union(a: nx.Graph, b: nx.Graph) -> nx.Graph:
    """Union of two graphs that must not share node labels."""
    overlap = set(a.nodes()) & set(b.nodes())
    if overlap:
        raise ValueError(f"graphs share nodes: {sorted(overlap)!r}")
    out = nx.Graph()
    out.add_nodes_from(a.nodes())
    out.add_nodes_from(b.nodes())
    out.add_edges_from(a.edges())
    out.add_edges_from(b.edges())
    return out


def relabeled(graph: nx.Graph, offset: int) -> nx.Graph:
    """Shift integer node labels by *offset* (testing convenience)."""
    return nx.relabel_nodes(graph, {v: v + offset for v in graph.nodes()})


def max_degree(graph: nx.Graph) -> int:
    """Largest vertex degree (0 for an empty graph)."""
    return max((d for _, d in graph.degree()), default=0)


def neighborhood(graph: nx.Graph, nodes: Iterable[Hashable]) -> set:
    """Union of neighbours of *nodes*, excluding the nodes themselves."""
    nodes = set(nodes)
    out: set = set()
    for node in nodes:
        out.update(graph.neighbors(node))
    return out - nodes
