"""Circuit -> measurement-pattern translation.

Implements the standard Broadbent-Kashefi style translation from the
universal gate set ``{J(alpha), CZ}`` (paper Sec. 2.2.1):

* ``J(alpha)`` on a wire appends a fresh node entangled with the wire's
  current node, measures the current node at nominal angle ``-alpha`` and
  leaves an ``X`` byproduct (dependent on the outcome) on the new node;
* ``CZ`` adds an edge between the two wires' current nodes.

Pending byproducts are tracked symbolically as XOR-sets of outcome
sources and folded into measurement angles ("postponing corrections"),
which yields exactly the X-/Z-dependencies of Sec. 4.
"""

from __future__ import annotations

from typing import Dict, Set

import networkx as nx

from repro.circuit.circuit import Circuit
from repro.circuit.library import to_jcz
from repro.mbqc.pattern import MeasurementPattern
from repro.utils.angles import normalize_angle


def circuit_to_pattern(circuit: Circuit, simplify: bool = True) -> MeasurementPattern:
    """Translate *circuit* into an equivalent measurement pattern.

    The resulting pattern, executed on input nodes holding ``|0...0>``,
    produces the circuit's output state on its output nodes up to the
    recorded Pauli byproducts (see :mod:`repro.sim.pattern_sim`).
    """
    jcz = to_jcz(circuit, simplify=simplify)
    n = circuit.num_qubits

    graph = nx.Graph()
    cur: Dict[int, int] = {}
    wire_of: Dict[int, int] = {}
    next_node = 0
    for wire in range(n):
        graph.add_node(next_node)
        cur[wire] = next_node
        wire_of[next_node] = wire
        next_node += 1
    inputs = tuple(range(n))

    # Pending byproducts per live node, as XOR-sets of measured sources.
    pend_x: Dict[int, Set[int]] = {v: set() for v in cur.values()}
    pend_z: Dict[int, Set[int]] = {v: set() for v in cur.values()}

    angles: Dict[int, float] = {}
    x_deps: Dict[int, frozenset] = {}
    z_deps: Dict[int, frozenset] = {}
    sequence = []

    for gate in jcz:
        if gate.name == "j":
            wire = gate.qubits[0]
            alpha = gate.params[0]
            u = cur[wire]
            v = next_node
            next_node += 1
            graph.add_node(v)
            wire_of[v] = wire
            pend_x[v] = set()
            pend_z[v] = set()
            _toggle_edge(graph, u, v)
            # E_{uv} commutation: a pending X on u becomes a Z on v.
            pend_z[v] ^= pend_x[u]
            # Measure u at nominal angle -alpha, absorbing u's pendings
            # into its dependency sets.
            angles[u] = normalize_angle(-alpha)
            x_deps[u] = frozenset(pend_x[u])
            z_deps[u] = frozenset(pend_z[u])
            sequence.append(u)
            del pend_x[u], pend_z[u]
            # New byproduct: X^{s_u} on the successor node.
            pend_x[v] ^= {u}
            cur[wire] = v
        elif gate.name == "cz":
            a, b = gate.qubits
            u, w = cur[a], cur[b]
            _toggle_edge(graph, u, w)
            # CZ commutation: pending X on one side becomes Z on the other.
            pend_z[w] ^= pend_x[u]
            pend_z[u] ^= pend_x[w]
        else:  # pragma: no cover - to_jcz guarantees {j, cz}
            raise ValueError(f"unexpected gate {gate} in J/CZ circuit")

    outputs = tuple(cur[wire] for wire in range(n))
    output_x = {v: frozenset(pend_x[v]) for v in outputs}
    output_z = {v: frozenset(pend_z[v]) for v in outputs}

    return MeasurementPattern(
        graph=graph,
        inputs=inputs,
        outputs=outputs,
        angles=angles,
        x_deps=x_deps,
        z_deps=z_deps,
        output_x=output_x,
        output_z=output_z,
        wire_of=wire_of,
        sequence=tuple(sequence),
    )


def _toggle_edge(graph: nx.Graph, u: int, v: int) -> None:
    """CZ is an involution: add the edge, or remove it if present."""
    if graph.has_edge(u, v):
        graph.remove_edge(u, v)
    else:
        graph.add_edge(u, v)
