"""Measurement patterns: the MBQC program representation.

A :class:`MeasurementPattern` is the paper's "graph state + measurement
basis per qubit + dependency structure" object (Sec. 2.2.1).  Nodes are
integers.  Every non-output node carries a nominal equatorial angle; the
*actual* angle applied at runtime is

    ``(-1)**s * alpha + t * pi``

where ``s`` / ``t`` are XORs of the measurement outcomes of the node's X-
and Z-dependency sources (the classical feed-forward).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

import networkx as nx

from repro.utils.angles import is_pauli_angle


@dataclass
class MeasurementPattern:
    """An MBQC program over a graph state.

    Attributes:
        graph: the entanglement graph (includes output nodes).
        inputs: input nodes in wire order (hold the input state).
        outputs: output nodes in wire order (never measured in-pattern).
        angles: nominal measurement angle per non-output node.
        x_deps: node -> outcome sources whose XOR flips the angle sign.
        z_deps: node -> outcome sources whose XOR adds pi to the angle.
        output_x: residual Pauli-X byproduct sources per output node.
        output_z: residual Pauli-Z byproduct sources per output node.
        wire_of: node -> logical circuit wire (diagnostic / layout aid).
        sequence: chronological measurement order from translation; when
            empty, a topological order of the dependency DAG is used.
    """

    graph: nx.Graph
    inputs: Tuple[int, ...]
    outputs: Tuple[int, ...]
    angles: Dict[int, float]
    x_deps: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    z_deps: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    output_x: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    output_z: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    wire_of: Dict[int, int] = field(default_factory=dict)
    sequence: Tuple[int, ...] = ()

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        nodes = set(self.graph.nodes())
        outputs = set(self.outputs)
        if not set(self.inputs) <= nodes:
            raise ValueError("inputs must be graph nodes")
        if not outputs <= nodes:
            raise ValueError("outputs must be graph nodes")
        measured = nodes - outputs
        if set(self.angles.keys()) != measured:
            missing = measured - set(self.angles.keys())
            extra = set(self.angles.keys()) - measured
            raise ValueError(
                f"angles must cover exactly the measured nodes "
                f"(missing {sorted(missing)}, extra {sorted(extra)})"
            )
        for dep_map in (self.x_deps, self.z_deps):
            for node, sources in dep_map.items():
                if node not in nodes:
                    raise ValueError(f"dependency on unknown node {node}")
                if not sources <= measured:
                    raise ValueError(
                        f"dependency sources of {node} must be measured nodes"
                    )
        if self.sequence and set(self.sequence) != measured:
            raise ValueError("sequence must enumerate the measured nodes")

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    def measured_nodes(self) -> Tuple[int, ...]:
        outputs = set(self.outputs)
        return tuple(v for v in self.graph.nodes() if v not in outputs)

    def is_adaptive(self, node: int) -> bool:
        """True when *node*'s measurement must wait for other outcomes.

        Pauli-basis measurements (X/Y, i.e. angles that are multiples of
        ``pi/2``) never need adaptivity: sign flips map the basis to
        itself and only reinterpret the outcome bit (paper Sec. 4).
        """
        if node in set(self.outputs):
            return False
        if is_pauli_angle(self.angles[node]):
            return False
        return bool(self.x_deps.get(node)) or bool(self.z_deps.get(node))

    def effective_x_deps(self, node: int) -> FrozenSet[int]:
        """X-dependencies that actually gate execution (adaptive only)."""
        if not self.is_adaptive(node):
            return frozenset()
        return self.x_deps.get(node, frozenset())

    def dependency_dag(self) -> nx.DiGraph:
        """Directed graph with an edge ``source -> node`` per dependency."""
        dag = nx.DiGraph()
        dag.add_nodes_from(self.graph.nodes())
        for node, sources in self.x_deps.items():
            for src in sources:
                dag.add_edge(src, node, kind="x")
        for node, sources in self.z_deps.items():
            for src in sources:
                dag.add_edge(src, node, kind="z")
        return dag

    def measurement_order(self) -> Tuple[int, ...]:
        """A total order of measured nodes respecting all dependencies.

        Prefers the chronological ``sequence`` recorded by the translator
        (it keeps the simulator's active-qubit window minimal); falls back
        to a topological sort of the dependency DAG.
        """
        if self.sequence:
            return self.sequence
        dag = self.dependency_dag()
        outputs = set(self.outputs)
        order = [v for v in nx.topological_sort(dag) if v not in outputs]
        return tuple(order)

    def summary(self) -> str:
        return (
            f"MeasurementPattern(nodes={self.num_nodes}, "
            f"edges={self.num_edges}, inputs={len(self.inputs)}, "
            f"outputs={len(self.outputs)}, "
            f"adaptive={sum(1 for v in self.measured_nodes() if self.is_adaptive(v))})"
        )
