"""Asyncio socket front-end for :class:`~repro.serve.service.CompileService`.

One server process owns one service (and therefore one artifact store
and one worker pool).  Each client connection is an asyncio task that
reads length-prefixed JSON frames (:mod:`repro.serve.protocol`) in a
loop; compile requests are handed to the service on a thread pool so a
slow compile never blocks the event loop — other connections keep
getting cache hits, pings and stats while workers grind.

Failure handling at the connection level:

* oversized frame — the declared length is rejected before the payload
  is buffered; an error response is sent and the connection closed
  (the stream offset is unrecoverable);
* malformed JSON / non-object payload — error response, connection
  closed (framing stays valid but the client is clearly broken);
* invalid request shape — error response, connection *kept open*
  (framing and JSON are fine; the client can retry);
* ``{"op": "shutdown"}`` — acknowledged, then the server stops
  accepting connections and drains: in-flight requests complete and
  their responses are delivered before the loop exits.

:class:`ServerThread` runs the whole event loop in a daemon thread —
the harness tests, the load generator's ``--spawn`` mode and the
serving benchmark all use it to host a server in-process on an
ephemeral port.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Set

from repro.serve.protocol import (
    MAX_PAYLOAD_BYTES,
    FrameError,
    error_response,
    read_frame_async,
    write_frame_async,
)
from repro.serve.service import CompileService


class CompileServer:
    """Serve a :class:`CompileService` over a TCP socket.

    ``port=0`` binds an ephemeral port; the bound port is available as
    :attr:`port` after :meth:`start`.  ``max_sessions`` bounds the
    thread pool that parks blocked compile requests (each in-flight
    request occupies one thread while it waits on the worker pool).
    """

    def __init__(
        self,
        service: CompileService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_payload: int = MAX_PAYLOAD_BYTES,
        max_sessions: int = 64,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.max_payload = max_payload
        self._server: Optional[asyncio.base_events.Server] = None
        self._sessions: ThreadPoolExecutor = ThreadPoolExecutor(
            max_workers=max_sessions, thread_name_prefix="serve-session"
        )
        self._connections: Set[asyncio.Task] = set()
        self._draining = False
        self._active_requests = 0
        self._stopped = asyncio.Event()

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_stopped(self) -> None:
        """Block until a shutdown request (or :meth:`stop`) drains us."""
        assert self._server is not None, "call start() first"
        await self._stopped.wait()

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting connections; optionally drain in-flight work.

        Draining waits for requests that are already being served, not
        for clients to hang up: an idle keep-alive connection would
        otherwise block shutdown forever.  Once the request count hits
        zero the remaining (idle) sessions are cancelled, which closes
        their sockets.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            while self._active_requests > 0:
                await asyncio.sleep(0.01)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self.service.close(drain=drain)
        self._sessions.shutdown(wait=False)
        self._stopped.set()

    # -- connection handling -------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._session(reader, writer)
        except asyncio.CancelledError:
            # stop() cancels idle sessions; end quietly so asyncio's
            # stream machinery doesn't log the cancellation as an error
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        while True:
            try:
                request = await read_frame_async(reader, self.max_payload)
            except FrameError as exc:
                # framing is broken: answer once, then hang up — the
                # byte stream cannot be resynchronized
                try:
                    await write_frame_async(
                        writer, error_response(exc.code, exc.message)
                    )
                except (ConnectionError, OSError):
                    pass
                return
            except (ConnectionError, OSError):
                return
            if request is None:  # clean EOF
                return

            if request.get("op") == "shutdown":
                await write_frame_async(
                    writer, {"ok": True, "op": "shutdown", "draining": True}
                )
                # drain in a fresh task: this connection must finish
                # (and leave self._connections) for the drain to settle
                # deliberate fire-and-forget: stop() must outlive this
                # handler, and the server holds it alive via its own
                # _connections bookkeeping until the drain settles
                asyncio.ensure_future(self.stop(drain=True))  # noqa: CC203
                return

            if self._draining and request.get("op") == "compile":
                response = error_response(
                    "shutting-down", "server is draining; compile rejected"
                )
            else:
                # counted so stop(drain=True) can wait for the response
                # to be computed *and delivered* before tearing down
                self._active_requests += 1
                try:
                    response = await loop.run_in_executor(
                        self._sessions, self.service.handle, request
                    )
                    await write_frame_async(writer, response)
                except (ConnectionError, OSError):
                    return
                finally:
                    self._active_requests -= 1
                continue
            try:
                await write_frame_async(writer, response)
            except (ConnectionError, OSError):
                return


async def _run_server_async(server: CompileServer) -> None:
    await server.start()
    print(f"repro serve: listening on {server.host}:{server.port}")
    await server.serve_until_stopped()


def run_server(
    host: str = "127.0.0.1",
    port: int = 0,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    memory_capacity: int = 256,
    max_payload: int = MAX_PAYLOAD_BYTES,
) -> int:
    """Blocking entry point for ``repro serve``.

    Runs until a client sends ``{"op": "shutdown"}`` (or the process is
    interrupted); returns a process exit code.
    """
    service = CompileService(
        workers=workers, cache_dir=cache_dir, memory_capacity=memory_capacity
    )
    server = CompileServer(
        service, host=host, port=port, max_payload=max_payload
    )
    try:
        asyncio.run(_run_server_async(server))
    except KeyboardInterrupt:
        service.close(drain=False)
    return 0


class ServerThread:
    """Host a :class:`CompileServer` on a daemon thread.

    ``start()`` returns once the socket is bound (so ``.port`` is
    valid); ``stop()`` drains from any thread.  Context-manager form::

        with ServerThread(workers=2, cache_dir=tmp) as handle:
            client = CompileClient("127.0.0.1", handle.port)
    """

    def __init__(
        self,
        service: Optional[CompileService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_payload: int = MAX_PAYLOAD_BYTES,
        **service_kwargs: Any,
    ) -> None:
        self.service = service or CompileService(**service_kwargs)
        self.server = CompileServer(
            self.service, host=host, port=port, max_payload=max_payload
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._finished = threading.Event()

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server thread failed to start")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.server.start())
            self._ready.set()
            loop.run_until_complete(self.server.serve_until_stopped())
        finally:
            self._ready.set()  # unblock start() even on bind failure
            loop.close()
            self._finished.set()

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        loop = self._loop
        if loop is None or not loop.is_running():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(drain=drain), loop
        )
        try:
            future.result(timeout)
        except Exception:  # noqa: LR004 — best-effort stop: the loop may
            pass  # already be closing; _finished/join below still bound exit
        self._finished.wait(timeout)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
