"""Closed-loop load generator + serving run-table artifacts.

Drives a running compile server the way a microservice benchmark would
(the mubench-style methodology: committed ``run_table.csv`` with one
row per experiment cell): for each **(workload, concurrency)** cell,
``concurrency`` threads each own one client connection and issue
requests back-to-back (closed loop — a new request starts only when the
previous response lands) until the cell's request budget is spent.

Per cell the harness records :data:`SERVING_TABLE_COLUMNS`:

    workload          workload name (see WORKLOADS)
    concurrency       closed-loop client count
    requests          completed requests in the cell
    warmup_requests   untimed requests issued before measurement (one
                      per distinct circuit, so steady-state cells
                      measure serving, not first-compile cost)
    seconds           measurement wall-clock for the whole cell
    throughput_rps    requests / seconds
    avg_latency_ms    mean per-request latency
    p50_latency_ms    median per-request latency
    p95_latency_ms    95th-percentile per-request latency
    max_latency_ms    worst single request
    failure_rate      fraction of requests with ok=False (or transport
                      errors); 0.0 is the CI gate
    cache_hit_rate    fraction of successful requests served from the
                      artifact store ("memory"/"disk") or joined onto
                      an in-flight identical compile ("inflight")

Workloads are request generators: ``index -> request dict``.  The
built-ins cover the serving regimes that matter:

* ``hot-qft16``   — every request is the same QFT-16 compile: after
  warm-up, pure memory-tier hits (peak cache throughput);
* ``mixed-16``    — rotates the four Table-2 benchmarks at 16 qubits:
  a small hot set exercising LRU recency;
* ``cold-seeds``  — BV-12 with a fresh seed per request: every request
  misses and compiles (worker-pool throughput floor);
* ``qasm-bv12``   — the same BV-12 circuit submitted as QASM text:
  exercises the parse + hash + cache path for user-supplied circuits.
"""

from __future__ import annotations

import csv
import pathlib
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.serve.client import CompileClient
from repro.serve.store import atomic_write_json
from repro.utils.sync import make_lock

SERVING_SCHEMA_VERSION = 1

SERVING_TABLE_COLUMNS: List[str] = [
    "workload",
    "concurrency",
    "requests",
    "warmup_requests",
    "seconds",
    "throughput_rps",
    "avg_latency_ms",
    "p50_latency_ms",
    "p95_latency_ms",
    "max_latency_ms",
    "failure_rate",
    "cache_hit_rate",
]


def _qasm_bv12() -> str:
    from repro.circuit import get_benchmark
    from repro.circuit.qasm import to_qasm

    return to_qasm(get_benchmark("BV", 12, seed=7))


_MIXED_BENCHMARKS = ("QFT", "QAOA", "RCA", "BV")


class Workload:
    """A named request generator with a warm-up prefix.

    ``distinct`` is how many unique artifacts the workload touches —
    the warm-up issues exactly one request per distinct artifact so the
    measured phase starts from a populated cache.  Cold workloads set
    ``distinct=0``: nothing is warmable, every measured request misses.
    """

    def __init__(
        self,
        name: str,
        make_request: Callable[[int], Dict[str, Any]],
        distinct: int,
        description: str,
    ) -> None:
        self.name = name
        self.make_request = make_request
        self.distinct = distinct
        self.description = description


def _hot_qft16(index: int) -> Dict[str, Any]:
    return {"op": "compile", "benchmark": "QFT", "qubits": 16}


def _mixed_16(index: int) -> Dict[str, Any]:
    name = _MIXED_BENCHMARKS[index % len(_MIXED_BENCHMARKS)]
    return {"op": "compile", "benchmark": name, "qubits": 16}


class _ColdSeeds:
    """BV-12 with a seed nobody has compiled before.

    Seeds are namespaced by a per-cell epoch so that later cells in a
    grid stay cold even though every cell shares one server cache:
    without the epoch, cell two would replay cell one's seeds and
    measure cache hits instead of the compile floor.
    """

    def __init__(self) -> None:
        self.epoch = 0

    def begin_cell(self) -> None:
        self.epoch += 1

    def __call__(self, index: int) -> Dict[str, Any]:
        return {
            "op": "compile", "benchmark": "BV", "qubits": 12,
            "seed": self.epoch * 1_000_000 + index,
        }


class _QasmBV12:
    """Lazily render the QASM text once, reuse it per request."""

    def __init__(self) -> None:
        self._text: Optional[str] = None

    def __call__(self, index: int) -> Dict[str, Any]:
        if self._text is None:
            self._text = _qasm_bv12()
        return {"op": "compile", "qasm": self._text, "name": "bv12"}


WORKLOADS: Dict[str, Workload] = {
    workload.name: workload
    for workload in (
        Workload(
            "hot-qft16", _hot_qft16, distinct=1,
            description="one hot QFT-16 artifact; steady state is pure "
            "memory-tier cache hits",
        ),
        Workload(
            "mixed-16", _mixed_16, distinct=len(_MIXED_BENCHMARKS),
            description="rotates QFT/QAOA/RCA/BV at 16 qubits; a small "
            "hot set inside LRU capacity",
        ),
        Workload(
            "cold-seeds", _ColdSeeds(), distinct=0,
            description="BV-12 with a fresh seed every request; every "
            "request compiles (cache-miss floor)",
        ),
        Workload(
            "qasm-bv12", _QasmBV12(), distinct=1,
            description="the same BV-12 circuit as QASM text; parse + "
            "hash + cache path for user-supplied circuits",
        ),
    )
}

#: response cache_tier values that count as served-without-compiling
_HIT_TIERS = ("memory", "disk", "inflight")


@dataclass
class CellResult:
    """One (workload, concurrency) load cell (a serving-table row)."""

    workload: str
    concurrency: int
    requests: int
    warmup_requests: int
    seconds: float
    throughput_rps: float
    avg_latency_ms: float
    p50_latency_ms: float
    p95_latency_ms: float
    max_latency_ms: float
    failure_rate: float
    cache_hit_rate: float
    errors: List[str] = field(default_factory=list)

    def row(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload.pop("errors")
        return payload


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (``fraction`` in [0, 1]) of *values*."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def run_cell(
    host: str,
    port: int,
    workload: Workload,
    concurrency: int,
    requests: int,
    timeout: float = 120.0,
) -> CellResult:
    """Drive one load cell and aggregate its serving-table row."""
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    begin_cell = getattr(workload.make_request, "begin_cell", None)
    if begin_cell is not None:  # cold workloads re-seed per cell
        begin_cell()
    warmup = 0
    if workload.distinct > 0:
        with CompileClient(host, port, timeout=timeout) as client:
            for index in range(workload.distinct):
                client.request(workload.make_request(index))
                warmup += 1

    counter = {"next": 0}
    counter_lock = make_lock("run_cell.counter_lock")
    latencies: List[float] = []
    hits = 0
    failures = 0  # error responses + transport errors
    transport_failures = 0  # subset of failures with no latency sample
    errors: List[str] = []
    results_lock = make_lock("run_cell.results_lock")
    start_barrier = threading.Barrier(concurrency + 1)

    def worker() -> None:
        nonlocal hits, failures, transport_failures
        local_latencies: List[float] = []
        local_hits = 0
        local_failures = 0
        local_transport = 0
        local_errors: List[str] = []
        try:
            client = CompileClient(host, port, timeout=timeout)
        except OSError as exc:
            start_barrier.wait()
            with results_lock:
                failures += 1
                transport_failures += 1
                errors.append(f"connect: {exc}")
            return
        start_barrier.wait()
        try:
            while True:
                with counter_lock:
                    index = counter["next"]
                    if index >= requests:
                        break
                    counter["next"] = index + 1
                payload = workload.make_request(index)
                t0 = time.perf_counter()
                try:
                    response = client.request(payload)
                except (OSError, ConnectionError) as exc:
                    local_failures += 1
                    local_transport += 1
                    local_errors.append(f"request {index}: {exc}")
                    continue
                local_latencies.append(time.perf_counter() - t0)
                if not response.get("ok"):
                    local_failures += 1
                    error = response.get("error", {})
                    local_errors.append(
                        f"request {index}: {error.get('code')}: "
                        f"{error.get('message')}"
                    )
                elif response.get("cache_tier") in _HIT_TIERS:
                    local_hits += 1
        finally:
            client.close()
        with results_lock:
            latencies.extend(local_latencies)
            hits += local_hits
            failures += local_failures
            transport_failures += local_transport
            errors.extend(local_errors)

    threads = [
        threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    t0 = time.perf_counter()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - t0

    completed = len(latencies)
    attempts = completed + transport_failures
    latencies_ms = [value * 1000.0 for value in latencies]
    return CellResult(
        workload=workload.name,
        concurrency=concurrency,
        requests=completed,
        warmup_requests=warmup,
        seconds=seconds,
        throughput_rps=completed / seconds if seconds > 0 else 0.0,
        avg_latency_ms=(
            sum(latencies_ms) / completed if latencies_ms else 0.0
        ),
        p50_latency_ms=percentile(latencies_ms, 0.50),
        p95_latency_ms=percentile(latencies_ms, 0.95),
        max_latency_ms=max(latencies_ms) if latencies_ms else 0.0,
        failure_rate=failures / max(1, attempts),
        cache_hit_rate=hits / max(1, completed),
        errors=errors,
    )


def run_load(
    host: str,
    port: int,
    workloads: Sequence[str],
    concurrencies: Sequence[int],
    requests: int,
    timeout: float = 120.0,
) -> List[CellResult]:
    """Run the full (workload x concurrency) grid, one cell at a time."""
    cells: List[CellResult] = []
    for name in workloads:
        if name not in WORKLOADS:
            raise ValueError(
                f"unknown workload {name!r}; known: "
                f"{', '.join(sorted(WORKLOADS))}"
            )
        for concurrency in concurrencies:
            cells.append(
                run_cell(
                    host, port, WORKLOADS[name], concurrency, requests,
                    timeout=timeout,
                )
            )
    return cells


def write_serving_table(
    cells: Sequence[CellResult],
    out_dir: pathlib.Path,
    stem: str = "serving_table",
    meta: Optional[Dict[str, Any]] = None,
) -> Tuple[pathlib.Path, pathlib.Path]:
    """Persist *cells* as ``<stem>.json`` + ``<stem>.csv`` in *out_dir*."""
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    rows = [
        {
            col: (round(v, 4) if isinstance(v, float) else v)
            for col, v in cell.row().items()
        }
        for cell in cells
    ]
    json_path = out_dir / f"{stem}.json"
    atomic_write_json(
        json_path,
        {
            "schema_version": SERVING_SCHEMA_VERSION,
            "columns": SERVING_TABLE_COLUMNS,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "meta": meta or {},
            "cells": rows,
        },
    )
    csv_path = out_dir / f"{stem}.csv"
    with csv_path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=SERVING_TABLE_COLUMNS)
        writer.writeheader()
        for row in rows:
            writer.writerow({col: row.get(col) for col in SERVING_TABLE_COLUMNS})
    return json_path, csv_path


def render_cells(cells: Sequence[CellResult]) -> str:
    """Terminal table of load cells (one line per cell)."""
    header = (
        f"{'workload':<12}{'conc':>5}{'reqs':>6}{'rps':>9}"
        f"{'avg ms':>9}{'p95 ms':>9}{'fail':>7}{'hit':>6}"
    )
    lines = [header, "-" * len(header)]
    for cell in cells:
        lines.append(
            f"{cell.workload:<12}{cell.concurrency:>5}{cell.requests:>6}"
            f"{cell.throughput_rps:>9.1f}{cell.avg_latency_ms:>9.2f}"
            f"{cell.p95_latency_ms:>9.2f}{cell.failure_rate:>7.3f}"
            f"{cell.cache_hit_rate:>6.2f}"
        )
    return "\n".join(lines)
