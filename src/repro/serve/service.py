"""In-process compilation service: request -> cached artifact.

:class:`CompileService` is the serving layer's core, independent of any
transport: the socket server wraps it, tests and the in-process API
call it directly.  A request names a circuit — a library benchmark spec
(``benchmark``/``qubits``) or raw QASM text — plus optional hardware /
noise / verification knobs; the response carries the compiled artifact
(depth, fusion tally, pattern size, stage timings, optional yield
estimate) and its cache provenance.

Request lifecycle:

1. **normalize** — :func:`normalize_request` validates shape and types
   and produces the canonical job dict (unknown fields are rejected so
   typos fail loudly instead of silently compiling the default);
2. **store lookup** — the job's content hash (:func:`job_key`) is
   checked against the two-tier :class:`~repro.serve.store.ArtifactStore`;
   a hit returns immediately with ``cache_tier`` set;
3. **single-flight dispatch** — on a miss the job runs on a worker
   process pool; concurrent requests for the *same* key join the
   in-flight future (``cache_tier="inflight"``) instead of compiling
   twice;
4. **publish** — the finished artifact lands in both store tiers, so
   the next request is a memory hit.

Compiles are deterministic, so a cache hit is exact: the artifact is
bit-identical to what a fresh compile would produce.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import asdict
from typing import Any, Dict, Optional, Tuple

from repro.serve.protocol import error_response
from repro.serve.store import ArtifactStore
from repro.utils.sync import make_lock

#: bump when the artifact payload shape changes: stale disk entries
#: then read as misses instead of surfacing old-shape artifacts
ARTIFACT_VERSION = 1

_VALID_RESOURCE_STATES = ("3-line", "4-line", "4-star", "4-ring")
_VALID_BENCHMARKS = ("QFT", "QAOA", "RCA", "BV")
_VALID_ENGINES = ("frame", "batched", "per-shot")

#: compile-request fields and their validators/defaults; everything
#: else in a request is a hard error (``bad-request``)
_REQUEST_FIELDS = (
    "op",
    "benchmark",
    "qubits",
    "qasm",
    "name",
    "seed",
    "resource_state",
    "shots",
    "noise",
    "verify",
    "include_baseline",
    "mc_engine",
)


class RequestError(Exception):
    """A structurally invalid compile request."""

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise RequestError(message)


def normalize_request(request: Dict[str, Any]) -> Dict[str, Any]:
    """Validate *request* and return the canonical job dict.

    The job dict is the compile's full identity: every field that can
    change the artifact is present with its default applied, so its
    content hash (:func:`job_key`) is stable across equivalent requests.
    """
    _require(isinstance(request, dict), "request must be a JSON object")
    unknown = sorted(set(request) - set(_REQUEST_FIELDS))
    _require(not unknown, f"unknown request field(s): {', '.join(unknown)}")

    qasm = request.get("qasm")
    benchmark = request.get("benchmark")
    _require(
        (qasm is None) != (benchmark is None),
        "request must carry exactly one of 'qasm' or 'benchmark'",
    )

    job: Dict[str, Any] = {}
    if qasm is not None:
        _require(
            isinstance(qasm, str) and qasm.strip() != "",
            "'qasm' must be a non-empty string",
        )
        job["qasm"] = qasm
        name = request.get("name", "qasm-circuit")
        _require(isinstance(name, str) and name != "", "'name' must be a string")
        job["name"] = name
    else:
        _require(
            benchmark in _VALID_BENCHMARKS,
            f"'benchmark' must be one of {', '.join(_VALID_BENCHMARKS)}",
        )
        qubits = request.get("qubits", 16)
        _require(
            isinstance(qubits, int) and not isinstance(qubits, bool)
            and 1 <= qubits <= 256,
            "'qubits' must be an integer in [1, 256]",
        )
        job["benchmark"] = benchmark
        job["qubits"] = qubits

    seed = request.get("seed", 7)
    _require(
        isinstance(seed, int) and not isinstance(seed, bool),
        "'seed' must be an integer",
    )
    job["seed"] = seed

    resource_state = request.get("resource_state", "3-line")
    _require(
        resource_state in _VALID_RESOURCE_STATES,
        f"'resource_state' must be one of {', '.join(_VALID_RESOURCE_STATES)}",
    )
    job["resource_state"] = resource_state

    shots = request.get("shots", 0)
    _require(
        isinstance(shots, int) and not isinstance(shots, bool) and shots >= 0,
        "'shots' must be a non-negative integer",
    )
    job["shots"] = shots

    noise = request.get("noise", {})
    _require(isinstance(noise, dict), "'noise' must be an object")
    for key, value in noise.items():
        _require(
            isinstance(key, str) and isinstance(value, (int, float))
            and not isinstance(value, bool),
            f"noise override {key!r} must map a string to a number",
        )
    job["noise"] = {str(k): float(v) for k, v in sorted(noise.items())}

    for flag in ("verify", "include_baseline"):
        value = request.get(flag, False)
        _require(isinstance(value, bool), f"'{flag}' must be a boolean")
        job[flag] = value

    mc_engine = request.get("mc_engine", "frame")
    _require(
        mc_engine in _VALID_ENGINES,
        f"'mc_engine' must be one of {', '.join(_VALID_ENGINES)}",
    )
    job["mc_engine"] = mc_engine
    return job


def job_key(job: Dict[str, Any]) -> str:
    """Content hash of a normalized job (the artifact's cache identity)."""
    payload = dict(job)
    payload["artifact_version"] = ARTIFACT_VERSION
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(blob.encode()).hexdigest()[:16]


def compile_job(job: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one normalized job (runs inside a worker process)."""
    if "qasm" in job:
        return _compile_qasm_job(job)
    return _compile_benchmark_job(job)


def _compile_benchmark_job(job: Dict[str, Any]) -> Dict[str, Any]:
    from repro.eval.batch import RunSpec, execute_spec

    spec = RunSpec(
        benchmark=job["benchmark"],
        num_qubits=job["qubits"],
        seed=job["seed"],
        resource_state=job["resource_state"],
        include_baseline=job["include_baseline"],
        verify=job["verify"],
        shots=job["shots"],
        noise=tuple(sorted(job["noise"].items())),
        mc_engine=job["mc_engine"],
    )
    artifact = asdict(execute_spec(spec))
    # cache provenance belongs to the store envelope, not the artifact
    for field in ("cached", "cache_tier", "cache_age_seconds"):
        artifact.pop(field, None)
    artifact["kind"] = "benchmark"
    return artifact


def _compile_qasm_job(job: Dict[str, Any]) -> Dict[str, Any]:
    from repro.circuit.qasm import from_qasm
    from repro.core.compiler import OneQCompiler, OneQConfig
    from repro.eval.experiments import _hardware_for
    from repro.hardware.resource_state import get_resource_state
    from repro.mbqc.translate import circuit_to_pattern

    circuit = from_qasm(job["qasm"])
    rst = get_resource_state(job["resource_state"])
    hardware = _hardware_for(circuit.num_qubits, rst)
    compiler = OneQCompiler(OneQConfig(hardware=hardware))
    t0 = time.perf_counter()
    pattern = circuit_to_pattern(circuit)
    program = compiler.compile_pattern(
        pattern, name=job["name"], num_qubits=circuit.num_qubits
    )
    seconds = time.perf_counter() - t0

    artifact: Dict[str, Any] = {
        "kind": "qasm",
        "name": job["name"],
        "num_qubits": circuit.num_qubits,
        "seed": job["seed"],
        "resource_state": job["resource_state"],
        "depth": program.physical_depth,
        "num_fusions": program.num_fusions,
        "mapping_layers": program.mapping_layers,
        "shuffle_layers": program.shuffle_layers,
        "num_partitions": program.num_partitions,
        "pattern_nodes": program.pattern_nodes,
        "pattern_edges": program.pattern_edges,
        "seconds": seconds,
        "stage_seconds": {
            stage: round(value, 6)
            for stage, value in program.stage_seconds.items()
        },
        "verified": None,
        "verify_method": None,
        "yield_analytic": None,
        "yield_mc": None,
        "shots": 0,
    }
    if job["verify"]:
        from repro.core.validate import verify_pattern

        report = verify_pattern(circuit, pattern=pattern, seed=job["seed"])
        artifact["verified"] = report.ok
        artifact["verify_method"] = report.method
    if job["shots"] > 0:
        from repro.core.validate import estimate_yield
        from repro.hardware.noise import NoiseModel
        from repro.sim.noisy import FaultCounts

        estimate = estimate_yield(
            circuit,
            pattern=pattern,
            model=NoiseModel(**job["noise"]),
            shots=job["shots"],
            seed=job["seed"],
            counts=FaultCounts.from_program(program),
            engine=job["mc_engine"],
        )
        artifact["shots"] = estimate.shots
        artifact["yield_mc"] = estimate.yield_mc
        artifact["yield_analytic"] = estimate.yield_analytic
    return artifact


class CompileService:
    """Cache-first compile dispatcher over a worker process pool.

    Thread-safe: the socket server calls :meth:`handle` from many
    threads at once.  ``workers`` bounds the process pool (default:
    ``min(4, cpu_count)``); the pool starts lazily on the first miss,
    so a service that only ever hits cache never forks.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        store: Optional[ArtifactStore] = None,
        cache_dir: Optional[Any] = None,
        memory_capacity: int = 256,
    ) -> None:
        if workers is None:
            workers = min(4, os.cpu_count() or 1)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.store = store or ArtifactStore(
            cache_dir=cache_dir,
            memory_capacity=memory_capacity,
            schema_version=ARTIFACT_VERSION,
        )
        self._executor: Optional[ProcessPoolExecutor] = None
        self._inflight: Dict[str, "Future[Dict[str, Any]]"] = {}
        self._lock = make_lock("CompileService._lock")
        self._closed = False
        self.jobs_completed = 0
        self.jobs_failed = 0
        self._started_at = time.time()

    # -- dispatch ------------------------------------------------------
    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Serve one request dict; never raises, always returns a dict."""
        op = request.get("op", "compile")
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "stats":
            return {"ok": True, "op": "stats", "stats": self.stats()}
        if op == "compile":
            return self._handle_compile(request)
        return error_response("unknown-op", f"unknown op {op!r}")

    def _handle_compile(self, request: Dict[str, Any]) -> Dict[str, Any]:
        t0 = time.perf_counter()
        try:
            job = normalize_request(request)
        except RequestError as exc:
            return error_response("bad-request", exc.message)
        key = job_key(job)

        hit = self.store.get(key)
        if hit is not None:
            return {
                "ok": True,
                "key": key,
                "cache_tier": hit.tier,
                "cache_age_seconds": round(hit.age_seconds, 3),
                "seconds": time.perf_counter() - t0,
                "artifact": hit.artifact,
            }

        future, owner = self._dispatch(key, job)
        if future is None:
            return error_response(
                "shutting-down", "service is draining; compile rejected"
            )
        try:
            artifact = future.result()
        except Exception as exc:  # worker raised: report, don't crash
            with self._lock:
                self._inflight.pop(key, None)
                self.jobs_failed += 1
            return error_response(
                "compile-error", f"{type(exc).__name__}: {exc}", key=key
            )
        if owner:
            self.store.put(key, artifact)
            with self._lock:
                self._inflight.pop(key, None)
                self.jobs_completed += 1
        return {
            "ok": True,
            "key": key,
            "cache_tier": None if owner else "inflight",
            "cache_age_seconds": None,
            "seconds": time.perf_counter() - t0,
            "artifact": artifact,
        }

    def _dispatch(
        self, key: str, job: Dict[str, Any]
    ) -> Tuple[Optional["Future[Dict[str, Any]]"], bool]:
        """The future computing *key*'s artifact, plus ownership.

        The owner (the caller that actually submitted the job) is
        responsible for publishing the artifact and retiring the
        in-flight entry; joiners just wait.
        """
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                return existing, False
            if self._closed:
                return None, False
            if self._executor is None:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            try:
                future = self._executor.submit(compile_job, job)
            except RuntimeError:  # pool already shut down
                return None, False
            self._inflight[key] = future
            return future, True

    # -- introspection -------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            inflight = len(self._inflight)
            jobs_completed = self.jobs_completed
            jobs_failed = self.jobs_failed
        return {
            "workers": self.workers,
            "jobs_completed": jobs_completed,
            "jobs_failed": jobs_failed,
            "inflight": inflight,
    "uptime_seconds": round(time.time() - self._started_at, 3),
            "store": self.store.stats.as_dict(),
        }

    # -- lifecycle -----------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Stop accepting compiles; ``drain=True`` waits for in-flight
        jobs to finish first."""
        with self._lock:
            self._closed = True
            executor = self._executor
        if executor is not None:
            executor.shutdown(wait=drain)

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
