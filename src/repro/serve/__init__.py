"""Compilation-as-a-service layer: store, service, server, load harness.

The serving stack, bottom to top:

* :mod:`repro.serve.store` — two-tier artifact store (in-memory LRU
  over an atomic-write disk tier) with hit/miss/eviction accounting;
* :mod:`repro.serve.service` — :class:`CompileService`: cache-first
  compile dispatch onto a worker process pool, single-flight per
  artifact key (the in-process API);
* :mod:`repro.serve.protocol` — length-prefixed JSON framing shared by
  the server and clients;
* :mod:`repro.serve.server` — asyncio TCP front-end
  (:class:`CompileServer`), plus :class:`ServerThread` for in-process
  hosting and :func:`run_server` for the ``repro serve`` CLI;
* :mod:`repro.serve.client` — blocking :class:`CompileClient`;
* :mod:`repro.serve.loadgen` — closed-loop load generator producing
  the (workload x concurrency) serving table.
"""

from repro.serve.client import CompileClient, ServerClosedError
from repro.serve.loadgen import (
    SERVING_TABLE_COLUMNS,
    CellResult,
    Workload,
    WORKLOADS,
    percentile,
    render_cells,
    run_cell,
    run_load,
    write_serving_table,
)
from repro.serve.protocol import (
    ERROR_CODES,
    MAX_PAYLOAD_BYTES,
    FrameError,
    encode_frame,
    error_response,
    recv_frame,
    send_frame,
)
from repro.serve.server import CompileServer, ServerThread, run_server
from repro.serve.service import (
    ARTIFACT_VERSION,
    CompileService,
    RequestError,
    compile_job,
    job_key,
    normalize_request,
)
from repro.serve.store import (
    ArtifactStore,
    DiskTier,
    MemoryLRU,
    StoreHit,
    StoreStats,
)

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactStore",
    "CellResult",
    "CompileClient",
    "CompileServer",
    "CompileService",
    "DiskTier",
    "ERROR_CODES",
    "FrameError",
    "MAX_PAYLOAD_BYTES",
    "MemoryLRU",
    "RequestError",
    "SERVING_TABLE_COLUMNS",
    "ServerClosedError",
    "ServerThread",
    "StoreHit",
    "StoreStats",
    "WORKLOADS",
    "Workload",
    "compile_job",
    "encode_frame",
    "error_response",
    "job_key",
    "normalize_request",
    "percentile",
    "recv_frame",
    "render_cells",
    "run_cell",
    "run_load",
    "run_server",
    "send_frame",
    "write_serving_table",
]
