"""Blocking client for the compile server's socket protocol.

One :class:`CompileClient` owns one TCP connection and issues one
request at a time (the protocol is strictly request/response per
connection; open more clients for concurrency — the load generator
opens one per simulated user).
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional

from repro.serve.protocol import (
    MAX_PAYLOAD_BYTES,
    recv_frame,
    send_frame,
)


class ServerClosedError(ConnectionError):
    """The server closed the connection instead of responding."""


class CompileClient:
    """Synchronous request/response client.

    ::

        with CompileClient("127.0.0.1", 7711) as client:
            response = client.compile(benchmark="QFT", qubits=16)
            assert response["ok"]
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7711,
        timeout: Optional[float] = 120.0,
        max_payload: int = MAX_PAYLOAD_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self.max_payload = max_payload
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    # -- raw request/response ------------------------------------------
    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame, block for one response frame."""
        send_frame(self._sock, payload)
        response = recv_frame(self._sock, self.max_payload)
        if response is None:
            raise ServerClosedError(
                "server closed the connection without responding"
            )
        return response

    # -- convenience ops -----------------------------------------------
    def compile(self, **fields: Any) -> Dict[str, Any]:
        payload = {"op": "compile"}
        payload.update(fields)
        return self.request(payload)

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("ok"))

    def stats(self) -> Dict[str, Any]:
        response = self.request({"op": "stats"})
        return response.get("stats", {})

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to drain and exit."""
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "CompileClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
