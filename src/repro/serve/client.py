"""Blocking client for the compile server's socket protocol.

One :class:`CompileClient` owns one TCP connection and issues one
request at a time (the protocol is strictly request/response per
connection; open more clients for concurrency — the load generator
opens one per simulated user).

Transient-failure policy: compiles are deterministic and the server
memoizes them by content hash, so every op except ``shutdown`` is
idempotent — a retried request returns the same answer.  The client
therefore retries connection failures, dropped connections and read
timeouts with capped exponential backoff (``retries`` / ``backoff`` /
``backoff_cap`` knobs), reconnecting between attempts.  ``shutdown``
is the one non-idempotent op (a retry could kill a freshly restarted
server) and is never retried.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Callable, Dict, Optional

from repro.serve.protocol import (
    MAX_PAYLOAD_BYTES,
    recv_frame,
    send_frame,
)


class ServerClosedError(ConnectionError):
    """The server closed the connection instead of responding."""


class CompileClient:
    """Synchronous request/response client with bounded retries.

    ::

        with CompileClient("127.0.0.1", 7711) as client:
            response = client.compile(benchmark="QFT", qubits=16)
            assert response["ok"]

    Args:
        timeout: per-response read timeout in seconds (None blocks
            forever); a request that times out counts as one failed
            attempt and is retried on a fresh connection.
        connect_timeout: TCP connect timeout per attempt (defaults to
            ``timeout``).
        retries: extra attempts after the first failure, for idempotent
            ops only (0 disables retrying entirely).
        backoff: base sleep before the first retry; doubles per retry.
        backoff_cap: upper bound on one backoff sleep.
        sleep: injectable sleep (tests pass a recorder to assert the
            backoff schedule without waiting it out).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7711,
        timeout: Optional[float] = 120.0,
        max_payload: int = MAX_PAYLOAD_BYTES,
        retries: int = 2,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        connect_timeout: Optional[float] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries cannot be negative, got {retries}")
        if backoff < 0.0:
            raise ValueError(f"backoff cannot be negative, got {backoff}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_payload = max_payload
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.connect_timeout = (
            timeout if connect_timeout is None else connect_timeout
        )
        self._sleep = sleep
        self._sock: Optional[socket.socket] = None
        self._connect()

    # -- connection management -----------------------------------------
    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.settimeout(self.timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        return sock

    def _drop(self) -> None:
        """Close the socket so the next attempt reconnects."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _backoff_delay(self, retry_index: int) -> float:
        return min(self.backoff_cap, self.backoff * (2.0 ** retry_index))

    # -- raw request/response ------------------------------------------
    def _attempt(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        sock = self._sock if self._sock is not None else self._connect()
        send_frame(sock, payload)
        response = recv_frame(sock, self.max_payload)
        if response is None:
            raise ServerClosedError(
                "server closed the connection without responding"
            )
        return response

    def request(
        self, payload: Dict[str, Any], idempotent: bool = True
    ) -> Dict[str, Any]:
        """Send one frame, block for one response frame.

        Idempotent requests retry ``retries`` times on connection
        errors, closed connections and timeouts, reconnecting with
        capped exponential backoff between attempts; the last failure
        is re-raised when every attempt is exhausted.  Non-idempotent
        requests (``idempotent=False``) get exactly one attempt.
        """
        attempts = self.retries + 1 if idempotent else 1
        for attempt in range(attempts):
            if attempt:
                self._sleep(self._backoff_delay(attempt - 1))
            try:
                return self._attempt(payload)
            except OSError:
                # ServerClosedError, ConnectionError, socket.timeout
                # are all OSError; drop the socket so the next attempt
                # starts on a fresh connection
                self._drop()
                if attempt + 1 >= attempts:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    # -- convenience ops -----------------------------------------------
    def compile(self, **fields: Any) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "compile"}
        payload.update(fields)
        return self.request(payload)

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("ok"))

    def stats(self) -> Dict[str, Any]:
        response = self.request({"op": "stats"})
        stats = response.get("stats", {})
        return dict(stats) if isinstance(stats, dict) else {}

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to drain and exit.

        Never retried: a shutdown that raises after the frame was sent
        may well have been honoured, and re-sending it could kill a
        server restarted in the meantime.
        """
        return self.request({"op": "shutdown"}, idempotent=False)

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "CompileClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
