"""Length-prefixed JSON wire protocol for the compile service.

Every message — request or response — is one *frame*:

    +----------------+-------------------------+
    | 4-byte length  |  UTF-8 JSON payload     |
    | (big-endian)   |  (``length`` bytes)     |
    +----------------+-------------------------+

The length counts the JSON payload only.  A frame whose declared length
exceeds the receiver's ``max_bytes`` is rejected *before* the payload
is read (the receiver must not buffer an attacker-sized message); a
connection that closes mid-frame raises :class:`FrameError` so a torn
message is never half-parsed.

Both transports are covered: blocking ``socket`` helpers for clients
and worker tools, ``asyncio`` stream helpers for the server.  Requests
and responses are plain dicts; :data:`ERROR_CODES` enumerates the
``error.code`` values the server may return.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict, Optional

#: frame header: payload byte length, unsigned 32-bit big-endian
HEADER = struct.Struct(">I")

#: default cap on a single frame's JSON payload (requests carrying QASM
#: text fit comfortably; anything larger is hostile or a bug)
MAX_PAYLOAD_BYTES = 4 * 1024 * 1024

#: ``error.code`` values a response may carry:
#:   bad-frame     frame header/payload violated the framing rules
#:                 (oversized declared length, truncated payload)
#:   bad-json      payload was not valid UTF-8 JSON
#:   bad-request   JSON was valid but the request shape was not
#:                 (missing op, unknown fields, bad types)
#:   unknown-op    request named an op the server does not implement
#:   too-large     request payload exceeded the server's size cap
#:   compile-error the compile job itself raised
#:   shutting-down server is draining and no longer accepts compiles
ERROR_CODES = (
    "bad-frame",
    "bad-json",
    "bad-request",
    "unknown-op",
    "too-large",
    "compile-error",
    "shutting-down",
)


class FrameError(Exception):
    """Framing violation: oversized declared length or truncated frame."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """Serialize *payload* into one wire frame (header + JSON bytes)."""
    body = json.dumps(payload, separators=(",", ":"), default=str).encode()
    return HEADER.pack(len(body)) + body


def decode_payload(body: bytes) -> Dict[str, Any]:
    """Parse one frame body; raises :class:`FrameError` on bad JSON."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameError("bad-json", f"payload is not valid JSON: {exc}")
    if not isinstance(payload, dict):
        raise FrameError(
            "bad-json", f"payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


# -- blocking socket transport -----------------------------------------
def send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    sock.sendall(encode_frame(payload))


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly *count* bytes; ``None`` on clean EOF at a frame
    boundary, :class:`FrameError` on EOF mid-frame."""
    chunks = []
    got = 0
    while got < count:
        chunk = sock.recv(min(65536, count - got))
        if not chunk:
            if got == 0:
                return None
            raise FrameError(
                "bad-frame",
                f"connection closed mid-frame ({got}/{count} bytes)",
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket, max_bytes: int = MAX_PAYLOAD_BYTES
) -> Optional[Dict[str, Any]]:
    """One decoded frame, or ``None`` when the peer closed cleanly."""
    header = _recv_exact(sock, HEADER.size)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > max_bytes:
        raise FrameError(
            "too-large",
            f"frame declares {length} bytes, cap is {max_bytes}",
        )
    body = _recv_exact(sock, length)
    if body is None:
        raise FrameError("bad-frame", "connection closed before payload")
    return decode_payload(body)


# -- asyncio stream transport ------------------------------------------
async def write_frame_async(
    writer: asyncio.StreamWriter, payload: Dict[str, Any]
) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()


async def read_frame_async(
    reader: asyncio.StreamReader, max_bytes: int = MAX_PAYLOAD_BYTES
) -> Optional[Dict[str, Any]]:
    """One decoded frame, or ``None`` when the peer closed cleanly.

    Oversized frames raise *before* the payload is buffered.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError(
            "bad-frame",
            f"connection closed mid-header ({len(exc.partial)} bytes)",
        )
    (length,) = HEADER.unpack(header)
    if length > max_bytes:
        raise FrameError(
            "too-large",
            f"frame declares {length} bytes, cap is {max_bytes}",
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise FrameError("bad-frame", "connection closed before payload")
    return decode_payload(body)


def error_response(code: str, message: str, **extra: Any) -> Dict[str, Any]:
    """Canonical error response body (``ok=False`` + coded error)."""
    assert code in ERROR_CODES, code
    response: Dict[str, Any] = {
        "ok": False,
        "error": {"code": code, "message": message},
    }
    response.update(extra)
    return response
