"""Two-tier compiled-artifact store: in-memory LRU over a disk tier.

The batch runner's disk memoization (one JSON file per content-hash key)
grew into the serving layer's hot path, so it lives here as a
first-class store with the properties a long-lived service needs:

* **memory tier** — :class:`MemoryLRU`, a bounded thread-safe LRU over
  deserialized artifacts, so a hot circuit costs a dict lookup instead
  of a disk read + JSON parse;
* **disk tier** — :class:`DiskTier`, one ``<key>.json`` file per
  artifact.  Writes are atomic (serialize to a unique temp file in the
  same directory, then ``os.replace``), so concurrent readers — other
  threads, other worker processes, other server instances sharing the
  cache directory — always see either the previous complete artifact or
  the new complete artifact, never a torn file;
* **corruption tolerance** — a truncated/garbage/wrong-schema file is a
  *miss* (counted in :attr:`StoreStats.corrupt_reads`), never an
  exception: a torn cache file must not poison a worker;
* **accounting** — :class:`StoreStats` counts hits per tier, misses,
  evictions, corrupt reads and puts; the serving table's
  ``cache_hit_rate`` column and the ``stats`` protocol op read it.

Artifacts are JSON-serializable dicts.  On disk each is wrapped in an
envelope ``{"schema_version", "created_at", "artifact"}``; a schema
mismatch is a miss (stale entries age out instead of crashing a newer
reader), and ``created_at`` lets callers surface the artifact's age
(the run table's ``cache_age_seconds`` column).

This module is dependency-free (stdlib only) so both the eval layer and
the serving layer can import it without cycles.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.utils.sync import make_lock

#: artifact tiers a hit can come from (``None`` means miss)
MEMORY_TIER = "memory"
DISK_TIER = "disk"


def atomic_write_json(
    path: pathlib.Path,
    payload: Any,
    indent: int = 1,
) -> pathlib.Path:
    """Serialize *payload* to *path* atomically (tmp + ``os.replace``).

    The canonical JSON-publish path for every artifact the repo writes:
    serialize to a pid/thread-unique temp file in the destination
    directory, then ``os.replace`` it into place, so a concurrent
    reader sees either the old complete file or the new complete file,
    never a torn one.  The concurrency linter (CC402) flags raw
    ``json.dump``/``write_text(json.dumps(...))`` sites that bypass it.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / (
        f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
    )
    tmp.write_text(json.dumps(payload, indent=indent, default=str))
    os.replace(tmp, path)
    return path


@dataclass
class StoreStats:
    """Hit/miss/eviction counters for one :class:`ArtifactStore`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    evictions: int = 0
    corrupt_reads: int = 0
    puts: int = 0

    @property
    def lookups(self) -> int:
        return self.memory_hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> Optional[float]:
        """Fraction of lookups served from either tier (None: no lookups)."""
        if self.lookups == 0:
            return None
        return (self.memory_hits + self.disk_hits) / self.lookups

    def as_dict(self) -> Dict[str, Any]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corrupt_reads": self.corrupt_reads,
            "puts": self.puts,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }


class MemoryLRU:
    """Bounded thread-safe LRU map: key -> artifact.

    ``get`` refreshes recency; ``put`` of an existing key refreshes and
    overwrites; inserting past ``capacity`` evicts the least recently
    used entry.  ``capacity=0`` disables the tier (every get misses,
    every put is dropped).
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = make_lock("MemoryLRU._lock")
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> Optional[Any]:
        with self._lock:
            if key not in self._entries:
                return None
            self._entries.move_to_end(key)
            return self._entries[key]

    def put(self, key: str, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def keys(self) -> Tuple[str, ...]:
        """Current keys, least recently used first."""
        with self._lock:
            return tuple(self._entries.keys())

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class DiskTier:
    """One ``<key>.json`` envelope file per artifact, written atomically.

    The temp-file name embeds pid and thread id, so concurrent writers
    in any mix of threads and processes never collide on the temp path;
    ``os.replace`` makes the publish atomic on POSIX and Windows alike.
    """

    def __init__(self, directory: pathlib.Path) -> None:
        self.directory = pathlib.Path(directory)

    def path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored envelope, or ``None`` on missing/corrupt files.

        Raises nothing: unreadable or non-JSON content reports as
        ``None`` with ``was_corrupt`` queryable via :meth:`load_checked`.
        """
        envelope, _ = self.load_checked(key)
        return envelope

    def load_checked(self, key: str) -> Tuple[Optional[Dict[str, Any]], bool]:
        """``(envelope, was_corrupt)``: distinguish corrupt from absent."""
        path = self.path(key)
        try:
            text = path.read_text()
        except OSError:
            return None, False
        try:
            envelope = json.loads(text)
        except ValueError:
            return None, True
        if not isinstance(envelope, dict):
            return None, True
        return envelope, False

    def store(self, key: str, envelope: Dict[str, Any]) -> pathlib.Path:
        return atomic_write_json(self.path(key), envelope)


@dataclass
class StoreHit:
    """One successful :meth:`ArtifactStore.get`."""

    artifact: Dict[str, Any]
    tier: str
    #: seconds since the artifact was first stored (0.0 when the
    #: envelope predates age tracking)
    age_seconds: float = 0.0


@dataclass
class ArtifactStore:
    """Memory-LRU-over-disk artifact store with hit/miss accounting.

    ``cache_dir=None`` runs memory-only (useful for pure in-process
    serving); ``memory_capacity=0`` runs disk-only (the batch runner's
    historical behaviour).  ``schema_version`` guards the disk tier:
    envelopes written under a different version read as misses.
    """

    cache_dir: Optional[pathlib.Path] = None
    memory_capacity: int = 128
    schema_version: Optional[int] = None
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self) -> None:
        self._memory = MemoryLRU(self.memory_capacity)
        self._disk = (
            DiskTier(pathlib.Path(self.cache_dir))
            if self.cache_dir is not None
            else None
        )
        self._lock = make_lock("ArtifactStore._lock")

    # -- lookup --------------------------------------------------------
    def get(self, key: str) -> Optional[StoreHit]:
        """The artifact under *key*, or ``None`` (counted as a miss)."""
        value = self._memory.get(key)
        if value is not None:
            artifact, created_at = value
            with self._lock:
                self.stats.memory_hits += 1
            return StoreHit(artifact, MEMORY_TIER, self._age(created_at))
        if self._disk is not None:
            envelope, corrupt = self._disk.load_checked(key)
            if corrupt:
                with self._lock:
                    self.stats.corrupt_reads += 1
            artifact = self._unwrap(envelope)
            if artifact is not None:
                created_at = float(envelope.get("created_at") or 0.0)
                self._memory.put(key, (artifact, created_at))
                with self._lock:
                    self.stats.disk_hits += 1
                    self.stats.evictions = self._memory.evictions
                return StoreHit(artifact, DISK_TIER, self._age(created_at))
        with self._lock:
            self.stats.misses += 1
        return None

    def _age(self, created_at: float) -> float:
        if created_at <= 0.0:
            return 0.0
        return max(0.0, time.time() - created_at)

    def _unwrap(
        self, envelope: Optional[Dict[str, Any]]
    ) -> Optional[Dict[str, Any]]:
        if envelope is None:
            return None
        if (
            self.schema_version is not None
            and envelope.get("schema_version") != self.schema_version
        ):
            return None
        artifact = envelope.get("artifact")
        if not isinstance(artifact, dict):
            return None
        return artifact

    # -- publish -------------------------------------------------------
    def put(self, key: str, artifact: Dict[str, Any]) -> None:
        """Publish *artifact* to both tiers (disk write is atomic)."""
        created_at = time.time()
        self._memory.put(key, (artifact, created_at))
        if self._disk is not None:
            self._disk.store(
                key,
                {
                    "schema_version": self.schema_version,
                    "created_at": created_at,
                    "artifact": artifact,
                },
            )
        with self._lock:
            self.stats.puts += 1
            self.stats.evictions = self._memory.evictions

    # -- maintenance ---------------------------------------------------
    def disk_path(self, key: str) -> Optional[pathlib.Path]:
        """Where *key*'s disk entry lives (None when disk tier is off)."""
        if self._disk is None:
            return None
        return self._disk.path(key)

    def clear_memory(self) -> None:
        """Drop the memory tier (disk entries survive)."""
        self._memory.clear()
