"""Graceful degradation: recovery policies for damaged hardware.

Given a compiled program and a per-site degradation scenario
(:class:`repro.hardware.degradation.SiteNoiseMap`), this module answers
the operational question: *can the program still run on this device,
and what is the cheapest intervention that saves it?*  Three policies
form a ladder, cheapest first:

* ``survive`` — run the program exactly as compiled.  Dead or heavily
  degraded cells under active sites collapse the yield (a fusion on a
  dead site never succeeds: yield exactly 0).
* ``reroute`` — local surgery on the existing layouts: node placements
  sitting on avoided cells are relocated to the nearest healthy free
  cell, and every fusion path touching an avoided cell (or a moved
  endpoint) is re-routed through healthy cells with the same bit-packed
  shortest-path kernel the mapper uses.  Pairs that no longer fit in
  their layer fall back to freshly allocated shuffle layers with the
  avoided cells pre-blocked.  No recompilation, no global re-layout.
* ``recompile`` — full compile with the avoided cells pre-blocked in
  the mapper (:attr:`repro.core.compiler.OneQConfig.blocked_cells`);
  the most expensive option, and the only one that can raise
  :class:`repro.core.mapping.NoViableSitesError` when the device has no
  usable cells left.

Yields are the per-site closed form
(:func:`repro.hardware.degradation.site_analytic_yield`) over each
candidate program's own site assignment, so a policy is credited
exactly for the bad cells it vacates.  ``recover`` walks the ladder and
returns a :class:`DegradationReport`; ``apply_policy`` evaluates one
policy for sweep harnesses that grid over policies explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.circuit.circuit import Circuit
from repro.core.compiler import (
    CompiledProgram,
    OneQCompiler,
    OneQConfig,
    settle_photon_budget,
)
from repro.core.mapping import LayerLayout, NoViableSitesError
from repro.core.shuffling import connect_pairs
from repro.hardware.degradation import (
    SiteNoiseMap,
    program_site_profile,
    site_analytic_yield,
)
from repro.hardware.fusion import FusionTally
from repro.sim.noisy import FaultCounts
from repro.utils.bitgrid import lexmin_path, nearest_free, spec_for

Coord = Tuple[int, int]

#: The recovery ladder, cheapest intervention first.
POLICIES: Tuple[str, ...] = ("survive", "reroute", "recompile")

#: A policy counts as a recovery when it retains at least this fraction
#: of the clean-hardware yield (and the yield is not exactly 0).
RECOVERY_THRESHOLD = 0.5


@dataclass
class PolicyOutcome:
    """One policy's result on one (program, scenario) instance."""

    policy: str
    program: Optional[CompiledProgram]
    yield_degraded: float
    #: fusions living on re-routed paths / re-allocated shuffle routes
    #: (0 for ``survive``; for ``recompile`` every fusion is re-placed,
    #: so the count is the recompiled program's fusion total)
    rerouted_fusions: int = 0
    #: fusion-count change versus the input program (detour cost)
    fusion_delta: int = 0
    error: Optional[str] = None


@dataclass
class DegradationReport:
    """Outcome of running the recovery ladder on one scenario."""

    scenario: str
    severity: float
    dead_fraction: float
    #: the chosen policy (first ladder rung meeting the recovery bar,
    #: else the best-yield rung attempted)
    policy: str
    recovered: bool
    yield_clean: float
    yield_degraded: float
    #: the as-compiled yield under the scenario (the ``survive`` rung),
    #: kept separately so reports can show the collapse being recovered
    yield_survive: float
    rerouted_fusions: int = 0
    fusion_delta: int = 0
    attempted: Tuple[str, ...] = ()
    policy_yields: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None

    def summary(self) -> str:
        """One-line human-readable digest."""
        verdict = "recovered" if self.recovered else "LOST"
        return (
            f"{self.scenario}@{self.severity:g}: {verdict} via "
            f"{self.policy} (clean={self.yield_clean:.4f} "
            f"survive={self.yield_survive:.4f} "
            f"degraded={self.yield_degraded:.4f}, "
            f"rerouted={self.rerouted_fusions}, "
            f"fusion_delta={self.fusion_delta:+d})"
        )


def program_yield(program: CompiledProgram, site_map: SiteNoiseMap) -> float:
    """Per-site analytic yield of *program* under *site_map*."""
    profile = program_site_profile(program, site_map.shape)
    return site_analytic_yield(profile, site_map, program.pattern_nodes)


def clean_yield(program: CompiledProgram, site_map: SiteNoiseMap) -> float:
    """The program's yield on pristine hardware (the scenario's base
    scalar model) — the reference every recovery is measured against."""
    return FaultCounts.from_program(program).analytic_yield(site_map.base)


# ----------------------------------------------------------------------
# reroute: local surgery on the compiled layouts
# ----------------------------------------------------------------------
def reroute_program(
    program: CompiledProgram,
    site_map: SiteNoiseMap,
    config: OneQConfig,
) -> Tuple[CompiledProgram, int]:
    """Re-route *program* around the scenario's avoided cells.

    Per mapped layer: node placements on avoided cells move to the
    nearest healthy free cell (bit-packed nearest-free scan, so the
    choice is deterministic), then every fusion path that touches an
    avoided cell or a moved endpoint is re-routed with the mapper's
    lexicographically-minimal shortest-path kernel over healthy free
    cells.  Pairs with no in-layer route left fall back to new shuffle
    layers allocated with the avoided cells pre-blocked.  Returns
    ``(program, rerouted_fusions)`` where the count covers every fusion
    living on a re-routed in-layer path or fallback shuffle route.  The
    returned program is a new object (layouts, tally and photon
    bookkeeping all rebuilt); the input is never mutated.

    Raises RuntimeError when a displaced node has no healthy free cell
    in its layer or a fallback pair cannot be shuffled — the caller
    should escalate to ``recompile``.
    """
    shape = site_map.shape
    if program.layouts and program.layouts[0].shape != shape:
        raise ValueError(
            f"program layer shape {program.layouts[0].shape} != site map "
            f"shape {shape}"
        )
    avoid = set(site_map.avoid_cells())
    spec = spec_for(shape)
    stride = spec.stride
    avoid_bits = 0
    for (r, c) in avoid:
        avoid_bits |= spec.bit[r * stride + c]

    new_layouts: List[LayerLayout] = []
    shuffle_pairs: List[Tuple[Coord, Coord]] = []
    rerouted_fusions = 0
    routing_delta = 0
    edge_removed = 0
    aux_delta = 0
    for layout in program.layouts:
        moves: Dict[Coord, Coord] = {}
        occupied_bits = 0
        for cell in list(layout.node_at) + list(layout.aux_cells):
            occupied_bits |= spec.bit[cell[0] * stride + cell[1]]
        # 1. relocate displaced nodes, nearest healthy free cell first
        for cell in sorted(set(layout.node_at) & avoid):
            near_idx = cell[0] * stride + cell[1]
            hit = nearest_free(
                spec, occupied_bits | avoid_bits, near_idx
            )
            if hit is None:
                raise RuntimeError(
                    f"layer {layout.index}: no healthy free cell left to "
                    f"relocate the node at {cell}"
                )
            target = spec.coord[hit]
            moves[cell] = target
            occupied_bits |= spec.bit[hit]
            occupied_bits &= ~spec.bit[near_idx]
        # 2. split paths into kept and affected
        affected: List[List[Coord]] = []
        kept: List[List[Coord]] = []
        for path in layout.paths:
            if any(c in avoid for c in path) or path[0] in moves or (
                path[-1] in moves
            ):
                affected.append(path)
            else:
                kept.append(path)
        node_at = {
            moves.get(cell, cell): node
            for cell, node in layout.node_at.items()
        }
        aux_cells = {c for p in kept for c in p[1:-1]}
        if not moves and not affected:
            new_layouts.append(
                LayerLayout(
                    index=layout.index,
                    shape=layout.shape,
                    node_at=node_at,
                    aux_cells=set(layout.aux_cells),
                    paths=[list(p) for p in layout.paths],
                    incomplete=set(layout.incomplete),
                )
            )
            continue
        occupied_bits = 0
        for cell in list(node_at) + list(aux_cells):
            occupied_bits |= spec.bit[cell[0] * stride + cell[1]]
        # 3. re-route affected paths through healthy free cells
        new_paths = [list(p) for p in kept]
        for path in sorted(affected):
            a = moves.get(path[0], path[0])
            b = moves.get(path[-1], path[-1])
            old_interior = len(path) - 2
            idx_path = lexmin_path(
                spec,
                spec.full & ~(occupied_bits | avoid_bits),
                a[0] * stride + a[1],
                b[0] * stride + b[1],
            )
            if idx_path is None:
                # no in-layer route left: realize the pair on a shuffle
                # layer instead (its edge fusion moves to shuffling)
                shuffle_pairs.append((a, b))
                routing_delta -= old_interior
                aux_delta -= old_interior
                edge_removed += 1
                continue
            new_path = [spec.coord[i] for i in idx_path]
            interior = new_path[1:-1]
            for cell in interior:
                occupied_bits |= spec.bit[cell[0] * stride + cell[1]]
            aux_cells.update(interior)
            new_paths.append(new_path)
            # 1 edge fusion + one routing fusion per new aux cell
            rerouted_fusions += 1 + len(interior)
            routing_delta += len(interior) - old_interior
            aux_delta += len(interior) - old_interior
        new_layouts.append(
            LayerLayout(
                index=layout.index,
                shape=layout.shape,
                node_at=node_at,
                aux_cells=aux_cells,
                paths=new_paths,
                incomplete=set(layout.incomplete),
            )
        )

    # 4. shuffle-layer fallback for pairs that lost their in-layer route
    extra_shuffle_layers = 0
    shuffle_fusions_added = 0
    shuffle_states_added = 0
    if shuffle_pairs:
        result = connect_pairs(shuffle_pairs, shape, blocked=avoid)
        extra_shuffle_layers = result.num_layers
        shuffle_fusions_added = result.fusions
        shuffle_states_added = sum(
            len(l.used) - l.reserved for l in result.layers
        )

    # 5. rebuild the tally and the photon budget
    old = program.fusions
    edge = old.edge
    synthesis = old.synthesis
    removed = min(edge_removed, edge)
    edge -= removed
    # chain-edge paths, if any, were tallied as synthesis
    synthesis = max(0, synthesis - (edge_removed - removed))
    tally = FusionTally(
        synthesis=synthesis,
        edge=edge,
        routing=old.routing + routing_delta,
        shuffling=old.shuffling + shuffle_fusions_added,
        extra=dict(old.extra),
    )
    rst = config.hardware.resource_state
    resource_states = (
        program.resource_states_used + aux_delta + shuffle_states_added
    )
    photons = resource_states * rst.size
    consumed = 2 * tally.total + program.pattern_nodes
    tally.z_measurements, photon_deficit = settle_photon_budget(
        photons, consumed, name=f"{program.name}(rerouted)"
    )
    rerouted_fusions += shuffle_fusions_added
    rerouted = replace(
        program,
        name=f"{program.name}(rerouted)",
        mapping_layers=len(new_layouts),
        shuffle_layers=program.shuffle_layers + extra_shuffle_layers,
        fusions=tally,
        layouts=new_layouts,
        resource_states_used=resource_states,
        photon_deficit=photon_deficit,
        stage_seconds=dict(program.stage_seconds),
    )
    return rerouted, rerouted_fusions


# ----------------------------------------------------------------------
# the policy ladder
# ----------------------------------------------------------------------
def apply_policy(
    policy: str,
    circuit: Circuit,
    program: CompiledProgram,
    site_map: SiteNoiseMap,
    config: OneQConfig,
) -> PolicyOutcome:
    """Evaluate one recovery policy; never raises on recovery failure.

    A policy that cannot produce a runnable program (re-route with no
    healthy cells left, recompile on an all-dead device) reports yield
    0 with the failure message in ``error`` instead of raising, so
    sweep harnesses can grid over policies uniformly.
    """
    if policy not in POLICIES:
        raise ValueError(
            f"unknown policy {policy!r}; use one of {', '.join(POLICIES)}"
        )
    baseline_fusions = program.num_fusions
    try:
        if policy == "survive":
            return PolicyOutcome(
                policy=policy,
                program=program,
                yield_degraded=program_yield(program, site_map),
            )
        if policy == "reroute":
            candidate, rerouted = reroute_program(
                program, site_map, config
            )
        else:  # recompile: every fusion is re-placed from scratch
            avoid = site_map.avoid_cells()
            blocked = tuple(
                sorted(set(config.blocked_cells) | set(avoid))
            )
            candidate = OneQCompiler(
                replace(config, blocked_cells=blocked)
            ).compile(circuit, name=f"{program.name}(recompiled)")
            rerouted = candidate.num_fusions
    except (NoViableSitesError, RuntimeError) as exc:
        return PolicyOutcome(
            policy=policy, program=None, yield_degraded=0.0, error=str(exc)
        )
    return PolicyOutcome(
        policy=policy,
        program=candidate,
        yield_degraded=program_yield(candidate, site_map),
        rerouted_fusions=rerouted,
        fusion_delta=candidate.num_fusions - baseline_fusions,
    )


def recover(
    circuit: Circuit,
    program: CompiledProgram,
    site_map: SiteNoiseMap,
    config: OneQConfig,
    scenario: str = "custom",
    severity: float = 0.0,
    policies: Tuple[str, ...] = POLICIES,
    threshold: float = RECOVERY_THRESHOLD,
) -> DegradationReport:
    """Walk the recovery ladder and report the cheapest rescue.

    Policies are attempted in ladder order; the first whose degraded
    yield retains ``threshold`` of the clean yield (and is non-zero)
    wins.  If none qualifies, the best-yield attempt is reported with
    ``recovered=False`` (its error message, if any, is carried along).
    """
    if not policies:
        raise ValueError("need at least one policy to attempt")
    reference = clean_yield(program, site_map)
    bar = threshold * reference
    attempted: List[str] = []
    outcomes: List[PolicyOutcome] = []
    yield_survive = None
    chosen: Optional[PolicyOutcome] = None
    for policy in policies:
        outcome = apply_policy(policy, circuit, program, site_map, config)
        attempted.append(policy)
        outcomes.append(outcome)
        if policy == "survive":
            yield_survive = outcome.yield_degraded
        if outcome.yield_degraded > 0.0 and outcome.yield_degraded >= bar:
            chosen = outcome
            break
    recovered = chosen is not None
    if chosen is None:
        chosen = max(outcomes, key=lambda o: o.yield_degraded)
    if yield_survive is None:
        # ladder started past "survive": evaluate it for the report
        yield_survive = program_yield(program, site_map)
    return DegradationReport(
        scenario=scenario,
        severity=severity,
        dead_fraction=site_map.dead_fraction,
        policy=chosen.policy,
        recovered=recovered,
        yield_clean=reference,
        yield_degraded=chosen.yield_degraded,
        yield_survive=yield_survive,
        rerouted_fusions=chosen.rerouted_fusions,
        fusion_delta=chosen.fusion_delta,
        attempted=tuple(attempted),
        policy_yields={
            o.policy: o.yield_degraded for o in outcomes
        },
        error=chosen.error,
    )
