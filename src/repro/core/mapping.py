"""Fusion mapping and routing (paper Sec. 6): in-layer heuristic search.

Embeds the irregular fusion graph into the regular grid of one (possibly
extended) physical layer after another.  Edges are traversed in
cycle-prioritized BFS order; each edge is realized either by placing the
new endpoint on an adjacent cell or by *fusion routing* — a path of
auxiliary resource states winding along the lattice (each auxiliary cell
burns two photons and can carry only one path for small resource states).
Candidate placements are scored with the paper's cost function

    ``H = occupied_area + #partially_blocked + alpha * #totally_blocked``

where a node is blocked when its remaining unmapped edges exceed its free
adjacent cells.  Nodes whose edges cannot all be realized within a layer
are *incomplete*; their leftover edges are handed to inter-layer
shuffling (:mod:`repro.core.shuffling`).

The hot path runs on bit-packed grid planes (:mod:`repro.utils.bitgrid`):
layer occupancy, node cells, free-neighbour counts and per-cell remaining
degrees are integer bitboards/flat planes, so candidate scoring is a
handful of mask tests per cell and path search expands whole BFS
frontiers per word op.  The packed path is pinned bit-identical to the
frozen scalar reference (``tests/core/reference_mapping.py``) by
``tests/core/test_mapping_equivalence_v2.py``: same placements, same
routed paths, same metrics at a fixed seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple, Union

import networkx as nx

from repro.core.fusion_graph import FGNode, FusionGraph
from repro.hardware.resource_state import ResourceStateType
from repro.utils.bitgrid import lexmin_path, nearest_free, spec_for
from repro.utils.geometry import grid_neighbor_table

Coord = Tuple[int, int]


class NoViableSitesError(RuntimeError):
    """The hardware has no usable cells left to map onto.

    Raised when every cell of the layer grid is blocked (dead hardware
    sites pre-excluded from mapping) — compiling is impossible and the
    caller should report the device as unrecoverable rather than retry.
    """


@dataclass
class LayerLayout:
    """One mapped (extended) physical layer, for metrics and rendering."""

    index: int
    shape: Tuple[int, int]
    node_at: Dict[Coord, FGNode] = field(default_factory=dict)
    aux_cells: Set[Coord] = field(default_factory=set)
    paths: List[List[Coord]] = field(default_factory=list)
    incomplete: Set[FGNode] = field(default_factory=set)

    @property
    def occupied(self) -> int:
        return len(self.node_at) + len(self.aux_cells)


@dataclass(frozen=True)
class Placement:
    layer: int
    coord: Coord


@dataclass
class MappingResult:
    """Outcome of mapping one partition's fusion graph."""

    layers: List[LayerLayout]
    placements: Dict[FGNode, Placement]
    edge_fusions: int = 0
    synthesis_fusions: int = 0
    routing_fusions: int = 0
    deferred_edges: List[Tuple[FGNode, FGNode]] = field(default_factory=list)


class InLayerMapper:
    """Stateful mapper: one instance maps all partitions of a program."""

    def __init__(
        self,
        shape: Tuple[int, int],
        resource_state: ResourceStateType,
        alpha: Optional[float] = None,
        route_radius: int = 6,
        route_targets_limit: int = 6,
        connect_radius: Optional[int] = None,
        blocked: Optional[Set[Coord]] = None,
    ) -> None:
        rows, cols = shape
        if rows < 2 or cols < 2:
            raise ValueError("layer must be at least 2x2")
        self.shape = shape
        # dead hardware cells: permanently occupied in every layer, so
        # placement and routing flow around them without special-casing
        for cell in blocked or ():
            r, c = cell
            if not (0 <= r < rows and 0 <= c < cols):
                raise ValueError(
                    f"blocked cell {cell} is outside the {shape} layer"
                )
        self.blocked: FrozenSet[Coord] = frozenset(blocked or ())
        if len(self.blocked) >= rows * cols:
            raise NoViableSitesError(
                f"no viable sites: all {rows * cols} cells of the "
                f"{shape} layer are blocked/dead"
            )
        self.resource_state = resource_state
        # paper: alpha > 1, typically the max degree of the physical layer
        self.alpha = float(alpha) if alpha is not None else 4.0
        self.route_radius = route_radius
        self.route_targets_limit = route_targets_limit
        #: bound on placed-to-placed routing (:meth:`_connect_placed`);
        #: ``None`` keeps the historical unbounded search — bounding it
        #: trades routing fusions for deferred (shuffled) edges
        self.connect_radius = connect_radius
        self.layers: List[LayerLayout] = []
        self.placements: Dict[FGNode, Placement] = {}
        #: wall seconds spent in candidate scoring / path search /
        #: placement bookkeeping, accumulated across all partitions
        #: (surfaced by the compiler as the ``map_score`` /
        #: ``map_route`` / ``map_place`` sub-stages)
        self.stage_seconds: Dict[str, float] = {
            "score": 0.0, "route": 0.0, "place": 0.0,
        }
        self._hints: Dict[FGNode, Coord] = {}
        self._nbr_table: Dict[Coord, List[Coord]] = grid_neighbor_table(shape)
        self._spec = spec_for(shape)
        # generation-stamped flat scratch planes for the routing BFS
        # (reused across calls; a bumped generation invalidates them all
        # without re-allocating)
        self._bfs_gen = 0
        self._bfs_seen: List[int] = [0] * self._spec.nbits
        self._bfs_parent: List[int] = [0] * self._spec.nbits
        self._bfs_depth: List[int] = [0] * self._spec.nbits
        self._reset_layer_state()

    # ------------------------------------------------------------------
    # layer lifecycle
    # ------------------------------------------------------------------
    def _reset_layer_state(self) -> None:
        self._occupied: Dict[Coord, object] = {}
        self._remaining: Dict[FGNode, int] = {}
        self._realized: Dict[FGNode, int] = {}
        self._rect: Optional[Tuple[int, int, int, int]] = None
        self._current: Optional[LayerLayout] = None
        # packed layer planes: occupancy and node-cell bitboards, plus
        # flat per-cell planes for free-neighbour counts and the
        # remaining degree of the node occupying each cell
        self._occ_bits: int = 0
        self._node_bits: int = 0
        self._fnc: List[int] = list(self._spec.free0)
        self._rem_at: List[int] = [0] * self._spec.nbits
        # dead cells start every layer occupied (not as nodes, not in
        # the bounding rectangle: they consume no resource states)
        spec = self._spec
        for cell in sorted(self.blocked):
            self._occupied[cell] = "blocked"
            idx = cell[0] * spec.stride + cell[1]
            self._occ_bits |= spec.bit[idx]
            for ni in spec.nbr_idx[idx]:
                self._fnc[ni] -= 1

    def _open_layer(self) -> LayerLayout:
        layout = LayerLayout(index=len(self.layers), shape=self.shape)
        self.layers.append(layout)
        self._reset_layer_state()
        self._current = layout
        return layout

    def _close_layer(self) -> None:
        if self._current is None:
            return
        for coord, node in self._current.node_at.items():
            if self._remaining.get(node, 0) > 0:
                self._current.incomplete.add(node)
        self._current = None

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def _in_bounds(self, coord: Coord) -> bool:
        r, c = coord
        return 0 <= r < self.shape[0] and 0 <= c < self.shape[1]

    def _neighbors(self, coord: Coord) -> List[Coord]:
        return self._nbr_table[coord]

    def _free(self, coord: Coord) -> bool:
        return coord not in self._occupied

    def _free_neighbor_count(self, coord: Coord) -> int:
        """Free neighbours of *coord*, read off the packed plane.

        Cells only ever become occupied within a layer, so the plane is
        maintained by decrementing the four neighbours of every claimed
        cell (:meth:`_place_node` / :meth:`_mark_aux`).
        """
        return self._fnc[coord[0] * self._spec.stride + coord[1]]

    def _on_occupy(self, coord: Coord) -> None:
        """Subclass hook invoked after every cell claim.

        The packed planes are maintained inline by the claim sites; the
        frozen scalar reference subclasses override this hook to keep
        their own caches consistent.
        """

    # ------------------------------------------------------------------
    # cost function H
    # ------------------------------------------------------------------
    def _rect_area_with(self, extra: List[Coord]) -> int:
        coords = extra
        rect = self._rect
        if rect is None:
            xs = [c[0] for c in coords]
            ys = [c[1] for c in coords]
            if not xs:
                return 0
            return (max(xs) - min(xs) + 1) * (max(ys) - min(ys) + 1)
        x0, y0, x1, y1 = rect
        for (r, c) in coords:
            if r < x0:
                x0 = r
            elif r > x1:
                x1 = r
            if c < y0:
                y0 = c
            elif c > y1:
                y1 = c
        return (x1 - x0 + 1) * (y1 - y0 + 1)

    def _blockage_score(
        self, node: FGNode, coord: Coord, occupied_extra: Set[Coord]
    ) -> float:
        """Blockage contribution of one placed node given extra occupancy."""
        remaining = self._remaining.get(node, 0)
        if remaining <= 0:
            return 0.0
        free = sum(
            1
            for p in self._neighbors(coord)
            if self._free(p) and p not in occupied_extra
        )
        if free == 0:
            return self.alpha
        if remaining > free:
            return 1.0
        return 0.0

    def _score_candidate(
        self,
        new_cells: List[Coord],
        new_node: Optional[FGNode],
        node_cell: Optional[Coord],
        remaining_after: Dict[FGNode, int],
    ) -> float:
        """H after hypothetically occupying *new_cells*.

        Only nodes adjacent to the new cells (plus the new node) can
        change blockage, so the score is the area term plus local
        blockage deltas; the constant global part cancels in comparisons.
        """
        spec = self._spec
        stride = spec.stride
        bit = spec.bit
        nbr_idx = spec.nbr_idx
        nbr_mask = spec.nbr_mask
        node_bits = self._node_bits
        fnc = self._fnc
        rem_at = self._rem_at
        remaining = self._remaining
        alpha = self.alpha
        # single-cell candidates (direct adjacency) dominate: avoid the
        # mask allocations and min/max calls of the generic path
        single = new_cells[0] if len(new_cells) == 1 else None
        rect = self._rect
        if single is not None and rect is not None:
            x0, y0, x1, y1 = rect
            r, c = single
            if r < x0:
                x0 = r
            elif r > x1:
                x1 = r
            if c < y0:
                y0 = c
            elif c > y1:
                y1 = c
            score = float((x1 - x0 + 1) * (y1 - y0 + 1))
        else:
            score = float(self._rect_area_with(new_cells))
        idxs = [r * stride + c for r, c in new_cells]
        new_bits = 0
        for i in idxs:
            new_bits |= bit[i]
        # Blockage terms accumulate in the scalar scorer's order — the
        # affected placed nodes in first-encounter order over new cells x
        # U, D, L, R neighbours, then the new node — so the float sum is
        # bit-identical.  Each term is two plane reads and a popcount:
        # free neighbours after the hypothetical claim is the maintained
        # free count minus the claimed cells adjacent to the node.
        seen = 0
        for i in idxs:
            for p_idx in nbr_idx[i]:
                pb = bit[p_idx]
                if not node_bits & pb or seen & pb:
                    continue
                seen |= pb
                if remaining_after:
                    node = self._occupied.get(spec.coord[p_idx])
                    if node in remaining_after:
                        rem = remaining_after[node]
                    else:
                        rem = rem_at[p_idx]
                else:
                    rem = rem_at[p_idx]
                if rem <= 0:
                    continue
                free = fnc[p_idx] - (nbr_mask[p_idx] & new_bits).bit_count()
                if free == 0:
                    score += alpha
                elif rem > free:
                    score += 1.0
        if new_node is not None and node_cell is not None:
            rem = remaining_after.get(
                new_node, remaining.get(new_node, 0)
            )
            if rem > 0:
                i = node_cell[0] * stride + node_cell[1]
                free = fnc[i] - (nbr_mask[i] & new_bits).bit_count()
                if free == 0:
                    score += alpha
                elif rem > free:
                    score += 1.0
        return score

    # ------------------------------------------------------------------
    # placement primitives
    # ------------------------------------------------------------------
    def _place_node(self, node: FGNode, coord: Coord, degree: int) -> None:
        assert self._current is not None
        if not self._free(coord):
            raise RuntimeError(f"cell {coord} already occupied")
        self._occupied[coord] = node
        spec = self._spec
        idx = coord[0] * spec.stride + coord[1]
        claimed = spec.bit[idx]
        self._occ_bits |= claimed
        self._node_bits |= claimed
        fnc = self._fnc
        for ni in spec.nbr_idx[idx]:
            fnc[ni] -= 1
        self._rem_at[idx] = degree
        self._on_occupy(coord)
        self._current.node_at[coord] = node
        self.placements[node] = Placement(len(self.layers) - 1, coord)
        self._remaining[node] = degree
        self._realized[node] = 0
        if self._rect is None:
            self._rect = (coord[0], coord[1], coord[0], coord[1])
        else:
            x0, y0, x1, y1 = self._rect
            self._rect = (
                min(x0, coord[0]),
                min(y0, coord[1]),
                max(x1, coord[0]),
                max(y1, coord[1]),
            )

    def _mark_aux(self, cells: List[Coord]) -> None:
        assert self._current is not None
        spec = self._spec
        fnc = self._fnc
        for cell in cells:
            self._occupied[cell] = "aux"
            idx = cell[0] * spec.stride + cell[1]
            self._occ_bits |= spec.bit[idx]
            for ni in spec.nbr_idx[idx]:
                fnc[ni] -= 1
            self._on_occupy(cell)
            self._current.aux_cells.add(cell)
            if self._rect is None:
                self._rect = (cell[0], cell[1], cell[0], cell[1])
            else:
                x0, y0, x1, y1 = self._rect
                self._rect = (
                    min(x0, cell[0]),
                    min(y0, cell[1]),
                    max(x1, cell[0]),
                    max(y1, cell[1]),
                )

    def _consume(self, node: FGNode, count: int = 1) -> None:
        self._remaining[node] = self._remaining.get(node, 0) - count
        self._realized[node] = self._realized.get(node, 0) + count
        place = self.placements.get(node)
        if place is not None and place.layer == len(self.layers) - 1:
            # mirror the remaining degree onto the packed plane
            r, c = place.coord
            self._rem_at[r * self._spec.stride + c] -= count

    def _node_capacity_left(self, node: FGNode) -> int:
        """Photons left on the node's resource state for more fusions."""
        return self.resource_state.size - self._realized.get(node, 0)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _bfs_path(
        self,
        start: Coord,
        goal_test: Callable[[Coord, Coord], bool],
        max_len: Optional[int] = None,
        avoid: Optional[Set[Coord]] = None,
        goal: Optional[Coord] = None,
    ) -> Optional[List[Coord]]:
        """Shortest path from *start* through free cells.

        ``start`` itself may be occupied (it is the source node's cell);
        every interior cell must be free.  Returns the full path including
        both endpoints, or None.

        When the target is one known cell, callers pass it as ``goal``
        and the search runs on the packed frontier kernel (which returns
        the same lexicographically minimal path as the scalar FIFO BFS);
        the ``goal_test`` form remains for subclasses and ad-hoc goals.
        """
        if goal is not None:
            spec = self._spec
            stride = spec.stride
            if avoid:
                if goal in avoid:
                    return None
                free = spec.full & ~self._occ_bits
                for (r, c) in avoid:
                    free &= ~spec.bit[r * stride + c]
            else:
                free = spec.full & ~self._occ_bits
            idx_path = lexmin_path(
                spec,
                free,
                start[0] * stride + start[1],
                goal[0] * stride + goal[1],
                max_len,
            )
            if idx_path is None:
                return None
            coords = spec.coord
            return [coords[i] for i in idx_path]
        avoid = avoid or set()
        queue = deque([start])
        parent: Dict[Coord, Optional[Coord]] = {start: None}
        # depth is tracked alongside the BFS instead of being reconstructed
        # by walking the parent chain on every dequeue (O(n^2) per route)
        depth_of: Dict[Coord, int] = {start: 0}
        nbr_table = self._nbr_table
        occupied = self._occupied
        while queue:
            cur = queue.popleft()
            if max_len is not None and depth_of[cur] >= max_len:
                continue
            for nxt in nbr_table[cur]:
                if nxt in parent or nxt in avoid:
                    continue
                if goal_test(nxt, cur):
                    parent[nxt] = cur
                    path = [nxt]
                    back: Optional[Coord] = cur
                    while back is not None:
                        path.append(back)
                        back = parent[back]
                    path.reverse()
                    return path
                if nxt not in occupied:
                    parent[nxt] = cur
                    depth_of[nxt] = depth_of[cur] + 1
                    queue.append(nxt)
        return None

    # ------------------------------------------------------------------
    # main entry
    # ------------------------------------------------------------------
    def map_fusion_graph(
        self,
        fusion: FusionGraph,
        hints: Optional[Dict[FGNode, Coord]] = None,
    ) -> MappingResult:
        """Map one partition's fusion graph, opening layers as needed.

        ``hints`` suggests a grid location per node (the compiler passes
        the coordinates of cross-partition counterparts so that shuffle
        paths between partitions stay short).
        """
        graph = fusion.graph
        self._hints = hints or {}
        self._degree = dict(graph.degree())
        self._open_layer()
        start_layer = len(self.layers) - 1

        edge_fusions = 0
        synthesis_fusions = 0
        routing_fusions = 0
        deferred: List[Tuple[FGNode, FGNode]] = []

        def count_realized(a: FGNode, b: FGNode) -> None:
            nonlocal edge_fusions, synthesis_fusions
            kind = graph.edges[a, b].get("kind", "edge")
            if kind == "chain":
                synthesis_fusions += 1
            else:
                edge_fusions += 1

        pending = list(_edge_order(graph))
        isolated = [v for v in graph.nodes() if graph.degree(v) == 0]
        for node in isolated:
            coord = self._find_free_cell_near(None)
            if coord is None:
                self._close_layer()
                self._open_layer()
                coord = self._find_free_cell_near(None)
                if coord is None:  # pragma: no cover - layer can't be full here
                    raise RuntimeError("empty layer has no free cell")
            self._place_node(node, coord, 0)

        guard = 0
        while pending:
            guard += 1
            if guard > 20 * (len(pending) + graph.number_of_edges() + 1) + 1000:
                raise RuntimeError("mapper failed to make progress")
            spill: List[Tuple[FGNode, FGNode]] = []
            progressed = False
            for (a, b) in pending:
                outcome = self._realize_edge(a, b, graph)
                if outcome == "edge":
                    count_realized(a, b)
                    progressed = True
                elif isinstance(outcome, int):
                    count_realized(a, b)
                    routing_fusions += outcome
                    progressed = True
                elif outcome == "defer":
                    deferred.append((a, b))
                    self._consume_if_placed(a)
                    self._consume_if_placed(b)
                    progressed = True
                else:  # "spill": retry on a fresh layer
                    spill.append((a, b))
            pending = spill
            if pending and not progressed:
                # nothing fit this layer: start a new one
                self._close_layer()
                self._open_layer()
            elif pending:
                self._close_layer()
                self._open_layer()
        self._close_layer()

        return MappingResult(
            layers=self.layers[start_layer:],
            placements=self.placements,
            edge_fusions=edge_fusions,
            synthesis_fusions=synthesis_fusions,
            routing_fusions=routing_fusions,
            deferred_edges=deferred,
        )

    # ------------------------------------------------------------------
    def _consume_if_placed(self, node: FGNode) -> None:
        place = self.placements.get(node)
        if place is not None and place.layer == len(self.layers) - 1:
            self._consume(node)

    def _is_current(self, node: FGNode) -> bool:
        place = self.placements.get(node)
        return place is not None and place.layer == len(self.layers) - 1

    def _realize_edge(
        self, a: FGNode, b: FGNode, graph: nx.Graph
    ) -> Union[str, int]:
        """Attempt one edge.  Returns:

        * ``"edge"`` — realized by direct adjacency (1 fusion);
        * ``int k`` — realized via routing with ``k`` extra fusions;
        * ``"spill"`` — endpoint could not be placed; retry next layer;
        * ``"defer"`` — both endpoints are stuck in old layers; needs
          inter-layer shuffling.
        """
        a_cur, b_cur = self._is_current(a), self._is_current(b)
        a_old = a in self.placements and not a_cur
        b_old = b in self.placements and not b_cur

        if a_old and (b_old or b_cur):
            return "defer"
        if b_old and a_cur:
            return "defer"
        if a_old:  # b unplaced: place b near a's old coordinate, defer edge
            placed = self._place_new_node(
                b, graph, near=self.placements[a].coord, budget_for_edge=False
            )
            return "defer" if placed else "spill"
        if b_old:
            placed = self._place_new_node(
                a, graph, near=self.placements[b].coord, budget_for_edge=False
            )
            return "defer" if placed else "spill"

        if not a_cur and not b_cur:
            # new component (or fresh layer): seed one endpoint
            degree = self._degree
            seed = a if degree[a] >= degree[b] else b
            near = self._hints.get(seed, self._hints.get(a, self._hints.get(b)))
            if not self._place_new_node(seed, graph, near=near, budget_for_edge=False):
                return "spill"
            a_cur, b_cur = self._is_current(a), self._is_current(b)

        if a_cur and b_cur:
            return self._connect_placed(a, b)

        placed_node, new_node = (a, b) if a_cur else (b, a)
        return self._attach_new(placed_node, new_node, graph)

    # ------------------------------------------------------------------
    def _connect_placed(self, a: FGNode, b: FGNode) -> Union[str, int]:
        """Route an edge between two already-placed nodes (same layer)."""
        if self._node_capacity_left(a) <= 0 or self._node_capacity_left(b) <= 0:
            return "defer"
        ca = self.placements[a].coord
        cb = self.placements[b].coord
        if cb in self._neighbors(ca):
            self._consume(a)
            self._consume(b)
            assert self._current is not None
            self._current.paths.append([ca, cb])
            return "edge"
        t0 = perf_counter()
        path = self._bfs_path(
            ca, lambda nxt, cur: nxt == cb, max_len=self.connect_radius, goal=cb
        )
        self.stage_seconds["route"] += perf_counter() - t0
        if path is None:
            return "defer"
        interior = path[1:-1]
        self._mark_aux(interior)
        self._consume(a)
        self._consume(b)
        assert self._current is not None
        self._current.paths.append(path)
        return len(path) - 2  # routing fusions beyond the 1 edge fusion

    def _attach_new(
        self, placed: FGNode, new: FGNode, graph: nx.Graph
    ) -> Union[str, int]:
        """Place *new* adjacent to *placed* (directly or via routing)."""
        if self._node_capacity_left(placed) <= 0:
            # port exhausted by routing overhead; hand to shuffling
            if self._place_new_node(
                new, graph, near=self.placements[placed].coord, budget_for_edge=False
            ):
                return "defer"
            return "spill"
        cp = self.placements[placed].coord
        degree = self._degree[new]
        after = {
            placed: self._remaining.get(placed, 0) - 1,
            new: degree - 1,
        }
        # direct candidates: free cells adjacent to the anchor, scored
        # straight off the packed planes.  This inlines _score_candidate
        # for the single-cell case: the area term extends the running
        # bounding rectangle, and each blockage term is two plane reads
        # per neighbour, accumulated in the same U, D, L, R order (hence
        # the same float sum) as the scalar scorer.
        t0 = perf_counter()
        spec = self._spec
        bit = spec.bit
        nbr_idx = spec.nbr_idx
        occ_bits = self._occ_bits
        node_bits = self._node_bits
        fnc = self._fnc
        rem_at = self._rem_at
        alpha = self.alpha
        cp_idx = cp[0] * spec.stride + cp[1]
        after_placed = after[placed]
        rem_new = degree - 1
        assert self._rect is not None  # the anchor is mapped
        x0, y0, x1, y1 = self._rect
        options: List[Tuple[float, Coord, Optional[List[Coord]]]] = []
        coords = spec.coord
        min_direct = float("inf")
        for s_idx in nbr_idx[cp_idx]:
            if occ_bits & bit[s_idx]:
                continue
            cell = coords[s_idx]
            r, c = cell
            cx0 = r if r < x0 else x0
            cx1 = r if r > x1 else x1
            cy0 = c if c < y0 else y0
            cy1 = c if c > y1 else y1
            score = float((cx1 - cx0 + 1) * (cy1 - cy0 + 1))
            for p_idx in nbr_idx[s_idx]:
                if not node_bits & bit[p_idx]:
                    continue
                rem = after_placed if p_idx == cp_idx else rem_at[p_idx]
                if rem <= 0:
                    continue
                free = fnc[p_idx] - 1
                if free == 0:
                    score += alpha
                elif rem > free:
                    score += 1.0
            if rem_new > 0:
                free = fnc[s_idx]
                if free == 0:
                    score += alpha
                elif rem_new > free:
                    score += 1.0
            options.append((score, cell, None))
            if score < min_direct:
                min_direct = score
        self.stage_seconds["score"] += perf_counter() - t0
        # routing is triggered when direct mapping is impossible or when
        # every direct option blocks a node (score carries an alpha term)
        need_routing = not options or min_direct >= self.alpha
        if need_routing:
            needed = max(1, min(degree - 1, 3))
            best_so_far = min_direct
            t0 = perf_counter()
            routed = self._routed_targets(cp, needed)
            self.stage_seconds["route"] += perf_counter() - t0
            t0 = perf_counter()
            for path in routed:
                target = path[-1]
                cells = path[1:]
                # the aux-cell penalty and the (monotone) area term bound
                # the score from below; blockage only adds to it, so a
                # path whose bound already loses cannot be the minimum
                penalty = 0.25 * (len(path) - 2)
                bound = float(self._rect_area_with(cells)) + penalty
                if bound > best_so_far:
                    continue
                score = self._score_candidate(cells, new, target, after)
                # prefer direct edges when scores tie: each aux cell costs
                # a fusion, which H does not see
                score += penalty
                options.append((score, target, path))
                if score < best_so_far:
                    best_so_far = score
            self.stage_seconds["score"] += perf_counter() - t0
        if not options:
            return "spill"
        t0 = perf_counter()
        best_opt = options[0]
        for cand in options:
            if cand[0] < best_opt[0] or (
                cand[0] == best_opt[0] and cand[1] < best_opt[1]
            ):
                best_opt = cand
        _, best, path = best_opt
        self._place_node(new, best, degree)
        self._consume(placed)
        self._consume(new)
        assert self._current is not None
        if path is None:
            self._current.paths.append([cp, best])
            self.stage_seconds["place"] += perf_counter() - t0
            return "edge"
        self._mark_aux(path[1:-1])
        self._current.paths.append(path)
        self.stage_seconds["place"] += perf_counter() - t0
        return len(path) - 2

    def _routed_targets(
        self, start: Coord, needed: int, limit: Optional[int] = None
    ) -> List[List[Coord]]:
        """Up to *limit* shortest free paths to roomy cells around *start*.

        Routing paths have length >= 2 (at least one auxiliary state), as
        in the paper; each returned path includes both endpoints.  The
        default *limit* is the mapper's ``route_targets_limit``.
        """
        if limit is None:
            limit = self.route_targets_limit
        results: List[List[Coord]] = []
        spec = self._spec
        stride = spec.stride
        nbr_idx = spec.nbr_idx
        occ_bits = self._occ_bits
        fnc = self._fnc
        bit = spec.bit
        coords = spec.coord
        radius = self.route_radius
        gen = self._bfs_gen + 1
        self._bfs_gen = gen
        seen = self._bfs_seen
        parent = self._bfs_parent
        depth = self._bfs_depth
        start_idx = start[0] * stride + start[1]
        seen[start_idx] = gen
        parent[start_idx] = -1
        depth[start_idx] = 0
        queue = [start_idx]
        head = 0
        while head < len(queue) and len(results) < limit:
            cur = queue[head]
            head += 1
            cur_depth = depth[cur]
            if cur_depth >= radius:
                continue
            for nxt in nbr_idx[cur]:
                if seen[nxt] == gen or occ_bits & bit[nxt]:
                    continue
                seen[nxt] = gen
                parent[nxt] = cur
                depth[nxt] = cur_depth + 1
                if cur_depth >= 1 and fnc[nxt] >= needed:
                    idx_path = [nxt]
                    back = cur
                    while back != -1:
                        idx_path.append(back)
                        back = parent[back]
                    idx_path.reverse()
                    results.append([coords[i] for i in idx_path])
                queue.append(nxt)
        return results

    def _place_new_node(
        self,
        node: FGNode,
        graph: nx.Graph,
        near: Optional[Coord],
        budget_for_edge: bool,
    ) -> bool:
        """Place a node with no in-layer anchor (seed or stub neighbour)."""
        degree = self._degree[node]
        if near is None:
            near = self._hints.get(node)
        t0 = perf_counter()
        coord = self._find_free_cell_near(near)
        if coord is None:
            self.stage_seconds["place"] += perf_counter() - t0
            return False
        self._place_node(node, coord, degree)
        if budget_for_edge:
            self._consume(node)
        self.stage_seconds["place"] += perf_counter() - t0
        return True

    def _find_free_cell_near(self, near: Optional[Coord]) -> Optional[Coord]:
        rows, cols = self.shape
        if near is None:
            if self._rect is not None:
                # seed new components beside the existing region
                x0, y0, x1, y1 = self._rect
                near = (min(rows - 1, x1 + 2), min(cols - 1, (y0 + y1) // 2))
            else:
                near = (rows // 2, cols // 2)
        spec = self._spec
        near_idx = near[0] * spec.stride + near[1]
        if not self._occ_bits & spec.bit[near_idx] and self._fnc[near_idx] >= 1:
            return near
        # deterministic outward scan: candidates are visited in
        # (manhattan distance, row, column) order — ring d of the packed
        # frontier expansion is exactly the distance-d diamond, and the
        # lowest set bit of a ring is its (row, col)-minimal cell.  The
        # previous spiral BFS broke distance ties by queue insertion
        # order and measured distance through occupied cells only, so
        # the chosen cell depended on the occupancy history rather than
        # the geometry.
        hit = nearest_free(spec, self._occ_bits, near_idx)
        if hit is None:
            return None
        return spec.coord[hit]


def _bridge_set(graph: nx.Graph) -> Set[FrozenSet[FGNode]]:
    """The bridges of *graph* as frozenset edges (iterative low-link DFS).

    Bridges are a property of the graph, so this returns the same set as
    ``nx.bridges`` at a fraction of the constant factor — and
    :func:`_edge_order` only ever tests membership, so DFS order is
    irrelevant.
    """
    index: Dict[FGNode, int] = {}
    low: Dict[FGNode, int] = {}
    bridges: Set[FrozenSet[FGNode]] = set()
    counter = 0
    adj = graph.adj
    for root in graph.nodes():
        if root in index:
            continue
        index[root] = low[root] = counter
        counter += 1
        stack = [(root, root, iter(adj[root]))]
        while stack:
            node, parent, neighbors = stack[-1]
            descended = False
            for nbr in neighbors:
                if nbr not in index:
                    index[nbr] = low[nbr] = counter
                    counter += 1
                    stack.append((nbr, node, iter(adj[nbr])))
                    descended = True
                    break
                if nbr != parent and index[nbr] < low[node]:
                    low[node] = index[nbr]
            if not descended:
                stack.pop()
                if stack:
                    pnode = stack[-1][0]
                    if low[node] < low[pnode]:
                        low[pnode] = low[node]
                    if low[node] > index[pnode]:
                        bridges.add(frozenset((pnode, node)))
    return bridges


def _edge_order(graph: nx.Graph) -> List[Tuple[FGNode, FGNode]]:
    """Cycle-prioritized BFS edge order (Sec. 6).

    Edges on cycles come before bridges at each BFS step, because tree
    edges are flexible and can be mapped around a committed cycle layout.
    """
    if graph.number_of_edges() == 0:
        return []
    # both directions of every bridge, as plain tuples: the sort key
    # below then avoids a frozenset allocation per neighbour
    bridge_pairs: Set[Tuple[FGNode, FGNode]] = set()
    for e in _bridge_set(graph):
        a, b = tuple(e)
        bridge_pairs.add((a, b))
        bridge_pairs.add((b, a))
    degree: Dict[FGNode, int] = dict(graph.degree())
    order: List[Tuple[FGNode, FGNode]] = []
    seen_edges: Set[frozenset] = set()
    visited: Set[FGNode] = set()
    components = sorted(
        nx.connected_components(graph), key=len, reverse=True
    )
    for comp in components:
        start = max(comp, key=lambda v: (degree[v], v))
        visited.add(start)
        queue = deque([start])
        while queue:
            u = queue.popleft()
            nbrs = sorted(
                graph.neighbors(u),
                key=lambda w: (
                    (u, w) in bridge_pairs,  # cycle edges first
                    -degree[w],
                    w,
                ),
            )
            for w in nbrs:
                e = frozenset((u, w))
                if e not in seen_edges:
                    seen_edges.add(e)
                    order.append((u, w))
                if w not in visited:
                    visited.add(w)
                    queue.append(w)
    return order
