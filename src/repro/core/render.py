"""ASCII rendering of mapped layers (for Fig. 11 / Fig. 14 style views).

Legend (matches the paper's figure conventions):
``o`` complete fusion-graph node (blue dot), ``?`` incomplete node whose
edges are not all mapped (green dot), ``*`` auxiliary routing resource
state (pink dot), ``.`` unused RSG location.
"""

from __future__ import annotations

from typing import List

from repro.core.compiler import CompiledProgram
from repro.core.mapping import LayerLayout

COMPLETE = "o"
INCOMPLETE = "?"
AUX = "*"
EMPTY = "."


def render_layer(layout: LayerLayout) -> str:
    """Render one mapped layer as a grid of characters."""
    rows, cols = layout.shape
    grid: List[List[str]] = [[EMPTY] * cols for _ in range(rows)]
    for (r, c) in layout.aux_cells:
        grid[r][c] = AUX
    for (r, c), node in layout.node_at.items():
        grid[r][c] = INCOMPLETE if node in layout.incomplete else COMPLETE
    return "\n".join("".join(row) for row in grid)


def render_program(program: CompiledProgram, max_layers: int = 4) -> str:
    """Render the first layers of a compiled program with a header."""
    parts = [program.summary()]
    for layout in program.layouts[:max_layers]:
        parts.append(f"--- layer {layout.index} "
                     f"(occupied {layout.occupied}/{layout.shape[0] * layout.shape[1]}) ---")
        parts.append(render_layer(layout))
    hidden = len(program.layouts) - max_layers
    if hidden > 0:
        parts.append(f"... {hidden} more layers ...")
    return "\n".join(parts)
