"""The OneQ compiler: partitioning, fusion graphs, mapping and routing."""

from repro.core.compiler import (
    CompiledProgram,
    OneQCompiler,
    OneQConfig,
    compile_circuit,
)
from repro.core.fusion_graph import (
    FGNode,
    FusionGraph,
    build_fusion_graph,
    verify_fusion_graph,
)
from repro.core.mapping import (
    InLayerMapper,
    LayerLayout,
    MappingResult,
    NoViableSitesError,
    Placement,
)
from repro.core.partition import (
    GraphPartition,
    PartitionConfig,
    cross_partition_edges,
    partition_pattern,
    required_degrees,
    verify_partitioning,
)
from repro.core.planarity import (
    is_planar,
    maximal_planar_subgraph,
    planar_edge_decomposition,
    planar_embedding_order,
)
from repro.core.recovery import (
    POLICIES,
    DegradationReport,
    PolicyOutcome,
    apply_policy,
    recover,
    reroute_program,
)
from repro.core.render import render_layer, render_program
from repro.core.shuffling import ShuffleLayer, ShuffleResult, connect_pairs
from repro.core.validate import (
    PatternVerification,
    ValidationError,
    YieldEstimate,
    assert_valid,
    estimate_yield,
    validate_program,
    verify_pattern,
)

__all__ = [
    "CompiledProgram",
    "DegradationReport",
    "FGNode",
    "FusionGraph",
    "GraphPartition",
    "InLayerMapper",
    "LayerLayout",
    "MappingResult",
    "NoViableSitesError",
    "OneQCompiler",
    "OneQConfig",
    "POLICIES",
    "PartitionConfig",
    "Placement",
    "PatternVerification",
    "PolicyOutcome",
    "ShuffleLayer",
    "ShuffleResult",
    "ValidationError",
    "YieldEstimate",
    "apply_policy",
    "assert_valid",
    "estimate_yield",
    "recover",
    "reroute_program",
    "validate_program",
    "verify_pattern",
    "build_fusion_graph",
    "compile_circuit",
    "connect_pairs",
    "cross_partition_edges",
    "is_planar",
    "maximal_planar_subgraph",
    "partition_pattern",
    "planar_edge_decomposition",
    "planar_embedding_order",
    "render_layer",
    "render_program",
    "required_degrees",
    "verify_fusion_graph",
    "verify_partitioning",
]
