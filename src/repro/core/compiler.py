"""The end-to-end OneQ compiler (paper Fig. 1).

Pipeline:  circuit -> measurement pattern (graph state + dependencies)
-> graph partition & scheduling (Sec. 4) -> fusion graph generation
(Sec. 5) -> fusion mapping & routing with inter-layer shuffling (Sec. 6).

The two paper metrics fall out of the mapping:

* **physical depth** — mapped (extended) layers x extension factor, plus
  dynamically allocated shuffle layers;
* **# fusions** — synthesis + edge + routing + shuffling fusions.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.circuit.circuit import Circuit
from repro.core.fusion_graph import FGNode, FusionGraph, build_fusion_graph
from repro.core.mapping import InLayerMapper, LayerLayout, Placement
from repro.core.partition import (
    GraphPartition,
    PartitionConfig,
    partition_pattern,
    required_degrees,
    schedule_layers,
)
from repro.core.shuffling import connect_pairs
from repro.hardware.coupling import HardwareConfig
from repro.hardware.fusion import FusionTally
from repro.mbqc.pattern import MeasurementPattern
from repro.mbqc.translate import circuit_to_pattern


@dataclass(frozen=True)
class OneQConfig:
    """All compiler knobs in one place."""

    hardware: HardwareConfig
    partition: PartitionConfig = PartitionConfig()
    alpha: Optional[float] = None
    use_embedding: bool = True
    route_radius: int = 6
    #: max candidate paths explored per routed placement
    #: (:meth:`InLayerMapper._routed_targets`)
    route_targets_limit: int = 6
    #: bound on placed-to-placed in-layer routing; ``None`` = unbounded
    #: (bounding trades routing fusions for shuffled edges)
    connect_radius: Optional[int] = None
    #: seed cross-partition ports near their earlier-layer counterparts
    #: (shortens shuffle paths; disable for ablation)
    use_placement_hints: bool = True
    #: run the static pattern lint + flow certification as a pipeline
    #: stage before mapping; a lint error aborts the compile
    #: (:class:`repro.core.validate.ValidationError`)
    lint: bool = False
    #: map independent partitions in parallel worker processes
    #: (``None``/``1`` = sequential).  Placements are bit-identical to
    #: the sequential walk; with placement hints on, partitions that
    #: chain through back edges still execute in dependency order, so
    #: the win comes from wide dependency waves (e.g. hints disabled or
    #: weakly coupled circuits)
    map_jobs: Optional[int] = None
    #: dead hardware cells ((row, col) on the extended layer grid):
    #: excluded from mapping and pre-seeded as blockades on every
    #: shuffle layer — the recompile recovery policy compiles around a
    #: degraded device by listing its dead sites here
    blocked_cells: Tuple[Tuple[int, int], ...] = ()


@dataclass
class CompiledProgram:
    """The compiler's output record (metrics + layouts).

    ``physical_depth`` and ``fusions.total`` are the paper's two
    evaluation metrics (Sec. 7.1).
    """

    name: str
    num_qubits: int
    pattern_nodes: int
    pattern_edges: int
    num_partitions: int
    mapping_layers: int
    shuffle_layers: int
    extension: int
    fusions: FusionTally
    layouts: List[LayerLayout] = field(default_factory=list)
    resource_states_used: int = 0
    deferred_pairs: int = 0
    #: photons consumed beyond those supplied by resource states; a
    #: non-zero value flags a bookkeeping bug (see ``z_measurements``)
    photon_deficit: int = 0
    #: wall seconds per pipeline stage (translate / schedule / partition /
    #: map / shuffle), filled by the compiler for ``bench --profile``.
    #: The map stage additionally reports its ``map_score`` /
    #: ``map_route`` / ``map_place`` sub-stages (candidate scoring, path
    #: search, placement bookkeeping); their sum is below ``map``, whose
    #: remainder is fusion-graph synthesis and edge-order bookkeeping.
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def physical_depth(self) -> int:
        return self.mapping_layers * self.extension + self.shuffle_layers

    @property
    def num_fusions(self) -> int:
        return self.fusions.total

    def summary(self) -> str:
        return (
            f"{self.name}: depth={self.physical_depth} "
            f"fusions={self.num_fusions} "
            f"(synthesis={self.fusions.synthesis}, edge={self.fusions.edge}, "
            f"routing={self.fusions.routing}, shuffle={self.fusions.shuffling}) "
            f"layers={self.mapping_layers}+{self.shuffle_layers} "
            f"partitions={self.num_partitions}"
        )


def settle_photon_budget(
    photons: int, consumed: int, name: str = "program"
) -> Tuple[int, int]:
    """Balance the photon budget of a compiled program.

    Returns ``(z_measurements, deficit)``: leftover photons are measured
    in the Z basis to detach them from the cluster; consuming *more*
    photons than the resource states supply is a bookkeeping bug that
    used to be clamped silently — it is now recorded (and warned about)
    so it cannot hide.
    """
    balance = photons - consumed
    if balance >= 0:
        return balance, 0
    deficit = -balance
    warnings.warn(
        f"{name}: photon bookkeeping deficit of {deficit} "
        f"(consumed {consumed} > supplied {photons}); "
        "fusion or resource-state accounting is inconsistent",
        RuntimeWarning,
        stacklevel=2,
    )
    return 0, deficit


class OneQCompiler:
    """Compile circuits (or patterns) to photonic one-way programs."""

    def __init__(self, config: OneQConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def compile(self, circuit: Circuit, name: str = "circuit") -> CompiledProgram:
        """Full flow from a gate circuit."""
        t0 = time.perf_counter()
        pattern = circuit_to_pattern(circuit)
        translate_seconds = time.perf_counter() - t0
        program = self.compile_pattern(
            pattern, name=name, num_qubits=circuit.num_qubits
        )
        program.stage_seconds["translate"] = translate_seconds
        return program

    def compile_pattern(
        self,
        pattern: MeasurementPattern,
        name: str = "pattern",
        num_qubits: Optional[int] = None,
    ) -> CompiledProgram:
        """Compile an arbitrary measurement pattern (graph state program)."""
        cfg = self.config
        hardware = cfg.hardware
        rst = hardware.resource_state

        # Partition capacity defaults to one extended layer's area so each
        # partition maps onto roughly one layer (dynamic scheduling).
        part_cfg = cfg.partition
        if part_cfg.target_states is None:
            rows, cols = hardware.extended_shape
            part_cfg = replace(
                part_cfg, target_states=max(4, int(0.7 * rows * cols))
            )
        estimator = lambda node: rst.states_for_degree(  # noqa: E731
            pattern.graph.degree(node)
        )
        stage_seconds: Dict[str, float] = {}
        if cfg.lint:
            from repro.analysis.lint import lint_pattern
            from repro.core.validate import ValidationError

            t0 = time.perf_counter()
            report = lint_pattern(pattern, name=name)
            stage_seconds["lint"] = time.perf_counter() - t0
            if not report.ok:
                raise ValidationError(
                    f"{name}: pattern fails static lint before mapping:\n"
                    + report.render()
                )
        t0 = time.perf_counter()
        layers = schedule_layers(pattern, part_cfg)
        stage_seconds["schedule"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        partitions = partition_pattern(
            pattern, part_cfg, size_estimator=estimator, layers=layers
        )
        stage_seconds["partition"] = time.perf_counter() - t0
        home: Dict[int, int] = {}
        for part in partitions:
            for node in part.nodes:
                home[node] = part.index

        mapper = InLayerMapper(
            shape=hardware.extended_shape,
            resource_state=rst,
            alpha=cfg.alpha,
            route_radius=cfg.route_radius,
            route_targets_limit=cfg.route_targets_limit,
            connect_radius=cfg.connect_radius,
            blocked=set(cfg.blocked_cells),
        )
        tally = FusionTally()
        port_of: Dict[Tuple[int, int], FGNode] = {}
        fusion_graphs: List[FusionGraph] = []
        deferred: List[Tuple[FGNode, FGNode]] = []
        resource_states = 0

        t0 = time.perf_counter()
        for part in partitions:
            cross_nbrs = {
                node: [
                    nbr
                    for nbr in pattern.graph.neighbors(node)
                    if home[nbr] != part.index
                ]
                for node in part.nodes
            }
            degrees = required_degrees(part, pattern.graph)
            fusion = build_fusion_graph(
                part.subgraph,
                degrees,
                rst,
                cross_neighbors=cross_nbrs,
                use_embedding=cfg.use_embedding,
            )
            fusion_graphs.append(fusion)
            port_of.update(fusion.port_of)
            resource_states += fusion.num_resource_states

        if cfg.map_jobs and cfg.map_jobs > 1 and len(partitions) > 1:
            (
                all_layers,
                all_placements,
                tally_inc,
                deferred,
                map_sub_seconds,
            ) = _map_partitions_parallel(
                cfg, partitions, fusion_graphs, port_of, home, cfg.map_jobs
            )
            tally.add("synthesis", tally_inc["synthesis"])
            tally.add("edge", tally_inc["edge"])
            tally.add("routing", tally_inc["routing"])
        else:
            for part, fusion in zip(partitions, fusion_graphs):
                hints: Dict[FGNode, Tuple[int, int]] = {}
                if cfg.use_placement_hints:
                    for u, v in part.back_edges:
                        src_port = port_of.get((u, v))
                        dst_port = fusion.port_of.get((v, u))
                        if src_port is None or dst_port is None:
                            continue
                        placed = mapper.placements.get(src_port)
                        if placed is not None:
                            hints[dst_port] = placed.coord
                result = mapper.map_fusion_graph(fusion, hints=hints)
                tally.add("synthesis", result.synthesis_fusions)
                tally.add("edge", result.edge_fusions)
                tally.add("routing", result.routing_fusions)
                deferred.extend(result.deferred_edges)
            all_layers = mapper.layers
            all_placements = mapper.placements
            map_sub_seconds = dict(mapper.stage_seconds)
        stage_seconds["map"] = time.perf_counter() - t0
        stage_seconds["map_score"] = map_sub_seconds.get("score", 0.0)
        stage_seconds["map_route"] = map_sub_seconds.get("route", 0.0)
        stage_seconds["map_place"] = map_sub_seconds.get("place", 0.0)

        # ---- inter-layer shuffling -----------------------------------
        t0 = time.perf_counter()
        pairs_by_boundary: Dict[int, List[Tuple[Tuple[int, int], Tuple[int, int]]]] = {}

        def add_pair(pa: Placement, pb: Placement) -> None:
            boundary = max(pa.layer, pb.layer)
            pairs_by_boundary.setdefault(boundary, []).append((pa.coord, pb.coord))

        for a, b in deferred:
            add_pair(all_placements[a], all_placements[b])
        for part in partitions:
            for u, v in part.back_edges:
                pu = port_of.get((u, v))
                pv = port_of.get((v, u))
                if pu is None or pv is None:  # pragma: no cover - invariant
                    raise RuntimeError(f"missing port for cross edge {(u, v)}")
                add_pair(all_placements[pu], all_placements[pv])

        shuffle_layers = 0
        for boundary in sorted(pairs_by_boundary):
            result = connect_pairs(
                pairs_by_boundary[boundary],
                hardware.extended_shape,
                blocked=set(cfg.blocked_cells),
            )
            tally.add("shuffling", result.fusions)
            shuffle_layers += result.num_layers
            # reserved cells are dead-site blockades, not consumed states
            resource_states += sum(
                len(l.used) - l.reserved for l in result.layers
            )
        stage_seconds["shuffle"] = time.perf_counter() - t0

        # ---- photon bookkeeping --------------------------------------
        aux_cells = sum(len(l.aux_cells) for l in all_layers)
        resource_states += aux_cells
        photons = resource_states * rst.size
        consumed = 2 * tally.total + pattern.graph.number_of_nodes()
        tally.z_measurements, photon_deficit = settle_photon_budget(
            photons, consumed, name=name
        )

        return CompiledProgram(
            name=name,
            num_qubits=num_qubits or len(pattern.inputs),
            pattern_nodes=pattern.graph.number_of_nodes(),
            pattern_edges=pattern.graph.number_of_edges(),
            num_partitions=len(partitions),
            mapping_layers=len(all_layers),
            shuffle_layers=shuffle_layers,
            extension=hardware.extension,
            fusions=tally,
            layouts=all_layers,
            resource_states_used=resource_states,
            deferred_pairs=sum(len(v) for v in pairs_by_boundary.values()),
            photon_deficit=photon_deficit,
            stage_seconds=stage_seconds,
        )


#: worker payload: mapper knobs + one partition's fusion graph and hints
_MapPayload = Tuple[
    Tuple[int, int], object, Optional[float], int, int, Optional[int],
    Tuple[Tuple[int, int], ...], FusionGraph, Dict[FGNode, Tuple[int, int]],
]


def _map_one_partition(payload: _MapPayload):
    """Worker: map one partition's fusion graph on a fresh mapper."""
    (
        shape, rst, alpha, route_radius, route_targets_limit,
        connect_radius, blocked_cells, fusion, hints,
    ) = payload
    mapper = InLayerMapper(
        shape=shape,
        resource_state=rst,
        alpha=alpha,
        route_radius=route_radius,
        route_targets_limit=route_targets_limit,
        connect_radius=connect_radius,
        blocked=set(blocked_cells),
    )
    result = mapper.map_fusion_graph(fusion, hints=hints)
    return (
        mapper.layers,
        mapper.placements,
        result.edge_fusions,
        result.synthesis_fusions,
        result.routing_fusions,
        result.deferred_edges,
        mapper.stage_seconds,
    )


def _map_partitions_parallel(
    cfg: OneQConfig,
    partitions: List[GraphPartition],
    fusion_graphs: List[FusionGraph],
    port_of: Dict[Tuple[int, int], FGNode],
    home: Dict[int, int],
    jobs: int,
):
    """Map independent partitions in parallel worker processes.

    In-layer mapping is a pure function of one partition's fusion graph
    and its placement hints, and placements are translation-invariant in
    the layer index, so each partition can run on a fresh mapper and be
    merged with a layer offset in partition-index order — bit-identical
    to the sequential mapper walk (the equivalence suite pins this).

    With placement hints on, a partition depends on every earlier
    partition its back edges point into (hint coordinates come from
    those placements), so execution proceeds in dependency waves;
    circuits whose partitions chain linearly degrade gracefully to
    sequential execution, and ``use_placement_hints=False`` makes every
    partition independent.
    """
    shape = cfg.hardware.extended_shape
    rst = cfg.hardware.resource_state
    n = len(partitions)
    deps: List[Set[int]] = []
    for part in partitions:
        if cfg.use_placement_hints:
            deps.append({home[u] for u, _ in part.back_edges})
        else:
            deps.append(set())
    wave_of = [0] * n
    for i, dd in enumerate(deps):
        wave_of[i] = 1 + max((wave_of[j] for j in dd), default=-1)

    placed_coords: Dict[FGNode, Tuple[int, int]] = {}

    def payload_for(i: int) -> _MapPayload:
        part = partitions[i]
        fusion = fusion_graphs[i]
        hints: Dict[FGNode, Tuple[int, int]] = {}
        if cfg.use_placement_hints:
            for u, v in part.back_edges:
                src_port = port_of.get((u, v))
                dst_port = fusion.port_of.get((v, u))
                if src_port is None or dst_port is None:
                    continue
                coord = placed_coords.get(src_port)
                if coord is not None:
                    hints[dst_port] = coord
        return (
            shape, rst, cfg.alpha, cfg.route_radius,
            cfg.route_targets_limit, cfg.connect_radius,
            cfg.blocked_cells, fusion, hints,
        )

    results: List[Optional[tuple]] = [None] * n
    pool = None
    try:
        for wave in range(max(wave_of) + 1):
            idxs = [i for i in range(n) if wave_of[i] == wave]
            payloads = [payload_for(i) for i in idxs]
            if len(idxs) == 1:
                outs = [_map_one_partition(payloads[0])]
            else:
                if pool is None:
                    pool = multiprocessing.Pool(processes=jobs)
                outs = pool.map(_map_one_partition, payloads)
            for i, out in zip(idxs, outs):
                results[i] = out
                for node, place in out[1].items():
                    placed_coords[node] = place.coord
    finally:
        if pool is not None:
            pool.close()
            pool.join()

    # merge in partition-index order so layer offsets match the
    # sequential walk (shuffle boundaries key off placement layers)
    all_layers: List[LayerLayout] = []
    all_placements: Dict[FGNode, Placement] = {}
    tally_inc = {"edge": 0, "synthesis": 0, "routing": 0}
    deferred: List[Tuple[FGNode, FGNode]] = []
    sub_seconds = {"score": 0.0, "route": 0.0, "place": 0.0}
    for out in results:
        assert out is not None
        layers_i, placements_i, ef, sf, rf, deferred_i, ss = out
        offset = len(all_layers)
        for layout in layers_i:
            layout.index += offset
            all_layers.append(layout)
        for node, place in placements_i.items():
            all_placements[node] = Placement(place.layer + offset, place.coord)
        tally_inc["edge"] += ef
        tally_inc["synthesis"] += sf
        tally_inc["routing"] += rf
        deferred.extend(deferred_i)
        for key in sub_seconds:
            sub_seconds[key] += ss.get(key, 0.0)
    return all_layers, all_placements, tally_inc, deferred, sub_seconds


def compile_circuit(
    circuit: Circuit,
    hardware: HardwareConfig,
    name: str = "circuit",
    **kwargs,
) -> CompiledProgram:
    """Convenience one-call compile with default configuration."""
    config = OneQConfig(hardware=hardware, **kwargs)
    return OneQCompiler(config).compile(circuit, name=name)
