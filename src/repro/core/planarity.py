"""Planarity utilities (paper Sec. 4 'Graph Planarization', Sec. 5).

Small resource states admit at most one routing path per coupling-graph
location, so only planar graphs can be laid out on a single physical
layer.  The compiler therefore (a) checks planarity when accumulating
dependency layers into partitions, (b) decomposes non-planar layers into
maximal planar edge-subgraphs, and (c) threads the planar embedding's
rotational edge order through fusion-graph generation.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import networkx as nx


def is_planar(graph: nx.Graph) -> bool:
    """True when *graph* admits a planar embedding."""
    ok, _ = nx.check_planarity(graph, counterexample=False)
    return bool(ok)


class IncrementalPlanarityProber:
    """Windowed planarity probes over a growing induced subgraph.

    :func:`repro.core.partition.partition_pattern` repeatedly tests
    whether the induced subgraph on ``accepted nodes + a window of
    candidate layers`` is planar.  Rebuilding that subgraph from scratch
    costs O(partition + window) per probe; this prober keeps a
    persistent concrete graph of the accepted nodes and only pushes and
    pops the window, making each probe O(window + check).

    Only the planarity *verdict* is reused — embeddings are
    insertion-order-sensitive, so callers that need the rotational edge
    order still call :func:`planar_embedding_order` on a freshly built
    subgraph.
    """

    def __init__(self, source: nx.Graph) -> None:
        self._source = source
        self._graph: nx.Graph = nx.Graph()

    def reset(self) -> None:
        """Forget all accepted nodes (a partition closed)."""
        self._graph = nx.Graph()

    def _push(self, nodes: List[Hashable]) -> List[Hashable]:
        graph = self._graph
        source = self._source
        added: List[Hashable] = []
        for node in nodes:
            if graph.has_node(node):
                continue
            graph.add_node(node)
            added.append(node)
            for nbr in source.neighbors(node):
                if graph.has_node(nbr):
                    graph.add_edge(node, nbr)
        return added

    def extend(self, nodes: List[Hashable]) -> None:
        """Permanently accept *nodes* (a layer joined the partition)."""
        self._push(nodes)

    def probe(self, window_layers: List[List[Hashable]]) -> bool:
        """Is ``accepted + window`` planar as an induced subgraph?"""
        added: List[Hashable] = []
        for layer in window_layers:
            added.extend(self._push(layer))
        try:
            graph = self._graph
            v = graph.number_of_nodes()
            # Euler bound: a planar simple graph has at most 3V - 6 edges
            if v >= 3 and graph.number_of_edges() > 3 * v - 6:
                return False
            ok, _ = nx.check_planarity(graph, counterexample=False)
            return bool(ok)
        finally:
            self._graph.remove_nodes_from(added)


def planar_embedding_order(
    graph: nx.Graph,
) -> Optional[Dict[Hashable, List[Hashable]]]:
    """Clockwise neighbour order per node from a planar embedding.

    Returns ``None`` when the graph is non-planar.  The rotational order
    is what fusion-graph generation must preserve to keep the synthesized
    graph planar (Fig. 9d vs 9e).
    """
    ok, embedding = nx.check_planarity(graph, counterexample=False)
    if not ok:
        return None
    order: Dict[Hashable, List[Hashable]] = {}
    for node in graph.nodes():
        neighbors = list(graph.neighbors(node))
        if not neighbors:
            order[node] = []
            continue
        order[node] = list(embedding.neighbors_cw_order(node))
    return order


def maximal_planar_subgraph(
    graph: nx.Graph,
) -> Tuple[nx.Graph, List[Tuple[Hashable, Hashable]]]:
    """Greedy maximal planar edge-subgraph of *graph*.

    Returns ``(planar_subgraph, leftover_edges)`` where adding any
    leftover edge to the subgraph would break planarity (the paper's
    repeated decomposition for non-planar dependency layers).  Greedy
    insertion is the standard polynomial heuristic; exact maximum planar
    subgraph is NP-hard.
    """
    sub = nx.Graph()
    sub.add_nodes_from(graph.nodes())
    leftover: List[Tuple[Hashable, Hashable]] = []
    # a spanning forest is always planar: seed with it for a good start
    forest_edges = set()
    for tree in nx.minimum_spanning_edges(graph, data=False):
        forest_edges.add(frozenset(tree))
        sub.add_edge(*tree)
    for u, v in graph.edges():
        if frozenset((u, v)) in forest_edges:
            continue
        sub.add_edge(u, v)
        if not is_planar(sub):
            sub.remove_edge(u, v)
            leftover.append((u, v))
    return sub, leftover


def planar_edge_decomposition(
    graph: nx.Graph,
) -> List[nx.Graph]:
    """Decompose *graph* into planar edge-subgraphs on the same nodes.

    Repeatedly strips a maximal planar subgraph until no edges remain
    (terminates because each round removes at least a spanning forest of
    the leftovers).
    """
    pieces: List[nx.Graph] = []
    remaining = graph.copy()
    while remaining.number_of_edges() > 0:
        planar, leftover = maximal_planar_subgraph(remaining)
        pieces.append(planar)
        remaining = nx.Graph()
        remaining.add_nodes_from(graph.nodes())
        remaining.add_edges_from(leftover)
    if not pieces:  # edgeless input
        pieces.append(graph.copy())
    return pieces
