"""Inter-layer shuffling (paper Sec. 6, Fig. 10).

Incomplete nodes — nodes whose edges could not all be realized within
their layer — are reconnected on dedicated shuffle layers inserted
between mapped layers.  Pairs are sorted by distance and routed greedily
with shortest paths; when a shuffle layer fills up, another is allocated
(the paper's dynamic layer allocation).

Cost model per connected pair:

* endpoints at the same grid location: one temporal fusion through the
  delay line (no shuffle cells consumed);
* otherwise: two temporal fusions into/out of the shuffle layer plus one
  spatial fusion per path segment; every traversed cell is an auxiliary
  resource state usable by only one path.

Routing runs on bit-packed occupancy planes (:mod:`repro.utils.bitgrid`)
and is pinned bit-identical to the frozen scalar reference
(``tests/core/reference_shuffling.py``) by the v2 equivalence suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.utils.bitgrid import lexmin_path, spec_for
from repro.utils.geometry import grid_neighbor_table, manhattan

Coord = Tuple[int, int]


@dataclass
class ShuffleLayer:
    """Occupancy of one shuffle layer.

    ``used`` is the public source of truth and may be seeded externally
    (tests do); the packed occupancy mirror resyncs whenever its size
    disagrees, so cells must be added to ``used``, never swapped in
    place between ``try_route`` calls.
    """

    shape: Tuple[int, int]
    used: Set[Coord] = field(default_factory=set)
    paths: List[List[Coord]] = field(default_factory=list)
    #: cells of ``used`` that are pre-seeded blockades (dead hardware
    #: sites), not consumed resource states — accounting subtracts them
    reserved: int = 0

    def __post_init__(self) -> None:
        self._spec = spec_for(self.shape)
        self._used_bits = 0
        self._synced = 0
        self._resync()

    def _resync(self) -> None:
        spec = self._spec
        bits = 0
        for (r, c) in self.used:
            bits |= spec.bit[r * spec.stride + c]
        self._used_bits = bits
        self._synced = len(self.used)

    def _neighbors(self, coord: Coord) -> List[Coord]:
        return grid_neighbor_table(self.shape)[coord]

    def try_route(self, a: Coord, b: Coord) -> Optional[List[Coord]]:
        """Shortest free path from *a* to *b* (inclusive), or None.

        The search runs on the packed frontier kernel and returns the
        same lexicographically minimal shortest path as the scalar FIFO
        BFS it replaced.  ``a == b`` never reaches here:
        :func:`connect_pairs` realizes same-cell pairs as pure temporal
        fusions without a shuffle layer.
        """
        if a in self.used or b in self.used:
            return None
        nbr_table = grid_neighbor_table(self.shape)
        used = self.used
        # exact impossibility guards: skip the BFS flood on layers that
        # cannot host the path (a path needs manhattan+1 free cells, a
        # free cell after *a* and one before *b* unless they are adjacent)
        if b not in nbr_table[a]:
            rows, cols = self.shape
            dist = abs(a[0] - b[0]) + abs(a[1] - b[1])
            if rows * cols - len(used) < dist + 1:
                return None
            if all(p in used for p in nbr_table[a]):
                return None
            if all(p in used for p in nbr_table[b]):
                return None
        if len(used) != self._synced:
            self._resync()
        spec = self._spec
        stride = spec.stride
        idx_path = lexmin_path(
            spec,
            spec.full & ~self._used_bits,
            a[0] * stride + a[1],
            b[0] * stride + b[1],
        )
        if idx_path is None:
            return None
        path = [spec.coord[i] for i in idx_path]
        bits = self._used_bits
        for i in idx_path:
            bits |= spec.bit[i]
        self._used_bits = bits
        self.used.update(path)
        self._synced = len(self.used)
        self.paths.append(path)
        return path


@dataclass
class ShuffleResult:
    """Outcome of connecting one group of node pairs."""

    layers: List[ShuffleLayer]
    fusions: int = 0
    connected: int = 0

    @property
    def num_layers(self) -> int:
        return len(self.layers)


def connect_pairs(
    pairs: List[Tuple[Coord, Coord]],
    shape: Tuple[int, int],
    blocked: Optional[Set[Coord]] = None,
) -> ShuffleResult:
    """Connect coordinate pairs on dynamically allocated shuffle layers.

    Pairs are processed in ascending distance order (short paths first
    leave the most room), each on the first layer with a free path.
    ``blocked`` cells (dead hardware sites) pre-seed every allocated
    layer's ``used`` set — paths flow around them and the accounting
    does not bill them as consumed resource states (``reserved``).
    """
    blocked = blocked or set()
    result = ShuffleResult(layers=[])
    for a, b in sorted(pairs, key=lambda p: manhattan(p[0], p[1])):
        if a == b:
            if a in blocked:
                raise RuntimeError(
                    f"pair {a}-{a} needs a temporal fusion on a "
                    "blocked/dead cell"
                )
            # pure temporal connection through a delay line
            result.fusions += 1
            result.connected += 1
            continue
        path = None
        for layer in result.layers:
            path = layer.try_route(a, b)
            if path is not None:
                break
        if path is None:
            layer = ShuffleLayer(
                shape=shape, used=set(blocked), reserved=len(blocked)
            )
            result.layers.append(layer)
            path = layer.try_route(a, b)
            if path is None:
                raise RuntimeError(
                    f"pair {a}-{b} cannot be routed even on an empty "
                    f"{shape} layer"
                )
        # two temporal hops + one fusion per spatial segment
        result.fusions += 2 + (len(path) - 1)
        result.connected += 1
    return result
