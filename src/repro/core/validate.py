"""Post-compilation validation against the hardware model.

The mapper tracks its own occupancy while placing; this module re-checks
the finished layouts against first principles — the formal coupling
graph of Sec. 3.1 and the photon budget of the resource states — so a
mapper bug cannot silently emit an unimplementable program.

Checks:

* every cell hosts at most one resource state (node or auxiliary);
* every recorded fusion path steps along lattice-adjacent cells;
* no resource state participates in more fusions than it has photons;
* auxiliary cells carry exactly one path (small-resource-state planarity
  constraint, Sec. 3.2 'Additional Challenge').
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.compiler import CompiledProgram
from repro.core.mapping import LayerLayout
from repro.hardware.coupling import HardwareConfig

Coord = Tuple[int, int]


class ValidationError(AssertionError):
    """A compiled program violates a hardware constraint."""


def _check_layer(
    layout: LayerLayout, hardware: HardwareConfig, errors: List[str]
) -> None:
    rows, cols = layout.shape
    size = hardware.resource_state.size

    overlap = set(layout.node_at) & layout.aux_cells
    if overlap:
        errors.append(
            f"layer {layout.index}: cells host both node and aux: "
            f"{sorted(overlap)[:3]}"
        )

    for coord in list(layout.node_at) + list(layout.aux_cells):
        r, c = coord
        if not (0 <= r < rows and 0 <= c < cols):
            errors.append(f"layer {layout.index}: {coord} outside {layout.shape}")

    fusion_load: Dict[Coord, int] = {}
    path_load: Dict[Coord, int] = {}
    for path in layout.paths:
        if len(path) < 2:
            errors.append(f"layer {layout.index}: degenerate path {path}")
            continue
        for a, b in zip(path, path[1:]):
            if abs(a[0] - b[0]) + abs(a[1] - b[1]) != 1:
                errors.append(
                    f"layer {layout.index}: non-adjacent step {a}->{b}"
                )
        for end in (path[0], path[-1]):
            fusion_load[end] = fusion_load.get(end, 0) + 1
        for cell in path[1:-1]:
            fusion_load[cell] = fusion_load.get(cell, 0) + 2
            path_load[cell] = path_load.get(cell, 0) + 1
            if cell not in layout.aux_cells:
                errors.append(
                    f"layer {layout.index}: path interior {cell} is not aux"
                )

    for coord, load in fusion_load.items():
        if load > size:
            errors.append(
                f"layer {layout.index}: cell {coord} burns {load} photons "
                f"but the resource state has {size}"
            )
    for coord, paths in path_load.items():
        if paths > 1:
            errors.append(
                f"layer {layout.index}: aux cell {coord} carries {paths} "
                "routing paths (max 1 for small resource states)"
            )


def validate_program(
    program: CompiledProgram, hardware: HardwareConfig
) -> Tuple[bool, List[str]]:
    """Check *program*'s layouts; returns ``(ok, error_list)``."""
    errors: List[str] = []
    expected_shape = hardware.extended_shape
    for layout in program.layouts:
        if layout.shape != expected_shape:
            errors.append(
                f"layer {layout.index}: shape {layout.shape} != hardware "
                f"{expected_shape}"
            )
        _check_layer(layout, hardware, errors)
    return (not errors), errors


def assert_valid(program: CompiledProgram, hardware: HardwareConfig) -> None:
    """Raise :class:`ValidationError` when the program is invalid."""
    ok, errors = validate_program(program, hardware)
    if not ok:
        raise ValidationError(
            f"{len(errors)} hardware violations; first: {errors[0]}"
        )
