"""Post-compilation validation against the hardware and circuit model.

The mapper tracks its own occupancy while placing; this module re-checks
the finished layouts against first principles — the formal coupling
graph of Sec. 3.1 and the photon budget of the resource states — so a
mapper bug cannot silently emit an unimplementable program.

Hardware checks:

* every cell hosts at most one resource state (node or auxiliary);
* every recorded fusion path steps along lattice-adjacent cells;
* no resource state participates in more fusions than it has photons;
* auxiliary cells carry exactly one path (small-resource-state planarity
  constraint, Sec. 3.2 'Additional Challenge').

Semantic checks (:func:`verify_pattern`): the translated measurement
pattern must implement the source circuit.  The engine is picked
automatically — Clifford-dominated patterns (every measurement at a
Pauli angle) run on the bit-packed stabilizer engine, which scales to
hundreds of qubits; everything else falls back to the dense pattern
simulator when the output register is small enough.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.circuit.circuit import Circuit
from repro.core.compiler import CompiledProgram
from repro.core.mapping import LayerLayout
from repro.hardware.coupling import HardwareConfig
from repro.mbqc.pattern import MeasurementPattern

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.degradation import SiteNoiseMap, SiteProfile
    from repro.hardware.noise import NoiseModel
    from repro.sim.noisy import FaultCounts

Coord = Tuple[int, int]


class ValidationError(AssertionError):
    """A compiled program violates a hardware constraint."""


def _check_layer(
    layout: LayerLayout, hardware: HardwareConfig, errors: List[str]
) -> None:
    rows, cols = layout.shape
    size = hardware.resource_state.size

    overlap = set(layout.node_at) & layout.aux_cells
    if overlap:
        errors.append(
            f"layer {layout.index}: cells host both node and aux: "
            f"{sorted(overlap)[:3]}"
        )

    for coord in list(layout.node_at) + list(layout.aux_cells):
        r, c = coord
        if not (0 <= r < rows and 0 <= c < cols):
            errors.append(f"layer {layout.index}: {coord} outside {layout.shape}")

    fusion_load: Dict[Coord, int] = {}
    path_load: Dict[Coord, int] = {}
    for path in layout.paths:
        if len(path) < 2:
            errors.append(f"layer {layout.index}: degenerate path {path}")
            continue
        for a, b in zip(path, path[1:]):
            if abs(a[0] - b[0]) + abs(a[1] - b[1]) != 1:
                errors.append(
                    f"layer {layout.index}: non-adjacent step {a}->{b}"
                )
        for end in (path[0], path[-1]):
            fusion_load[end] = fusion_load.get(end, 0) + 1
        for cell in path[1:-1]:
            fusion_load[cell] = fusion_load.get(cell, 0) + 2
            path_load[cell] = path_load.get(cell, 0) + 1
            if cell not in layout.aux_cells:
                errors.append(
                    f"layer {layout.index}: path interior {cell} is not aux"
                )

    for coord, load in fusion_load.items():
        if load > size:
            errors.append(
                f"layer {layout.index}: cell {coord} burns {load} photons "
                f"but the resource state has {size}"
            )
    for coord, paths in path_load.items():
        if paths > 1:
            errors.append(
                f"layer {layout.index}: aux cell {coord} carries {paths} "
                "routing paths (max 1 for small resource states)"
            )


def validate_program(
    program: CompiledProgram, hardware: HardwareConfig
) -> Tuple[bool, List[str]]:
    """Check *program*'s layouts; returns ``(ok, error_list)``."""
    errors: List[str] = []
    expected_shape = hardware.extended_shape
    for layout in program.layouts:
        if layout.shape != expected_shape:
            errors.append(
                f"layer {layout.index}: shape {layout.shape} != hardware "
                f"{expected_shape}"
            )
        _check_layer(layout, hardware, errors)
    return (not errors), errors


def assert_valid(program: CompiledProgram, hardware: HardwareConfig) -> None:
    """Raise :class:`ValidationError` when the program is invalid."""
    ok, errors = validate_program(program, hardware)
    if not ok:
        raise ValidationError(
            f"{len(errors)} hardware violations; first: {errors[0]}"
        )


# ----------------------------------------------------------------------
# semantic verification: pattern implements circuit
# ----------------------------------------------------------------------
@dataclass
class PatternVerification:
    """Result of one :func:`verify_pattern` call.

    ``ok`` is ``None`` when no engine could handle the instance
    (``method == "skipped"``) — a skip must never read as a pass.

    The ``static`` method certifies *determinism and feed-forward
    consistency* (flow certificate + lint), not full circuit
    equivalence; ``detail`` says so explicitly.
    """

    ok: Optional[bool]
    method: str  # "stabilizer" | "statevector" | "static" | "skipped"
    seconds: float = 0.0
    detail: str = ""


def _verify_stabilizer(
    circuit: Circuit, pattern: MeasurementPattern, seed: Optional[int]
) -> Tuple[bool, str]:
    """Check the pattern's output state against the circuit's on the CHP
    engine.

    The pattern runs on the full tableau (one random outcome branch); a
    measured node ends disentangled, so the reduced output state is pure
    and fully determined by its stabilizer group.  It equals the circuit
    state iff every generator of the circuit's output stabilizer group,
    lifted onto the output qubits of the big tableau, is a deterministic
    ``+1``-with-recorded-sign measurement there — ``n`` independent
    generators on ``n`` output qubits pin the reduced state exactly.
    """
    from repro.sim.pattern_sim import StabilizerPatternSimulator
    from repro.sim.stabilizer import StabilizerState

    if len(pattern.outputs) != circuit.num_qubits:
        return False, (
            f"pattern has {len(pattern.outputs)} outputs for a "
            f"{circuit.num_qubits}-qubit circuit"
        )
    circuit_state = StabilizerState(circuit.num_qubits)
    circuit_state.apply_circuit(circuit)
    result = StabilizerPatternSimulator(pattern, seed=seed).run()
    for wire, (gx, gz, gr) in enumerate(circuit_state.stabilizer_rows()):
        pauli = result.output_pauli(pattern.outputs, gx, gz)
        expected = result.state.expectation(pauli)
        if expected != gr:
            got = "random" if expected is None else f"sign {expected}"
            return False, (
                f"circuit stabilizer generator {wire} does not hold on the "
                f"pattern output state (expected sign {gr}, got {got})"
            )
    return True, (
        f"{circuit.num_qubits} circuit stabilizers hold on the "
        f"{result.state.n}-node tableau"
    )


def _verify_statevector(
    circuit: Circuit, pattern: MeasurementPattern, seed: Optional[int]
) -> Tuple[bool, str]:
    from repro.sim.pattern_sim import simulate_pattern
    from repro.sim.statevector import fidelity, simulate, states_equal_up_to_phase

    reference = simulate(circuit)
    result = simulate_pattern(pattern, seed=seed)
    ok = states_equal_up_to_phase(reference, result.state)
    return ok, f"fidelity={fidelity(reference, result.state):.6f}"


def _verify_static(pattern: MeasurementPattern) -> Tuple[bool, str]:
    """Certify *pattern* statically: lint + flow determinism certificate.

    A pass means the pattern is structurally sound, carries a causal
    flow / gflow determinism certificate, and (under causal flow) its
    recorded feed-forward sets equal the flow-induced ones.  It does
    **not** check the measurement *angles* against the circuit — that
    needs an executing engine — so the detail string states the weaker
    claim explicitly.
    """
    from repro.analysis.lint import lint_pattern

    report = lint_pattern(pattern)
    if not report.ok:
        first = report.errors()[0]
        return False, (
            f"{len(report.errors())} lint error(s); first: {first.render()}"
        )
    assert report.certificate is not None
    return True, (
        f"determinism certified ({report.certificate.summary()}); "
        "angles not checked against the circuit (static method)"
    )


def verify_pattern(
    circuit: Circuit,
    pattern: Optional[MeasurementPattern] = None,
    seed: Optional[int] = 7,
    max_dense_outputs: int = 12,
    method: str = "auto",
) -> PatternVerification:
    """Check that *pattern* (default: the translation of *circuit*)
    implements *circuit*.

    ``method="auto"`` picks the strongest applicable engine: Clifford
    patterns go to the stabilizer engine regardless of size;
    non-Clifford patterns use the dense pattern simulator when the
    output register has at most ``max_dense_outputs`` qubits; everything
    else falls back to the ``static`` method — flow-based determinism
    certification plus the pattern lint — instead of a bare skip.
    ``method`` can also force one engine: ``"stabilizer"``,
    ``"statevector"`` or ``"static"``.
    """
    from repro.mbqc.translate import circuit_to_pattern
    from repro.sim.pattern_sim import pattern_is_clifford
    from repro.sim.stabilizer import circuit_is_clifford

    if method not in ("auto", "stabilizer", "statevector", "static"):
        raise ValueError(f"unknown verification method {method!r}")
    t0 = time.perf_counter()
    if pattern is None:
        pattern = circuit_to_pattern(circuit)
    if method == "static":
        ok, detail = _verify_static(pattern)
        return PatternVerification(
            ok, "static", time.perf_counter() - t0, detail
        )
    clifford = pattern_is_clifford(pattern) and circuit_is_clifford(circuit)
    if method == "stabilizer" and not clifford:
        raise ValueError(
            "stabilizer verification needs a Clifford circuit and pattern"
        )
    if clifford and method in ("auto", "stabilizer"):
        ok, detail = _verify_stabilizer(circuit, pattern, seed)
        return PatternVerification(
            ok, "stabilizer", time.perf_counter() - t0, detail
        )
    if method == "statevector" or len(pattern.outputs) <= max_dense_outputs:
        try:
            ok, detail = _verify_statevector(circuit, pattern, seed)
        except RuntimeError as exc:  # active-window blowup and kin
            return PatternVerification(
                None, "skipped", time.perf_counter() - t0, str(exc)
            )
        return PatternVerification(
            ok, "statevector", time.perf_counter() - t0, detail
        )
    ok, detail = _verify_static(pattern)
    return PatternVerification(
        ok,
        "static",
        time.perf_counter() - t0,
        f"{len(pattern.outputs)} outputs exceed the dense limit "
        f"({max_dense_outputs}); fell back to static certification: "
        f"{detail}",
    )


# ----------------------------------------------------------------------
# Monte-Carlo yield estimation (noisy verification mode)
# ----------------------------------------------------------------------
@dataclass
class YieldEstimate:
    """Result of one :func:`estimate_yield` call.

    ``yield_analytic`` (the closed-form probability of a zero-fault
    execution) is always filled in; the Monte-Carlo fields are ``None``
    when no sampling engine applies (``method == "analytic-only"``, i.e.
    a non-Clifford program).

    Attributes:
        shots: sampled shots (0 when analytic-only).
        yield_mc: fraction of shots whose executed output state passed
            the circuit-stabilizer check.
        fault_free_yield: fraction of shots with zero fault events — the
            MC estimator of ``yield_analytic``.
        yield_analytic: closed-form zero-fault probability.
        sigma: binomial standard error of ``fault_free_yield``.
        attempts_per_fusion: mean sampled fusion attempts per required
            fusion under repeat-until-success (expected
            ``1 / fusion_success``), over the shots that completed their
            fusion sequence; the observable the ``fusion_success`` axis
            of a noise sweep moves.
        method: ``"mc-stabilizer"`` or ``"analytic-only"``.
        mc_engine: sampler execution path (``"frame"`` bit-packed Pauli
            frames, ``"batched"`` chunked tableau, or the ``"per-shot"``
            reference); ``None`` when no sampling ran.
        shots_per_second: sampling throughput; ``None`` when no sampling
            ran.
        seconds: wall time spent sampling.
    """

    shots: int
    yield_mc: Optional[float]
    fault_free_yield: Optional[float]
    yield_analytic: float
    sigma: float
    method: str
    attempts_per_fusion: Optional[float] = None
    mc_engine: Optional[str] = None
    shots_per_second: Optional[float] = None
    seconds: float = 0.0
    detail: str = ""


def estimate_yield(
    circuit: Circuit,
    pattern: Optional[MeasurementPattern] = None,
    model: Optional["NoiseModel"] = None,
    shots: int = 2000,
    seed: Optional[int] = 7,
    counts: Optional["FaultCounts"] = None,
    engine: str = "frame",
    site_map: Optional["SiteNoiseMap"] = None,
    site_profile: Optional["SiteProfile"] = None,
) -> YieldEstimate:
    """Estimate the end-to-end success probability of a compiled program.

    Clifford programs run *shots* Monte-Carlo shots on the bit-packed
    stabilizer engine (:class:`repro.sim.noisy.NoisySampler`): fusion
    Pauli errors and measurement flips are injected per sampled fault
    configuration, photon loss aborts the shot.  Non-Clifford programs
    fall back to the closed-form model only.

    Args:
        circuit: source circuit (defines the ideal output).
        pattern: measurement pattern; defaults to the translation of
            *circuit*.
        model: :class:`repro.hardware.noise.NoiseModel`; default
            ``DEFAULT_NOISE``.
        shots: Monte-Carlo shots (>= 2000 recommended for 3-sigma
            comparisons against the analytic prediction).
        seed: makes the whole estimate deterministic.
        counts: :class:`repro.sim.noisy.FaultCounts`; defaults to
            pattern-level accounting.  Pass
            ``FaultCounts.from_program(program)`` to use the compiled
            program's fusion tally and photon-cycle estimate.
        engine: sampler execution path — ``"frame"`` (default;
            bit-packed Pauli frames, per-shot cost independent of qubit
            count), ``"batched"`` (chunked shared-symplectic tableau)
            or ``"per-shot"`` (the reference path).  Tallies are
            bit-identical at a fixed seed.
        site_map: per-site degradation map
            (:class:`repro.hardware.degradation.SiteNoiseMap`); when
            given, fault configurations are sampled from the per-cell
            rates and *model* is ignored in favour of the map.
        site_profile: event→site assignment for *site_map*; required for
            heterogeneous maps (``program_site_profile`` builds one from
            a compiled program).
    """
    from repro.hardware.noise import DEFAULT_NOISE
    from repro.mbqc.translate import circuit_to_pattern
    from repro.sim.noisy import FaultCounts, NoisySampler
    from repro.sim.pattern_sim import pattern_is_clifford
    from repro.sim.stabilizer import circuit_is_clifford

    model = model or DEFAULT_NOISE
    if site_map is not None:
        model = site_map.as_uniform_model() or site_map.base
    t0 = time.perf_counter()
    if pattern is None:
        pattern = circuit_to_pattern(circuit)
    if counts is None:
        counts = FaultCounts.from_pattern(pattern)
    analytic = counts.analytic_yield(model)
    if not (pattern_is_clifford(pattern) and circuit_is_clifford(circuit)):
        return YieldEstimate(
            shots=0,
            yield_mc=None,
            fault_free_yield=None,
            yield_analytic=analytic,
            sigma=0.0,
            method="analytic-only",
            seconds=time.perf_counter() - t0,
            detail="non-Clifford program; closed-form estimate only",
        )
    sampler = NoisySampler(
        circuit,
        pattern=pattern,
        model=model,
        counts=counts,
        seed=seed,
        site_map=site_map,
        site_profile=site_profile,
    )
    result = sampler.run(shots, engine=engine)
    return YieldEstimate(
        shots=shots,
        yield_mc=result.yield_mc,
        fault_free_yield=result.fault_free_yield,
        yield_analytic=result.yield_analytic
        if result.analytic_override is not None
        else analytic,
        sigma=result.sigma,
        method="mc-stabilizer",
        attempts_per_fusion=result.attempts_per_fusion,
        mc_engine=result.engine,
        shots_per_second=result.shots_per_second,
        seconds=time.perf_counter() - t0,
        detail=result.summary(),
    )
