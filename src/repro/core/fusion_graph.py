"""Fusion graph generation (paper Sec. 5).

A partition's graph-state subgraph is synthesized from resource states
using the three basic fusion patterns (degree increment, line extension,
graph connection).  The output is a *fusion graph*: one node per resource
state ('⊗' in the paper's figures), one edge per fusion.  Two edge kinds
exist at this stage:

* ``chain`` — synthesis fusions building a high-degree node out of a
  chain of resource states (Fig. 8c);
* ``edge`` — fusions realizing actual graph-state edges between two
  nodes' resource states (Fig. 7c).

Routing/shuffling fusions are added later by the mapper.  The generator
is coupling-agnostic (Sec. 5): it only respects resource-state port
capacities, and — when the subgraph is planar — the rotational edge order
of a planar embedding, which keeps the fusion graph planar (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

import networkx as nx

from repro.core.planarity import planar_embedding_order
from repro.hardware.resource_state import ResourceStateType

#: A fusion-graph node: (origin graph-state node, chain position).
FGNode = Tuple[int, int]


@dataclass
class FusionGraph:
    """The synthesized fusion strategy for one partition.

    Attributes:
        graph: fusion graph; nodes are :data:`FGNode`, edges carry
            ``kind`` ('chain' or 'edge').
        chains: origin node -> its chain of fusion-graph nodes in order.
        port_of: (node, neighbour) -> fusion-graph node that exposes the
            photon for the edge towards ``neighbour``.  Covers both
            in-partition edges and cross-partition stubs.
        synthesis_fusions: number of 'chain' edges.
        edge_fusions: number of 'edge' edges.
    """

    graph: nx.Graph
    chains: Dict[int, List[FGNode]]
    port_of: Dict[Tuple[int, int], FGNode]
    synthesis_fusions: int = 0
    edge_fusions: int = 0
    planar: bool = False

    @property
    def num_resource_states(self) -> int:
        return self.graph.number_of_nodes()

    def origin_of(self, fg_node: FGNode) -> int:
        return fg_node[0]


@dataclass
class _ChainState:
    """Port bookkeeping while assigning edges to a node's chain."""

    nodes: List[FGNode]
    free: List[int] = field(default_factory=list)
    cursor: int = 0

    def take_port(self) -> FGNode:
        while self.cursor < len(self.nodes) and self.free[self.cursor] == 0:
            self.cursor += 1
        if self.cursor >= len(self.nodes):
            raise RuntimeError("chain ran out of ports; capacity bug")
        self.free[self.cursor] -= 1
        return self.nodes[self.cursor]


def build_fusion_graph(
    subgraph: nx.Graph,
    degrees: Dict[int, int],
    resource_state: ResourceStateType,
    cross_neighbors: Optional[Dict[int, List[int]]] = None,
    use_embedding: bool = True,
) -> FusionGraph:
    """Synthesize *subgraph* (one partition) from *resource_state*s.

    Args:
        subgraph: the partition's induced graph-state subgraph.
        degrees: total port demand per node (in-partition + cross edges).
        resource_state: the hardware's emitted state type.
        cross_neighbors: node -> neighbours living in other partitions;
            ports are reserved for them (used as shuffle stubs).
        use_embedding: preserve a planar embedding's rotational edge
            order when one exists (planarity preservation, Fig. 9).
    """
    cross_neighbors = cross_neighbors or {}
    size = resource_state.size

    embedding_order = planar_embedding_order(subgraph) if use_embedding else None

    fg = nx.Graph()
    chains: Dict[int, List[FGNode]] = {}
    states: Dict[int, _ChainState] = {}
    synthesis = 0

    for node in subgraph.nodes():
        demand = degrees.get(node, subgraph.degree(node))
        k = resource_state.states_for_degree(demand)
        chain = [(node, i) for i in range(k)]
        chains[node] = chain
        fg.add_nodes_from(chain)
        for a, b in zip(chain, chain[1:]):
            fg.add_edge(a, b, kind="chain")
            synthesis += 1
        free = []
        for i in range(k):
            chain_links = 0 if k == 1 else (1 if i in (0, k - 1) else 2)
            free.append(size - chain_links)
        if sum(free) < demand:
            raise RuntimeError(
                f"node {node}: chain of {k} states exposes {sum(free)} "
                f"ports < demand {demand}"
            )
        states[node] = _ChainState(nodes=chain, free=free)

    port_of: Dict[Tuple[int, int], FGNode] = {}

    def neighbor_sequence(node: int) -> List[int]:
        in_part = (
            embedding_order[node]
            if embedding_order is not None
            else sorted(subgraph.neighbors(node))
        )
        return list(in_part) + sorted(cross_neighbors.get(node, []))

    # reserve ports in rotational order (planarity preservation)
    for node in subgraph.nodes():
        for nbr in neighbor_sequence(node):
            port_of[(node, nbr)] = states[node].take_port()

    edge_fusions = 0
    for u, v in subgraph.edges():
        pu = port_of[(u, v)]
        pv = port_of[(v, u)]
        fg.add_edge(pu, pv, kind="edge")
        edge_fusions += 1

    planar = embedding_order is not None
    return FusionGraph(
        graph=fg,
        chains=chains,
        port_of=port_of,
        synthesis_fusions=synthesis,
        edge_fusions=edge_fusions,
        planar=planar,
    )


def verify_fusion_graph(
    fusion: FusionGraph,
    subgraph: nx.Graph,
    resource_state: ResourceStateType,
) -> Tuple[bool, str]:
    """Structural invariants of a generated fusion graph.

    * every fusion-graph node has degree at most the photon count;
    * contracting every chain back to its origin recovers exactly the
      partition subgraph (so the fusion strategy synthesizes the right
      graph state);
    * the fusion graph of a planar partition is planar.
    """
    cap = resource_state.fusion_capacity()
    for fg_node in fusion.graph.nodes():
        if fusion.graph.degree(fg_node) > cap:
            return False, f"{fg_node} exceeds fusion capacity {cap}"
    contracted = nx.Graph()
    contracted.add_nodes_from(n for n in fusion.chains)
    for a, b, data in fusion.graph.edges(data=True):
        if data["kind"] == "edge":
            u, v = a[0], b[0]
            if u == v:
                return False, f"edge fusion within one chain: {a}-{b}"
            if contracted.has_edge(u, v):
                return False, f"duplicate edge fusion {u}-{v}"
            contracted.add_edge(u, v)
    same_nodes = set(contracted.nodes()) == set(subgraph.nodes())
    same_edges = {frozenset(e) for e in contracted.edges()} == {
        frozenset(e) for e in subgraph.edges()
    }
    if not (same_nodes and same_edges):
        return False, "contracted fusion graph does not match subgraph"
    if fusion.planar:
        ok, _ = nx.check_planarity(fusion.graph, counterexample=False)
        if not ok:
            return False, "fusion graph broke planarity"
    return True, "ok"
