"""Graph partition and scheduling (paper Sec. 4).

The graph state is cut into partitions of consecutive dependency layers.
Grouping is coarse-grained: a partition may hold several dependency
layers (delay lines tolerate small executability mismatches, and keeping
nearby layers together preserves geometry for the mapper), but it stops
growing when either the layer budget is hit or — with planarity
enforcement on — the accumulated subgraph stops being planar.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.core.planarity import IncrementalPlanarityProber
from repro.mbqc.flow import dependency_layers, rank_layers
from repro.mbqc.pattern import MeasurementPattern


@dataclass(frozen=True)
class PartitionConfig:
    """Knobs for the partition/scheduling stage.

    Attributes:
        max_layers: dependency layers allowed per partition.
        enforce_planarity: stop growing a partition when its induced
            subgraph becomes non-planar (required for small resource
            states; see Sec. 4 'Graph Planarization').
        scheduling: ``"flow"`` uses geometry-preserving ranks from the
            raw dependency DAG (keeps wire chains together, the paper's
            coarse-grained executability order); ``"lemma1"`` uses the
            pure Lemma-1 layers (maximal Clifford parallelism, but it
            scatters geometry and is kept for ablation).
        target_states: soft capacity per partition in resource states;
            a partition stops growing when its estimated synthesis cost
            exceeds this (the compiler passes one extended layer's area).
    """

    max_layers: int = 64
    enforce_planarity: bool = True
    scheduling: str = "flow"
    target_states: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_layers < 1:
            raise ValueError("max_layers must be at least 1")
        if self.scheduling not in ("flow", "lemma1"):
            raise ValueError("scheduling must be 'flow' or 'lemma1'")
        if self.target_states is not None and self.target_states < 1:
            raise ValueError("target_states must be positive")


@dataclass
class GraphPartition:
    """One scheduled unit of the graph state.

    Attributes:
        index: execution order of this partition.
        nodes: graph-state nodes homed here.
        subgraph: induced edges whose *both* endpoints are homed here.
        back_edges: edges to nodes homed in earlier partitions; these are
            realized by inter-layer shuffling (Sec. 6).
        layer_indices: which dependency layers this partition covers.
    """

    index: int
    nodes: List[int]
    subgraph: nx.Graph
    back_edges: List[Tuple[int, int]] = field(default_factory=list)
    layer_indices: List[int] = field(default_factory=list)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return self.subgraph.number_of_edges()


def schedule_layers(
    pattern: MeasurementPattern, config: PartitionConfig = PartitionConfig()
) -> List[List[int]]:
    """The scheduling stage alone: executability layers per config."""
    if config.scheduling == "flow":
        return rank_layers(pattern)
    return dependency_layers(pattern)


def partition_pattern(
    pattern: MeasurementPattern,
    config: PartitionConfig = PartitionConfig(),
    size_estimator: Optional[Callable[[int], int]] = None,
    layers: Optional[List[List[int]]] = None,
) -> List[GraphPartition]:
    """Partition *pattern*'s graph state by executability order.

    Returns partitions in scheduling order.  Every graph edge appears
    exactly once: either inside a partition's ``subgraph`` or as a
    ``back_edge`` of the later of its two endpoints' partitions.

    ``size_estimator(node) -> int`` estimates the resource states a node
    will synthesize into (used with ``config.target_states``; defaults to
    one state per node).  ``layers`` lets callers pass the
    :func:`schedule_layers` result in (the compiler times scheduling and
    partitioning separately for ``bench --profile``).
    """
    if layers is None:
        layers = schedule_layers(pattern, config)
    if size_estimator is None:
        size_estimator = lambda node: 1  # noqa: E731 - trivial default
    graph = pattern.graph
    partitions: List[GraphPartition] = []
    home: Dict[int, int] = {}

    current_nodes: List[int] = []
    current_layers: List[int] = []

    def close_partition() -> None:
        nonlocal current_nodes, current_layers
        if not current_nodes:
            return
        index = len(partitions)
        for node in current_nodes:
            home[node] = index
        subgraph = nx.Graph()
        subgraph.add_nodes_from(current_nodes)
        back_edges: List[Tuple[int, int]] = []
        for node in current_nodes:
            for nbr in graph.neighbors(node):
                if nbr in home and home[nbr] < index:
                    back_edges.append((nbr, node))
                elif home.get(nbr) == index and node < nbr:
                    subgraph.add_edge(node, nbr)
        partitions.append(
            GraphPartition(
                index=index,
                nodes=list(current_nodes),
                subgraph=subgraph,
                back_edges=sorted(set(back_edges)),
                layer_indices=list(current_layers),
            )
        )
        current_nodes = []
        current_layers = []
        if prober is not None:
            prober.reset()

    current_states = 0
    # Planarity is monotone while a partition grows: every candidate is
    # an induced subgraph of the graph on its nodes, and any induced
    # subgraph of a planar graph stays planar.  Instead of one O(V)
    # planarity test per layer, probe the whole window of layers up to
    # the next (exactly predictable) capacity-triggered close: one test
    # certifies every per-layer check in the window, and when the probe
    # fails a binary search pins the first non-planar layer in O(log)
    # tests.  The partitioning decisions are identical to the per-layer
    # algorithm; only the number of planarity tests changes.
    states_per_layer = [
        sum(size_estimator(node) for node in layer) for layer in layers
    ]
    planar_horizon = -1  # candidates through this layer are known planar
    known_fail_at = -1  # first non-planar layer found by a probe
    num_layers = len(layers)
    # Probes run on a persistent concrete graph of the accepted nodes,
    # pushing and popping only the window layers, so each probe costs
    # O(window + check) instead of rebuilding the candidate subgraph.
    prober = (
        IncrementalPlanarityProber(graph) if config.enforce_planarity else None
    )

    for layer_idx, layer in enumerate(layers):
        layer_states = states_per_layer[layer_idx]
        if current_nodes and len(current_layers) >= config.max_layers:
            close_partition()
            current_states = 0
        if (
            config.target_states is not None
            and current_nodes
            and current_states + layer_states > config.target_states
        ):
            close_partition()
            current_states = 0
        if (
            config.enforce_planarity
            and current_nodes
            and layer_idx > planar_horizon
        ):
            if layer_idx == known_fail_at:
                close_partition()
                current_states = 0
            else:
                # window [layer_idx, cap_end]: no capacity close occurs
                # inside it, so candidate growth there is purely additive
                cap_end = layer_idx
                states = current_states + layer_states
                run_len = len(current_layers) + 1
                j = layer_idx + 1
                while j < num_layers:
                    if run_len >= config.max_layers:
                        break
                    if (
                        config.target_states is not None
                        and states + states_per_layer[j] > config.target_states
                    ):
                        break
                    cap_end = j
                    states += states_per_layer[j]
                    run_len += 1
                    j += 1
                assert prober is not None
                if prober.probe(layers[layer_idx : cap_end + 1]):
                    planar_horizon = cap_end
                else:
                    lo, hi = layer_idx, cap_end
                    while lo < hi:
                        mid = (lo + hi) // 2
                        if prober.probe(layers[layer_idx : mid + 1]):
                            lo = mid + 1
                        else:
                            hi = mid
                    if lo == layer_idx:
                        close_partition()
                        current_states = 0
                    else:
                        planar_horizon = lo - 1
                        known_fail_at = lo
        if layer_idx >= known_fail_at:
            known_fail_at = -1
        current_nodes.extend(layer)
        current_layers.append(layer_idx)
        current_states += layer_states
        if prober is not None:
            prober.extend(layer)
    close_partition()
    return partitions


def required_degrees(
    partition: GraphPartition, graph: nx.Graph
) -> Dict[int, int]:
    """Total port demand per node of *partition*.

    Counts every graph edge incident to the node — including edges to
    other partitions (both earlier and later) — because the node's
    resource-state chain must expose a photon for each of them.
    """
    return {node: graph.degree(node) for node in partition.nodes}


def cross_partition_edges(
    partitions: List[GraphPartition],
) -> List[Tuple[int, int]]:
    """All edges realized between partitions (union of back edges)."""
    out: List[Tuple[int, int]] = []
    for part in partitions:
        out.extend(part.back_edges)
    return out


def verify_partitioning(
    pattern: MeasurementPattern, partitions: List[GraphPartition]
) -> Tuple[bool, str]:
    """Structural check: node coverage and exact edge coverage."""
    seen_nodes: Set[int] = set()
    for part in partitions:
        overlap = seen_nodes & set(part.nodes)
        if overlap:
            return False, f"nodes {sorted(overlap)} in multiple partitions"
        seen_nodes.update(part.nodes)
    if seen_nodes != set(pattern.graph.nodes()):
        return False, "partitions do not cover all nodes"
    covered = set()
    for part in partitions:
        for u, v in part.subgraph.edges():
            covered.add(frozenset((u, v)))
        for u, v in part.back_edges:
            covered.add(frozenset((u, v)))
    expected = {frozenset(e) for e in pattern.graph.edges()}
    if covered != expected:
        return False, "edge coverage mismatch"
    return True, "ok"
