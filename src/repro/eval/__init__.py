"""Evaluation harness: one runner + renderer per paper table/figure."""

from repro.eval.experiments import (
    FIG13_SHAPES,
    PAPER_TABLE2,
    TABLE_BENCHMARKS,
    ComparisonRow,
    compare_one,
    run_ablation,
    run_fidelity,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
    run_table1,
    run_table2,
)
from repro.eval.reporting import (
    render_fig12,
    render_fig13,
    render_fig15,
    render_table1,
    render_table2,
)

__all__ = [
    "ComparisonRow",
    "FIG13_SHAPES",
    "PAPER_TABLE2",
    "TABLE_BENCHMARKS",
    "compare_one",
    "render_fig12",
    "render_fig13",
    "render_fig15",
    "render_table1",
    "render_table2",
    "run_ablation",
    "run_fidelity",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_fig15",
    "run_table1",
    "run_table2",
]
