"""Batch experiment runner: grids of compiles, cached and parallel.

The table/figure runners in :mod:`repro.eval.experiments` compile one
configuration at a time.  This module adds the production layer on top:

* :class:`RunSpec` — one hashable experiment coordinate (benchmark,
  qubits, hardware, compiler knobs);
* :class:`BatchRunner` — fans specs across ``multiprocessing`` workers,
  memoizes results in a two-tier artifact store
  (:class:`repro.serve.store.ArtifactStore`: in-memory LRU over atomic
  content-hash-keyed disk files; compiles are deterministic, so a cache
  hit is exact), and returns :class:`RunRecord` rows;
* run-table artifacts — every batch can be persisted as machine-readable
  JSON + CSV (one row per run, schema in ``RUN_TABLE_COLUMNS``), the
  convention the paper-adjacent replication repos use for all analysis;
* ``BENCH_*.json`` — a compact perf-trajectory artifact comparing a
  labelled run against a stored reference (wall seconds + headline
  metrics per benchmark).
"""

from __future__ import annotations

import csv
import hashlib
import json
import multiprocessing
import pathlib
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serve.store import ArtifactStore, atomic_write_json

SCHEMA_VERSION = 9

#: Run-table columns, in on-disk CSV order.  Meanings:
#:   key                 content hash of the spec (cache identity)
#:   benchmark/num_qubits/seed   which circuit was compiled
#:   resource_state/ratio/area/extension   hardware coordinate
#:   depth/num_fusions   the paper's two headline metrics (OneQ)
#:   synthesis/edge/routing/shuffling/z_measurements   fusion breakdown
#:   mapping_layers/shuffle_layers/num_partitions   layer accounting
#:   pattern_nodes/pattern_edges   measurement-pattern size
#:   resource_states_used/deferred_pairs/photon_deficit   bookkeeping
#:   baseline_depth/baseline_fusions   baseline interpreter on the same
#:       area (absent when the spec disables the baseline)
#:   depth_improvement/fusion_improvement   baseline / OneQ ratios
#:   seconds   OneQ compile wall time;  baseline_seconds   baseline time
#:   translate/schedule/partition/map/shuffle_seconds   per-stage compile
#:       breakdown (``bench --profile`` renders these)
#:   map_score/map_route/map_place_seconds   mapper sub-stages (v7):
#:       candidate scoring, path routing, and cell placement inside the
#:       map stage; their sum is below map_seconds, whose remainder is
#:       fusion-graph synthesis and edge-order bookkeeping
#:   verified/verify_method/verify_seconds   semantic verification stage
#:       (``verify=True`` specs): did the compiled pattern implement the
#:       circuit, which engine checked it (stabilizer for Clifford
#:       patterns, statevector for small dense ones, static flow-based
#:       determinism certification otherwise)
#:   lint_issues   static-lint error count over the pattern and compiled
#:       program (v6, ``lint=True`` specs; None = lint stage not run)
#:   noise     NoiseModel overrides as "name=value,..." ("" = defaults)
#:   shots     Monte-Carlo shots actually sampled (0 = no sampling ran,
#:       including non-Clifford programs where only the analytic yield
#:       applies)
#:   yield_mc  fraction of shots whose executed output passed the
#:       stabilizer check (None for non-Clifford programs: analytic only)
#:   yield_analytic   closed-form zero-fault probability from the
#:       compiled program's fault counts
#:   mc_attempts_per_fusion   mean sampled fusion attempts per required
#:       fusion (repeat-until-success; expected 1/fusion_success — the
#:       observable the fusion_success axis moves), tallied over the
#:       shots that completed their fusion sequence
#:   mc_seconds   wall seconds of the Monte-Carlo stage
#:   shots_per_second   Monte-Carlo sampling throughput (v4; None when
#:       no sampling ran)
#:   mc_engine   sampler execution path (v4, "frame" added in v5):
#:       "frame" bit-packed Pauli frames (default), "batched" chunked
#:       tableau, or the "per-shot" reference; None when no sampling ran
#:   scenario  hardware-degradation scenario name (v9; "" = pristine
#:       hardware, no degradation stage)
#:   severity  scenario severity knob in [0, 1] (v9)
#:   dead_fraction   fraction of grid cells the scenario killed outright
#:       (v9; None when no degradation stage ran)
#:   policy    recovery policy evaluated (v9): "survive", "reroute",
#:       "recompile", or the ladder winner when the spec asked "auto"
#:   recovered   did the policy retain >= 50% of the clean yield with a
#:       non-zero yield (v9; the RECOVERY_THRESHOLD bar)
#:   yield_degraded   per-site closed-form yield of the (possibly
#:       re-routed/recompiled) program under the scenario map (v9)
#:   rerouted_fusions   fusions living on re-routed or re-placed routes
#:       (v9; 0 for survive, the full fusion count for recompile)
#:   cached    True when the row came from the artifact store
#:   cache_tier   which store tier served a cached row (v8): "memory"
#:       (in-process LRU) or "disk" (content-hash JSON file); empty for
#:       freshly computed rows
#:   cache_age_seconds   seconds between the cached artifact's original
#:       compute and this read (v8; empty for fresh rows) — the honest
#:       companion to ``seconds``, which for cached rows reports the
#:       *original* run's timing, not this invocation's
RUN_TABLE_COLUMNS: List[str] = [
    "key",
    "benchmark",
    "num_qubits",
    "seed",
    "resource_state",
    "ratio",
    "area",
    "extension",
    "depth",
    "num_fusions",
    "synthesis",
    "edge",
    "routing",
    "shuffling",
    "z_measurements",
    "mapping_layers",
    "shuffle_layers",
    "num_partitions",
    "pattern_nodes",
    "pattern_edges",
    "resource_states_used",
    "deferred_pairs",
    "photon_deficit",
    "baseline_depth",
    "baseline_fusions",
    "depth_improvement",
    "fusion_improvement",
    "seconds",
    "baseline_seconds",
    "translate_seconds",
    "schedule_seconds",
    "partition_seconds",
    "map_seconds",
    "map_score_seconds",
    "map_route_seconds",
    "map_place_seconds",
    "shuffle_seconds",
    "verified",
    "verify_method",
    "verify_seconds",
    "lint_issues",
    "noise",
    "shots",
    "yield_mc",
    "yield_analytic",
    "mc_attempts_per_fusion",
    "mc_seconds",
    "shots_per_second",
    "mc_engine",
    "scenario",
    "severity",
    "dead_fraction",
    "policy",
    "recovered",
    "yield_degraded",
    "rerouted_fusions",
    "cached",
    "cache_tier",
    "cache_age_seconds",
]

#: compile stages reported by ``CompiledProgram.stage_seconds``, in
#: pipeline order (the ``verify`` stage is appended by ``execute_spec``)
PROFILE_STAGES: Tuple[str, ...] = (
    "translate", "schedule", "partition", "map",
    "map_score", "map_route", "map_place", "shuffle",
)


@dataclass(frozen=True)
class RunSpec:
    """One experiment coordinate: circuit x hardware x compiler config."""

    benchmark: str
    num_qubits: int
    seed: int = 7
    resource_state: str = "3-line"
    ratio: float = 1.0
    area: Optional[int] = None
    extension: int = 1
    include_baseline: bool = True
    #: semantically verify the compiled pattern against the circuit
    #: (auto-picking the stabilizer, statevector or static engine)
    verify: bool = False
    #: statically lint the pattern and compiled program
    #: (:class:`repro.analysis.lint.PatternLinter`); the error count
    #: lands in the ``lint_issues`` column
    lint: bool = False
    #: Monte-Carlo shots for noisy execution (0 disables the MC stage)
    shots: int = 0
    #: ``NoiseModel`` overrides as a sorted tuple of (name, value), e.g.
    #: ``(("cycle_loss", 0.01), ("fusion_success", 0.5))``
    noise: Tuple[Tuple[str, float], ...] = ()
    #: Monte-Carlo sampler execution path: "frame" (default; bit-packed
    #: Pauli frames), "batched" (chunked shared-symplectic tableau) or
    #: the "per-shot" reference engine — all bit-identical tallies,
    #: each ~10x+ slower than the previous
    mc_engine: str = "frame"
    #: hardware-degradation scenario
    #: (:data:`repro.hardware.degradation.SCENARIOS`); "" disables the
    #: degradation stage
    scenario: str = ""
    #: scenario severity knob in [0, 1]
    severity: float = 0.0
    #: recovery policy to evaluate when ``scenario`` is set: "survive",
    #: "reroute", "recompile", or "auto" to walk the ladder
    #: (:func:`repro.core.recovery.recover`) and record the winner
    policy: str = "survive"
    #: extra ``OneQConfig`` kwargs as a sorted tuple of (name, value)
    compiler_options: Tuple[Tuple[str, object], ...] = ()

    @property
    def label(self) -> str:
        return f"{self.benchmark}-{self.num_qubits}"

    def noise_label(self) -> str:
        """Canonical "name=value,..." string of the noise overrides."""
        return ",".join(f"{k}={v}" for k, v in sorted(self.noise))

    def key(self) -> str:
        """Content hash: identical specs share cache entries."""
        payload = asdict(self)
        payload["compiler_options"] = sorted(
            (str(k), repr(v)) for k, v in self.compiler_options
        )
        payload["noise"] = sorted((str(k), repr(v)) for k, v in self.noise)
        blob = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha1(blob.encode()).hexdigest()[:16]


@dataclass
class RunRecord:
    """One run-table row (see ``RUN_TABLE_COLUMNS`` for field meanings)."""

    key: str
    benchmark: str
    num_qubits: int
    seed: int
    resource_state: str
    ratio: float
    area: Optional[int]
    extension: int
    depth: int
    num_fusions: int
    synthesis: int
    edge: int
    routing: int
    shuffling: int
    z_measurements: int
    mapping_layers: int
    shuffle_layers: int
    num_partitions: int
    pattern_nodes: int
    pattern_edges: int
    resource_states_used: int
    deferred_pairs: int
    photon_deficit: int
    baseline_depth: Optional[int] = None
    baseline_fusions: Optional[int] = None
    depth_improvement: Optional[float] = None
    fusion_improvement: Optional[float] = None
    seconds: float = 0.0
    baseline_seconds: float = 0.0
    translate_seconds: float = 0.0
    schedule_seconds: float = 0.0
    partition_seconds: float = 0.0
    map_seconds: float = 0.0
    map_score_seconds: float = 0.0
    map_route_seconds: float = 0.0
    map_place_seconds: float = 0.0
    shuffle_seconds: float = 0.0
    verified: Optional[bool] = None
    verify_method: Optional[str] = None
    verify_seconds: float = 0.0
    lint_issues: Optional[int] = None
    noise: str = ""
    shots: int = 0
    yield_mc: Optional[float] = None
    yield_analytic: Optional[float] = None
    mc_attempts_per_fusion: Optional[float] = None
    mc_seconds: float = 0.0
    shots_per_second: Optional[float] = None
    mc_engine: Optional[str] = None
    scenario: str = ""
    severity: float = 0.0
    dead_fraction: Optional[float] = None
    policy: Optional[str] = None
    recovered: Optional[bool] = None
    yield_degraded: Optional[float] = None
    rerouted_fusions: Optional[int] = None
    cached: bool = False
    cache_tier: Optional[str] = None
    cache_age_seconds: Optional[float] = None

    @property
    def label(self) -> str:
        return f"{self.benchmark}-{self.num_qubits}"


def execute_spec(spec: RunSpec) -> RunRecord:
    """Compile one spec and measure it (runs inside worker processes)."""
    from repro.baseline.interpreter import compile_baseline
    from repro.circuit.benchmarks import get_benchmark
    from repro.core.compiler import OneQCompiler, OneQConfig
    from repro.eval.experiments import _hardware_for
    from repro.hardware.resource_state import get_resource_state
    from repro.mbqc.translate import circuit_to_pattern

    rst = get_resource_state(spec.resource_state)
    circuit = get_benchmark(spec.benchmark, spec.num_qubits, seed=spec.seed)
    hardware = _hardware_for(
        spec.num_qubits,
        rst,
        ratio=spec.ratio,
        area=spec.area,
        extension=spec.extension,
    )
    compiler = OneQCompiler(
        OneQConfig(hardware=hardware, **dict(spec.compiler_options))
    )
    # translate once: the compiler consumes the pattern and the verify
    # stage re-checks the same pattern against the circuit
    t0 = time.perf_counter()
    pattern = circuit_to_pattern(circuit)
    translate_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    program = compiler.compile_pattern(
        pattern, name=spec.label, num_qubits=circuit.num_qubits
    )
    oneq_seconds = translate_seconds + time.perf_counter() - t0
    program.stage_seconds["translate"] = translate_seconds

    verified = verify_method = None
    verify_seconds = 0.0
    if spec.verify:
        from repro.core.validate import verify_pattern

        report = verify_pattern(circuit, pattern=pattern, seed=spec.seed)
        verified = report.ok
        verify_method = report.method
        verify_seconds = report.seconds

    lint_issues = None
    if spec.lint:
        from repro.analysis.lint import lint_compiled_program, lint_pattern

        lint_report = lint_pattern(pattern, name=spec.label)
        lint_report.extend(
            lint_compiled_program(program, hardware, name=spec.label)
        )
        lint_issues = len(lint_report.errors())

    dead_fraction = policy_used = recovered = None
    yield_degraded = rerouted_fusions = None
    degrade_map = degrade_program = None
    if spec.scenario:
        from repro.core.recovery import (
            RECOVERY_THRESHOLD,
            apply_policy,
            clean_yield,
            recover,
        )
        from repro.hardware.degradation import make_scenario
        from repro.hardware.noise import NoiseModel

        degrade_map = make_scenario(
            spec.scenario,
            hardware.extended_shape,
            spec.severity,
            base=NoiseModel(**dict(spec.noise)),
            seed=spec.seed,
        )
        dead_fraction = degrade_map.dead_fraction
        if spec.policy == "auto":
            report = recover(
                circuit,
                program,
                degrade_map,
                compiler.config,
                scenario=spec.scenario,
                severity=spec.severity,
            )
            policy_used = report.policy
            recovered = report.recovered
            yield_degraded = report.yield_degraded
            rerouted_fusions = report.rerouted_fusions
            # recover() reports the winning rung but not its program;
            # re-apply the winner so the MC stage can sample it
            outcome = apply_policy(
                report.policy, circuit, program, degrade_map, compiler.config
            )
        else:
            outcome = apply_policy(
                spec.policy, circuit, program, degrade_map, compiler.config
            )
            policy_used = outcome.policy
            yield_degraded = outcome.yield_degraded
            rerouted_fusions = outcome.rerouted_fusions
            recovered = (
                outcome.yield_degraded > 0.0
                and outcome.yield_degraded
                >= RECOVERY_THRESHOLD * clean_yield(program, degrade_map)
            )
        degrade_program = outcome.program

    yield_mc = yield_analytic = mc_attempts = None
    shots_per_second = mc_engine = None
    mc_shots = 0
    mc_seconds = 0.0
    if spec.shots > 0:
        from repro.core.validate import estimate_yield
        from repro.hardware.noise import NoiseModel
        from repro.sim.noisy import FaultCounts

        estimate = None
        if degrade_map is not None:
            # degradation specs sample the policy's program under the
            # per-site map; dead-assigned fusions (a failed "survive")
            # cannot be sampled — the analytic yield_degraded column
            # already records the collapse, so MC is skipped
            from repro.hardware.degradation import program_site_profile

            if degrade_program is not None:
                try:
                    estimate = estimate_yield(
                        circuit,
                        pattern=pattern,
                        shots=spec.shots,
                        seed=spec.seed,
                        counts=FaultCounts.from_program(degrade_program),
                        engine=spec.mc_engine,
                        site_map=degrade_map,
                        site_profile=program_site_profile(
                            degrade_program, degrade_map.shape
                        ),
                    )
                except ValueError:
                    estimate = None
        else:
            estimate = estimate_yield(
                circuit,
                pattern=pattern,
                model=NoiseModel(**dict(spec.noise)),
                shots=spec.shots,
                seed=spec.seed,
                counts=FaultCounts.from_program(program),
                engine=spec.mc_engine,
            )
        if estimate is not None:
            # estimate.shots is 0 when no sampling engine applied
            # (non-Clifford program, analytic-only fallback)
            mc_shots = estimate.shots
            yield_mc = estimate.yield_mc
            yield_analytic = estimate.yield_analytic
            mc_attempts = estimate.attempts_per_fusion
            mc_seconds = estimate.seconds
            shots_per_second = estimate.shots_per_second
            mc_engine = estimate.mc_engine

    baseline_depth = baseline_fusions = None
    depth_improvement = fusion_improvement = None
    baseline_seconds = 0.0
    if spec.include_baseline:
        t0 = time.perf_counter()
        baseline = compile_baseline(
            circuit, name=spec.benchmark, resource_state=rst
        )
        baseline_seconds = time.perf_counter() - t0
        baseline_depth = baseline.depth
        baseline_fusions = baseline.num_fusions
        depth_improvement = baseline.depth / max(1, program.physical_depth)
        fusion_improvement = baseline.num_fusions / max(1, program.num_fusions)

    tally = program.fusions
    return RunRecord(
        key=spec.key(),
        benchmark=spec.benchmark,
        num_qubits=spec.num_qubits,
        seed=spec.seed,
        resource_state=spec.resource_state,
        ratio=spec.ratio,
        area=spec.area,
        extension=spec.extension,
        depth=program.physical_depth,
        num_fusions=program.num_fusions,
        synthesis=tally.synthesis,
        edge=tally.edge,
        routing=tally.routing,
        shuffling=tally.shuffling,
        z_measurements=tally.z_measurements,
        mapping_layers=program.mapping_layers,
        shuffle_layers=program.shuffle_layers,
        num_partitions=program.num_partitions,
        pattern_nodes=program.pattern_nodes,
        pattern_edges=program.pattern_edges,
        resource_states_used=program.resource_states_used,
        deferred_pairs=program.deferred_pairs,
        photon_deficit=program.photon_deficit,
        baseline_depth=baseline_depth,
        baseline_fusions=baseline_fusions,
        depth_improvement=depth_improvement,
        fusion_improvement=fusion_improvement,
        seconds=oneq_seconds,
        baseline_seconds=baseline_seconds,
        translate_seconds=program.stage_seconds.get("translate", 0.0),
        schedule_seconds=program.stage_seconds.get("schedule", 0.0),
        partition_seconds=program.stage_seconds.get("partition", 0.0),
        map_seconds=program.stage_seconds.get("map", 0.0),
        map_score_seconds=program.stage_seconds.get("map_score", 0.0),
        map_route_seconds=program.stage_seconds.get("map_route", 0.0),
        map_place_seconds=program.stage_seconds.get("map_place", 0.0),
        shuffle_seconds=program.stage_seconds.get("shuffle", 0.0),
        verified=verified,
        verify_method=verify_method,
        verify_seconds=verify_seconds,
        lint_issues=lint_issues,
        noise=spec.noise_label(),
        shots=mc_shots,
        yield_mc=yield_mc,
        yield_analytic=yield_analytic,
        mc_attempts_per_fusion=mc_attempts,
        mc_seconds=mc_seconds,
        shots_per_second=shots_per_second,
        mc_engine=mc_engine,
        scenario=spec.scenario,
        severity=spec.severity,
        dead_fraction=dead_fraction,
        policy=policy_used,
        recovered=recovered,
        yield_degraded=yield_degraded,
        rerouted_fusions=rerouted_fusions,
    )


def _execute_spec_dict(payload: Dict) -> Dict:
    """Picklable worker entry: spec dict in, record dict out."""
    spec = _spec_from_dict(payload)
    return asdict(execute_spec(spec))


def _spec_from_dict(payload: Dict) -> RunSpec:
    payload = dict(payload)
    payload["compiler_options"] = tuple(
        (k, v) for k, v in payload.get("compiler_options", ())
    )
    payload["noise"] = tuple((k, v) for k, v in payload.get("noise", ()))
    return RunSpec(**payload)


class BatchRunner:
    """Run grids of :class:`RunSpec` with caching and multiprocessing.

    ``jobs=None`` picks ``min(cpu_count, #specs)``; ``jobs=1`` stays
    in-process (useful under pytest).  ``cache_dir`` enables the
    artifact store (:class:`repro.serve.store.ArtifactStore`): an
    in-memory LRU over one atomic JSON file per spec hash, shared
    across runner instances and concurrent processes.  Writes are
    atomic (temp file + ``os.replace``) and torn/corrupt cache files
    read as misses — the spec recomputes and overwrites the bad entry.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[pathlib.Path] = None,
        memory_capacity: int = 256,
    ):
        self.jobs = jobs
        self.cache_dir = pathlib.Path(cache_dir) if cache_dir else None
        self.store: Optional[ArtifactStore] = (
            ArtifactStore(
                cache_dir=self.cache_dir,
                memory_capacity=memory_capacity,
                schema_version=SCHEMA_VERSION,
            )
            if self.cache_dir is not None
            else None
        )

    # -- cache ---------------------------------------------------------
    def _cache_path(self, spec: RunSpec) -> Optional[pathlib.Path]:
        if self.store is None:
            return None
        return self.store.disk_path(spec.key())

    def _load_cached(self, spec: RunSpec) -> Optional[RunRecord]:
        if self.store is None:
            return None
        hit = self.store.get(spec.key())
        if hit is None:
            return None
        try:
            record = RunRecord(**hit.artifact)
        except TypeError:  # column drift within one schema version
            return None
        record.cached = True
        record.cache_tier = hit.tier
        record.cache_age_seconds = round(hit.age_seconds, 3)
        return record

    def _store(self, record: RunRecord, spec: RunSpec) -> None:
        if self.store is None:
            return
        payload = asdict(record)
        # cache provenance describes a *read*, never the stored artifact
        payload["cached"] = False
        payload["cache_tier"] = None
        payload["cache_age_seconds"] = None
        self.store.put(spec.key(), payload)

    # -- execution -----------------------------------------------------
    def run(self, specs: Sequence[RunSpec]) -> List[RunRecord]:
        """Execute *specs* (cache-first), preserving input order."""
        records: Dict[int, RunRecord] = {}
        todo: List[Tuple[int, RunSpec]] = []
        for idx, spec in enumerate(specs):
            cached = self._load_cached(spec)
            if cached is not None:
                records[idx] = cached
            else:
                todo.append((idx, spec))

        jobs = self.jobs
        if jobs is None:
            jobs = min(multiprocessing.cpu_count(), max(1, len(todo)))
        if len(todo) <= 1 or jobs <= 1:
            fresh = [(idx, execute_spec(spec)) for idx, spec in todo]
        else:
            payloads = [asdict(spec) for _, spec in todo]
            with multiprocessing.Pool(processes=min(jobs, len(todo))) as pool:
                results = pool.map(_execute_spec_dict, payloads)
            fresh = [
                (idx, RunRecord(**result))
                for (idx, _), result in zip(todo, results)
            ]
        for (idx, spec), (_, record) in zip(todo, fresh):
            self._store(record, spec)
            records[idx] = record
        return [records[idx] for idx in range(len(specs))]


# ----------------------------------------------------------------------
# grid helpers and artifacts
# ----------------------------------------------------------------------
def table2_specs(
    benchmarks: Optional[Sequence[Tuple[str, int]]] = None,
    resource_state: str = "3-line",
    seed: int = 7,
    verify: bool = False,
) -> List[RunSpec]:
    """Specs for the Table-2 benchmark grid (the default batch)."""
    from repro.eval.experiments import TABLE_BENCHMARKS

    benchmarks = list(benchmarks or TABLE_BENCHMARKS)
    return [
        RunSpec(
            benchmark=name,
            num_qubits=n,
            seed=seed,
            resource_state=resource_state,
            verify=verify,
        )
        for name, n in benchmarks
    ]


def write_run_table(
    records: Sequence[RunRecord],
    out_dir: pathlib.Path,
    stem: str = "run_table",
    meta: Optional[Dict] = None,
) -> Tuple[pathlib.Path, pathlib.Path]:
    """Persist *records* as ``<stem>.json`` + ``<stem>.csv`` in *out_dir*.

    The JSON carries schema/provenance metadata; the CSV is the flat
    analysis artifact (one row per run, ``RUN_TABLE_COLUMNS`` order).
    """
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    rows = [asdict(r) for r in records]
    json_path = out_dir / f"{stem}.json"
    payload = {
        "schema_version": SCHEMA_VERSION,
        "columns": RUN_TABLE_COLUMNS,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "meta": meta or {},
        "records": rows,
    }
    atomic_write_json(json_path, payload)
    csv_path = out_dir / f"{stem}.csv"
    with csv_path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=RUN_TABLE_COLUMNS)
        writer.writeheader()
        for row in rows:
            writer.writerow({col: row.get(col) for col in RUN_TABLE_COLUMNS})
    return json_path, csv_path


def write_bench_json(
    records: Sequence[RunRecord],
    path: pathlib.Path,
    label: str,
    reference: Optional[Dict[str, Dict]] = None,
) -> pathlib.Path:
    """Write a ``BENCH_*.json`` perf-trajectory artifact.

    *reference* maps run labels to previously recorded entries (same
    shape as the emitted ``runs``); when given, per-benchmark speedups
    against it are included.
    """
    path = pathlib.Path(path)
    runs: Dict[str, Dict] = {}
    for record in records:
        runs[record.label] = {
            "seconds": round(record.seconds, 4),
            "depth": record.depth,
            "fusions": record.num_fusions,
            "mapping_layers": record.mapping_layers,
            "shuffle_layers": record.shuffle_layers,
            # stale-timing markers: a cached row's seconds are from the
            # run that originally produced it, not this invocation —
            # cache_age_seconds says how stale (None: computed fresh)
            "cached": record.cached,
            "cache_age_seconds": record.cache_age_seconds,
        }
    payload: Dict = {
        "schema_version": SCHEMA_VERSION,
        "label": label,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "runs": runs,
    }
    if reference:
        payload["reference"] = reference
        speedups = {}
        identical = True
        compared = 0
        for key, run in runs.items():
            ref = reference.get(key)
            if not ref:
                continue
            for metric in ("depth", "fusions"):
                if metric in ref:
                    compared += 1
                    if ref[metric] != run[metric]:
                        identical = False
            if run["seconds"] and ref.get("seconds"):
                speedups[key] = round(ref["seconds"] / run["seconds"], 2)
        payload["speedup_vs_reference"] = speedups
        # None (not true) when the reference shared no comparable metrics
        # — a vacuous comparison must not read as a verified pass
        payload["metrics_identical_to_reference"] = (
            identical if compared else None
        )
        payload["metrics_compared"] = compared
    atomic_write_json(path, payload)
    return path


def run_grid(
    benchmarks: Optional[Sequence[Tuple[str, int]]] = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[pathlib.Path] = None,
    out_dir: Optional[pathlib.Path] = None,
    stem: str = "run_table",
    seed: int = 7,
    resource_state: str = "3-line",
    verify: bool = False,
) -> List[RunRecord]:
    """One-call batch: Table-2 grid -> records (+ artifacts when asked)."""
    specs = table2_specs(
        benchmarks, resource_state=resource_state, seed=seed, verify=verify
    )
    runner = BatchRunner(jobs=jobs, cache_dir=cache_dir)
    records = runner.run(specs)
    if out_dir is not None:
        write_run_table(
            records,
            out_dir,
            stem=stem,
            meta={
                "grid": "table2",
                "seed": seed,
                "resource_state": resource_state,
                "verify": verify,
            },
        )
    return records


def render_run_records(records: Sequence[RunRecord]) -> str:
    """Terminal summary of a batch (one line per run)."""
    lines = []
    for r in records:
        origin = "cache" if r.cached else f"{r.seconds:.3f}s"
        improvement = (
            f"  depth x{r.depth_improvement:.0f} fusions x{r.fusion_improvement:.0f}"
            if r.depth_improvement is not None
            else ""
        )
        verify = ""
        if r.verify_method == "skipped":
            verify = "  verify=skipped"
        elif r.verify_method is not None:
            verify = (
                f"  verify[{r.verify_method}]="
                f"{'ok' if r.verified else 'FAILED'}"
            )
        if r.lint_issues is not None:
            verify += (
                "  lint=clean" if r.lint_issues == 0
                else f"  lint={r.lint_issues} error(s)"
            )
        noisy = ""
        if r.yield_analytic is not None:
            if r.yield_mc is not None:
                noisy = (
                    f"  yield_mc={r.yield_mc:.4f} "
                    f"analytic={r.yield_analytic:.4f} ({r.shots} shots)"
                )
            else:
                noisy = f"  yield=analytic-only:{r.yield_analytic:.4f}"
        lines.append(
            f"{r.label}: depth={r.depth} fusions={r.num_fusions:,} "
            f"[{origin}]{improvement}{verify}{noisy}"
        )
    return "\n".join(lines)


def write_noise_sweep_json(
    records: Sequence[RunRecord],
    path: pathlib.Path,
    label: str = "noise_sweep",
    meta: Optional[Dict] = None,
) -> pathlib.Path:
    """Write a ``BENCH_noise_sweep.json``-style yield-sweep artifact.

    One entry per (benchmark, resource state, noise point), keyed
    ``"<label>@<resource_state>[<noise overrides>]"``, carrying both the
    Monte-Carlo and analytic yields so the noise trajectory can be
    tracked across PRs the same way compile times are.
    """
    path = pathlib.Path(path)
    runs: Dict[str, Dict] = {}
    for record in records:
        key = f"{record.label}@{record.resource_state}[{record.noise}]"
        runs[key] = {
            "benchmark": record.benchmark,
            "num_qubits": record.num_qubits,
            "resource_state": record.resource_state,
            "noise": record.noise,
            "shots": record.shots,
            "yield_mc": record.yield_mc,
            "yield_analytic": record.yield_analytic,
            "mc_attempts_per_fusion": record.mc_attempts_per_fusion,
            "mc_seconds": round(record.mc_seconds, 4),
            "shots_per_second": (
                round(record.shots_per_second, 1)
                if record.shots_per_second is not None
                else None
            ),
            "mc_engine": record.mc_engine,
            "depth": record.depth,
            "fusions": record.num_fusions,
            "cached": record.cached,
            "cache_age_seconds": record.cache_age_seconds,
        }
    payload = {
        "schema_version": SCHEMA_VERSION,
        "label": label,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "meta": meta or {},
        "runs": runs,
    }
    atomic_write_json(path, payload)
    return path


def render_stage_profile(records: Sequence[RunRecord]) -> str:
    """Per-stage compile timing breakdown (``bench --profile``)."""
    stage_cols = [f"{stage}_seconds" for stage in PROFILE_STAGES] + [
        "verify_seconds"
    ]
    header = f"{'run':<12}" + "".join(
        f"{col[:-8]:>11}" for col in stage_cols
    ) + f"{'total':>11}"
    lines = [header, "-" * len(header)]
    for r in records:
        cells = [getattr(r, col) for col in stage_cols]
        total = r.seconds + r.verify_seconds
        lines.append(
            f"{r.label:<12}"
            + "".join(f"{value:>10.3f}s" for value in cells)
            + f"{total:>10.3f}s"
        )
    return "\n".join(lines)
