"""Hardware-degradation survival sweeps (paper Sec. 2.1 robustness).

The paper's yield argument assumes pristine hardware: every cell of the
resource-state grid generates and fuses photons at the same rates.  Real
photonic devices drift — individual resource-state generators die,
couplers develop loss gradients, fusion interferometers detune.  This
harness grids compiled benchmarks over per-site degradation scenarios
(:mod:`repro.hardware.degradation`) and the recovery-policy ladder
(:mod:`repro.core.recovery`), producing survival curves: at which
severity does the as-compiled program collapse, and which intervention
(re-route vs recompile) saves it?

Everything runs through :class:`repro.eval.batch.BatchRunner`, so rows
land in the standard schema-v9 run table (``scenario`` / ``severity`` /
``policy`` / ``recovered`` / ``yield_degraded`` columns) and are cached
by spec hash like every other batch.
"""

from __future__ import annotations

import pathlib
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.recovery import POLICIES
from repro.eval.batch import (
    SCHEMA_VERSION,
    BatchRunner,
    RunRecord,
    RunSpec,
    write_run_table,
)
from repro.hardware.degradation import SCENARIOS
from repro.serve.store import atomic_write_json

#: Default benchmark grid: one Clifford benchmark (BV — Monte-Carlo
#: samplable under the per-site map) and one non-Clifford (QFT —
#: analytic-only), both small enough for dense severity grids.
DEGRADE_BENCHMARKS: List[Tuple[str, int]] = [("BV", 8), ("QFT", 8)]

#: Default severity grid: 0 (pristine; every policy must report
#: recovered) up to deep damage where even recompile starts losing.
DEGRADE_SEVERITIES: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.3)

#: Mild uniform base noise for the scenario maps.  The clean yield must
#: stay well above 0 so the recovery bar (>= 50% of clean) measures the
#: *scenario's* damage, not the base model's; at these rates an 8-qubit
#: benchmark keeps a clean yield around 0.99+.
MILD_NOISE: Tuple[Tuple[str, float], ...] = (
    ("cycle_loss", 1e-05),
    ("fusion_error", 5e-05),
    ("measurement_error", 1e-05),
)


def degrade_specs(
    benchmarks: Optional[Sequence[Tuple[str, int]]] = None,
    scenarios: Sequence[str] = SCENARIOS,
    severities: Sequence[float] = DEGRADE_SEVERITIES,
    policies: Sequence[str] = POLICIES,
    noise: Tuple[Tuple[str, float], ...] = MILD_NOISE,
    resource_state: str = "3-line",
    shots: int = 0,
    seed: int = 7,
    mc_engine: str = "frame",
) -> List[RunSpec]:
    """Build the (benchmark x scenario x severity x policy) spec grid.

    Severity 0 is worth keeping in the grid: it pins the degenerate
    case (an undamaged map must leave every policy recovered with the
    clean yield).  ``policies`` may include ``"auto"`` to record the
    ladder's winner instead of a fixed rung.
    """
    benchmarks = list(benchmarks or DEGRADE_BENCHMARKS)
    specs = []
    for name, n in benchmarks:
        for scenario in scenarios:
            for severity in severities:
                for policy in policies:
                    specs.append(
                        RunSpec(
                            benchmark=name,
                            num_qubits=n,
                            seed=seed,
                            resource_state=resource_state,
                            include_baseline=False,
                            shots=shots,
                            noise=noise,
                            mc_engine=mc_engine,
                            scenario=scenario,
                            severity=float(severity),
                            policy=policy,
                        )
                    )
    return specs


def summarize_survival(records: Sequence[RunRecord]) -> Dict:
    """Aggregate a sweep into the survival headline numbers.

    Groups rows by (benchmark, scenario, severity) and counts, per
    group, whether ``survive`` failed and which policy rescued it.  The
    returned dict is the ``summary`` block of the degradation artifact
    and what the CI recovery gate checks.
    """
    groups: Dict[Tuple[str, str, float], Dict[str, RunRecord]] = {}
    for record in records:
        if not record.scenario or record.policy is None:
            continue
        key = (record.label, record.scenario, record.severity)
        groups.setdefault(key, {})[record.policy] = record

    survive_failures = 0
    reroute_rescues = 0
    recompile_rescues = 0
    unrecovered: List[str] = []
    severity_zero_failures: List[str] = []
    for (label, scenario, severity), by_policy in sorted(groups.items()):
        tag = f"{label}/{scenario}@{severity:g}"
        if severity == 0.0:
            for policy, record in sorted(by_policy.items()):
                if record.recovered is not True:
                    severity_zero_failures.append(f"{tag}[{policy}]")
        survive = by_policy.get("survive")
        if survive is None or survive.recovered is not False:
            continue
        survive_failures += 1
        reroute = by_policy.get("reroute")
        recompile = by_policy.get("recompile")
        rescued = False
        if reroute is not None and reroute.recovered:
            reroute_rescues += 1
            rescued = True
        if recompile is not None and recompile.recovered:
            recompile_rescues += 1
            rescued = True
        if not rescued:
            unrecovered.append(tag)
    return {
        "groups": len(groups),
        "survive_failures": survive_failures,
        "reroute_rescues": reroute_rescues,
        "recompile_rescues": recompile_rescues,
        "unrecovered": unrecovered,
        "severity_zero_failures": severity_zero_failures,
    }


def write_degradation_json(
    records: Sequence[RunRecord],
    path: pathlib.Path,
    label: str = "degradation",
    meta: Optional[Dict] = None,
) -> pathlib.Path:
    """Write the ``BENCH_degradation.json`` survival artifact.

    One entry per sweep row, keyed
    ``"<benchmark>@<scenario>@<severity>[<policy>]"``, plus the
    :func:`summarize_survival` block the CI recovery gate reads.
    """
    path = pathlib.Path(path)
    runs: Dict[str, Dict] = {}
    for record in records:
        key = (
            f"{record.label}@{record.scenario}@{record.severity:g}"
            f"[{record.policy}]"
        )
        runs[key] = {
            "benchmark": record.benchmark,
            "num_qubits": record.num_qubits,
            "scenario": record.scenario,
            "severity": record.severity,
            "dead_fraction": record.dead_fraction,
            "policy": record.policy,
            "recovered": record.recovered,
            "yield_degraded": record.yield_degraded,
            "yield_analytic": record.yield_analytic,
            "yield_mc": record.yield_mc,
            "shots": record.shots,
            "rerouted_fusions": record.rerouted_fusions,
            "fusions": record.num_fusions,
            "cached": record.cached,
        }
    payload = {
        "schema_version": SCHEMA_VERSION,
        "label": label,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "meta": meta or {},
        "summary": summarize_survival(records),
        "runs": runs,
    }
    atomic_write_json(path, payload)
    return path


def check_recovery(records: Sequence[RunRecord]) -> List[str]:
    """CI gate: the sweep must demonstrate actual recoveries.

    Returns a list of failure messages (empty = pass).  Checks:

    * at least one scenario group where ``survive`` fails and
      ``reroute`` recovers;
    * at least one where ``survive`` fails and ``recompile`` recovers;
    * every severity-0 row reports ``recovered=True``.
    """
    summary = summarize_survival(records)
    failures = []
    if summary["survive_failures"] == 0:
        failures.append(
            "no scenario collapsed the as-compiled (survive) yield — "
            "the sweep exercises no recovery at all"
        )
    if summary["reroute_rescues"] == 0:
        failures.append(
            "no survive-failed scenario was recovered by reroute"
        )
    if summary["recompile_rescues"] == 0:
        failures.append(
            "no survive-failed scenario was recovered by recompile"
        )
    for tag in summary["severity_zero_failures"]:
        failures.append(f"severity-0 row not recovered: {tag}")
    return failures


def run_degrade_sweep(
    benchmarks: Optional[Sequence[Tuple[str, int]]] = None,
    scenarios: Sequence[str] = SCENARIOS,
    severities: Sequence[float] = DEGRADE_SEVERITIES,
    policies: Sequence[str] = POLICIES,
    noise: Tuple[Tuple[str, float], ...] = MILD_NOISE,
    resource_state: str = "3-line",
    shots: int = 0,
    seed: int = 7,
    mc_engine: str = "frame",
    jobs: Optional[int] = None,
    cache_dir: Optional[pathlib.Path] = None,
    out_dir: Optional[pathlib.Path] = None,
    stem: str = "degrade_sweep",
    label: str = "degradation",
) -> List[RunRecord]:
    """Run the survival sweep; persist artifacts when *out_dir* given.

    Artifacts: ``<stem>.json``/``.csv`` (the standard run table) and
    ``BENCH_<label>.json`` (survival summary keyed per scenario row).
    """
    specs = degrade_specs(
        benchmarks,
        scenarios=scenarios,
        severities=severities,
        policies=policies,
        noise=noise,
        resource_state=resource_state,
        shots=shots,
        seed=seed,
        mc_engine=mc_engine,
    )
    runner = BatchRunner(jobs=jobs, cache_dir=cache_dir)
    records = runner.run(specs)
    if out_dir is not None:
        out_dir = pathlib.Path(out_dir)
        meta = {
            "grid": "degrade_sweep",
            "benchmarks": [list(b) for b in (benchmarks or DEGRADE_BENCHMARKS)],
            "scenarios": list(scenarios),
            "severities": [float(s) for s in severities],
            "policies": list(policies),
            "noise": [list(pair) for pair in noise],
            "resource_state": resource_state,
            "shots": shots,
            "seed": seed,
        }
        write_run_table(records, out_dir, stem=stem, meta=meta)
        write_degradation_json(
            records, out_dir / f"BENCH_{label}.json", label=label, meta=meta
        )
    return records
