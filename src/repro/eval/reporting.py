"""Text renderers for the experiment runners (paper-style tables)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.baseline.metrics import BaselineAreas
from repro.core.compiler import CompiledProgram
from repro.eval.experiments import PAPER_TABLE2, ComparisonRow


def _table(headers: Sequence[str], rows: List[Sequence[object]]) -> str:
    cells = [list(map(str, headers))] + [list(map(str, r)) for r in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_table1(rows: List[Tuple[str, BaselineAreas]]) -> str:
    """Table 1: benchmark sizes and baseline areas."""
    body = [
        (
            f"{name}-{areas.num_qubits}",
            areas.num_qubits,
            f"{areas.cluster_side}x{areas.cluster_side}",
            f"{areas.physical_side}x{areas.physical_side}",
        )
        for name, areas in rows
    ]
    return _table(["Name", "#qubit", "cluster area", "physical area"], body)


def render_table2(rows: List[ComparisonRow], with_paper: bool = True) -> str:
    """Table 2: baseline vs OneQ depth and #fusions + improvements."""
    headers = [
        "Name-#q",
        "Base Depth",
        "Our Depth",
        "Improv.",
        "Base #Fus",
        "Our #Fus",
        "Improv.",
    ]
    if with_paper:
        headers += ["Paper D-Improv.", "Paper F-Improv."]
    body = []
    for row in rows:
        cells = [
            row.label,
            row.baseline.depth,
            row.oneq.physical_depth,
            f"{row.depth_improvement:.0f}x",
            f"{row.baseline.num_fusions:,}",
            f"{row.oneq.num_fusions:,}",
            f"{row.fusion_improvement:.0f}x",
        ]
        if with_paper:
            paper = PAPER_TABLE2.get((row.name, row.num_qubits))
            if paper:
                bd, od, bf, of = paper
                cells += [f"{bd / od:.0f}x", f"{bf / of:.0f}x"]
            else:
                cells += ["-", "-"]
        body.append(cells)
    return _table(headers, body)


def render_fig12(results: Dict[str, List[ComparisonRow]]) -> str:
    """Fig. 12: improvement factors per resource-state type."""
    rst_names = list(results.keys())
    benches = [row.label for row in next(iter(results.values()))]
    depth_rows = []
    fusion_rows = []
    for i, bench in enumerate(benches):
        depth_rows.append(
            [bench]
            + [f"{results[r][i].depth_improvement:.0f}x" for r in rst_names]
        )
        fusion_rows.append(
            [bench]
            + [f"{results[r][i].fusion_improvement:.0f}x" for r in rst_names]
        )
    return (
        "depth improvement\n"
        + _table(["bench"] + rst_names, depth_rows)
        + "\n\n#fusion improvement\n"
        + _table(["bench"] + rst_names, fusion_rows)
    )


def _normalized(
    per_key: Dict[float, CompiledProgram], base_key
) -> Dict[float, Tuple[float, float]]:
    base = per_key[base_key]
    return {
        key: (
            prog.physical_depth / max(1, base.physical_depth),
            prog.num_fusions / max(1, base.num_fusions),
        )
        for key, prog in per_key.items()
    }


def render_fig13(results: Dict[str, Dict[float, CompiledProgram]]) -> str:
    """Fig. 13: normalized depth/#fusions per layer aspect ratio."""
    ratios = sorted(next(iter(results.values())).keys())
    rows = []
    for bench, per_ratio in results.items():
        norm = _normalized(per_ratio, base_key=ratios[0])
        rows.append(
            [bench]
            + [f"{norm[r][0]:.2f}/{norm[r][1]:.2f}" for r in ratios]
        )
    return _table(
        ["bench (depth/fus)"] + [f"ratio {r}" for r in ratios], rows
    )


def render_fig14(program: CompiledProgram) -> str:
    """Fig. 14: one benchmark mapped onto an extended physical layer."""
    return (
        f"{program.name}: extension={program.extension} "
        f"mapping_layers={program.mapping_layers} "
        f"shuffle_layers={program.shuffle_layers} "
        f"physical depth={program.physical_depth} "
        f"fusions={program.num_fusions:,}"
    )


def render_ablation(results: Dict[str, CompiledProgram]) -> str:
    """Compiler-variant ablation: depth/#fusions per variant."""
    base = results.get("default")
    rows = []
    for variant, prog in results.items():
        cells = [
            variant,
            prog.physical_depth,
            f"{prog.num_fusions:,}",
        ]
        if base is not None:
            cells += [
                f"{prog.physical_depth / max(1, base.physical_depth):.2f}",
                f"{prog.num_fusions / max(1, base.num_fusions):.2f}",
            ]
        rows.append(cells)
    headers = ["variant", "depth", "#fusions"]
    if base is not None:
        headers += ["depth/default", "fusions/default"]
    return _table(headers, rows)


def render_survival_table(records: Sequence) -> str:
    """Survival curves of a degradation sweep (``repro degrade-sweep``).

    One block per (benchmark, scenario): policies as rows, severities as
    columns, each cell the degraded yield with a ``*`` marker when the
    policy met the recovery bar.  Rows without a degradation stage are
    skipped.
    """
    groups: Dict[Tuple[str, str], Dict[Tuple[str, float], object]] = {}
    severities: Dict[Tuple[str, str], List[float]] = {}
    for r in records:
        if not getattr(r, "scenario", "") or r.policy is None:
            continue
        key = (r.label, r.scenario)
        groups.setdefault(key, {})[(r.policy, r.severity)] = r
        if r.severity not in severities.setdefault(key, []):
            severities[key].append(r.severity)
    blocks = []
    for key in sorted(groups):
        label, scenario = key
        sevs = sorted(severities[key])
        policies = sorted({p for p, _ in groups[key]})
        rows = []
        for policy in policies:
            cells: List[object] = [policy]
            for sev in sevs:
                r = groups[key].get((policy, sev))
                if r is None or r.yield_degraded is None:
                    cells.append("-")
                else:
                    mark = "*" if r.recovered else " "
                    cells.append(f"{r.yield_degraded:.4f}{mark}")
            rows.append(cells)
        blocks.append(
            f"{label} / {scenario}  (* = recovered)\n"
            + _table(
                ["policy"] + [f"sev {s:g}" for s in sevs], rows
            )
        )
    return "\n\n".join(blocks) if blocks else "(no degradation rows)"


def render_fig15(
    results: Dict[str, Dict[int, CompiledProgram]], base_area: int = 256
) -> str:
    """Fig. 15: normalized depth/#fusions per physical area."""
    areas = sorted(next(iter(results.values())).keys())
    base = base_area if base_area in areas else areas[0]
    rows = []
    for bench, per_area in results.items():
        norm = _normalized(per_area, base_key=base)
        rows.append(
            [bench]
            + [f"{norm[a][0]:.2f}/{norm[a][1]:.2f}" for a in areas]
        )
    return _table(
        ["bench (depth/fus)"] + [f"area {a}" for a in areas], rows
    )
