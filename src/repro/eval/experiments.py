"""Experiment runners: one per table/figure of the paper's evaluation.

Each ``run_*`` function regenerates the corresponding table or figure
data with our compiler stack; renderers in :mod:`repro.eval.reporting`
print them in the paper's format.  Absolute values are not expected to
match the paper (our baseline router and substrates differ) but the
shapes — who wins, by what order of magnitude, where trends bend — are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baseline.interpreter import BaselineResult, compile_baseline
from repro.baseline.metrics import BaselineAreas, physical_side
from repro.circuit.benchmarks import get_benchmark
from repro.core.compiler import CompiledProgram, OneQCompiler, OneQConfig
from repro.hardware.coupling import HardwareConfig
from repro.hardware.resource_state import (
    RESOURCE_STATES,
    THREE_LINE,
    ResourceStateType,
)

#: The paper's Table 1 / Table 2 benchmark grid, extended with the
#: 100-qubit QFT/QAOA scaling rows the packed compile path makes cheap.
TABLE_BENCHMARKS: List[Tuple[str, int]] = [
    ("QFT", 16),
    ("QFT", 25),
    ("QFT", 36),
    ("QFT", 100),
    ("QAOA", 16),
    ("QAOA", 25),
    ("QAOA", 36),
    ("QAOA", 100),
    ("RCA", 16),
    ("RCA", 25),
    ("RCA", 36),
    ("BV", 16),
    ("BV", 25),
    ("BV", 100),
]

#: Paper-reported numbers for side-by-side reporting (Table 2).
PAPER_TABLE2: Dict[Tuple[str, int], Tuple[int, int, int, int]] = {
    # (baseline depth, oneq depth, baseline fusions, oneq fusions)
    ("QFT", 16): (787, 83, 201472, 8167),
    ("QFT", 25): (1518, 162, 669438, 26921),
    ("QFT", 36): (2712, 324, 1695000, 66830),
    ("QAOA", 16): (595, 29, 152320, 2578),
    ("QAOA", 25): (1287, 63, 567567, 8343),
    ("QAOA", 36): (2648, 122, 1655000, 21302),
    ("RCA", 16): (734, 46, 187904, 4568),
    ("RCA", 25): (1273, 65, 561393, 8915),
    ("RCA", 36): (1934, 85, 1208750, 14115),
    ("BV", 16): (94, 1, 24064, 63),
    ("BV", 25): (181, 1, 79821, 114),
    ("BV", 100): (787, 4, 1455163, 644),
}


@dataclass
class ComparisonRow:
    """One Table 2 row: baseline vs OneQ on the same physical area."""

    name: str
    num_qubits: int
    baseline: BaselineResult
    oneq: CompiledProgram

    @property
    def label(self) -> str:
        return f"{self.name}-{self.num_qubits}"

    @property
    def depth_improvement(self) -> float:
        return self.baseline.depth / max(1, self.oneq.physical_depth)

    @property
    def fusion_improvement(self) -> float:
        return self.baseline.num_fusions / max(1, self.oneq.num_fusions)


def _hardware_for(
    num_qubits: int,
    resource_state: ResourceStateType,
    ratio: float = 1.0,
    area: Optional[int] = None,
    extension: int = 1,
) -> HardwareConfig:
    """Hardware sized like the baseline requires (Sec. 7.1), by default."""
    if area is None:
        side = physical_side(num_qubits, resource_state)
        area = side * side
    return HardwareConfig.with_area(
        area, ratio=ratio, resource_state=resource_state, extension=extension
    )


def compare_one(
    name: str,
    num_qubits: int,
    resource_state: ResourceStateType = THREE_LINE,
    ratio: float = 1.0,
    area: Optional[int] = None,
    seed: int = 7,
    **compiler_kwargs,
) -> ComparisonRow:
    """Compile one benchmark with both flows on the same physical area."""
    circuit = get_benchmark(name, num_qubits, seed=seed)
    baseline = compile_baseline(circuit, name=name, resource_state=resource_state)
    hardware = _hardware_for(num_qubits, resource_state, ratio=ratio, area=area)
    compiler = OneQCompiler(OneQConfig(hardware=hardware, **compiler_kwargs))
    oneq = compiler.compile(circuit, name=f"{name}-{num_qubits}")
    return ComparisonRow(
        name=name, num_qubits=num_qubits, baseline=baseline, oneq=oneq
    )


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
def run_table1(
    benchmarks: Optional[Sequence[Tuple[str, int]]] = None,
) -> List[Tuple[str, BaselineAreas]]:
    """Benchmark programs and their baseline areas (Table 1).

    Defaults to the paper's own rows: the compile grid's extra
    100-qubit scaling rows have no Table-1 counterpart to compare
    against.
    """
    if benchmarks is None:
        benchmarks = [key for key in TABLE_BENCHMARKS if key in PAPER_TABLE2]
    return [
        (name, BaselineAreas.for_qubits(n)) for name, n in benchmarks
    ]


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------
def run_table2(
    benchmarks: Optional[Sequence[Tuple[str, int]]] = None,
    resource_state: ResourceStateType = THREE_LINE,
) -> List[ComparisonRow]:
    """Baseline vs OneQ on every benchmark (Table 2)."""
    benchmarks = list(benchmarks or TABLE_BENCHMARKS)
    return [
        compare_one(name, n, resource_state=resource_state)
        for name, n in benchmarks
    ]


# ----------------------------------------------------------------------
# Figure 12: resource-state types
# ----------------------------------------------------------------------
def run_fig12(
    num_qubits: int = 16,
    benchmarks: Sequence[str] = ("QFT", "QAOA", "RCA", "BV"),
    resource_states: Optional[Sequence[str]] = None,
) -> Dict[str, List[ComparisonRow]]:
    """Improvement factors for each resource-state type (Fig. 12)."""
    names = list(resource_states or RESOURCE_STATES.keys())
    out: Dict[str, List[ComparisonRow]] = {}
    for rst_name in names:
        rst = RESOURCE_STATES[rst_name]
        out[rst_name] = [
            compare_one(bench, num_qubits, resource_state=rst)
            for bench in benchmarks
        ]
    return out


# ----------------------------------------------------------------------
# Figure 13: layer aspect ratio
# ----------------------------------------------------------------------
#: The paper's four layer shapes for 16-qubit benchmarks.
FIG13_SHAPES: List[Tuple[float, Tuple[int, int]]] = [
    (1.0, (16, 16)),
    (1.5, (13, 20)),
    (2.1, (11, 23)),
    (2.6, (10, 26)),
]


def run_fig13(
    num_qubits: int = 16,
    benchmarks: Sequence[str] = ("QFT", "QAOA", "RCA", "BV"),
    seed: int = 7,
) -> Dict[str, Dict[float, CompiledProgram]]:
    """OneQ on rectangular layers, keyed benchmark -> ratio (Fig. 13)."""
    out: Dict[str, Dict[float, CompiledProgram]] = {}
    for bench in benchmarks:
        circuit = get_benchmark(bench, num_qubits, seed=seed)
        per_ratio: Dict[float, CompiledProgram] = {}
        for ratio, (rows, cols) in FIG13_SHAPES:
            hardware = HardwareConfig(rows=rows, cols=cols)
            compiler = OneQCompiler(OneQConfig(hardware=hardware))
            per_ratio[ratio] = compiler.compile(
                circuit, name=f"{bench}-{num_qubits}@{ratio}"
            )
        out[bench] = per_ratio
    return out


# ----------------------------------------------------------------------
# Figure 15: physical area sweep
# ----------------------------------------------------------------------
def run_fig15(
    num_qubits: int = 16,
    benchmarks: Sequence[str] = ("QFT", "QAOA", "RCA", "BV"),
    areas: Sequence[int] = (100, 200, 256, 400, 600, 800, 1000),
    seed: int = 7,
) -> Dict[str, Dict[int, CompiledProgram]]:
    """OneQ across physical areas (Fig. 15; 256 is the baseline area)."""
    out: Dict[str, Dict[int, CompiledProgram]] = {}
    for bench in benchmarks:
        circuit = get_benchmark(bench, num_qubits, seed=seed)
        per_area: Dict[int, CompiledProgram] = {}
        for area in areas:
            hardware = HardwareConfig.with_area(area)
            compiler = OneQCompiler(OneQConfig(hardware=hardware))
            per_area[area] = compiler.compile(
                circuit, name=f"{bench}-{num_qubits}@{area}"
            )
        out[bench] = per_area
    return out


# ----------------------------------------------------------------------
# Fidelity estimate (paper Sec. 2.1 motivation, extension experiment)
# ----------------------------------------------------------------------
def run_fidelity(
    benchmarks: Optional[Sequence[Tuple[str, int]]] = None,
    model=None,
) -> List[Tuple[ComparisonRow, float, float, float]]:
    """Estimated log-fidelity of baseline vs OneQ programs.

    Returns ``(row, baseline_logF, oneq_logF, improvement_factor)`` per
    benchmark, quantifying the paper's claim that reducing fusions
    enhances overall fidelity.
    """
    from repro.hardware.noise import (
        DEFAULT_NOISE,
        baseline_log_fidelity,
        fidelity_improvement_factor,
        program_log_fidelity,
    )

    model = model or DEFAULT_NOISE
    benchmarks = list(benchmarks or [(n, 16) for n in ("QFT", "QAOA", "RCA", "BV")])
    out = []
    for name, n in benchmarks:
        row = compare_one(name, n)
        base_lf = baseline_log_fidelity(row.baseline, model)
        oneq_lf = program_log_fidelity(row.oneq, model)
        factor = fidelity_improvement_factor(row.oneq, row.baseline, model)
        out.append((row, base_lf, oneq_lf, factor))
    return out


# ----------------------------------------------------------------------
# Noise sweep: Monte-Carlo yield across noise x hardware coordinates
# ----------------------------------------------------------------------
#: Default 16-qubit grid for the noise sweep (one Clifford benchmark —
#: BV — gets full Monte-Carlo treatment; the rest are analytic-only).
NOISE_SWEEP_BENCHMARKS: List[Tuple[str, int]] = [
    ("QFT", 16),
    ("QAOA", 16),
    ("RCA", 16),
    ("BV", 16),
]


def noise_sweep_specs(
    benchmarks: Optional[Sequence[Tuple[str, int]]] = None,
    fusion_success: Sequence[float] = (0.5, 0.75),
    cycle_loss: Sequence[float] = (0.001, 0.01),
    resource_states: Sequence[str] = ("3-line",),
    shots: int = 2000,
    seed: int = 7,
    mc_engine: str = "frame",
):
    """Build the spec grid for :func:`run_noise_sweep`.

    One :class:`repro.eval.batch.RunSpec` per (benchmark, resource
    state, fusion_success, cycle_loss) coordinate; every spec carries
    ``shots`` Monte-Carlo shots, its noise overrides and the sampler
    execution path (``mc_engine``: "frame" default — bit-packed Pauli
    frames — with "batched" and the "per-shot" reference available), so
    yields and throughput land in the schema-v5 run-table columns.
    """
    from repro.eval.batch import RunSpec

    benchmarks = list(benchmarks or NOISE_SWEEP_BENCHMARKS)
    specs = []
    for name, n in benchmarks:
        for rst_name in resource_states:
            for fs in fusion_success:
                for cl in cycle_loss:
                    specs.append(
                        RunSpec(
                            benchmark=name,
                            num_qubits=n,
                            seed=seed,
                            resource_state=rst_name,
                            shots=shots,
                            noise=(
                                ("cycle_loss", float(cl)),
                                ("fusion_success", float(fs)),
                            ),
                            mc_engine=mc_engine,
                        )
                    )
    return specs


def run_noise_sweep(
    benchmarks: Optional[Sequence[Tuple[str, int]]] = None,
    fusion_success: Sequence[float] = (0.5, 0.75),
    cycle_loss: Sequence[float] = (0.001, 0.01),
    resource_states: Sequence[str] = ("3-line",),
    shots: int = 2000,
    seed: int = 7,
    jobs: Optional[int] = None,
    cache_dir=None,
    out_dir=None,
    stem: str = "noise_sweep",
    label: str = "noise_sweep",
    mc_engine: str = "frame",
):
    """Sweep noise-model and hardware coordinates, sampling yields.

    The paper's whole argument is hardware-physical: compiled-program
    quality is ultimately end-to-end success probability (Sec. 2.1,
    3.1).  This runner makes that a first-class sweepable workload:
    each benchmark is compiled per resource-state choice, its compiled
    fault counts feed the Monte-Carlo sampler per noise point, and the
    run table gains ``yield_mc`` / ``yield_analytic`` columns.  When
    *out_dir* is given, artifacts (``<stem>.json``/``.csv`` +
    ``BENCH_<label>.json``) are persisted there.

    Args mirror :func:`noise_sweep_specs`; ``jobs``/``cache_dir`` are
    forwarded to :class:`repro.eval.batch.BatchRunner`.
    """
    from repro.eval.batch import (
        BatchRunner,
        write_noise_sweep_json,
        write_run_table,
    )

    specs = noise_sweep_specs(
        benchmarks,
        fusion_success=fusion_success,
        cycle_loss=cycle_loss,
        resource_states=resource_states,
        shots=shots,
        seed=seed,
        mc_engine=mc_engine,
    )
    runner = BatchRunner(jobs=jobs, cache_dir=cache_dir)
    records = runner.run(specs)
    if out_dir is not None:
        meta = {
            "grid": "noise_sweep",
            "seed": seed,
            "shots": shots,
            "fusion_success": list(fusion_success),
            "cycle_loss": list(cycle_loss),
            "resource_states": list(resource_states),
            "mc_engine": mc_engine,
        }
        write_run_table(records, out_dir, stem=stem, meta=meta)
        import pathlib

        write_noise_sweep_json(
            records,
            pathlib.Path(out_dir) / f"BENCH_{label}.json",
            label=label,
            meta=meta,
        )
    return records


# ----------------------------------------------------------------------
# Ablations: the design choices DESIGN.md calls out
# ----------------------------------------------------------------------
def run_ablation(
    name: str = "QFT",
    num_qubits: int = 16,
    seed: int = 7,
) -> Dict[str, CompiledProgram]:
    """Compile one benchmark under each compiler variant.

    Variants: ``default``, ``lemma1-scheduling`` (pure Lemma-1 layers,
    geometry scattered), ``no-embedding`` (ignore planar rotational
    order), ``no-hints`` (no cross-partition placement hints), and
    ``alpha-1`` (weak total-blockage penalty).
    """
    from repro.core.partition import PartitionConfig

    circuit = get_benchmark(name, num_qubits, seed=seed)
    hardware = _hardware_for(num_qubits, THREE_LINE)

    def compile_with(**kwargs) -> CompiledProgram:
        compiler = OneQCompiler(OneQConfig(hardware=hardware, **kwargs))
        return compiler.compile(circuit, name=f"{name}-{num_qubits}")

    return {
        "default": compile_with(),
        "lemma1-scheduling": compile_with(
            partition=PartitionConfig(scheduling="lemma1")
        ),
        "no-embedding": compile_with(use_embedding=False),
        "no-hints": compile_with(use_placement_hints=False),
        "alpha-1": compile_with(alpha=1.5),
    }


# ----------------------------------------------------------------------
# Figure 14: extended physical layers
# ----------------------------------------------------------------------
def run_fig14(
    num_qubits: int = 16, side: int = 13, extension: int = 3, seed: int = 7
) -> CompiledProgram:
    """QFT mapping on an extended layer (Fig. 14: 3 x 13x13 -> 13x39)."""
    circuit = get_benchmark("QFT", num_qubits, seed=seed)
    hardware = HardwareConfig(rows=side, cols=side, extension=extension)
    compiler = OneQCompiler(OneQConfig(hardware=hardware))
    return compiler.compile(circuit, name=f"QFT-{num_qubits}-ext{extension}")
