"""Regenerates paper Table 1: benchmark programs and baseline areas.

Run: ``pytest benchmarks/bench_table1.py --benchmark-only``
"""

from repro.eval import render_table1, run_table1

from benchmarks.conftest import save_table


def test_table1(benchmark, results_dir):
    rows = benchmark.pedantic(run_table1, rounds=3, iterations=1)
    by_key = {(name, a.num_qubits): a for name, a in rows}

    # Table 1 is analytic and must match the paper exactly.
    assert by_key[("QFT", 16)].cluster_side == 7
    assert by_key[("QFT", 16)].physical_side == 16
    assert by_key[("QFT", 25)].cluster_side == 9
    assert by_key[("QFT", 25)].physical_side == 21
    assert by_key[("QFT", 36)].cluster_side == 11
    assert by_key[("QFT", 36)].physical_side == 25
    assert by_key[("BV", 100)].cluster_side == 19
    assert by_key[("BV", 100)].physical_side == 43

    save_table(results_dir, "table1", render_table1(rows))
