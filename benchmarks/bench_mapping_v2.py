#!/usr/bin/env python
"""Packed compile-path benchmark: bit-packed mapper/shuffler vs baselines.

Workload (the compile pipeline's hot half): translate + schedule +
partition a benchmark circuit once, build every partition's fusion graph
once, then run in-layer mapping and inter-layer shuffling over those
shared inputs on three implementations:

* **packed** — the live bit-packed path (``repro.core.mapping`` /
  ``repro.core.shuffling``);
* **reference** — the frozen scalar predecessors
  (``tests/core/reference_mapping.py`` / ``reference_shuffling.py``),
  semantically identical to the packed path.  Placements, layer
  occupancy, fusion tallies and shuffle paths must match **bit for
  bit**;
* **seed** — the repo's v0 mapper/shuffler
  (``tests/core/seed_mapping.py`` / ``seed_shuffling.py``), the same
  role the seed CHP engine plays for ``bench_stabilizer.py``.  The seed
  predates several semantic fixes, so only its wall clock is recorded —
  the **speedup gate compares packed against seed**, while correctness
  is pinned against the reference.

Timed sections take the minimum over ``--repeats`` passes for the
packed and reference paths (the seed is slow enough that one pass
averages out scheduler noise).

The ``--full`` stage additionally compiles QFT-100 end-to-end through
:class:`repro.core.compiler.OneQCompiler` (packed path only — the
scalar paths never saw 100-qubit inputs in CI) and gates its wall
clock.

Run:  PYTHONPATH=src python benchmarks/bench_mapping_v2.py

Writes ``benchmarks/BENCH_mapping_v2.json`` and exits non-zero when the
packed outputs diverge from the reference, the QFT-36 mapping+shuffling
speedup over the seed drops below the 5x gate, or the QFT-100 compile
exceeds the wall-clock budget.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_ROOT = pathlib.Path(__file__).resolve().parents[1]
for entry in (str(_ROOT / "src"), str(_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.circuit.benchmarks import get_benchmark  # noqa: E402
from repro.core import mapping as packed_mapping  # noqa: E402
from repro.core import shuffling as packed_shuffling  # noqa: E402
from repro.core.compiler import OneQCompiler, OneQConfig  # noqa: E402
from repro.core.fusion_graph import build_fusion_graph  # noqa: E402
from repro.core.partition import (  # noqa: E402
    PartitionConfig,
    partition_pattern,
    required_degrees,
    schedule_layers,
)
from repro.eval.experiments import _hardware_for  # noqa: E402
from repro.hardware.resource_state import THREE_LINE  # noqa: E402
from repro.mbqc.translate import circuit_to_pattern  # noqa: E402
from tests.core import reference_mapping  # noqa: E402
from tests.core import reference_shuffling  # noqa: E402
from tests.core import seed_mapping  # noqa: E402
from tests.core import seed_shuffling  # noqa: E402

SPEEDUP_GATE = 5.0
QFT100_BUDGET_SECONDS = 60.0


def build_inputs(name: str, qubits: int):
    """Shared front half of the compile: pattern through fusion graphs."""
    circuit = get_benchmark(name, qubits)
    hardware = _hardware_for(qubits, THREE_LINE)
    pattern = circuit_to_pattern(circuit)
    rst = hardware.resource_state
    rows, cols = hardware.extended_shape
    part_cfg = PartitionConfig(target_states=max(4, int(0.7 * rows * cols)))
    layers = schedule_layers(pattern, part_cfg)
    estimator = lambda node: rst.states_for_degree(  # noqa: E731
        pattern.graph.degree(node)
    )
    partitions = partition_pattern(
        pattern, part_cfg, size_estimator=estimator, layers=layers
    )
    home = {}
    for part in partitions:
        for node in part.nodes:
            home[node] = part.index
    port_of = {}
    fusion_graphs = []
    for part in partitions:
        cross_nbrs = {
            node: [
                nbr
                for nbr in pattern.graph.neighbors(node)
                if home[nbr] != part.index
            ]
            for node in part.nodes
        }
        degrees = required_degrees(part, pattern.graph)
        fusion = build_fusion_graph(
            part.subgraph, degrees, rst, cross_neighbors=cross_nbrs
        )
        fusion_graphs.append(fusion)
        port_of.update(fusion.port_of)
    return hardware, partitions, fusion_graphs, port_of


def run_pipeline(mapping_mod, shuffling_mod, hardware, partitions,
                 fusion_graphs, port_of):
    """Map + shuffle on prebuilt fusion graphs (the compiler's walk)."""
    shape = hardware.extended_shape
    mapper = mapping_mod.InLayerMapper(
        shape=shape, resource_state=hardware.resource_state
    )
    deferred = []
    tally = {"synthesis": 0, "edge": 0, "routing": 0}
    t0 = time.perf_counter()
    for part, fusion in zip(partitions, fusion_graphs):
        hints = {}
        for u, v in part.back_edges:
            src_port = port_of.get((u, v))
            dst_port = fusion.port_of.get((v, u))
            if src_port is None or dst_port is None:
                continue
            placed = mapper.placements.get(src_port)
            if placed is not None:
                hints[dst_port] = placed.coord
        result = mapper.map_fusion_graph(fusion, hints=hints)
        tally["synthesis"] += result.synthesis_fusions
        tally["edge"] += result.edge_fusions
        tally["routing"] += result.routing_fusions
        deferred.extend(result.deferred_edges)
    map_seconds = time.perf_counter() - t0

    pairs_by_boundary = {}

    def add_pair(pa, pb):
        boundary = max(pa.layer, pb.layer)
        pairs_by_boundary.setdefault(boundary, []).append((pa.coord, pb.coord))

    for a, b in deferred:
        add_pair(mapper.placements[a], mapper.placements[b])
    for part in partitions:
        for u, v in part.back_edges:
            pu, pv = port_of.get((u, v)), port_of.get((v, u))
            if pu is None or pv is None:
                raise RuntimeError(f"missing port for cross edge {(u, v)}")
            add_pair(mapper.placements[pu], mapper.placements[pv])

    t0 = time.perf_counter()
    shuffle_fusions = 0
    shuffle_paths = []
    for boundary in sorted(pairs_by_boundary):
        result = shuffling_mod.connect_pairs(pairs_by_boundary[boundary],
                                             shape)
        shuffle_fusions += result.fusions
        for layer in result.layers:
            shuffle_paths.append(sorted(map(tuple, layer.paths)))
    shuffle_seconds = time.perf_counter() - t0

    return {
        "map_seconds": map_seconds,
        "shuffle_seconds": shuffle_seconds,
        "placements": {
            node: (place.layer, place.coord)
            for node, place in mapper.placements.items()
        },
        "layers": [
            (sorted(layer.node_at.items()), sorted(layer.aux_cells),
             sorted(map(tuple, layer.paths)), sorted(layer.incomplete))
            for layer in mapper.layers
        ],
        "tally": tally,
        "shuffle_fusions": shuffle_fusions,
        "shuffle_paths": shuffle_paths,
    }


def _best_of(mapping_mod, shuffling_mod, inputs, repeats):
    """Repeat the pipeline, keeping the fastest timings (last outputs)."""
    best_map = best_shuffle = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        result = run_pipeline(mapping_mod, shuffling_mod, *inputs)
        best_map = min(best_map, result["map_seconds"])
        best_shuffle = min(best_shuffle, result["shuffle_seconds"])
    result["map_seconds"] = best_map
    result["shuffle_seconds"] = best_shuffle
    return result


def compare_case(name: str, qubits: int, repeats: int = 3):
    """One benchmark: packed vs reference (identity) and seed (speed)."""
    inputs = build_inputs(name, qubits)
    packed = _best_of(packed_mapping, packed_shuffling, inputs, repeats)
    ref = _best_of(reference_mapping, reference_shuffling, inputs, repeats)
    seed = run_pipeline(seed_mapping, seed_shuffling, *inputs)
    identical = all(
        ref[key] == packed[key]
        for key in ("placements", "layers", "tally", "shuffle_fusions",
                    "shuffle_paths")
    )
    packed_total = packed["map_seconds"] + packed["shuffle_seconds"]
    ref_total = ref["map_seconds"] + ref["shuffle_seconds"]
    seed_total = seed["map_seconds"] + seed["shuffle_seconds"]
    partitions = inputs[1]
    return {
        "benchmark": name,
        "num_qubits": qubits,
        "identical": identical,
        "seed_map_seconds": round(seed["map_seconds"], 4),
        "seed_shuffle_seconds": round(seed["shuffle_seconds"], 4),
        "reference_map_seconds": round(ref["map_seconds"], 4),
        "reference_shuffle_seconds": round(ref["shuffle_seconds"], 4),
        "packed_map_seconds": round(packed["map_seconds"], 4),
        "packed_shuffle_seconds": round(packed["shuffle_seconds"], 4),
        "speedup_vs_seed": round(seed_total / max(packed_total, 1e-12), 2),
        "speedup_vs_reference": round(ref_total / max(packed_total, 1e-12), 2),
        "num_partitions": len(partitions),
        "placements": len(ref["placements"]),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--cases", nargs="+", default=["QFT:36", "QFT:100"],
        help="benchmark:qubits pairs for the equivalence+speedup stage",
    )
    parser.add_argument(
        "--gate-case", default="QFT:36",
        help="case whose mapping+shuffling speedup the gate applies to",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed passes per packed/reference measurement (min is kept)",
    )
    parser.add_argument(
        "--skip-full", action="store_true",
        help="skip the QFT-100 end-to-end compile budget stage",
    )
    parser.add_argument(
        "--out",
        default=str(pathlib.Path(__file__).parent / "BENCH_mapping_v2.json"),
    )
    args = parser.parse_args(argv)

    cases = []
    for case in args.cases:
        name, _, qubits = case.partition(":")
        print(f"== {name}-{qubits}: packed vs reference/seed map+shuffle ==")
        row = compare_case(name, int(qubits), repeats=args.repeats)
        cases.append(row)
        print(json.dumps(row, indent=1))

    full = None
    if not args.skip_full:
        print("== QFT-100 end-to-end compile (packed path) ==")
        circuit = get_benchmark("QFT", 100)
        hardware = _hardware_for(100, THREE_LINE)
        compiler = OneQCompiler(OneQConfig(hardware=hardware))
        t0 = time.perf_counter()
        program = compiler.compile(circuit, name="QFT100")
        seconds = time.perf_counter() - t0
        full = {
            "benchmark": "QFT",
            "num_qubits": 100,
            "seconds": round(seconds, 3),
            "budget_seconds": QFT100_BUDGET_SECONDS,
            "depth": program.physical_depth,
            "num_fusions": program.num_fusions,
            "stage_seconds": {
                key: round(value, 4)
                for key, value in program.stage_seconds.items()
            },
        }
        print(json.dumps(full, indent=1))

    gate_rows = [
        row for row in cases
        if f"{row['benchmark']}:{row['num_qubits']}" == args.gate_case
    ]
    ok = all(row["identical"] for row in cases)
    gate_speedup = gate_rows[0]["speedup_vs_seed"] if gate_rows else None
    if gate_rows and gate_speedup < SPEEDUP_GATE:
        ok = False
    if full is not None and full["seconds"] > QFT100_BUDGET_SECONDS:
        ok = False

    payload = {
        "label": "mapping_v2",
        "gate": {
            "speedup_case": args.gate_case,
            "speedup_min": SPEEDUP_GATE,
            "speedup_baseline": "seed",
            "speedup": gate_speedup,
            "qft100_budget_seconds": QFT100_BUDGET_SECONDS,
        },
        "cases": cases,
        "full_compile": full,
        "ok": ok,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {out}")
    if not ok:
        print("FAIL: equivalence or speedup gate not met", file=sys.stderr)
        return 1
    print(f"OK: {args.gate_case} map+shuffle speedup over seed "
          f"{gate_speedup}x >= {SPEEDUP_GATE}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
