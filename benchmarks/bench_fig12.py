"""Regenerates paper Fig. 12: improvement factors per resource-state type.

Paper claim: OneQ achieves similar levels of improvement across 3-line,
4-line, 4-star and 4-ring resource states (16-qubit benchmarks).
"""

import pytest

from repro.eval import compare_one, render_fig12
from repro.hardware import RESOURCE_STATES

from benchmarks.conftest import save_table

BENCHES = ("QFT", "QAOA", "RCA", "BV")
_RESULTS = {}


@pytest.mark.parametrize("rst_name", sorted(RESOURCE_STATES))
def test_resource_state(benchmark, rst_name):
    rst = RESOURCE_STATES[rst_name]

    def run():
        return [
            compare_one(bench, 16, resource_state=rst) for bench in BENCHES
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[rst_name] = rows
    for row in rows:
        assert row.depth_improvement > 1, (rst_name, row.label)
        assert row.fusion_improvement > 1, (rst_name, row.label)


def test_fig12_shape(benchmark, results_dir):
    results = dict(_RESULTS)
    for rst_name in RESOURCE_STATES:
        if rst_name not in results:
            rst = RESOURCE_STATES[rst_name]
            results[rst_name] = [
                compare_one(bench, 16, resource_state=rst) for bench in BENCHES
            ]
    benchmark.pedantic(render_fig12, args=(results,), rounds=1, iterations=1)

    # "similar levels of improvement" across resource states: per
    # benchmark, the best/worst fusion factor stays within one order.
    for i, bench in enumerate(BENCHES):
        factors = [results[r][i].fusion_improvement for r in results]
        assert max(factors) / min(factors) < 10, (bench, factors)
    # BV dominates for every resource state
    for rst_name, rows in results.items():
        by_bench = {row.name: row.fusion_improvement for row in rows}
        assert by_bench["BV"] == max(by_bench.values()), rst_name

    save_table(results_dir, "fig12", render_fig12(results))
