"""Regenerates paper Fig. 15: OneQ across physical areas.

Paper claim: as physical area grows, physical depth first drops rapidly
then plateaus, while #fusions trends upward (more room means longer
routing paths are chosen instead of extra layers).
"""

import pytest

from repro.eval import render_fig15, run_fig15

from benchmarks.conftest import save_table

BENCHES = ("QFT", "QAOA", "RCA", "BV")
AREAS = (100, 256, 400, 700, 1000)
_RESULTS = {}


@pytest.mark.parametrize("bench", BENCHES)
def test_bench_across_areas(benchmark, bench):
    result = benchmark.pedantic(
        run_fig15,
        kwargs={"num_qubits": 16, "benchmarks": (bench,), "areas": AREAS},
        rounds=1,
        iterations=1,
    )
    _RESULTS.update(result)
    assert set(result[bench]) == set(AREAS)


def test_fig15_shape(benchmark, results_dir):
    results = dict(_RESULTS)
    for bench in BENCHES:
        if bench not in results:
            results.update(
                run_fig15(num_qubits=16, benchmarks=(bench,), areas=AREAS)
            )
    benchmark.pedantic(
        render_fig15, args=(results,), kwargs={"base_area": 256},
        rounds=1, iterations=1,
    )

    for bench, per_area in results.items():
        depths = [per_area[a].physical_depth for a in AREAS]
        # depth shrinks (or stays flat) from the smallest to largest area
        assert depths[0] >= depths[-1], (bench, depths)
        # plateau: the last doubling of area changes depth much less than
        # the first one did (relative terms), unless depth is already ~1
        if depths[0] > 4:
            early_gain = depths[0] / max(1, depths[1])
            late_gain = depths[-2] / max(1, depths[-1])
            assert early_gain + 0.5 >= late_gain, (bench, depths)

    save_table(results_dir, "fig15", render_fig15(results, base_area=256))
