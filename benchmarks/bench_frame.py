#!/usr/bin/env python
"""Pauli-frame engine benchmark: frame vs batched noisy execution.

Workload (same shape as ``bench_noisy.py``): a Bernstein-Vazirani
benchmark under a fusion-error-dominated noise model chosen so that
essentially every shot carries at least one fault — the regime where
the sampler actually pays for execution.  Both engines sample identical
fault configurations at the fixed seed, so their ``NoisySampleResult``
tallies must be bit-identical; the wall-clock ratio is the headline.

On top of the speedup workload, a **demo point** runs a large-shot
BV-16 yield estimate under the default noise model — the
million-shot-per-noise-point regime the frame engine exists for — and
records its throughput.  With ``--demo-shots`` at or above one million
the demo must finish within ``DEMO_TIME_GATE`` seconds.

Run:  PYTHONPATH=src python benchmarks/bench_frame.py [--shots 4000]

Writes ``benchmarks/BENCH_frame.json`` and exits non-zero when the
tallies diverge, the frame speedup drops below the 10x gate, or the
demo point misses its time gate.  ``--quick`` shrinks the workload for
a CI smoke and skips the speedup and demo gates (equivalence is still
enforced); ``--demo-shots 0`` skips the demo entirely.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.circuit import get_benchmark  # noqa: E402
from repro.hardware.noise import DEFAULT_NOISE, NoiseModel  # noqa: E402
from repro.sim.noisy import NoisySampler  # noqa: E402

SPEEDUP_GATE = 10.0
DEMO_TIME_GATE = 60.0

#: Fusion errors dominate and loss is off: nearly every shot is faulty
#: and executes, no shot is aborted before execution.
BENCH_MODEL = NoiseModel(
    fusion_success=0.75,
    fusion_error=0.05,
    cycle_loss=0.0,
    measurement_error=0.002,
)


def _tally(result):
    return {
        "shots": result.shots,
        "successes": result.successes,
        "fault_free": result.fault_free,
        "loss_aborts": result.loss_aborts,
        "logical_failures": result.logical_failures,
        "executed": result.executed,
        "fusion_attempts": result.fusion_attempts,
    }


def run_engine(sampler: NoisySampler, shots: int, engine: str, warm=False):
    if warm:
        # steady-state throughput: a tiny warm-up run absorbs one-time
        # costs (the frame-program compile, numpy dispatch warmup) that
        # a real sweep amortizes over all of its chunks
        sampler.run(max(1, min(64, shots)), engine=engine)
    t0 = time.perf_counter()
    result = sampler.run(shots, engine=engine)
    return time.perf_counter() - t0, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="BV")
    parser.add_argument("--qubits", type=int, default=16)
    parser.add_argument("--shots", type=int, default=4000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--demo-shots", type=int, default=1_000_000,
        help="shots for the default-noise demo point (0 skips it; the "
        f"<{DEMO_TIME_GATE:.0f}s gate applies from 1M shots up)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small smoke workload; equivalence only, no speedup or "
        "demo gates",
    )
    parser.add_argument(
        "--out",
        default=str(pathlib.Path(__file__).parent / "BENCH_frame.json"),
    )
    args = parser.parse_args(argv)
    shots = 300 if args.quick else args.shots
    qubits = 8 if args.quick else args.qubits
    demo_shots = 0 if args.quick else args.demo_shots

    circuit = get_benchmark(args.benchmark, qubits, seed=args.seed)

    def fresh_sampler(model=BENCH_MODEL) -> NoisySampler:
        # one sampler per engine: a fresh instance proves neither run
        # leans on the other's state (e.g. the compiled frame program)
        return NoisySampler(circuit, model=model, seed=args.seed)

    batched_seconds, batched = run_engine(
        fresh_sampler(), shots, "batched", warm=True
    )
    frame_seconds, frame = run_engine(
        fresh_sampler(), shots, "frame", warm=True
    )

    identical = _tally(frame) == _tally(batched)
    speedup = batched_seconds / max(frame_seconds, 1e-12)

    demo = None
    demo_ok = True
    if demo_shots > 0:
        demo_sampler = fresh_sampler(model=DEFAULT_NOISE)
        demo_seconds, demo_result = run_engine(
            demo_sampler, demo_shots, "frame"
        )
        demo = {
            "shots": demo_shots,
            "noise": "default",
            "seconds": round(demo_seconds, 3),
            "shots_per_second": round(demo_result.shots_per_second, 1),
            "yield_mc": round(demo_result.yield_mc, 6),
            "fault_free_yield": round(demo_result.fault_free_yield, 6),
            "executed": demo_result.executed,
            "time_gate_seconds": (
                DEMO_TIME_GATE if demo_shots >= 1_000_000 else None
            ),
        }
        demo_ok = demo_shots < 1_000_000 or demo_seconds < DEMO_TIME_GATE

    payload = {
        "schema_version": 1,
        "label": "frame_engine",
        "workload": {
            "benchmark": f"{args.benchmark}-{qubits}",
            "shots": shots,
            "faulty_shots_executed": frame.executed,
            "noise": {
                "fusion_success": BENCH_MODEL.fusion_success,
                "fusion_error": BENCH_MODEL.fusion_error,
                "cycle_loss": BENCH_MODEL.cycle_loss,
                "measurement_error": BENCH_MODEL.measurement_error,
            },
            "seed": args.seed,
            "quick": args.quick,
        },
        "batched_engine": {
            "seconds": round(batched_seconds, 5),
            "shots_per_second": round(batched.shots_per_second, 1),
        },
        "frame_engine": {
            "seconds": round(frame_seconds, 5),
            "shots_per_second": round(frame.shots_per_second, 1),
        },
        "tally": _tally(frame),
        "yield_mc": round(frame.yield_mc, 6),
        "speedup": round(speedup, 1),
        "tallies_identical": identical,
        "speedup_gate": None if args.quick else SPEEDUP_GATE,
        "demo": demo,
    }
    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(payload, indent=1) + "\n")

    print(
        f"{args.benchmark}-{qubits}, {shots} shots "
        f"({frame.executed} faulty shots executed)\n"
        f"  batched engine: {batched_seconds:.4f}s "
        f"({batched.shots_per_second:.0f} shots/s)\n"
        f"  frame engine:   {frame_seconds:.4f}s "
        f"({frame.shots_per_second:.0f} shots/s)\n"
        f"  speedup: {speedup:.1f}x; tallies identical: {identical}"
    )
    if demo is not None:
        print(
            f"  demo: {demo_shots:,} shots @ default noise in "
            f"{demo['seconds']:.2f}s ({demo['shots_per_second']:,.0f} "
            f"shots/s), yield_mc={demo['yield_mc']:.4f}"
        )
    print(f"  wrote {out_path}")
    if not identical:
        print("error: engine tallies diverged", file=sys.stderr)
        print(f"  batched: {_tally(batched)}", file=sys.stderr)
        print(f"  frame:   {_tally(frame)}", file=sys.stderr)
        return 1
    if not args.quick and speedup < SPEEDUP_GATE:
        print(
            f"error: frame speedup {speedup:.1f}x below the "
            f"{SPEEDUP_GATE:.0f}x gate",
            file=sys.stderr,
        )
        return 1
    if not demo_ok:
        print(
            f"error: {demo_shots:,}-shot demo took {demo['seconds']:.1f}s "
            f"(gate: {DEMO_TIME_GATE:.0f}s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
