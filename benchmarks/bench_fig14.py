"""Regenerates paper Fig. 14: 16-qubit QFT on an extended physical layer.

The paper shows a 13x39 extended layer (3 consecutive 13x13 layers).
The benchmark checks that extension trades per-cycle area for fewer
mapped layers and renders the first extended layer like the figure.
"""

from repro.core import render_layer
from repro.eval import run_fig14

from benchmarks.conftest import save_table


def test_fig14_extended_mapping(benchmark, results_dir):
    prog = benchmark.pedantic(
        run_fig14,
        kwargs={"num_qubits": 16, "side": 13, "extension": 3},
        rounds=1,
        iterations=1,
    )
    assert prog.layouts[0].shape == (13, 39)
    assert prog.extension == 3
    # depth accounts 3 physical layers per extended layer
    assert prog.physical_depth >= 3 * prog.mapping_layers

    text = [prog.summary()]
    for layout in prog.layouts[:2]:
        text.append(f"--- extended layer {layout.index} (13x39) ---")
        text.append(render_layer(layout))
    save_table(results_dir, "fig14", "\n".join(text))


def test_fig14_extension_helps(benchmark):
    """Extended layers accommodate more global structure (Sec. 3.1)."""
    from repro.circuit import qft
    from repro.core import compile_circuit
    from repro.hardware import HardwareConfig

    def run():
        flat = compile_circuit(qft(16), HardwareConfig(rows=13, cols=13))
        ext = compile_circuit(
            qft(16), HardwareConfig(rows=13, cols=13, extension=3)
        )
        return flat, ext

    flat, ext = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ext.mapping_layers < flat.mapping_layers
