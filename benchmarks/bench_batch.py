"""Benchmarks the batch experiment runner itself.

Measures (a) cold batch compilation of the 16-qubit grid across worker
processes, (b) warm cache hits, and persists the run-table + BENCH
artifacts so every benchmark session extends the perf trajectory started
in ``BENCH_seed.json`` / ``BENCH_mapping_overhaul.json``.
"""

import json

import pytest

from repro.eval.batch import BatchRunner, table2_specs, write_bench_json, write_run_table

from benchmarks.conftest import save_table

GRID_16 = [("QFT", 16), ("QAOA", 16), ("RCA", 16), ("BV", 16)]


@pytest.fixture(scope="module")
def specs():
    return table2_specs(GRID_16)


def test_cold_batch(benchmark, specs, tmp_path_factory):
    cache = tmp_path_factory.mktemp("cache-cold")
    runner = BatchRunner(jobs=2, cache_dir=cache)
    records = benchmark.pedantic(runner.run, args=(specs,), rounds=1, iterations=1)
    assert len(records) == len(specs)
    assert all(not r.cached for r in records)


def test_warm_cache(benchmark, specs, tmp_path_factory):
    cache = tmp_path_factory.mktemp("cache-warm")
    BatchRunner(jobs=2, cache_dir=cache).run(specs)
    runner = BatchRunner(jobs=1, cache_dir=cache)
    records = benchmark.pedantic(runner.run, args=(specs,), rounds=1, iterations=1)
    assert all(r.cached for r in records)


def test_artifacts_and_trajectory(specs, results_dir):
    """Persist the grid's run table and append to the BENCH trajectory."""
    records = BatchRunner(jobs=2).run(specs)
    json_path, csv_path = write_run_table(
        records, results_dir, stem="run_table_16q", meta={"grid": "table2-16q"}
    )
    bench_path = write_bench_json(
        records, results_dir / "BENCH_16q.json", label="16q-grid"
    )
    assert json_path.exists() and csv_path.exists() and bench_path.exists()
    payload = json.loads(bench_path.read_text())
    assert set(payload["runs"]) == {f"{n}-{q}" for n, q in GRID_16}
    save_table(
        results_dir,
        "batch_16q",
        "\n".join(
            f"{r.label}: {r.seconds:.3f}s depth={r.depth} fusions={r.num_fusions:,}"
            for r in records
        ),
    )
