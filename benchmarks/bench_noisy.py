#!/usr/bin/env python
"""Noisy-sampler overhaul benchmark: batched vs per-shot execution.

Workload (the yield-curve access pattern): a Bernstein-Vazirani
benchmark under a fusion-error-dominated noise model chosen so that
essentially every shot carries at least one fault — the regime where the
sampler actually pays for tableau execution (fault-free shots skip it
entirely).  Both engines sample identical fault configurations at the
fixed seed, so their ``NoisySampleResult`` tallies must be bit-identical
(pass/fail per shot is a deterministic function of the fault
configuration; random measurement outcomes are a gauge); the wall-clock
ratio of the execution phase is the headline.

Run:  PYTHONPATH=src python benchmarks/bench_noisy.py [--shots 2000]

Writes ``benchmarks/BENCH_noisy_batch.json`` and exits non-zero when the
tallies diverge or the batched speedup drops below the 10x gate.
``--quick`` shrinks the workload for a CI smoke and skips the speedup
gate (equivalence is still enforced).  The bit-packed frame engine
rides along in both modes — its tallies must match too, making
``--quick`` the three-way equivalence smoke — but its own speedup gate
lives in ``bench_frame.py``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.circuit import get_benchmark  # noqa: E402
from repro.hardware.noise import NoiseModel  # noqa: E402
from repro.sim.noisy import NoisySampler  # noqa: E402

SPEEDUP_GATE = 10.0

#: Fusion errors dominate and loss is off: nearly every shot is faulty
#: and executes on the tableau, no shot is aborted before execution.
BENCH_MODEL = NoiseModel(
    fusion_success=0.75,
    fusion_error=0.05,
    cycle_loss=0.0,
    measurement_error=0.002,
)


def _tally(result):
    return {
        "shots": result.shots,
        "successes": result.successes,
        "fault_free": result.fault_free,
        "loss_aborts": result.loss_aborts,
        "logical_failures": result.logical_failures,
        "executed": result.executed,
        "fusion_attempts": result.fusion_attempts,
    }


def run_engine(sampler: NoisySampler, shots: int, engine: str):
    t0 = time.perf_counter()
    result = sampler.run(shots, engine=engine)
    return time.perf_counter() - t0, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="BV")
    parser.add_argument("--qubits", type=int, default=16)
    parser.add_argument("--shots", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--quick", action="store_true",
        help="small smoke workload; equivalence only, no speedup gate",
    )
    parser.add_argument(
        "--out",
        default=str(pathlib.Path(__file__).parent / "BENCH_noisy_batch.json"),
    )
    args = parser.parse_args(argv)
    shots = 300 if args.quick else args.shots
    qubits = 8 if args.quick else args.qubits

    circuit = get_benchmark(args.benchmark, qubits, seed=args.seed)

    def fresh_sampler() -> NoisySampler:
        # one sampler per engine: a shared base tableau is fine, but a
        # fresh instance proves neither run leans on the other's state
        return NoisySampler(circuit, model=BENCH_MODEL, seed=args.seed)

    scalar_seconds, scalar = run_engine(fresh_sampler(), shots, "per-shot")
    batched_seconds, batched = run_engine(fresh_sampler(), shots, "batched")
    # the frame engine rides along (its own speedup gate lives in
    # bench_frame.py); --quick doubles as its three-way equivalence smoke
    frame_seconds, frame = run_engine(fresh_sampler(), shots, "frame")

    identical = _tally(scalar) == _tally(batched) == _tally(frame)
    speedup = scalar_seconds / max(batched_seconds, 1e-12)
    payload = {
        "schema_version": 1,
        "label": "noisy_batch",
        "workload": {
            "benchmark": f"{args.benchmark}-{qubits}",
            "shots": shots,
            "faulty_shots_executed": batched.executed,
            "noise": {
                "fusion_success": BENCH_MODEL.fusion_success,
                "fusion_error": BENCH_MODEL.fusion_error,
                "cycle_loss": BENCH_MODEL.cycle_loss,
                "measurement_error": BENCH_MODEL.measurement_error,
            },
            "seed": args.seed,
            "quick": args.quick,
        },
        "per_shot_engine": {
            "seconds": round(scalar_seconds, 5),
            "shots_per_second": round(scalar.shots_per_second, 1),
        },
        "batched_engine": {
            "seconds": round(batched_seconds, 5),
            "shots_per_second": round(batched.shots_per_second, 1),
        },
        "frame_engine": {
            "seconds": round(frame_seconds, 5),
            "shots_per_second": round(frame.shots_per_second, 1),
        },
        "tally": _tally(batched),
        "yield_mc": round(batched.yield_mc, 6),
        "speedup": round(speedup, 1),
        "tallies_identical": identical,
        "speedup_gate": None if args.quick else SPEEDUP_GATE,
    }
    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(payload, indent=1) + "\n")

    print(
        f"{args.benchmark}-{qubits}, {shots} shots "
        f"({batched.executed} faulty shots executed)\n"
        f"  per-shot engine: {scalar_seconds:.4f}s "
        f"({scalar.shots_per_second:.0f} shots/s)\n"
        f"  batched engine:  {batched_seconds:.4f}s "
        f"({batched.shots_per_second:.0f} shots/s)\n"
        f"  frame engine:    {frame_seconds:.4f}s "
        f"({frame.shots_per_second:.0f} shots/s)\n"
        f"  batched speedup: {speedup:.1f}x; tallies identical: {identical}\n"
        f"  wrote {out_path}"
    )
    if not identical:
        print("error: engine tallies diverged", file=sys.stderr)
        print(f"  per-shot: {_tally(scalar)}", file=sys.stderr)
        print(f"  batched:  {_tally(batched)}", file=sys.stderr)
        print(f"  frame:    {_tally(frame)}", file=sys.stderr)
        return 1
    if not args.quick and speedup < SPEEDUP_GATE:
        print(
            f"error: batched speedup {speedup:.1f}x below the "
            f"{SPEEDUP_GATE:.0f}x gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
