#!/usr/bin/env python
"""Serving benchmark: cold-vs-warm latency gate + load-cell sweep.

Hosts a throwaway compile server (:class:`repro.serve.server.ServerThread`
on an ephemeral port, fresh cache directory) and measures two things:

1. **Cold/warm gate** — one cold QFT-36 compile, then the same request
   repeated against the now-populated artifact store.  The warm average
   must be at least ``WARM_SPEEDUP_GATE`` (10x) below the cold latency:
   the whole point of the serving layer is that an already-compiled
   circuit never pays compile cost again.  This gate runs in ``--quick``
   mode too (one cold QFT-36 is well under a second).

2. **Load cells** — the closed-loop generator from
   :mod:`repro.serve.loadgen` sweeps (workload x concurrency) cells and
   records the serving table (throughput_rps, avg/p50/p95/max latency,
   failure_rate, cache_hit_rate per cell; see ``docs/serving.md`` for
   the column definitions).  Gates: every cell must finish with
   ``failure_rate == 0`` and the hot-workload cells (pure cache hits
   after warm-up) must hold p95 latency under ``WARM_P95_GATE_MS``.

Run:  PYTHONPATH=src python benchmarks/bench_serving.py [--quick]

Writes ``benchmarks/BENCH_serving.json`` plus the serving table
(``serving_table.json`` / ``serving_table.csv``) and exits non-zero
when any gate fails.  ``--quick`` shrinks the sweep to 2 workloads x
2 concurrency levels with a small request budget (the CI smoke).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import tempfile
import time

_ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.serve.client import CompileClient  # noqa: E402
from repro.serve.loadgen import (  # noqa: E402
    run_load,
    render_cells,
    write_serving_table,
)
from repro.serve.server import ServerThread  # noqa: E402

WARM_SPEEDUP_GATE = 10.0
WARM_P95_GATE_MS = 250.0

#: hot workloads serve from cache after warm-up; the p95 gate applies
_HOT_WORKLOADS = ("hot-qft16", "mixed-16", "qasm-bv12")

FULL_WORKLOADS = ["hot-qft16", "mixed-16", "cold-seeds", "qasm-bv12"]
FULL_CONCURRENCY = [1, 2, 4]
QUICK_WORKLOADS = ["hot-qft16", "cold-seeds"]
QUICK_CONCURRENCY = [1, 2]


def measure_cold_warm(host: str, port: int, qubits: int, warm_requests: int):
    """One cold compile of QFT-``qubits``, then warm repeats of it."""
    request = {"op": "compile", "benchmark": "QFT", "qubits": qubits}
    with CompileClient(host, port) as client:
        t0 = time.perf_counter()
        cold = client.request(request)
        cold_seconds = time.perf_counter() - t0
        if not cold.get("ok"):
            raise RuntimeError(f"cold compile failed: {cold}")
        if cold.get("cache_tier") is not None:
            raise RuntimeError("cold request unexpectedly hit cache")

        warm_seconds = []
        for _ in range(warm_requests):
            t0 = time.perf_counter()
            warm = client.request(request)
            warm_seconds.append(time.perf_counter() - t0)
            if not warm.get("ok") or warm.get("cache_tier") is None:
                raise RuntimeError(f"warm request missed cache: {warm}")
            if warm["artifact"] != cold["artifact"]:
                raise RuntimeError("warm artifact differs from cold")
    return cold_seconds, warm_seconds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 2 workloads x 2 concurrency levels, small "
        "request budget (all gates still apply)",
    )
    parser.add_argument("--qubits", type=int, default=36,
                        help="QFT size for the cold/warm gate")
    parser.add_argument("--warm-requests", type=int, default=20,
                        help="warm repeats for the cold/warm gate")
    parser.add_argument("--requests", type=int, default=60,
                        help="measured requests per load cell")
    parser.add_argument("--workers", type=int, default=2,
                        help="compile worker processes")
    parser.add_argument(
        "--out", default=str(pathlib.Path(__file__).parent),
        help="directory for BENCH_serving.json + serving_table.*",
    )
    args = parser.parse_args(argv)

    workloads = QUICK_WORKLOADS if args.quick else FULL_WORKLOADS
    concurrencies = QUICK_CONCURRENCY if args.quick else FULL_CONCURRENCY
    requests = 10 if args.quick else args.requests

    out_dir = pathlib.Path(args.out)
    with tempfile.TemporaryDirectory(prefix="bench-serving-") as cache:
        handle = ServerThread(workers=args.workers, cache_dir=cache).start()
        try:
            cold_seconds, warm_seconds = measure_cold_warm(
                handle.host, handle.port, args.qubits, args.warm_requests
            )
            cells = run_load(
                handle.host, handle.port, workloads, concurrencies, requests
            )
        finally:
            handle.stop()

    warm_avg = statistics.mean(warm_seconds)
    warm_speedup = cold_seconds / max(warm_avg, 1e-12)
    speedup_ok = warm_speedup >= WARM_SPEEDUP_GATE

    failures_ok = all(cell.failure_rate == 0.0 for cell in cells)
    hot_cells = [c for c in cells if c.workload in _HOT_WORKLOADS]
    hot_p95_ms = max((c.p95_latency_ms for c in hot_cells), default=0.0)
    p95_ok = hot_p95_ms < WARM_P95_GATE_MS

    table_json, table_csv = write_serving_table(
        cells, out_dir, stem="serving_table",
        meta={
            "requests_per_cell": requests,
            "workers": args.workers,
            "quick": args.quick,
        },
    )

    payload = {
        "schema_version": 1,
        "label": "serving",
        "quick": args.quick,
        "workers": args.workers,
        "cold_warm": {
            "benchmark": f"QFT-{args.qubits}",
            "cold_seconds": round(cold_seconds, 5),
            "warm_avg_seconds": round(warm_avg, 6),
            "warm_p95_seconds": round(
                sorted(warm_seconds)[int(0.95 * (len(warm_seconds) - 1))], 6
            ),
            "warm_requests": len(warm_seconds),
            "warm_speedup": round(warm_speedup, 1),
            "speedup_gate": WARM_SPEEDUP_GATE,
        },
        "load": {
            "workloads": list(workloads),
            "concurrency": list(concurrencies),
            "requests_per_cell": requests,
            "cells": [
                {k: (round(v, 4) if isinstance(v, float) else v)
                 for k, v in cell.row().items()}
                for cell in cells
            ],
        },
        "gates": {
            "warm_speedup_ok": speedup_ok,
            "zero_failures_ok": failures_ok,
            "hot_p95_ms": round(hot_p95_ms, 3),
            "hot_p95_gate_ms": WARM_P95_GATE_MS,
            "hot_p95_ok": p95_ok,
        },
    }
    bench_path = out_dir / "BENCH_serving.json"
    bench_path.write_text(json.dumps(payload, indent=1) + "\n")

    print(
        f"QFT-{args.qubits}: cold {cold_seconds:.3f}s, warm avg "
        f"{warm_avg * 1000:.2f}ms over {len(warm_seconds)} requests "
        f"-> {warm_speedup:.0f}x (gate: {WARM_SPEEDUP_GATE:.0f}x)"
    )
    print(render_cells(cells))
    print(f"wrote {bench_path}, {table_json}, {table_csv}")

    ok = True
    if not speedup_ok:
        print(
            f"error: warm speedup {warm_speedup:.1f}x below the "
            f"{WARM_SPEEDUP_GATE:.0f}x gate",
            file=sys.stderr,
        )
        ok = False
    if not failures_ok:
        for cell in cells:
            if cell.failure_rate > 0:
                print(
                    f"error: {cell.workload} x{cell.concurrency} recorded "
                    f"failure_rate {cell.failure_rate:.3f}: "
                    f"{cell.errors[:3]}",
                    file=sys.stderr,
                )
        ok = False
    if not p95_ok:
        print(
            f"error: hot-workload p95 {hot_p95_ms:.1f}ms above the "
            f"{WARM_P95_GATE_MS:.0f}ms gate",
            file=sys.stderr,
        )
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
