"""Shared benchmark helpers: result directory and table persistence."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_table(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a rendered paper-style table and echo it."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")
