"""Regenerates paper Fig. 13: OneQ on rectangular physical layers.

Paper claim: performance is similar across layer aspect ratios 1, 1.5,
2.1 and 2.6 (normalized to the square layer).
"""

import pytest

from repro.eval import FIG13_SHAPES, render_fig13, run_fig13

from benchmarks.conftest import save_table

BENCHES = ("QFT", "QAOA", "RCA", "BV")
_RESULTS = {}


@pytest.mark.parametrize("bench", BENCHES)
def test_bench_across_ratios(benchmark, bench):
    result = benchmark.pedantic(
        run_fig13, kwargs={"num_qubits": 16, "benchmarks": (bench,)},
        rounds=1, iterations=1,
    )
    _RESULTS.update(result)
    per_ratio = result[bench]
    assert set(per_ratio) == {r for r, _ in FIG13_SHAPES}


def test_fig13_shape(benchmark, results_dir):
    results = dict(_RESULTS)
    for bench in BENCHES:
        if bench not in results:
            results.update(run_fig13(num_qubits=16, benchmarks=(bench,)))
    benchmark.pedantic(render_fig13, args=(results,), rounds=1, iterations=1)

    # normalized metrics stay within a small factor of the square layer
    for bench, per_ratio in results.items():
        square = per_ratio[1.0]
        for ratio, prog in per_ratio.items():
            norm_depth = prog.physical_depth / max(1, square.physical_depth)
            norm_fusion = prog.num_fusions / max(1, square.num_fusions)
            assert norm_depth < 3.0, (bench, ratio, norm_depth)
            assert norm_fusion < 3.0, (bench, ratio, norm_fusion)

    save_table(results_dir, "fig13", render_fig13(results))
