"""Ablation study of OneQ's design choices (extension experiment).

Not a paper figure — it quantifies the design decisions the paper
motivates qualitatively:

* geometry-preserving scheduling (Sec. 4) vs pure Lemma-1 layering;
* planar-embedding rotational order (Sec. 5) on vs off;
* cross-partition placement hints (an implementation optimization);
* the total-blockage weight alpha in the H cost function (Sec. 6).
"""

import pytest

from repro.eval.experiments import run_ablation

from benchmarks.conftest import save_table

_RESULTS = {}


@pytest.mark.parametrize("bench", ("QFT", "QAOA"))
def test_ablation(benchmark, bench):
    results = benchmark.pedantic(
        run_ablation, kwargs={"name": bench, "num_qubits": 16},
        rounds=1, iterations=1,
    )
    _RESULTS[bench] = results

    default = results["default"]
    # Lemma-1 scheduling scatters wire geometry across partitions: the
    # shuffle bill explodes (this is the paper's Sec. 4 design argument).
    lemma1 = results["lemma1-scheduling"]
    assert lemma1.fusions.shuffling >= default.fusions.shuffling
    # all variants still produce valid programs
    for variant, prog in results.items():
        assert prog.physical_depth >= 1, variant
        assert prog.num_fusions > 0, variant


def test_ablation_report(benchmark, results_dir):
    results = dict(_RESULTS)
    if "QFT" not in results:
        results["QFT"] = run_ablation("QFT", 16)

    def render():
        lines = []
        for bench, variants in results.items():
            lines.append(f"== {bench}-16 ==")
            for variant, prog in variants.items():
                t = prog.fusions
                lines.append(
                    f"  {variant:20s} depth={prog.physical_depth:4d} "
                    f"fusions={prog.num_fusions:6d} "
                    f"(synth={t.synthesis} edge={t.edge} "
                    f"route={t.routing} shuffle={t.shuffling})"
                )
        return "\n".join(lines)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    save_table(results_dir, "ablation", text)


def test_fidelity_extension(benchmark, results_dir):
    """Fusion reduction translates into fidelity (paper Sec. 2.1)."""
    from repro.eval.experiments import run_fidelity

    rows = benchmark.pedantic(
        run_fidelity,
        kwargs={"benchmarks": [("QAOA", 16), ("BV", 16)]},
        rounds=1,
        iterations=1,
    )
    lines = ["benchmark  baseline logF  OneQ logF  error-rate factor"]
    for row, base_lf, oneq_lf, factor in rows:
        assert oneq_lf > base_lf, row.label
        assert factor > 10, row.label
        lines.append(
            f"{row.label:9s}  {base_lf:12.2f}  {oneq_lf:9.4f}  {factor:10.0f}x"
        )
    save_table(results_dir, "fidelity", "\n".join(lines))
