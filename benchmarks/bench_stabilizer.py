#!/usr/bin/env python
"""Stabilizer-engine overhaul benchmark: bit-packed vs seed CHP engine.

Workload (the verification pipeline's access pattern): build an
Erdos-Renyi graph state on N qubits, then measure every qubit once in a
random Pauli basis.  Both engines draw one ``rng.integers(2)`` per random
measurement, so at a fixed seed the outcome streams must be
bit-identical; the wall-clock ratio is the headline.

Run:  PYTHONPATH=src python benchmarks/bench_stabilizer.py [--qubits 200]

Writes ``benchmarks/BENCH_sim_overhaul.json`` and exits non-zero when
outcomes diverge or the measurement speedup drops below the 10x gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_ROOT = pathlib.Path(__file__).resolve().parents[1]
for entry in (str(_ROOT / "src"), str(_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import networkx as nx  # noqa: E402
import numpy as np  # noqa: E402

from repro.sim import stabilizer as packed_engine  # noqa: E402
from tests.sim import reference_stabilizer as seed_engine  # noqa: E402

SPEEDUP_GATE = 10.0


def run_workload(module, graph, bases, seed):
    """Build the graph state and measure every qubit once; returns
    (build_seconds, measure_seconds, outcomes)."""
    n = graph.number_of_nodes()
    t0 = time.perf_counter()
    state, index = module.StabilizerState.graph_state(graph, seed=seed)
    build_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    outcomes = [
        state.measure_pauli(
            module.PauliString.from_ops(n, {index[q]: bases[q]})
        )
        for q in sorted(graph.nodes())
    ]
    return build_seconds, time.perf_counter() - t0, outcomes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--qubits", type=int, default=200)
    parser.add_argument("--edge-factor", type=int, default=3,
                        help="edges = factor * qubits")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out",
        default=str(pathlib.Path(__file__).parent / "BENCH_sim_overhaul.json"),
    )
    args = parser.parse_args(argv)

    n = args.qubits
    graph = nx.gnm_random_graph(n, args.edge_factor * n, seed=11)
    basis_rng = np.random.default_rng(2023)
    bases = {q: "xyz"[basis_rng.integers(3)] for q in graph.nodes()}

    seed_build, seed_measure, seed_outcomes = run_workload(
        seed_engine, graph, bases, args.seed
    )
    packed_build, packed_measure, packed_outcomes = run_workload(
        packed_engine, graph, bases, args.seed
    )

    identical = seed_outcomes == packed_outcomes
    speedup_measure = seed_measure / max(packed_measure, 1e-12)
    speedup_build = seed_build / max(packed_build, 1e-12)
    payload = {
        "schema_version": 1,
        "label": "sim_overhaul",
        "workload": {
            "graph": "gnm_random_graph",
            "qubits": n,
            "edges": graph.number_of_edges(),
            "measurements": n,
            "bases": "uniform random x/y/z per qubit",
            "seed": args.seed,
        },
        "seed_engine": {
            "build_seconds": round(seed_build, 5),
            "measure_seconds": round(seed_measure, 5),
            "measurements_per_second": round(n / max(seed_measure, 1e-12), 1),
        },
        "packed_engine": {
            "build_seconds": round(packed_build, 5),
            "measure_seconds": round(packed_measure, 5),
            "measurements_per_second": round(n / max(packed_measure, 1e-12), 1),
        },
        "speedup_measure": round(speedup_measure, 1),
        "speedup_build": round(speedup_build, 1),
        "outcomes_identical": identical,
        "speedup_gate": SPEEDUP_GATE,
    }
    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(payload, indent=1) + "\n")

    print(
        f"{n}-qubit graph state, {n} random-basis Pauli measurements\n"
        f"  seed engine:   build {seed_build:.4f}s  "
        f"measure {seed_measure:.4f}s\n"
        f"  packed engine: build {packed_build:.4f}s  "
        f"measure {packed_measure:.4f}s\n"
        f"  speedup: measure {speedup_measure:.1f}x, build {speedup_build:.1f}x; "
        f"outcomes identical: {identical}\n"
        f"  wrote {out_path}"
    )
    if not identical:
        print("error: outcome streams diverged", file=sys.stderr)
        return 1
    if speedup_measure < SPEEDUP_GATE:
        print(
            f"error: measurement speedup {speedup_measure:.1f}x "
            f"below the {SPEEDUP_GATE:.0f}x gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
