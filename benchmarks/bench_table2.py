"""Regenerates paper Table 2: baseline vs OneQ on every benchmark.

One benchmark test per row (so pytest-benchmark reports per-program
compile time), plus a final shape check that renders the whole table.
Absolute values differ from the paper (our baseline router is our own);
the asserted *shape* is the paper's headline:

* OneQ beats the baseline by orders of magnitude on both metrics;
* BV improves the most (acyclic planar graph state), QFT the least;
* improvements are stable or growing with qubit count.
"""

import pytest

from repro.eval import PAPER_TABLE2, TABLE_BENCHMARKS, compare_one, render_table2

from benchmarks.conftest import save_table

_ROWS = {}


@pytest.mark.parametrize("name,num_qubits", TABLE_BENCHMARKS)
def test_row(benchmark, name, num_qubits):
    row = benchmark.pedantic(
        compare_one, args=(name, num_qubits), rounds=1, iterations=1
    )
    _ROWS[(name, num_qubits)] = row
    assert row.depth_improvement > 1
    assert row.fusion_improvement > 1


def test_table2_shape(benchmark, results_dir):
    rows = [
        _ROWS.get((n, q)) or compare_one(n, q) for n, q in TABLE_BENCHMARKS
    ]
    benchmark.pedantic(render_table2, args=(rows,), rounds=1, iterations=1)

    by_key = {(r.name, r.num_qubits): r for r in rows}

    # orders of magnitude on the aggregate (paper abstract)
    for row in rows:
        assert row.depth_improvement >= 5, row.label
        assert row.fusion_improvement >= 10, row.label

    # BV best, QFT worst at 16 qubits (paper Sec. 7.2)
    f16 = {n: by_key[(n, 16)].fusion_improvement for n in ("QFT", "QAOA", "RCA", "BV")}
    assert f16["BV"] == max(f16.values())
    assert f16["QFT"] == min(f16.values())
    d16 = {
        n: by_key[(n, 16)].oneq.physical_depth
        for n in ("QFT", "QAOA", "RCA", "BV")
    }
    assert d16["BV"] == min(d16.values())

    # improvement stable or increasing with qubit count (paper Sec. 7.2)
    for name in ("QFT", "QAOA", "RCA"):
        small = by_key[(name, 16)].fusion_improvement
        large = by_key[(name, 36)].fusion_improvement
        assert large >= 0.5 * small, f"{name} improvement collapsed"
    assert (
        by_key[("BV", 100)].fusion_improvement
        > by_key[("BV", 16)].fusion_improvement
    )

    save_table(results_dir, "table2", render_table2(rows))
    print("paper reference:", {k: v for k, v in PAPER_TABLE2.items()})
