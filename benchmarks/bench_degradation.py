#!/usr/bin/env python
"""Hardware-degradation survival benchmark: the recovery-ladder gate.

Workload: the default degradation sweep (``repro degrade-sweep``) —
BV-8 and QFT-8 across the four per-site scenarios (dead resource-state
generators, loss gradient, loss hotspot, detuned fusion), five
severities, and the three-policy recovery ladder.  Mild uniform base
noise keeps the clean yield near 1 so the curves measure the scenario's
damage, and BV (Clifford) additionally Monte-Carlo samples the
recovered program under the per-site map to cross-check the closed
form.

Run:  PYTHONPATH=src python benchmarks/bench_degradation.py [--quick]

Writes ``benchmarks/BENCH_degradation.json`` and exits non-zero unless
the sweep demonstrates real recoveries: at least one scenario where the
as-compiled program collapses and ``reroute`` rescues it, at least one
rescued by ``recompile``, every severity-0 row recovered, and every MC
row within 3 sigma of its per-site analytic yield.  ``--quick`` shrinks
to BV-8 with three severities and no sampling (the CI smoke).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

_ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.eval.degrade import (  # noqa: E402
    DEGRADE_SEVERITIES,
    check_recovery,
    run_degrade_sweep,
    summarize_survival,
    write_degradation_json,
)
from repro.eval.reporting import render_survival_table  # noqa: E402

#: 3-sigma MC-vs-analytic agreement bound (binomial standard errors).
SIGMA_GATE = 3.0


def mc_agreement_failures(records) -> list:
    """MC rows that contradict the per-site closed form.

    Two checks per sampled row: the estimate's analytic column must be
    the same per-site yield the degradation stage computed (same
    program, same map — float-tolerance equality), and the sampled
    stabilizer-pass yield must not fall more than ``SIGMA_GATE``
    binomial standard errors below it (benign faults can only push
    ``yield_mc`` *above* the zero-fault probability, never below).
    """
    import math

    failures = []
    for r in records:
        if not r.scenario or r.shots == 0 or r.yield_mc is None:
            continue
        tag = f"{r.label}/{r.scenario}@{r.severity:g}[{r.policy}]"
        if (
            r.yield_degraded is None
            or abs(r.yield_analytic - r.yield_degraded) > 1e-9
        ):
            failures.append(
                f"{tag}: MC sampled a different program than the "
                f"degradation stage (analytic={r.yield_analytic:.6f}, "
                f"degraded={r.yield_degraded})"
            )
            continue
        p = r.yield_analytic
        sigma = math.sqrt(max(p * (1.0 - p), 0.0) / r.shots)
        if r.yield_mc < p - SIGMA_GATE * sigma:
            failures.append(
                f"{tag}: yield_mc={r.yield_mc:.4f} more than "
                f"{SIGMA_GATE:g} sigma below the per-site analytic "
                f"yield {p:.4f} (sigma={sigma:.4f})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shots", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: BV-8 only, severities 0/0.1/0.3, no sampling",
    )
    parser.add_argument(
        "--out",
        default=str(
            pathlib.Path(__file__).parent / "BENCH_degradation.json"
        ),
    )
    args = parser.parse_args(argv)

    if args.quick:
        benchmarks = [("BV", 8)]
        severities = (0.0, 0.1, 0.3)
        shots = 0
    else:
        benchmarks = [("BV", 8), ("QFT", 8)]
        severities = DEGRADE_SEVERITIES
        shots = args.shots

    t0 = time.perf_counter()
    records = run_degrade_sweep(
        benchmarks=benchmarks,
        severities=severities,
        shots=shots,
        seed=args.seed,
        jobs=args.jobs,
    )
    seconds = time.perf_counter() - t0
    summary = summarize_survival(records)

    out_path = pathlib.Path(args.out)
    write_degradation_json(
        records,
        out_path,
        meta={
            "benchmarks": [f"{n}-{q}" for n, q in benchmarks],
            "severities": [float(s) for s in severities],
            "shots": shots,
            "seed": args.seed,
            "quick": args.quick,
            "seconds": round(seconds, 3),
        },
    )

    print(render_survival_table(records))
    print(
        f"\n{len(records)} rows in {seconds:.1f}s: "
        f"{summary['survive_failures']} survive collapse(s), "
        f"{summary['reroute_rescues']} reroute rescue(s), "
        f"{summary['recompile_rescues']} recompile rescue(s), "
        f"{len(summary['unrecovered'])} unrecovered"
    )
    print(f"wrote {out_path}")

    failures = check_recovery(records)
    failures.extend(mc_agreement_failures(records))
    mc_rows = [r for r in records if r.shots and r.yield_mc is not None]
    if not args.quick and shots > 0 and not mc_rows:
        failures.append(
            "no Monte-Carlo rows sampled despite shots > 0 — the "
            "per-site sampler never ran"
        )
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
