#!/usr/bin/env python
"""Fig. 12: how the resource-state type affects compilation.

Compiles the 16-qubit paper benchmarks against all four resource-state
shapes (3-line, 4-line, 4-star, 4-ring) and prints the improvement
factors over the baseline, reproducing the claim that OneQ achieves
similar improvements across resource states.

Run:  python examples/resource_state_study.py
"""

from repro.eval import render_fig12, run_fig12


def main() -> None:
    print("compiling 16-qubit QFT/QAOA/RCA/BV x 4 resource states ...")
    results = run_fig12(num_qubits=16)
    print()
    print(render_fig12(results))
    print()
    # a peek at what the resource state changes under the hood
    rows3 = {r.label: r for r in results["3-line"]}
    rows4 = {r.label: r for r in results["4-star"]}
    for label in rows3:
        s3 = rows3[label].oneq.fusions.synthesis
        s4 = rows4[label].oneq.fusions.synthesis
        print(
            f"{label}: synthesis fusions {s3} (3-line) -> {s4} (4-star); "
            "higher-degree states need shorter chains"
        )


if __name__ == "__main__":
    main()
