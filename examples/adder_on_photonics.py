#!/usr/bin/env python
"""Domain walkthrough: a ripple-carry adder on the photonic machine.

Builds the Cuccaro adder the paper benchmarks as RCA, verifies it adds
correctly *as a one-way program* (pattern execution, not just circuit
simulation), then compiles it and breaks down where the fusions go.

Run:  python examples/adder_on_photonics.py
"""

import numpy as np

from repro import (
    Circuit,
    HardwareConfig,
    circuit_to_pattern,
    compile_baseline,
    compile_circuit,
    ripple_carry_adder,
)
from repro.sim.pattern_sim import PatternSimulator


def add_on_photonics(a: int, b: int, n: int = 2, seed: int = 0) -> int:
    """Compute a + b by executing the adder as a measurement pattern."""
    num_qubits = 2 * n + 2
    circuit = Circuit(num_qubits)
    for i in range(n):
        if (b >> i) & 1:
            circuit.x(1 + 2 * i)
        if (a >> i) & 1:
            circuit.x(2 + 2 * i)
    for gate in ripple_carry_adder(num_qubits):
        circuit.append(gate)

    pattern = circuit_to_pattern(circuit)
    result = PatternSimulator(pattern, seed=seed).run()
    idx = int(np.argmax(np.abs(result.state) ** 2))
    b_out = sum(((idx >> (1 + 2 * i)) & 1) << i for i in range(n))
    carry = (idx >> (2 * n + 1)) & 1
    return b_out + (carry << n)


def main() -> None:
    print("2-bit additions executed as one-way measurement patterns:")
    for a in range(4):
        for b in range(4):
            total = add_on_photonics(a, b)
            status = "OK" if total == a + b else "WRONG"
            print(f"  {a} + {b} = {total}  {status}")
            assert total == a + b

    print("\ncompiling the paper's RCA-16 benchmark:")
    circuit = ripple_carry_adder(16)
    program = compile_circuit(circuit, HardwareConfig.square(16), name="RCA-16")
    baseline = compile_baseline(circuit, name="RCA-16")
    t = program.fusions
    print(f"  OneQ: {program.summary()}")
    print(
        f"  fusion breakdown: {t.synthesis} synthesis, {t.edge} edge, "
        f"{t.routing} routing, {t.shuffling} shuffling"
    )
    print(
        f"  baseline: depth={baseline.depth}, fusions={baseline.num_fusions:,} "
        f"-> {baseline.num_fusions / program.num_fusions:.0f}x fewer fusions with OneQ"
    )


if __name__ == "__main__":
    main()
