#!/usr/bin/env python
"""Quickstart: compile a circuit for a photonic one-way machine.

Builds a small GHZ-preparation circuit, translates it to a measurement
pattern, compiles it with OneQ onto an 8x8 RSG array and prints the two
paper metrics (physical depth, #fusions) next to the baseline
cluster-state interpreter.

Run:  python examples/quickstart.py
"""

from repro import (
    Circuit,
    HardwareConfig,
    circuit_to_pattern,
    compile_baseline,
    compile_circuit,
    render_program,
)


def main() -> None:
    # 1. a circuit: GHZ state + a sprinkle of non-Clifford rotations
    circuit = Circuit(4)
    circuit.h(0)
    for q in range(3):
        circuit.cx(q, q + 1)
    circuit.t(3)
    circuit.rz(0.42, 1)

    # 2. what does the MBQC program look like?
    pattern = circuit_to_pattern(circuit)
    print("measurement pattern:", pattern.summary())

    # 3. compile with OneQ for an 8x8 resource-state-generator array
    hardware = HardwareConfig.square(8)
    program = compile_circuit(circuit, hardware, name="ghz4")
    print()
    print(render_program(program, max_layers=2))

    # 4. compare with the baseline cluster-state interpreter
    baseline = compile_baseline(circuit, name="ghz4")
    print()
    print(f"baseline: depth={baseline.depth} fusions={baseline.num_fusions:,}")
    print(
        f"OneQ:     depth={program.physical_depth} "
        f"fusions={program.num_fusions:,}"
    )
    print(
        f"improvement: {baseline.depth / program.physical_depth:.0f}x depth, "
        f"{baseline.num_fusions / program.num_fusions:.0f}x fusions"
    )


if __name__ == "__main__":
    main()
