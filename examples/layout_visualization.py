#!/usr/bin/env python
"""Fig. 11-style layout visualizations.

Maps the fusion graphs of (a) an 8-qubit Bernstein-Vazirani instance with
secret string '11111111' (9 qubits with the ancilla, as in the paper's
Fig. 11a) and (b) a 3-qubit QFT onto a single physical layer, then prints
the grids: 'o' complete nodes, '?' incomplete nodes, '*' auxiliary
routing resource states.

Run:  python examples/layout_visualization.py
"""

from repro import HardwareConfig, bernstein_vazirani, compile_circuit, qft
from repro.core import render_layer


def show(title, program):
    print(f"== {title} ==")
    print(program.summary())
    for layout in program.layouts:
        print(f"--- layer {layout.index} ---")
        print(render_layer(layout))
    print()


def main() -> None:
    hardware = HardwareConfig.square(16)

    bv = bernstein_vazirani(9, secret="11111111")
    show("8-qubit BV, secret 11111111 (paper Fig. 11a)",
         compile_circuit(bv, hardware, name="bv-8"))

    show("3-qubit QFT (paper Fig. 11b)",
         compile_circuit(qft(3), hardware, name="qft-3"))


if __name__ == "__main__":
    main()
