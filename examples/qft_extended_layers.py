#!/usr/bin/env python
"""Fig. 14: mapping a 16-qubit QFT onto extended physical layers.

The paper's Fig. 14 shows one 13x39 extended physical layer composed of
three consecutive 13x13 layers.  This example compiles QFT-16 both ways
and shows how extension trades per-cycle area for fewer mapped layers
while keeping the physical-depth accounting honest (each extended layer
still consumes three clock cycles).

Run:  python examples/qft_extended_layers.py
"""

from repro import HardwareConfig, compile_circuit, qft
from repro.core import render_layer


def main() -> None:
    circuit = qft(16)

    flat = compile_circuit(
        circuit, HardwareConfig(rows=13, cols=13), name="qft16-flat"
    )
    extended = compile_circuit(
        circuit, HardwareConfig(rows=13, cols=13, extension=3), name="qft16-ext3"
    )

    print("13x13 layers:   ", flat.summary())
    print("13x39 extended: ", extended.summary())
    print()
    print(
        f"extension packs {flat.mapping_layers} layers into "
        f"{extended.mapping_layers} extended layers "
        f"({extended.mapping_layers * 3} clock cycles for mapping)"
    )
    print()
    print("first extended layer (13x39, cf. paper Fig. 14):")
    print(render_layer(extended.layouts[0]))


if __name__ == "__main__":
    main()
