#!/usr/bin/env python
"""MBQC semantics, verified: one-way execution equals the circuit.

Translates a circuit into a measurement pattern and *executes* it qubit
by qubit — photons are created, entangled along graph edges, measured in
adaptive equatorial bases (``(-1)^s * alpha + t*pi``) and destroyed —
then checks the surviving output photons hold exactly the circuit's
output state, for several random measurement-outcome branches.

Run:  python examples/pattern_verification.py
"""

import numpy as np

from repro import Circuit, circuit_to_pattern, simulate, simulate_pattern
from repro.mbqc import dependency_layers
from repro.sim import states_equal_up_to_phase


def main() -> None:
    circuit = Circuit(3)
    circuit.h(0)
    circuit.t(0)
    circuit.cx(0, 1)
    circuit.rz(0.37, 1)
    circuit.cx(1, 2)
    circuit.h(2)

    pattern = circuit_to_pattern(circuit)
    print("pattern:", pattern.summary())
    layers = dependency_layers(pattern)
    print(f"adaptive (feed-forward) depth: {len(layers)} dependency layers")

    reference = simulate(circuit)
    print("\nexecuting the one-way program on 5 random outcome branches:")
    for seed in range(5):
        result = simulate_pattern(pattern, seed=seed)
        ok = states_equal_up_to_phase(reference, result.state)
        ones = sum(result.outcomes.values())
        print(
            f"  seed {seed}: {ones}/{len(result.outcomes)} outcomes were 1, "
            f"output fidelity = {abs(np.vdot(reference, result.state))**2:.6f} "
            f"{'OK' if ok else 'MISMATCH'}"
        )
        assert ok

    print("\nall branches reproduce the circuit: one-way computation works.")

    # Clifford patterns skip the dense oracle entirely: verify_pattern
    # auto-selects the bit-packed stabilizer engine, which scales the
    # same check to hundreds of qubits in milliseconds.
    from repro.circuit.benchmarks import get_benchmark
    from repro.core.validate import verify_pattern

    print("\nscalable verification (stabilizer engine):")
    for n in (16, 64, 100):
        report = verify_pattern(get_benchmark("BV", n, seed=7))
        print(
            f"  BV-{n}: {report.method} check in {report.seconds*1e3:.1f} ms "
            f"-> {'OK' if report.ok else 'MISMATCH'} ({report.detail})"
        )
        assert report.ok


if __name__ == "__main__":
    main()
