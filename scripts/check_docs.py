#!/usr/bin/env python
"""Documentation health check: dead links and stale code references.

Run from the repository root (CI runs it in the docs job):

    python scripts/check_docs.py

Checks, over ``README.md``, ``PAPER.md``, ``PAPERS.md``, ``CHANGES.md``
and everything under ``docs/``:

1. every relative markdown link ``[text](path)`` resolves to an existing
   file (anchors are stripped; http(s)/mailto links are not fetched —
   only their syntax is validated);
2. every ``src/repro/...py``-style file reference in a docs table or
   inline code span points at a file that still exists;
3. every ``repro.<module>`` dotted reference names an importable module
   path under ``src/``, and when the reference carries an attribute
   suffix (``repro.sim.frame.FrameProgram``), the first attribute is
   defined in that module's source — so renaming or deleting a class
   breaks the doc check, not just deleting the file.

Exits non-zero with a per-problem report when anything is broken, so
docs rot fails CI instead of accumulating.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Iterator, List, Tuple

ROOT = pathlib.Path(__file__).resolve().parents[1]

DOC_FILES = ["README.md", "PAPER.md", "PAPERS.md", "CHANGES.md"]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FILE_REF_RE = re.compile(r"`((?:src|docs|tests|benchmarks|scripts|examples)/[\w./-]+)`")
MODULE_REF_RE = re.compile(r"`(repro(?:\.\w+)+)")


def doc_paths() -> List[pathlib.Path]:
    """Markdown files to check: the top-level docs plus docs/**."""
    paths = [ROOT / name for name in DOC_FILES if (ROOT / name).exists()]
    paths.extend(sorted((ROOT / "docs").glob("**/*.md")))
    return paths


def iter_problems(path: pathlib.Path) -> Iterator[Tuple[int, str]]:
    """Yield ``(line_number, message)`` problems found in *path*."""
    text = path.read_text()
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):  # in-page anchor
                continue
            rel = target.split("#", 1)[0]
            resolved = (path.parent / rel).resolve()
            if not resolved.exists():
                yield lineno, f"dead link: ({target})"
        for match in FILE_REF_RE.finditer(line):
            ref = match.group(1).rstrip("/")
            # table rows often list "dir/file.py" roles; tolerate
            # directories and files alike
            if not (ROOT / ref).exists():
                yield lineno, f"stale file reference: `{match.group(1)}`"
        for match in MODULE_REF_RE.finditer(line):
            dotted = match.group(1)
            problem = _module_problem(dotted)
            if problem is not None:
                yield lineno, problem


def _module_problem(dotted: str) -> "str | None":
    """Check one dotted ``repro...`` reference; ``None`` when healthy.

    The longest prefix of *dotted* must map to a package or module file
    under ``src/``.  Any remainder is an attribute path
    (``repro.eval.batch.RunSpec``); its first segment must be *defined*
    in the resolved module — as a ``class``, ``def``, or module-level
    assignment, or re-exported for packages — which catches docs still
    naming a class that was renamed away.  Checking is textual so the
    docs job never imports the package.
    """
    parts = dotted.split(".")
    for end in range(len(parts), 1, -1):
        base = ROOT / "src" / pathlib.Path(*parts[:end])
        if base.with_suffix(".py").exists():
            source_path = base.with_suffix(".py")
        elif (base / "__init__.py").exists():
            source_path = base / "__init__.py"
        else:
            continue
        if end == len(parts):
            return None
        attr = parts[end]
        if _defines_name(source_path, attr):
            return None
        return (
            f"stale attribute reference: `{dotted}` "
            f"({attr!r} is not defined in {source_path.relative_to(ROOT)})"
        )
    return f"stale module reference: `{dotted}`"


def _defines_name(source_path: pathlib.Path, name: str) -> bool:
    """True when *name* is defined or re-exported at module top level."""
    pattern = re.compile(
        rf"^(?:class|def)\s+{re.escape(name)}\b"
        rf"|^{re.escape(name)}\s*[:=]"
        rf"|^\s+{re.escape(name)},?\s*$"      # import-list / __all__ entry
        rf"|\b{re.escape(name)}\s*=\s"        # aliased assignment
        rf"|import\s+.*\b{re.escape(name)}\b",
        re.MULTILINE,
    )
    return bool(pattern.search(source_path.read_text()))


def main() -> int:
    problems = 0
    for path in doc_paths():
        for lineno, message in iter_problems(path):
            print(f"{path.relative_to(ROOT)}:{lineno}: {message}")
            problems += 1
    if problems:
        print(f"\n{problems} documentation problem(s) found")
        return 1
    print(f"docs ok ({len(doc_paths())} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
