#!/usr/bin/env python3
"""CI gate: the concurrency linter must be clean over the repo source.

Runs :mod:`repro.analysis.concurrency` (lock discipline, async blocking
effects, lock-order cycles, resource lifetimes — see that module for
the CC code table) over ``src/`` by default and fails on any finding
that survives ``# noqa: CCxxx`` suppression.  Also prints the static
lock-acquisition-order graph so a CI log documents the ordering the
runtime sanitizer cross-checks against.

Usage::

    python scripts/check_concurrency.py [path ...]     # default: src/

Exit status 1 when any unsuppressed finding remains, 0 otherwise.
"""

from __future__ import annotations

import pathlib
import sys
from typing import Optional, Sequence

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.concurrency import (  # noqa: E402
    ConcurrencyAnalyzer,
    render_findings,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    paths = [pathlib.Path(p) for p in argv] or [REPO_ROOT / "src"]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {missing[0]}", file=sys.stderr)
        return 2
    analyzer = ConcurrencyAnalyzer()
    analyzer.add_paths(paths)
    findings = analyzer.analyze()
    if findings:
        print(render_findings(findings))
        return 1
    edges = analyzer.lock_order_edges()
    if edges:
        print("static lock-order edges:")
        for (outer, inner), (path, line) in sorted(
            edges.items(), key=lambda kv: (kv[0][0], kv[0][1])
        ):
            print(f"  {outer} -> {inner}  ({path}:{line})")
    else:
        print("static lock-order graph: no nested acquisitions")
    print("concurrency lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
