#!/usr/bin/env python3
"""Project-specific AST lint rules (stdlib-only, no third-party deps).

Rules:

* **LR001 — unseeded RNG**: module-level randomness must be explicit
  and reproducible.  Flags calls to the legacy ``np.random.*`` sampling
  functions (``rand``, ``randint``, ``choice``, ``shuffle``, ...) which
  draw from the hidden global state, ``np.random.seed(...)`` (mutates
  that same hidden global), and zero-argument
  ``np.random.default_rng()`` — every generator must be constructed
  from an explicit seed or spawned from a parent ``SeedSequence``.
* **LR002 — float equality on probabilities**: ``==`` / ``!=``
  comparisons against non-integral float literals are almost always a
  probability/tolerance bug; use ``math.isclose`` or an explicit
  epsilon.  Integral floats (``0.0``, ``1.0``, ``-2.0``) are allowed —
  they are exact in binary and common as sentinels/angles.
* **LR003 — mutable default argument**: ``def f(x, acc=[])`` shares one
  list across calls; use ``None`` + an in-body default.
* **LR004 — silently swallowed exception**: a ``pass``-only handler for
  a bare ``except``, ``except Exception`` or ``except BaseException``
  hides every failure in the guarded block.  Narrow the exception type,
  or handle/log it.  Test files (``tests/`` dirs, ``test_*.py`` /
  ``conftest.py``) are exempt — tests legitimately probe failure paths.

Suppression: append ``# noqa: LR001`` (or a comma-separated list) to
the offending line.  A bare ``# noqa`` suppresses every rule on the
line.

Usage::

    python scripts/lint_rules.py [path ...]     # default: src/

Exit status 1 when any finding survives suppression, 0 otherwise.
CI runs this over ``src/ scripts/ examples/ benchmarks/ tests/``.
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: legacy numpy global-state sampling functions (np.random.<name>)
_LEGACY_SAMPLERS = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "binomial", "poisson", "exponential", "standard_normal", "bytes",
    "seed", "get_state", "set_state",
}

_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*))?",
    re.IGNORECASE,
)


@dataclass(frozen=True)
class Finding:
    path: pathlib.Path
    line: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _noqa_codes(source_line: str) -> Optional[Set[str]]:
    """Codes suppressed on this line; empty set = suppress everything."""
    match = _NOQA_RE.search(source_line)
    if match is None:
        return None
    codes = match.group("codes")
    if not codes:
        return set()
    return {c.strip().upper() for c in codes.split(",")}


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    """Names the module binds to the numpy package (``np``, ``numpy``)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def _attr_chain(node: ast.AST) -> List[str]:
    """``np.random.default_rng`` -> ["np", "random", "default_rng"]."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


class _Checker(ast.NodeVisitor):
    def __init__(self, path: pathlib.Path, tree: ast.Module):
        self.path = path
        self.numpy_names = _numpy_aliases(tree)
        self.findings: List[Finding] = []

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(self.path, getattr(node, "lineno", 0), code, message)
        )

    # -- LR001: unseeded / legacy global RNG ---------------------------
    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if len(chain) == 3 and chain[0] in self.numpy_names \
                and chain[1] == "random":
            name = chain[2]
            if name == "default_rng":
                if not node.args and not node.keywords:
                    self._flag(
                        node, "LR001",
                        "np.random.default_rng() without a seed: pass an "
                        "explicit seed or spawn from a SeedSequence",
                    )
            elif name in _LEGACY_SAMPLERS:
                self._flag(
                    node, "LR001",
                    f"legacy np.random.{name} uses the hidden global RNG; "
                    "use an explicit np.random.default_rng(seed)",
                )
        self.generic_visit(node)

    # -- LR002: float == on probabilities ------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, lhs, rhs in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (lhs, rhs):
                if (
                    isinstance(side, ast.Constant)
                    and isinstance(side.value, float)
                    and not float(side.value).is_integer()
                ):
                    self._flag(
                        node, "LR002",
                        f"float equality against {side.value!r}; use "
                        "math.isclose or an explicit tolerance",
                    )
                    break
        self.generic_visit(node)

    # -- LR003: mutable default args -----------------------------------
    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set")
            ):
                self._flag(
                    default, "LR003",
                    f"mutable default argument in {node.name}(); "
                    "default to None and construct inside the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- LR004: except (Exception)?: pass ------------------------------
    def visit_Try(self, node: ast.Try) -> None:
        if not _is_test_path(self.path):
            for handler in node.handlers:
                if not all(isinstance(s, ast.Pass) for s in handler.body):
                    continue
                caught = _broad_exception_name(handler.type)
                if caught is not None:
                    shown = f"except {caught}" if caught else "except"
                    self._flag(
                        handler, "LR004",
                        f"'{shown}: pass' silently swallows every "
                        "failure in the try block; narrow the type or "
                        "handle the error",
                    )
        self.generic_visit(node)


def _is_test_path(path: pathlib.Path) -> bool:
    """Test files are exempt from LR004 (they probe failure paths)."""
    if "tests" in path.parts:
        return True
    return path.name.startswith("test_") or path.name == "conftest.py"


def _broad_exception_name(exc_type: Optional[ast.AST]) -> Optional[str]:
    """The over-broad caught name, or ``None`` if the catch is narrow.

    Bare ``except`` and ``except Exception/BaseException`` (alone or
    anywhere in a tuple) count as broad.
    """
    if exc_type is None:
        return ""  # bare except
    candidates = (
        exc_type.elts if isinstance(exc_type, ast.Tuple) else [exc_type]
    )
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and candidate.id in (
            "Exception", "BaseException",
        ):
            return candidate.id
    return None


def check_source(
    source: str, path: pathlib.Path = pathlib.Path("<string>")
) -> List[Finding]:
    """Lint one module's source; returns surviving findings."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(path, exc.lineno or 0, "LR000", f"syntax error: {exc.msg}")
        ]
    checker = _Checker(path, tree)
    checker.visit(tree)
    lines = source.splitlines()
    survivors = []
    for finding in checker.findings:
        line = lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
        suppressed = _noqa_codes(line)
        if suppressed is not None and (
            not suppressed or finding.code in suppressed
        ):
            continue
        survivors.append(finding)
    return survivors


def iter_python_files(paths: Sequence[pathlib.Path]) -> Iterator[pathlib.Path]:
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            yield from sorted(path.rglob("*.py"))


def check_paths(paths: Sequence[pathlib.Path]) -> List[Finding]:
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(
            check_source(file_path.read_text(encoding="utf-8"), file_path)
        )
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    paths = [pathlib.Path(p) for p in argv] or [pathlib.Path("src")]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {missing[0]}", file=sys.stderr)
        return 2
    findings = check_paths(paths)
    for finding in findings:
        print(finding.render())
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    if findings:
        breakdown = ", ".join(
            f"{code}: {n}" for code, n in sorted(counts.items())
        )
        print(f"{len(findings)} finding(s) ({breakdown})", file=sys.stderr)
        return 1
    checked = sum(1 for _ in iter_python_files(paths))
    print(f"clean: {checked} files checked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
