"""Property-based end-to-end pipeline tests.

Random circuits, random hardware shapes: the compiler must always emit a
hardware-valid program whose accounting is internally consistent, and
the underlying pattern must stay semantically correct.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OneQCompiler, OneQConfig
from repro.core.validate import validate_program
from repro.hardware import RESOURCE_STATES, HardwareConfig
from repro.mbqc import circuit_to_pattern
from repro.sim import simulate, simulate_pattern, states_equal_up_to_phase
from tests.conftest import random_circuit


@st.composite
def pipeline_cases(draw):
    num_qubits = draw(st.integers(2, 4))
    num_gates = draw(st.integers(2, 14))
    seed = draw(st.integers(0, 9999))
    side = draw(st.integers(6, 12))
    rst = draw(st.sampled_from(sorted(RESOURCE_STATES)))
    extension = draw(st.integers(1, 2))
    return num_qubits, num_gates, seed, side, rst, extension


class TestPipelineProperties:
    @given(pipeline_cases())
    @settings(max_examples=25, deadline=None)
    def test_compile_always_valid(self, case):
        num_qubits, num_gates, seed, side, rst_name, extension = case
        circuit = random_circuit(num_qubits, num_gates, seed)
        hardware = HardwareConfig(
            rows=side,
            cols=side,
            resource_state=RESOURCE_STATES[rst_name],
            extension=extension,
        )
        program = OneQCompiler(OneQConfig(hardware=hardware)).compile(circuit)

        # hardware validity
        ok, errors = validate_program(program, hardware)
        assert ok, errors[:3]

        # accounting consistency
        t = program.fusions
        assert program.num_fusions == (
            t.synthesis + t.edge + t.routing + t.shuffling
        )
        assert program.physical_depth == (
            program.mapping_layers * extension + program.shuffle_layers
        )
        assert program.mapping_layers == len(program.layouts)
        assert t.z_measurements >= 0

        # a fusion is needed for at least every pattern edge
        assert program.num_fusions >= program.pattern_edges

    @given(st.integers(0, 400))
    @settings(max_examples=12, deadline=None)
    def test_pattern_semantics_random(self, seed):
        circuit = random_circuit(3, 10, seed + 31337)
        pattern = circuit_to_pattern(circuit)
        result = simulate_pattern(pattern, seed=seed)
        assert states_equal_up_to_phase(simulate(circuit), result.state)

    @given(st.integers(2, 4), st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_fusion_lower_bound_resource_states(self, num_qubits, seed):
        """Resource states used >= fusion-graph nodes >= pattern nodes."""
        circuit = random_circuit(num_qubits, 8, seed + 555)
        hardware = HardwareConfig.square(10)
        program = OneQCompiler(OneQConfig(hardware=hardware)).compile(circuit)
        assert program.resource_states_used >= program.pattern_nodes
