"""Tests for the resource-state zoo and synthesis accounting."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.resource_state import (
    FOUR_LINE,
    FOUR_RING,
    FOUR_STAR,
    RESOURCE_STATES,
    THREE_LINE,
    get_resource_state,
)

ALL = [THREE_LINE, FOUR_LINE, FOUR_STAR, FOUR_RING]


class TestShapes:
    def test_registry_complete(self):
        assert set(RESOURCE_STATES) == {"3-line", "4-line", "4-star", "4-ring"}

    @pytest.mark.parametrize("rst", ALL, ids=lambda r: r.name)
    def test_graph_size(self, rst):
        g = rst.graph()
        assert g.number_of_nodes() == rst.size

    def test_max_degrees(self):
        assert THREE_LINE.max_degree == 2
        assert FOUR_LINE.max_degree == 2
        assert FOUR_STAR.max_degree == 3
        assert FOUR_RING.max_degree == 2

    def test_shapes(self):
        assert nx.is_isomorphic(THREE_LINE.graph(), nx.path_graph(3))
        assert nx.is_isomorphic(FOUR_STAR.graph(), nx.star_graph(3))
        assert nx.is_isomorphic(FOUR_RING.graph(), nx.cycle_graph(4))

    def test_lookup(self):
        assert get_resource_state("3-line") is THREE_LINE

    def test_unknown_lookup_rejected(self):
        with pytest.raises(ValueError, match="unknown resource state"):
            get_resource_state("5-tree")


class TestStatesForDegree:
    def test_fits_single_state(self):
        assert THREE_LINE.states_for_degree(2) == 1
        assert FOUR_STAR.states_for_degree(3) == 1

    def test_three_line_paper_formula(self):
        """Paper Fig. 8: degree-n node needs n-1 three-qubit states."""
        for d in range(3, 12):
            assert THREE_LINE.states_for_degree(d) == d - 1

    def test_four_star_paper_values(self):
        """Matches the paper's n//m+1 on evaluation-range degrees."""
        assert FOUR_STAR.states_for_degree(4) == 4 // 3 + 1
        assert FOUR_STAR.states_for_degree(6) == 6 // 3 + 1
        assert FOUR_STAR.states_for_degree(9) == 9 // 3 + 1

    def test_zero_degree(self):
        assert THREE_LINE.states_for_degree(0) == 1

    @pytest.mark.parametrize("rst", ALL, ids=lambda r: r.name)
    @given(degree=st.integers(1, 40))
    def test_port_capacity_sufficient(self, rst, degree):
        """k states expose m + (k-1)(m-1) ports >= degree."""
        k = rst.states_for_degree(degree)
        m = rst.max_degree
        ports = m + (k - 1) * (m - 1)
        assert ports >= min(degree, m) if k == 1 else ports >= degree

    @pytest.mark.parametrize("rst", ALL, ids=lambda r: r.name)
    @given(degree=st.integers(1, 40))
    def test_monotone_in_degree(self, rst, degree):
        assert rst.states_for_degree(degree + 1) >= rst.states_for_degree(degree)


class TestStatesForLine:
    def test_short_lines(self):
        assert THREE_LINE.states_for_line(1) == 1
        assert THREE_LINE.states_for_line(3) == 1

    def test_three_line_growth(self):
        """k states of size 3 give a (k+2)-node line."""
        assert THREE_LINE.states_for_line(4) == 2
        assert THREE_LINE.states_for_line(10) == 8

    def test_four_line_growth(self):
        assert FOUR_LINE.states_for_line(4) == 1
        assert FOUR_LINE.states_for_line(6) == 2
        assert FOUR_LINE.states_for_line(10) == 4

    @pytest.mark.parametrize("rst", ALL, ids=lambda r: r.name)
    @given(length=st.integers(2, 50))
    def test_line_capacity(self, rst, length):
        k = rst.states_for_line(length)
        assert k * (rst.size - 2) + 2 >= length

    def test_fusion_capacity_is_size(self):
        for rst in ALL:
            assert rst.fusion_capacity() == rst.size
