"""Tests for the space-time coupling graph and hardware config."""

import pytest

from repro.hardware.coupling import (
    HardwareConfig,
    SpaceTimeCouplingGraph,
    extended_to_physical,
)
from repro.hardware.resource_state import FOUR_STAR, THREE_LINE


class TestHardwareConfig:
    def test_physical_area(self):
        assert HardwareConfig(rows=4, cols=5).physical_area == 20

    def test_square(self):
        cfg = HardwareConfig.square(7)
        assert (cfg.rows, cfg.cols) == (7, 7)

    def test_with_area_square(self):
        cfg = HardwareConfig.with_area(256)
        assert (cfg.rows, cfg.cols) == (16, 16)

    def test_with_area_ratio(self):
        cfg = HardwareConfig.with_area(256, ratio=1.5)
        assert cfg.rows < cfg.cols
        assert abs(cfg.physical_area - 256) <= 30

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            HardwareConfig(rows=0, cols=4)

    def test_invalid_delay_rejected(self):
        with pytest.raises(ValueError):
            HardwareConfig(rows=2, cols=2, max_delay=0)

    def test_invalid_extension_rejected(self):
        with pytest.raises(ValueError):
            HardwareConfig(rows=2, cols=2, extension=0)

    def test_extended_shape(self):
        cfg = HardwareConfig(rows=13, cols=13, extension=3)
        assert cfg.extended_shape == (13, 39)

    def test_default_resource_state(self):
        assert HardwareConfig.square(4).resource_state is THREE_LINE

    def test_custom_resource_state(self):
        cfg = HardwareConfig.square(4, resource_state=FOUR_STAR)
        assert cfg.resource_state is FOUR_STAR


class TestSpaceTimeCouplingGraph:
    def test_node_count(self):
        g = SpaceTimeCouplingGraph(HardwareConfig(rows=3, cols=3), num_layers=2)
        assert g.graph.number_of_nodes() == 18

    def test_spatial_edges_within_layer(self):
        g = SpaceTimeCouplingGraph(HardwareConfig(rows=2, cols=2), num_layers=1)
        kinds = {d["kind"] for _, _, d in g.graph.edges(data=True)}
        assert kinds == {"spatial"}
        assert g.graph.number_of_edges() == 4

    def test_temporal_edges_respect_delay(self):
        cfg = HardwareConfig(rows=1, cols=1, max_delay=2)
        g = SpaceTimeCouplingGraph(cfg, num_layers=4)
        temporal = [
            (u, v)
            for u, v, d in g.graph.edges(data=True)
            if d["kind"] == "temporal"
        ]
        assert ((0, 0, 0), (1, 0, 0)) in [tuple(sorted(e)) for e in temporal]
        assert all(abs(u[0] - v[0]) <= 2 for u, v in temporal)

    def test_neighbor_iterators(self):
        cfg = HardwareConfig(rows=2, cols=2, max_delay=1)
        g = SpaceTimeCouplingGraph(cfg, num_layers=2)
        spatial = list(g.spatial_neighbors((0, 0, 0)))
        temporal = list(g.temporal_neighbors((0, 0, 0)))
        assert (0, 0, 1) in spatial and (0, 1, 0) in spatial
        assert temporal == [(1, 0, 0)]

    def test_max_active_couplings_bounded_by_photons(self):
        """Sec 3.1 difference (1): only `size` couplings can activate."""
        cfg = HardwareConfig(rows=5, cols=5, max_delay=3)
        g = SpaceTimeCouplingGraph(cfg, num_layers=7)
        assert g.max_active_couplings() == 3
        # even though the coupling graph itself offers more supports
        degree = g.graph.degree((3, 2, 2))
        assert degree > g.max_active_couplings()

    def test_invalid_layers_rejected(self):
        with pytest.raises(ValueError):
            SpaceTimeCouplingGraph(HardwareConfig(rows=2, cols=2), num_layers=0)


class TestExtendedToPhysical:
    def test_first_sublayer_identity(self):
        cfg = HardwareConfig(rows=4, cols=4, extension=3)
        assert extended_to_physical((2, 1), cfg) == (0, (2, 1))

    def test_second_sublayer_flipped(self):
        """Fig. 5b: odd sub-layers are flipped horizontally."""
        cfg = HardwareConfig(rows=4, cols=4, extension=3)
        sub, coord = extended_to_physical((2, 4), cfg)
        assert sub == 1
        assert coord == (2, 3)  # first column of sublayer 1 = last physical

    def test_third_sublayer_unflipped(self):
        cfg = HardwareConfig(rows=4, cols=4, extension=3)
        sub, coord = extended_to_physical((0, 8), cfg)
        assert sub == 2
        assert coord == (0, 0)

    def test_boundary_continuity(self):
        """Cells adjacent across a sub-layer boundary map to the same RSG."""
        cfg = HardwareConfig(rows=4, cols=4, extension=2)
        _, last_of_0 = extended_to_physical((1, 3), cfg)
        _, first_of_1 = extended_to_physical((1, 4), cfg)
        assert last_of_0 == first_of_1  # same RSG, consecutive cycles
