"""Tests for the photonic noise model and fidelity estimation."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baseline import compile_baseline
from repro.circuit import get_benchmark
from repro.core import compile_circuit
from repro.hardware import HardwareConfig
from repro.hardware.noise import (
    DEFAULT_NOISE,
    NoiseModel,
    baseline_log_fidelity,
    expected_fusion_attempts,
    fidelity_improvement_factor,
    log_fidelity,
    program_log_fidelity,
    success_probability,
)


class TestNoiseModel:
    def test_defaults_valid(self):
        assert 0 < DEFAULT_NOISE.fusion_success <= 1

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(fusion_error=1.5)

    def test_zero_success_is_a_valid_degenerate_bound(self):
        """p=0 follows the same bound handling as the p=1 error rates:
        the model is constructible and the derived quantities degenerate
        (attempts diverge) instead of the constructor crashing."""
        from repro.hardware.noise import expected_fusion_attempts

        model = NoiseModel(fusion_success=0.0)
        assert model.fusion_success == 0.0
        assert expected_fusion_attempts(5, model) == float("inf")
        assert expected_fusion_attempts(0, model) == 0.0

    @pytest.mark.parametrize(
        "field",
        ["fusion_success", "fusion_error", "cycle_loss", "measurement_error"],
    )
    def test_each_field_validated(self, field):
        """__post_init__ rejects out-of-range values for every field."""
        with pytest.raises(ValueError):
            NoiseModel(**{field: -0.01})
        with pytest.raises(ValueError):
            NoiseModel(**{field: 1.01})

    @pytest.mark.parametrize(
        "field", ["fusion_error", "cycle_loss", "measurement_error"]
    )
    def test_probability_bounds_accepted(self, field):
        """p = 0 and p = 1 are both valid (if extreme) probabilities."""
        assert getattr(NoiseModel(**{field: 0.0}), field) == 0.0
        assert getattr(NoiseModel(**{field: 1.0}), field) == 1.0

    def test_perfect_fusion_success_accepted(self):
        assert NoiseModel(fusion_success=1.0).fusion_success == 1.0

    def test_frozen(self):
        import dataclasses

        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_NOISE.fusion_error = 0.5


class TestScaled:
    MODEL = NoiseModel(
        fusion_success=0.75,
        fusion_error=0.25,
        cycle_loss=0.125,
        measurement_error=0.0625,
    )

    def test_severity_one_is_identity(self):
        assert self.MODEL.scaled(1.0) == self.MODEL

    def test_severity_zero_is_noiseless(self):
        """The severity-0 edge: every failure channel vanishes, fusion
        always succeeds."""
        clean = self.MODEL.scaled(0.0)
        assert clean == NoiseModel(
            fusion_success=1.0,
            fusion_error=0.0,
            cycle_loss=0.0,
            measurement_error=0.0,
        )

    def test_rates_clamped_at_probability_one(self):
        """Scaling past certainty saturates at p = 1 (and fusion
        success at 0) instead of leaving the probability space."""
        worst = self.MODEL.scaled(100.0)
        assert worst == NoiseModel(
            fusion_success=0.0,
            fusion_error=1.0,
            cycle_loss=1.0,
            measurement_error=1.0,
        )

    def test_failure_rates_scale_linearly_below_the_clamp(self):
        half = self.MODEL.scaled(0.5)
        assert half.fusion_error == pytest.approx(0.125)
        assert half.cycle_loss == pytest.approx(0.0625)
        assert half.measurement_error == pytest.approx(0.03125)
        # fusion *failure* (1 - success) is what scales, not success
        assert 1.0 - half.fusion_success == pytest.approx(0.125)

    def test_negative_severity_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            self.MODEL.scaled(-0.5)

    def test_saturated_rate_stays_saturated(self):
        """p = 1 inputs stay at the bound for any severity >= 1."""
        certain = NoiseModel(fusion_success=0.5, cycle_loss=1.0)
        assert certain.scaled(2.0).cycle_loss == 1.0


class TestLogFidelity:
    def test_no_events_perfect(self):
        assert log_fidelity(0, 0, 0) == 0.0

    def test_monotone_in_fusions(self):
        a = log_fidelity(10, 0, 0)
        b = log_fidelity(20, 0, 0)
        assert b < a < 0

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            log_fidelity(-1, 0, 0)

    def test_matches_product_form(self):
        model = NoiseModel(fusion_error=0.1, cycle_loss=0.0, measurement_error=0.0)
        lf = log_fidelity(5, 0, 0, model)
        assert math.exp(lf) == pytest.approx(0.9**5)

    @given(
        st.integers(0, 1000), st.integers(0, 1000), st.integers(0, 1000)
    )
    def test_always_nonpositive(self, f, m, c):
        assert log_fidelity(f, m, c) <= 0.0

    def test_certain_error_gives_minus_infinity(self):
        """A rate of exactly 1 with a positive count is certain failure
        (math.log1p(-1) would raise, so this is an explicit branch)."""
        model = NoiseModel(fusion_error=1.0)
        assert log_fidelity(1, 0, 0, model) == float("-inf")
        assert success_probability(1, 0, 0, model) == 0.0
        # ... but with a zero count the certain channel never fires
        assert log_fidelity(0, 5, 5, model) < 0.0

    def test_zero_rates_give_certain_success(self):
        model = NoiseModel(
            fusion_error=0.0, cycle_loss=0.0, measurement_error=0.0
        )
        assert log_fidelity(100, 100, 100, model) == 0.0
        assert success_probability(100, 100, 100, model) == 1.0

    def test_success_probability_matches_exp(self):
        assert success_probability(7, 11, 13) == pytest.approx(
            math.exp(log_fidelity(7, 11, 13))
        )


class TestExpectedAttempts:
    def test_boosted_fusion(self):
        assert expected_fusion_attempts(75) == pytest.approx(100.0)

    def test_bare_fusion(self):
        model = NoiseModel(fusion_success=0.5)
        assert expected_fusion_attempts(10, model) == pytest.approx(20.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            expected_fusion_attempts(-1)


class TestProgramFidelity:
    @pytest.fixture(scope="class")
    def compiled(self):
        circuit = get_benchmark("BV", 16)
        program = compile_circuit(circuit, HardwareConfig.square(16))
        baseline = compile_baseline(circuit, "BV")
        return program, baseline

    def test_oneq_higher_fidelity_than_baseline(self, compiled):
        """Fewer fusions -> higher overall fidelity (paper Sec. 2.1)."""
        program, baseline = compiled
        assert program_log_fidelity(program) > baseline_log_fidelity(baseline)

    def test_improvement_factor_large(self, compiled):
        program, baseline = compiled
        factor = fidelity_improvement_factor(program, baseline)
        assert factor > 100  # BV: ~2000x fewer fusions

    def test_noisier_model_lowers_fidelity(self, compiled):
        program, _ = compiled
        clean = program_log_fidelity(program, NoiseModel(fusion_error=0.001))
        dirty = program_log_fidelity(program, NoiseModel(fusion_error=0.05))
        assert dirty < clean
