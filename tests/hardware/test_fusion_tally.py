"""Tests for fusion accounting."""

import pytest

from repro.hardware.fusion import FusionTally


class TestFusionTally:
    def test_total(self):
        t = FusionTally(synthesis=2, edge=3, routing=4, shuffling=1)
        assert t.total == 10

    def test_photons(self):
        t = FusionTally(edge=5)
        assert t.photons_consumed_by_fusion == 10

    def test_add(self):
        t = FusionTally()
        t.add("edge", 2)
        t.add("routing")
        assert t.edge == 2
        assert t.routing == 1

    def test_add_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fusion kind"):
            FusionTally().add("teleport")

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            FusionTally().add("edge", -1)

    def test_merge(self):
        a = FusionTally(synthesis=1, z_measurements=5, extra={"x": 1})
        b = FusionTally(synthesis=2, shuffling=3, extra={"x": 2, "y": 1})
        a.merge(b)
        assert a.synthesis == 3
        assert a.shuffling == 3
        assert a.z_measurements == 5
        assert a.extra == {"x": 3, "y": 1}

    def test_as_dict(self):
        d = FusionTally(edge=1, routing=2).as_dict()
        assert d["total"] == 3
        assert set(d) == {
            "synthesis",
            "edge",
            "routing",
            "shuffling",
            "total",
            "z_measurements",
        }
