"""Tests for per-site noise maps, scenarios and site attribution."""

import numpy as np
import pytest

from repro.circuit import get_benchmark
from repro.core import compile_circuit
from repro.hardware import HardwareConfig
from repro.hardware.degradation import (
    SCENARIOS,
    SiteNoiseMap,
    SiteProfile,
    active_cells,
    dead_assigned_fusions,
    make_scenario,
    program_site_profile,
    scenario_dead_rsg,
    scenario_degraded_fusion,
    scenario_loss_gradient,
    scenario_loss_hotspot,
    site_analytic_yield,
)
from repro.hardware.noise import DEFAULT_NOISE, NoiseModel
from repro.sim.noisy import FaultCounts

MILD = NoiseModel(
    fusion_success=0.9,
    fusion_error=5e-05,
    cycle_loss=1e-05,
    measurement_error=1e-05,
)


class TestSiteNoiseMap:
    def test_uniform_map_reduces_to_its_model(self):
        site_map = SiteNoiseMap.uniform(MILD, (4, 4))
        model = site_map.as_uniform_model()
        assert model == MILD

    def test_dead_map_is_never_uniform(self):
        dead = np.zeros((3, 3), dtype=bool)
        dead[1, 1] = True
        site_map = SiteNoiseMap(shape=(3, 3), base=MILD, dead=dead)
        assert site_map.as_uniform_model() is None

    def test_heterogeneous_plane_is_not_uniform(self):
        loss = np.full((3, 3), 0.001)
        loss[0, 0] = 0.002
        site_map = SiteNoiseMap(shape=(3, 3), base=MILD, cycle_loss=loss)
        assert site_map.as_uniform_model() is None

    def test_dead_sites_normalized(self):
        dead = np.zeros((3, 3), dtype=bool)
        dead[2, 1] = True
        site_map = SiteNoiseMap(shape=(3, 3), base=MILD, dead=dead)
        assert site_map.fusion_success[2, 1] == 0.0
        assert site_map.cycle_loss[2, 1] == 1.0
        assert site_map.dead_fraction == pytest.approx(1 / 9)
        assert site_map.dead_cells == ((2, 1),)

    def test_planes_are_read_only(self):
        site_map = SiteNoiseMap.uniform(MILD, (2, 2))
        with pytest.raises(ValueError):
            site_map.cycle_loss[0, 0] = 0.5

    def test_wrong_plane_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            SiteNoiseMap(
                shape=(3, 3), base=MILD, cycle_loss=np.zeros((2, 2))
            )

    def test_out_of_range_rates_rejected(self):
        with pytest.raises(ValueError, match="probabilities"):
            SiteNoiseMap(
                shape=(2, 2), base=MILD, cycle_loss=np.full((2, 2), 1.5)
            )

    def test_avoid_mask_flags_dead_and_degraded(self):
        dead = np.zeros((3, 3), dtype=bool)
        dead[0, 0] = True
        loss = np.full((3, 3), 0.001)
        loss[1, 1] = 0.09  # above AVOID_CYCLE_LOSS
        site_map = SiteNoiseMap(
            shape=(3, 3), base=MILD, dead=dead, cycle_loss=loss
        )
        assert site_map.avoid_cells() == ((0, 0), (1, 1))

    def test_json_roundtrip(self, tmp_path):
        site_map = make_scenario("dead-rsg", (4, 4), 0.25, base=MILD)
        path = site_map.save(tmp_path / "calib.json")
        loaded = SiteNoiseMap.load(path)
        assert loaded.shape == site_map.shape
        assert loaded.base == site_map.base
        np.testing.assert_array_equal(loaded.dead, site_map.dead)
        np.testing.assert_array_equal(
            loaded.fusion_success, site_map.fusion_success
        )
        np.testing.assert_array_equal(
            loaded.cycle_loss, site_map.cycle_loss
        )

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            SiteNoiseMap.from_json({"schema": "bogus/v9"})


class TestScenarios:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_severity_zero_is_pristine(self, name):
        site_map = make_scenario(name, (5, 5), 0.0, base=MILD)
        assert site_map.as_uniform_model() == MILD

    def test_dead_rsg_fraction_tracks_severity(self):
        site_map = scenario_dead_rsg((10, 10), 0.3, base=MILD, seed=3)
        assert site_map.dead_fraction == pytest.approx(0.3)

    def test_dead_rsg_severity_one_kills_everything(self):
        site_map = scenario_dead_rsg((4, 4), 1.0, base=MILD)
        assert site_map.dead_fraction == 1.0

    def test_dead_rsg_deterministic_per_seed(self):
        a = scenario_dead_rsg((6, 6), 0.2, base=MILD, seed=11)
        b = scenario_dead_rsg((6, 6), 0.2, base=MILD, seed=11)
        c = scenario_dead_rsg((6, 6), 0.2, base=MILD, seed=12)
        np.testing.assert_array_equal(a.dead, b.dead)
        assert not np.array_equal(a.dead, c.dead)

    def test_loss_gradient_ramps_along_columns(self):
        site_map = scenario_loss_gradient((3, 5), 1.0, base=MILD)
        loss = site_map.cycle_loss
        assert loss[0, 0] == pytest.approx(MILD.cycle_loss)
        assert loss[0, -1] == pytest.approx(MILD.cycle_loss + 0.02)
        assert (np.diff(loss, axis=1) > 0).all()

    def test_loss_hotspot_peaks_at_centre(self):
        site_map = scenario_loss_hotspot((7, 7), 1.0, base=MILD)
        loss = site_map.cycle_loss
        assert loss[3, 3] == loss.max()
        assert loss[3, 3] == pytest.approx(MILD.cycle_loss + 0.1)
        assert loss[0, 0] < loss[3, 3]

    def test_degraded_fusion_moves_both_channels(self):
        site_map = scenario_degraded_fusion((6, 6), 0.5, base=MILD, seed=5)
        assert (site_map.fusion_success <= MILD.fusion_success).all()
        assert (site_map.fusion_error >= MILD.fusion_error).all()
        assert site_map.as_uniform_model() is None

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            make_scenario("meteor-strike", (4, 4), 0.5)

    def test_severity_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            make_scenario("dead-rsg", (4, 4), 1.5)


@pytest.fixture(scope="module")
def compiled():
    hardware = HardwareConfig.square(6)
    program = compile_circuit(get_benchmark("BV", 8), hardware)
    return hardware, program


class TestSiteProfile:
    def test_out_of_grid_sites_rejected(self):
        with pytest.raises(ValueError, match="out-of-grid"):
            SiteProfile(
                shape=(2, 2),
                fusion_sites=np.array([5]),
                cycle_sites=np.array([0]),
            )

    def test_event_counts_match_program_accounting(self, compiled):
        hardware, program = compiled
        profile = program_site_profile(program, hardware.extended_shape)
        assert profile.fusion_sites.size == program.num_fusions
        assert profile.cycle_sites.size == program.resource_states_used * 3

    def test_events_only_on_occupied_cells(self, compiled):
        hardware, program = compiled
        rows, cols = hardware.extended_shape
        profile = program_site_profile(program, hardware.extended_shape)
        occupied = {r * cols + c for r, c in active_cells(program)}
        assert set(profile.active_sites.tolist()) <= occupied

    def test_shape_mismatch_rejected(self, compiled):
        _, program = compiled
        with pytest.raises(ValueError, match="outside"):
            program_site_profile(program, (2, 2))


class TestSiteAnalyticYield:
    def test_uniform_map_matches_scalar_closed_form(self, compiled):
        hardware, program = compiled
        site_map = SiteNoiseMap.uniform(MILD, hardware.extended_shape)
        profile = program_site_profile(program, hardware.extended_shape)
        per_site = site_analytic_yield(
            profile, site_map, program.pattern_nodes
        )
        scalar = FaultCounts.from_program(program).analytic_yield(MILD)
        assert per_site == pytest.approx(scalar, rel=1e-9)

    def test_dead_assigned_fusion_zeroes_the_yield(self, compiled):
        hardware, program = compiled
        dead = np.ones(hardware.extended_shape, dtype=bool)
        site_map = SiteNoiseMap(
            shape=hardware.extended_shape, base=MILD, dead=dead
        )
        profile = program_site_profile(program, hardware.extended_shape)
        assert site_analytic_yield(profile, site_map, 0) == 0.0
        assert dead_assigned_fusions(profile, site_map) == (
            profile.fusion_sites.size
        )

    def test_healthy_map_counts_no_dead_fusions(self, compiled):
        hardware, program = compiled
        site_map = SiteNoiseMap.uniform(MILD, hardware.extended_shape)
        profile = program_site_profile(program, hardware.extended_shape)
        assert dead_assigned_fusions(profile, site_map) == 0
