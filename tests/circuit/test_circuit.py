"""Tests for the Circuit container."""

import pytest

from repro.circuit import Circuit
from repro.circuit.gates import Gate


class TestConstruction:
    def test_empty(self):
        c = Circuit(3)
        assert len(c) == 0
        assert c.num_qubits == 3

    def test_zero_qubits_rejected(self):
        with pytest.raises(ValueError):
            Circuit(0)

    def test_append_out_of_range_rejected(self):
        c = Circuit(2)
        with pytest.raises(ValueError, match="outside circuit"):
            c.append(Gate("h", (2,)))

    def test_builder_methods_chain(self):
        c = Circuit(2).h(0).cx(0, 1).rz(0.5, 1)
        assert [g.name for g in c] == ["h", "cx", "rz"]

    def test_from_iterable(self):
        gates = [Gate("h", (0,)), Gate("cz", (0, 1))]
        c = Circuit(2, gates)
        assert len(c) == 2

    def test_copy_independent(self):
        c = Circuit(1).h(0)
        d = c.copy()
        d.x(0)
        assert len(c) == 1
        assert len(d) == 2


class TestQueries:
    def test_count_ops(self):
        c = Circuit(2).h(0).h(1).cz(0, 1)
        assert c.count_ops() == {"h": 2, "cz": 1}

    def test_two_qubit_pairs(self):
        c = Circuit(3).cx(0, 1).h(2).cz(1, 2)
        assert c.two_qubit_pairs() == [(0, 1), (1, 2)]

    def test_depth_parallel_gates(self):
        c = Circuit(2).h(0).h(1)
        assert c.depth() == 1

    def test_depth_serial_gates(self):
        c = Circuit(1).h(0).t(0).h(0)
        assert c.depth() == 3

    def test_depth_two_qubit_sync(self):
        c = Circuit(2).h(0).cz(0, 1).h(1)
        assert c.depth() == 3

    def test_depth_empty(self):
        assert Circuit(4).depth() == 0

    def test_moments_cover_all_gates(self):
        c = Circuit(3).h(0).cx(0, 1).h(2).cz(1, 2).t(0)
        moments = c.moments()
        assert sum(len(m) for m in moments) == len(c)

    def test_moments_respect_order(self):
        c = Circuit(2).h(0).cz(0, 1)
        moments = c.moments()
        assert moments[0][0].name == "h"
        assert moments[1][0].name == "cz"

    def test_equality(self):
        a = Circuit(2).h(0)
        b = Circuit(2).h(0)
        assert a == b
        b.x(1)
        assert a != b

    def test_equality_different_sizes(self):
        assert Circuit(2) != Circuit(3)
