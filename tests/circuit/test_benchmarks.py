"""Tests for the paper benchmark generators."""

import math

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    bernstein_vazirani,
    get_benchmark,
    qaoa_maxcut,
    qft,
    random_maxcut_edges,
    random_secret_string,
    ripple_carry_adder,
)
from repro.sim.statevector import basis_state_distribution, simulate


class TestQFT:
    def test_gate_count(self):
        c = qft(4)
        ops = c.count_ops()
        assert ops["h"] == 4
        assert ops["cp"] == 6  # n(n-1)/2
        assert ops["swap"] == 2

    def test_no_swaps_option(self):
        assert "swap" not in qft(4, include_swaps=False).count_ops()

    def test_matches_dft_matrix(self):
        n = 3
        state = simulate(qft(n))
        # QFT|0> is the uniform superposition
        expected = np.ones(2**n, dtype=complex) / math.sqrt(2**n)
        assert np.allclose(state, expected, atol=1e-8)

    @pytest.mark.parametrize("x", [1, 3, 5])
    def test_qft_on_basis_state(self, x):
        """Textbook QFT: wire 0 is the most significant bit (big-endian).

        With our little-endian simulator this means the circuit equals
        ``R @ DFT @ R`` where ``R`` is the bit-reversal permutation.
        """
        n = 3
        dim = 2**n
        init = np.zeros(dim, dtype=complex)
        init[x] = 1.0
        state = simulate(qft(n), init)

        def rev(k):
            return int(format(k, f"0{n}b")[::-1], 2)

        omega = np.exp(2j * math.pi / dim)
        expected = np.zeros(dim, dtype=complex)
        for m in range(dim):
            expected[m] = omega ** (rev(x) * rev(m)) / math.sqrt(dim)
        assert np.allclose(state, expected, atol=1e-8)


class TestQAOA:
    def test_deterministic(self):
        assert qaoa_maxcut(6, seed=3) == qaoa_maxcut(6, seed=3)

    def test_seed_changes_circuit(self):
        assert qaoa_maxcut(6, seed=3) != qaoa_maxcut(6, seed=4)

    def test_edge_count_half_of_complete(self):
        edges = random_maxcut_edges(8, seed=1)
        assert len(edges) == (8 * 7 // 2) // 2

    def test_edges_valid(self):
        for i, j in random_maxcut_edges(10, seed=2):
            assert 0 <= i < j < 10

    def test_rounds_scale_gates(self):
        one = qaoa_maxcut(6, rounds=1)
        two = qaoa_maxcut(6, rounds=2)
        assert len(two) > len(one)

    def test_custom_edges(self):
        c = qaoa_maxcut(4, edges=[(0, 1)])
        assert c.count_ops()["cx"] == 2


class TestRCA:
    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ripple_carry_adder(3)

    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (2, 3), (3, 3)])
    def test_addition_correct(self, a, b):
        """The adder computes b <- a + b (mod 4) with carry-out."""
        n = 2
        num_qubits = 2 * n + 2
        circuit = Circuit(num_qubits)
        # encode operands: b at wires 1,3; a at wires 2,4
        for i in range(n):
            if (b >> i) & 1:
                circuit.x(1 + 2 * i)
            if (a >> i) & 1:
                circuit.x(2 + 2 * i)
        for gate in ripple_carry_adder(num_qubits):
            circuit.append(gate)
        dist = basis_state_distribution(simulate(circuit))
        assert len(dist) == 1
        (idx, prob), = dist.items()
        assert prob == pytest.approx(1.0)
        total = a + b
        b_out = sum(((idx >> (1 + 2 * i)) & 1) << i for i in range(n))
        a_out = sum(((idx >> (2 + 2 * i)) & 1) << i for i in range(n))
        carry = (idx >> (2 * n + 1)) & 1
        assert b_out == total % (2**n)
        assert carry == (1 if total >= 2**n else 0)
        assert a_out == a  # a register restored

    def test_idle_qubits_untouched(self):
        c = ripple_carry_adder(7)  # n=2, uses 6 qubits, wire 6 idle
        used = {q for g in c for q in g.qubits}
        assert 6 not in used


class TestBV:
    @pytest.mark.parametrize("secret", ["101", "000", "111", "010"])
    def test_secret_recovered(self, secret):
        """Inputs hold the secret deterministically (ancilla stays in |->)."""
        c = bernstein_vazirani(4, secret=secret)
        dist = basis_state_distribution(simulate(c))
        input_bits = {
            "".join(str((idx >> q) & 1) for q in range(3)) for idx in dist
        }
        assert input_bits == {secret}

    def test_wrong_secret_length_rejected(self):
        with pytest.raises(ValueError):
            bernstein_vazirani(4, secret="10")

    def test_random_secret_half_ones(self):
        s = random_secret_string(10, seed=5)
        assert s.count("1") == 5

    def test_random_secret_deterministic(self):
        assert random_secret_string(8, seed=1) == random_secret_string(8, seed=1)


class TestRegistry:
    @pytest.mark.parametrize("name", ["QFT", "QAOA", "RCA", "BV"])
    def test_get_benchmark(self, name):
        c = get_benchmark(name, 8)
        assert c.num_qubits == 8
        assert len(c) > 0

    def test_case_insensitive(self):
        assert get_benchmark("qft", 4) == get_benchmark("QFT", 4)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_benchmark("shor", 4)
