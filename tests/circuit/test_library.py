"""Equivalence tests for the gate-set lowering passes.

These pin every decomposition convention in the project numerically.
"""

import math

import pytest

from repro.circuit import Circuit, simplify_basic, to_basic, to_jcz
from repro.sim.statevector import circuit_unitary, unitaries_equal_up_to_phase
from tests.conftest import random_circuit

ALL_1Q = ["i", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx"]


def assert_equivalent(circuit, lowered):
    assert unitaries_equal_up_to_phase(
        circuit_unitary(circuit), circuit_unitary(lowered)
    ), f"lowering changed semantics: {[str(g) for g in circuit]}"


class TestToBasic:
    @pytest.mark.parametrize("name", ALL_1Q)
    def test_named_1q_gates(self, name):
        c = Circuit(1).add(name, 0)
        assert_equivalent(c, to_basic(c))

    @pytest.mark.parametrize("name", ["rx", "ry", "rz", "p"])
    @pytest.mark.parametrize("theta", [0.3, math.pi / 4, -1.2, math.pi])
    def test_rotations(self, name, theta):
        c = Circuit(1).add(name, 0, params=(theta,))
        assert_equivalent(c, to_basic(c))

    @pytest.mark.parametrize("name", ["cz", "cx", "swap"])
    def test_2q_gates(self, name):
        c = Circuit(2).add(name, 0, 1)
        assert_equivalent(c, to_basic(c))

    def test_cx_reversed_direction(self):
        c = Circuit(2).cx(1, 0)
        assert_equivalent(c, to_basic(c))

    @pytest.mark.parametrize("theta", [0.7, math.pi / 8])
    def test_cp(self, theta):
        c = Circuit(2).cp(theta, 0, 1)
        assert_equivalent(c, to_basic(c))

    def test_ccx(self):
        c = Circuit(3).ccx(0, 1, 2)
        assert_equivalent(c, to_basic(c))

    def test_ccx_permuted(self):
        c = Circuit(3).ccx(2, 0, 1)
        assert_equivalent(c, to_basic(c))

    def test_output_gate_set(self):
        c = Circuit(3).ccx(0, 1, 2).cp(0.5, 0, 2).swap(1, 2).ry(0.3, 0)
        lowered = to_basic(c)
        assert set(lowered.count_ops()) <= {"h", "rz", "rx", "cz"}

    @pytest.mark.parametrize("seed", range(8))
    def test_random_circuits(self, seed):
        c = random_circuit(3, 12, seed, two_qubit_gates=("cz", "cx", "swap", "cp"))
        assert_equivalent(c, to_basic(c))


class TestToJcz:
    def test_output_gate_set(self):
        c = Circuit(2).h(0).t(1).cx(0, 1).ry(1.1, 0)
        lowered = to_jcz(c)
        assert set(lowered.count_ops()) <= {"j", "cz"}

    @pytest.mark.parametrize("seed", range(8))
    def test_random_circuits(self, seed):
        c = random_circuit(3, 12, seed)
        assert_equivalent(c, to_jcz(c))

    def test_simplify_false_still_equivalent(self):
        c = Circuit(2).h(0).h(0).cx(0, 1)
        assert_equivalent(c, to_jcz(c, simplify=False))

    def test_hh_cancellation_reduces_gates(self):
        c = Circuit(1).h(0).h(0)
        assert len(to_jcz(c)) == 0

    def test_rotation_merge_reduces_gates(self):
        c = Circuit(1).rz(0.5, 0).rz(0.25, 0)
        merged = to_jcz(c)
        single = to_jcz(Circuit(1).rz(0.75, 0))
        assert len(merged) == len(single)
        assert_equivalent(c, merged)


class TestSimplifyBasic:
    def test_hh_cancel(self):
        c = to_basic(Circuit(1).h(0).h(0))
        assert len(simplify_basic(c)) == 0

    def test_rz_merge(self):
        c = Circuit(1)
        c.add("rz", 0, params=(0.5,))
        c.add("rz", 0, params=(-0.5,))
        assert len(simplify_basic(c)) == 0

    def test_zero_rotation_dropped(self):
        c = Circuit(1)
        c.add("rx", 0, params=(0.0,))
        assert len(simplify_basic(c)) == 0

    def test_intervening_gate_blocks_merge(self):
        c = Circuit(2)
        c.add("rz", 0, params=(0.5,))
        c.add("cz", 0, 1)
        c.add("rz", 0, params=(0.5,))
        assert len(simplify_basic(c)) == 3

    def test_other_wire_does_not_block(self):
        c = Circuit(2)
        c.add("h", 0)
        c.add("h", 1)
        c.add("h", 0)
        simplified = simplify_basic(c)
        assert simplified.count_ops() == {"h": 1}

    @pytest.mark.parametrize("seed", range(6))
    def test_random_equivalence(self, seed):
        c = to_basic(random_circuit(3, 15, seed + 100))
        assert_equivalent(c, simplify_basic(c))

    @pytest.mark.parametrize("seed", range(4))
    def test_never_grows(self, seed):
        c = to_basic(random_circuit(3, 15, seed + 200))
        assert len(simplify_basic(c)) <= len(c)
