"""Tests for OpenQASM 2.0 interop."""

import math

import pytest

from repro.circuit import Circuit, get_benchmark, to_jcz
from repro.circuit.gates import GATE_SIGNATURES, Gate
from repro.circuit.qasm import from_qasm, to_qasm
from repro.sim.statevector import circuit_unitary, unitaries_equal_up_to_phase
from tests.conftest import random_circuit


def _library_gate(name: str) -> Gate:
    """One concrete instance of every gate in the library."""
    arity, num_params = GATE_SIGNATURES[name]
    params = tuple(0.3 + 0.1 * k for k in range(num_params))
    return Gate(name, tuple(range(arity)), params)


class TestExport:
    def test_header(self):
        text = to_qasm(Circuit(2).h(0))
        assert text.startswith("OPENQASM 2.0;")
        assert 'include "qelib1.inc";' in text
        assert "qreg q[2];" in text

    def test_gate_lines(self):
        text = to_qasm(Circuit(2).h(0).cx(0, 1).rz(math.pi / 4, 1))
        assert "h q[0];" in text
        assert "cx q[0],q[1];" in text
        assert "rz(pi/4) q[1];" in text

    def test_pi_formatting(self):
        text = to_qasm(Circuit(1).rz(3 * math.pi / 2, 0))
        assert "3*pi/2" in text

    def test_j_gate_expands(self):
        text = to_qasm(Circuit(1).j(0.5, 0))
        assert "rz(0.5) q[0];" in text
        assert "h q[0];" in text

    def test_identity_named_id(self):
        assert "id q[0];" in to_qasm(Circuit(1).i(0))

    def test_phase_gate_emitted_as_u1(self):
        """``p`` is not in qelib1.inc: it must export as ``u1``."""
        text = to_qasm(Circuit(1).p(math.pi / 4, 0))
        assert "u1(pi/4) q[0];" in text
        assert "\np(" not in text and not text.startswith("p(")


class TestImport:
    def test_roundtrip_simple(self):
        c = Circuit(3).h(0).cx(0, 1).t(2).swap(1, 2).ccx(0, 1, 2)
        back = from_qasm(to_qasm(c))
        assert back == c

    @pytest.mark.parametrize("seed", range(5))
    def test_roundtrip_random_semantics(self, seed):
        c = random_circuit(3, 10, seed + 4000)
        back = from_qasm(to_qasm(c))
        assert unitaries_equal_up_to_phase(
            circuit_unitary(c), circuit_unitary(back)
        )

    def test_roundtrip_jcz(self):
        """J/CZ circuits survive export (J expands to rz + h)."""
        c = to_jcz(Circuit(2).h(0).t(0).cx(0, 1))
        back = from_qasm(to_qasm(c))
        assert unitaries_equal_up_to_phase(
            circuit_unitary(c), circuit_unitary(back)
        )

    def test_roundtrip_benchmark(self):
        c = get_benchmark("BV", 6)
        back = from_qasm(to_qasm(c))
        assert back == c

    def test_comments_and_blank_lines(self):
        text = """
        OPENQASM 2.0;
        include "qelib1.inc";
        // a comment
        qreg q[1];

        h q[0]; // trailing comment
        """
        c = from_qasm(text)
        assert c.count_ops() == {"h": 1}

    def test_measure_and_barrier_skipped(self):
        text = (
            "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\n"
            "h q[0];\nbarrier q;\nmeasure q[0] -> c[0];\n"
        )
        c = from_qasm(text)
        assert c.count_ops() == {"h": 1}

    def test_u1_alias(self):
        c = from_qasm("OPENQASM 2.0;\nqreg q[1];\nu1(0.5) q[0];\n")
        assert c.gates[0].name == "p"

    def test_phase_gate_roundtrip(self):
        """p exports as u1 and re-imports as p, semantics preserved."""
        c = Circuit(2).h(0).p(0.7, 0).cx(0, 1).p(math.pi / 8, 1)
        back = from_qasm(to_qasm(c))
        assert back == c
        assert unitaries_equal_up_to_phase(
            circuit_unitary(c), circuit_unitary(back)
        )

    @pytest.mark.parametrize("name", sorted(GATE_SIGNATURES))
    def test_roundtrip_every_library_gate(self, name):
        """import(export(c)) == c for each gate of the library.

        ``j`` is the one lossy case — it exports as its ``rz``+``h``
        definition (OpenQASM 2.0 has no J) — so for it we assert
        semantic equality instead of gate-list equality.
        """
        gate = _library_gate(name)
        c = Circuit(max(gate.qubits) + 1).append(gate)
        back = from_qasm(to_qasm(c))
        if name == "j":
            assert [g.name for g in back] == ["rz", "h"]
            assert unitaries_equal_up_to_phase(
                circuit_unitary(c), circuit_unitary(back)
            )
        else:
            assert back == c

    @pytest.mark.parametrize("name", sorted(GATE_SIGNATURES))
    def test_reexport_is_stable(self, name):
        """export(import(export(c))) is byte-identical — aliasing such
        as p->u1->p and i->id->i reaches a fixed point after one trip."""
        gate = _library_gate(name)
        c = Circuit(max(gate.qubits) + 1).append(gate)
        text = to_qasm(c)
        assert to_qasm(from_qasm(text)) == text

    def test_full_library_in_one_circuit(self):
        """All 20 library gates round-trip together in one program."""
        c = Circuit(3)
        for name in sorted(GATE_SIGNATURES):
            c.append(_library_gate(name))
        back = from_qasm(to_qasm(c))
        expected = [g for g in c if g.name != "j"]
        got = [g for g in back if g.name not in ("rz", "h")]
        # non-j gates survive verbatim, in order, interleaved with the
        # rz/h pairs the j expansion leaves behind
        rz_h = [g.name for g in back if g.name in ("rz", "h")]
        assert got == [g for g in expected if g.name not in ("rz", "h")]
        assert rz_h.count("rz") >= 1 and rz_h.count("h") >= 1

    def test_p_u1_aliasing_both_directions(self):
        """The PR-1 aliasing: ``p`` exports as ``u1``; importing either
        spelling yields the same ``p`` gate."""
        via_u1 = from_qasm("OPENQASM 2.0;\nqreg q[1];\nu1(0.4) q[0];\n")
        exported = to_qasm(via_u1)
        assert "u1(0.4) q[0];" in exported
        assert via_u1.gates[0] == Gate("p", (0,), (0.4,))

    def test_missing_qreg_rejected(self):
        with pytest.raises(ValueError, match="qreg"):
            from_qasm("OPENQASM 2.0;\nh q[0];\n")

    def test_unknown_gate_rejected(self):
        with pytest.raises(ValueError, match="unsupported gate"):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\nfoo q[0];\n")

    def test_malicious_angle_rejected(self):
        with pytest.raises(ValueError, match="angle"):
            from_qasm(
                'OPENQASM 2.0;\nqreg q[1];\nrz(__import__("os")) q[0];\n'
            )

    def test_two_registers_rejected(self):
        with pytest.raises(ValueError, match="one quantum register"):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\nqreg r[1];\n")
