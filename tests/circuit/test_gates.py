"""Tests for the gate data model."""

import pytest

from repro.circuit.gates import CLIFFORD_1Q, GATE_SIGNATURES, Gate


class TestGateValidation:
    def test_valid_gate(self):
        g = Gate("h", (0,))
        assert g.arity == 1
        assert not g.is_two_qubit

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown gate"):
            Gate("foo", (0,))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="expects 2 qubits"):
            Gate("cz", (0,))

    def test_wrong_params_rejected(self):
        with pytest.raises(ValueError, match="expects 1 params"):
            Gate("rz", (0,))

    def test_extra_params_rejected(self):
        with pytest.raises(ValueError, match="expects 0 params"):
            Gate("h", (0,), (0.5,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Gate("cz", (1, 1))

    def test_negative_qubit_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Gate("h", (-1,))

    def test_frozen(self):
        g = Gate("x", (0,))
        with pytest.raises(AttributeError):
            g.name = "y"


class TestGateProperties:
    def test_two_qubit_flag(self):
        assert Gate("cz", (0, 1)).is_two_qubit
        assert not Gate("ccx", (0, 1, 2)).is_two_qubit

    def test_remapped(self):
        g = Gate("cx", (0, 1)).remapped({0: 5, 1: 3})
        assert g.qubits == (5, 3)
        assert g.name == "cx"

    def test_remapped_preserves_params(self):
        g = Gate("rz", (2,), (0.7,)).remapped({2: 0})
        assert g.params == (0.7,)

    def test_equality(self):
        assert Gate("rz", (0,), (0.5,)) == Gate("rz", (0,), (0.5,))
        assert Gate("rz", (0,), (0.5,)) != Gate("rz", (0,), (0.6,))

    def test_signature_table_consistent(self):
        for name, (arity, n_params) in GATE_SIGNATURES.items():
            qubits = tuple(range(arity))
            params = tuple(0.1 for _ in range(n_params))
            g = Gate(name, qubits, params)
            assert g.arity == arity

    def test_clifford_set_members(self):
        assert "h" in CLIFFORD_1Q
        assert "t" not in CLIFFORD_1Q
