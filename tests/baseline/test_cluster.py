"""Tests for the constructive cluster-state model."""

import networkx as nx
import pytest

from repro.baseline.cluster import (
    cluster_3d_graph,
    cluster_layer_graph,
    layer_synthesis_cost,
    logical_sites,
    redundancy_stats,
    verify_against_flat_bound,
)
from repro.baseline.metrics import cluster_side, physical_area
from repro.hardware.resource_state import FOUR_STAR, THREE_LINE


class TestClusterGraphs:
    def test_layer_is_lattice(self):
        g = cluster_layer_graph(5)
        assert g.number_of_nodes() == 25
        assert max(d for _, d in g.degree()) == 4

    def test_3d_interior_degree_six(self):
        g = cluster_3d_graph(5, 5)
        assert g.degree((2, 2, 2)) == 6

    def test_3d_corner_degree_three(self):
        g = cluster_3d_graph(3, 3)
        assert g.degree((0, 0, 0)) == 3

    def test_3d_edge_count(self):
        side, depth = 3, 2
        g = cluster_3d_graph(side, depth)
        expected = depth * 2 * side * (side - 1) + side * side * (depth - 1)
        assert g.number_of_edges() == expected

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            cluster_layer_graph(0)
        with pytest.raises(ValueError):
            cluster_3d_graph(3, 0)


class TestLogicalSites:
    def test_sites_spaced(self):
        sites = logical_sites(16)
        assert len(sites) == 16
        for (r, c) in sites:
            assert r % 2 == 0 and c % 2 == 0

    def test_sites_fit_cluster(self):
        """All logical sites fall inside the Table-1 cluster layer."""
        for n in (4, 16, 25, 100):
            side = cluster_side(n)
            for (r, c) in logical_sites(n):
                assert 0 <= r < side and 0 <= c < side

    def test_sites_distinct(self):
        sites = logical_sites(25)
        assert len(set(sites)) == 25


class TestSynthesisCost:
    def test_interior_node_costs_five(self):
        """The paper's flat bound: degree-6 node = 5 three-qubit states."""
        cost = layer_synthesis_cost(15)  # mostly interior
        assert 4.5 < cost.states_per_node <= 5.0

    def test_flat_bound_validates(self):
        for side in (3, 7, 16):
            ok, msg = verify_against_flat_bound(side)
            assert ok, msg

    def test_star_states_cheaper(self):
        three = layer_synthesis_cost(9, THREE_LINE)
        star = layer_synthesis_cost(9, FOUR_STAR)
        assert star.resource_states < three.resource_states

    def test_boundary_effect(self):
        """Small layers have proportionally more cheap boundary nodes."""
        small = layer_synthesis_cost(3)
        large = layer_synthesis_cost(21)
        assert small.states_per_node < large.states_per_node

    def test_physical_area_consistent_with_cost(self):
        """Table 1 physical area covers the exact per-layer state cost."""
        for n in (16, 25, 36, 100):
            side = cluster_side(n)
            exact = layer_synthesis_cost(side).resource_states
            assert physical_area(n) >= exact


class TestRedundancy:
    def test_most_qubits_redundant(self):
        """The paper's motivation: cluster entanglement is mostly wasted."""
        stats = redundancy_stats(16)
        assert stats["redundant_fraction"] > 0.5

    def test_redundancy_grows_with_size(self):
        assert (
            redundancy_stats(100)["redundant_fraction"]
            > redundancy_stats(4)["redundant_fraction"]
        )

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            redundancy_stats(16, used_fraction_per_strip=1.5)
