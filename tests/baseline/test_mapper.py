"""Tests for the baseline grid SWAP router."""

import numpy as np
import pytest

from repro.baseline.mapper import GridRouter, logical_grid_side, route_on_grid
from repro.circuit import Circuit, get_benchmark
from repro.circuit.library import to_basic
from repro.sim.statevector import simulate, states_equal_up_to_phase
from tests.conftest import random_circuit


def embed_state(psi, num_logical, routed):
    """Embed a logical state into routed grid wires via final layout."""
    side = routed.grid_side
    total = side * side
    big = np.zeros(2**total, dtype=complex)
    perm = {q: routed.position_index(q) for q in range(num_logical)}
    for idx in range(len(psi)):
        if abs(psi[idx]) < 1e-14:
            continue
        target = 0
        for q in range(num_logical):
            if (idx >> q) & 1:
                target |= 1 << perm[q]
        big[target] = psi[idx]
    return big


class TestLogicalGridSide:
    @pytest.mark.parametrize("n,side", [(1, 1), (4, 2), (5, 3), (16, 4), (17, 5)])
    def test_side(self, n, side):
        assert logical_grid_side(n) == side


class TestRouting:
    def test_adjacent_gate_unchanged(self):
        c = Circuit(4).cz(0, 1)
        routed = route_on_grid(c)
        assert routed.swap_count == 0

    def test_distant_gate_needs_swaps(self):
        c = Circuit(9).cz(0, 8)  # corners of a 3x3 grid
        routed = route_on_grid(c)
        assert routed.swap_count >= 3  # distance 4 -> >= 3 swaps

    def test_all_2q_gates_adjacent_after_routing(self):
        c = to_basic(get_benchmark("QFT", 9))
        routed = route_on_grid(c)
        side = routed.grid_side
        for gate in routed.circuit:
            if gate.arity == 2:
                (a, b) = gate.qubits
                ra, ca = divmod(a, side)
                rb, cb = divmod(b, side)
                assert abs(ra - rb) + abs(ca - cb) == 1, f"{gate} not adjacent"

    def test_wrong_size_rejected(self):
        router = GridRouter(4)
        with pytest.raises(ValueError):
            router.route(Circuit(5))

    @pytest.mark.parametrize("seed", range(5))
    def test_semantics_preserved(self, seed):
        """Routed circuit equals the original up to the final layout."""
        c = to_basic(random_circuit(4, 10, seed + 700))
        routed = route_on_grid(c)
        psi = simulate(c)
        phi = simulate(routed.circuit)
        assert states_equal_up_to_phase(embed_state(psi, 4, routed), phi)

    def test_swap_count_deterministic(self):
        c = to_basic(get_benchmark("QAOA", 9))
        assert route_on_grid(c).swap_count == route_on_grid(c).swap_count

    def test_final_layout_is_permutation(self):
        c = to_basic(get_benchmark("QFT", 8))
        routed = route_on_grid(c)
        positions = set(routed.final_layout.values())
        assert len(positions) == 8
