"""Tests for the baseline cluster-state interpreter."""

import math

import pytest

from repro.baseline.interpreter import (
    PATTERN_WIDTHS,
    baseline_depth,
    compile_baseline,
    gate_width,
)
from repro.baseline.mapper import route_on_grid
from repro.circuit import Circuit, get_benchmark
from repro.circuit.gates import Gate
from repro.circuit.library import to_basic


class TestGateWidth:
    def test_clifford_narrower_than_rotation(self):
        h = gate_width(Gate("h", (0,)))
        rot = gate_width(Gate("rz", (0,), (0.3,)))
        assert h < rot

    def test_clifford_angle_rotation_is_narrow(self):
        w = gate_width(Gate("rz", (0,), (math.pi / 2,)))
        assert w == PATTERN_WIDTHS["clifford_1q"]

    def test_cz_width(self):
        assert gate_width(Gate("cz", (0, 1))) == PATTERN_WIDTHS["cz"]

    def test_swap_is_three_cnots_wide(self):
        assert gate_width(Gate("swap", (0, 1))) == 3 * PATTERN_WIDTHS["cz"]


class TestBaselineDepth:
    def test_empty_circuit(self):
        routed = route_on_grid(Circuit(4))
        assert baseline_depth(routed) == 0

    def test_single_gate(self):
        routed = route_on_grid(to_basic(Circuit(4).h(0)))
        assert baseline_depth(routed) == PATTERN_WIDTHS["clifford_1q"]

    def test_parallel_gates_share_columns(self):
        parallel = route_on_grid(to_basic(Circuit(4).h(0).h(1).h(2).h(3)))
        serial = route_on_grid(to_basic(Circuit(4).h(0).h(0).h(0).h(0)))
        # (serial h's cancel in simplify; build basic circuit by hand)
        assert baseline_depth(parallel) == PATTERN_WIDTHS["clifford_1q"]

    def test_serial_gates_accumulate(self):
        c = Circuit(2)
        for _ in range(3):
            c.add("rz", 0, params=(0.4,))
            c.add("h", 0)
        routed = route_on_grid(c)
        expected = 3 * (
            PATTERN_WIDTHS["rotation_1q"] + PATTERN_WIDTHS["clifford_1q"]
        )
        assert baseline_depth(routed) == expected


class TestCompileBaseline:
    def test_fusion_identity(self):
        """Paper Table 2 relation: #fusions = depth x physical area."""
        r = compile_baseline(get_benchmark("BV", 16), "BV")
        assert r.num_fusions == r.depth * r.areas.physical_area

    @pytest.mark.parametrize("name", ["QFT", "QAOA", "RCA", "BV"])
    def test_depth_positive(self, name):
        r = compile_baseline(get_benchmark(name, 16), name)
        assert r.depth > 0

    def test_depth_grows_with_qubits(self):
        d16 = compile_baseline(get_benchmark("QFT", 16), "QFT").depth
        d25 = compile_baseline(get_benchmark("QFT", 25), "QFT").depth
        assert d25 > d16

    def test_bv_is_cheapest(self):
        """BV is the shallowest benchmark at 16 qubits (paper Table 2)."""
        depths = {
            name: compile_baseline(get_benchmark(name, 16), name).depth
            for name in ("QFT", "QAOA", "RCA", "BV")
        }
        assert depths["BV"] == min(depths.values())
        assert depths["QFT"] == max(depths.values())

    def test_areas_recorded(self):
        r = compile_baseline(get_benchmark("QFT", 25), "QFT")
        assert r.cluster_area == 81
        assert r.physical_area == 441

    def test_deterministic(self):
        a = compile_baseline(get_benchmark("QAOA", 16), "QAOA")
        b = compile_baseline(get_benchmark("QAOA", 16), "QAOA")
        assert a.depth == b.depth
        assert a.num_fusions == b.num_fusions
