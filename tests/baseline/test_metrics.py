"""Tests for baseline areas: these must match Table 1 exactly."""

import pytest

from repro.baseline.metrics import (
    BaselineAreas,
    cluster_area,
    cluster_side,
    physical_area,
    physical_side,
)
from repro.hardware.resource_state import FOUR_STAR, THREE_LINE


class TestTable1Exact:
    """Paper Table 1, reproduced exactly."""

    @pytest.mark.parametrize(
        "n,cside,pside",
        [(16, 7, 16), (25, 9, 21), (36, 11, 25), (100, 19, 43)],
    )
    def test_paper_values(self, n, cside, pside):
        assert cluster_side(n) == cside
        assert physical_side(n) == pside

    def test_cluster_area_is_square(self):
        assert cluster_area(16) == 49
        assert cluster_area(100) == 361

    def test_physical_area_is_square(self):
        assert physical_area(16) == 256
        assert physical_area(100) == 1849


class TestScaling:
    def test_cluster_side_monotone(self):
        sides = [cluster_side(n) for n in range(1, 101)]
        assert sides == sorted(sides)

    def test_physical_dominates_cluster(self):
        for n in (4, 9, 25, 64):
            assert physical_area(n) > cluster_area(n)

    def test_resource_state_changes_physical_area(self):
        """4-star synthesizes degree-6 nodes in fewer states (Sec. 5)."""
        assert physical_area(16, FOUR_STAR) < physical_area(16, THREE_LINE)

    def test_areas_dataclass(self):
        areas = BaselineAreas.for_qubits(16)
        assert areas.cluster_area == areas.cluster_side**2
        assert areas.physical_area == areas.physical_side**2

    def test_single_qubit(self):
        assert cluster_side(1) == 1
        assert physical_side(1) >= 2
