"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compile_defaults(self):
        args = build_parser().parse_args(["compile"])
        assert args.benchmark == "QFT"
        assert args.qubits == 16

    def test_bad_resource_state_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile", "--resource-state", "5-blob"])


class TestCommands:
    def test_compile_benchmark(self, capsys):
        assert main(["compile", "--benchmark", "BV", "--qubits", "8"]) == 0
        out = capsys.readouterr().out
        assert "depth=" in out and "fusions=" in out

    def test_compile_with_layout(self, capsys):
        main(["compile", "--benchmark", "BV", "--qubits", "8", "--layout", "1"])
        out = capsys.readouterr().out
        assert "layer 0" in out

    def test_compile_custom_grid(self, capsys):
        main(
            [
                "compile", "--benchmark", "BV", "--qubits", "8",
                "--rows", "10", "--cols", "10", "--resource-state", "4-star",
            ]
        )
        assert "depth=" in capsys.readouterr().out

    def test_baseline(self, capsys):
        assert main(["baseline", "--benchmark", "BV", "--qubits", "8"]) == 0
        out = capsys.readouterr().out
        assert "cluster=" in out and "swaps=" in out

    def test_export_stdout(self, capsys):
        assert main(["export", "--benchmark", "BV", "--qubits", "6"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OPENQASM 2.0;")

    def test_export_file_and_compile_qasm(self, tmp_path, capsys):
        path = tmp_path / "bv.qasm"
        main(["export", "--benchmark", "BV", "--qubits", "6", "--output", str(path)])
        assert path.exists()
        assert main(["compile", "--qasm", str(path), "--rows", "8", "--cols", "8"]) == 0
        assert "depth=" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "cluster area" in out
        assert "43x43" in out

    def test_table2_quick(self, capsys):
        assert main(["table2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "BV-16" in out
        assert "Improv." in out

    def test_fig13_quick_restricts_benchmarks(self, capsys):
        assert main(["fig13", "--qubits", "6", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "QFT" in out and "BV" in out
        assert "QAOA" not in out and "RCA" not in out

    def test_fig14(self, capsys):
        assert main(["fig14", "--qubits", "8"]) == 0
        out = capsys.readouterr().out
        assert "extension=3" in out
        assert "depth=" in out

    def test_ablation(self, capsys):
        assert main(["ablation", "--qubits", "8"]) == 0
        out = capsys.readouterr().out
        assert "default" in out
        assert "no-embedding" in out
        assert "lemma1-scheduling" in out

    def test_bench_quick(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(
            [
                "bench", "--quick", "--jobs", "1",
                "--out", str(out_dir), "--cache", str(tmp_path / "cache"),
                "--label", "test",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "QFT-16" in out and "BV-16" in out
        assert (out_dir / "run_table.json").exists()
        assert (out_dir / "run_table.csv").exists()
        assert (out_dir / "BENCH_test.json").exists()

    def test_noise_sweep(self, tmp_path, capsys):
        out_dir = tmp_path / "sweep"
        assert main(
            [
                "noise-sweep", "--benchmarks", "BV", "--qubits", "8",
                "--shots", "200", "--fusion-success", "0.75",
                "--cycle-loss", "0.001", "0.01", "--jobs", "1",
                "--out", str(out_dir), "--label", "test",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "yield_mc=" in out
        assert (out_dir / "BENCH_test.json").exists()
        assert (out_dir / "noise_sweep.json").exists()
        assert (out_dir / "noise_sweep.csv").exists()

    def test_noise_sweep_rejects_bad_resource_state(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["noise-sweep", "--resource-state", "5-blob"]
            )

    def test_noise_sweep_mc_engine_choices(self):
        """The sampler engine is selectable, defaults to the frame
        engine, and rejects unknown names at the parser."""
        args = build_parser().parse_args(["noise-sweep"])
        assert args.mc_engine == "frame"
        for engine in ("frame", "batched", "per-shot"):
            parsed = build_parser().parse_args(
                ["noise-sweep", "--mc-engine", engine]
            )
            assert parsed.mc_engine == engine
        with pytest.raises(SystemExit):
            build_parser().parse_args(["noise-sweep", "--mc-engine", "warp"])

    def test_bench_cache_reused(self, tmp_path, capsys):
        args = [
            "bench", "--quick", "--jobs", "1",
            "--out", str(tmp_path / "results"),
            "--cache", str(tmp_path / "cache"), "--label", "test",
        ]
        main(args)
        capsys.readouterr()
        main(args)
        assert "[cache]" in capsys.readouterr().out


class TestServeCLI:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 7711
        assert args.workers is None
        assert args.cache is None
        assert args.mem_capacity == 256

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.command == "loadgen"
        assert args.port is None
        assert args.spawn is False
        assert args.workloads == ["hot-qft16", "mixed-16"]
        assert args.concurrency == [1, 4]
        assert args.requests == 50
        assert args.out == "benchmarks/results"
        assert args.label == "serving"

    def test_loadgen_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen", "--workloads", "nope"])

    def test_loadgen_without_port_or_spawn_exits_2(self, capsys):
        assert main(["loadgen"]) == 2
        assert "--port is required" in capsys.readouterr().err

    def test_loadgen_spawn_end_to_end(self, tmp_path, capsys):
        code = main([
            "loadgen", "--spawn",
            "--workloads", "hot-qft16",
            "--concurrency", "1", "2",
            "--requests", "6",
            "--out", str(tmp_path),
            "--label", "smoke",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "spawned server" in out
        assert "hot-qft16" in out
        table = json.loads((tmp_path / "serving_table.json").read_text())
        assert len(table["cells"]) == 2  # one workload x two concurrencies
        assert all(c["failure_rate"] == 0.0 for c in table["cells"])
        assert (tmp_path / "serving_table.csv").exists()
        bench = json.loads((tmp_path / "BENCH_smoke.json").read_text())
        assert bench["label"] == "smoke"
