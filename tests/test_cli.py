"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compile_defaults(self):
        args = build_parser().parse_args(["compile"])
        assert args.benchmark == "QFT"
        assert args.qubits == 16

    def test_bad_resource_state_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compile", "--resource-state", "5-blob"])


class TestCommands:
    def test_compile_benchmark(self, capsys):
        assert main(["compile", "--benchmark", "BV", "--qubits", "8"]) == 0
        out = capsys.readouterr().out
        assert "depth=" in out and "fusions=" in out

    def test_compile_with_layout(self, capsys):
        main(["compile", "--benchmark", "BV", "--qubits", "8", "--layout", "1"])
        out = capsys.readouterr().out
        assert "layer 0" in out

    def test_compile_custom_grid(self, capsys):
        main(
            [
                "compile", "--benchmark", "BV", "--qubits", "8",
                "--rows", "10", "--cols", "10", "--resource-state", "4-star",
            ]
        )
        assert "depth=" in capsys.readouterr().out

    def test_baseline(self, capsys):
        assert main(["baseline", "--benchmark", "BV", "--qubits", "8"]) == 0
        out = capsys.readouterr().out
        assert "cluster=" in out and "swaps=" in out

    def test_export_stdout(self, capsys):
        assert main(["export", "--benchmark", "BV", "--qubits", "6"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OPENQASM 2.0;")

    def test_export_file_and_compile_qasm(self, tmp_path, capsys):
        path = tmp_path / "bv.qasm"
        main(["export", "--benchmark", "BV", "--qubits", "6", "--output", str(path)])
        assert path.exists()
        assert main(["compile", "--qasm", str(path), "--rows", "8", "--cols", "8"]) == 0
        assert "depth=" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "cluster area" in out
        assert "43x43" in out

    def test_table2_quick(self, capsys):
        assert main(["table2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "BV-16" in out
        assert "Improv." in out
