"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import math
import random

import pytest

from repro.circuit import Circuit


def random_circuit(
    num_qubits: int,
    num_gates: int,
    seed: int,
    two_qubit_gates=("cz", "cx"),
    one_qubit_gates=("h", "t", "s", "x", "z", "rz", "rx", "ry"),
) -> Circuit:
    """Deterministic random circuit used across equivalence tests."""
    rng = random.Random(seed)
    circuit = Circuit(num_qubits)
    for _ in range(num_gates):
        if rng.random() < 0.5 or num_qubits == 1:
            gate = rng.choice(one_qubit_gates)
            qubit = rng.randrange(num_qubits)
            if gate in ("rz", "rx", "ry", "p"):
                circuit.add(gate, qubit, params=(rng.uniform(0, 2 * math.pi),))
            else:
                circuit.add(gate, qubit)
        else:
            qubits = rng.sample(range(num_qubits), 2)
            gate = rng.choice(two_qubit_gates)
            if gate == "cp":
                circuit.add(gate, *qubits, params=(rng.uniform(0, 2 * math.pi),))
            else:
                circuit.add(gate, *qubits)
    return circuit


@pytest.fixture
def lock_sanitizer():
    """Force the lock-order sanitizer on for one test, witness reset.

    Locks built while this fixture is active are TrackedLocks recording
    into the yielded registry regardless of REPRO_SYNC_SANITIZE; the
    environment-controlled behaviour is restored afterwards.
    """
    from repro.utils import sync

    sync.GLOBAL_REGISTRY.reset()
    sync.enable_sanitizer(True)
    try:
        yield sync.GLOBAL_REGISTRY
    finally:
        sync.enable_sanitizer(None)


@pytest.fixture
def small_hardware():
    from repro.hardware import HardwareConfig

    return HardwareConfig.square(8)


@pytest.fixture
def paper_hardware():
    """The 16x16 array used for 16-qubit benchmarks in the paper."""
    from repro.hardware import HardwareConfig

    return HardwareConfig.square(16)
