"""Tests for the experiment runners (small sizes to stay fast)."""

import pytest

from repro.eval.experiments import (
    FIG13_SHAPES,
    PAPER_TABLE2,
    TABLE_BENCHMARKS,
    compare_one,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
    run_table1,
    run_table2,
)
from repro.hardware.resource_state import FOUR_STAR


class TestTable1:
    def test_full_grid(self):
        rows = run_table1()
        # Table 1 covers the paper's rows; the compile grid's extra
        # 100-qubit scaling rows have no paper counterpart
        assert len(rows) == len(PAPER_TABLE2)
        assert len(rows) == sum(
            1 for key in TABLE_BENCHMARKS if key in PAPER_TABLE2
        )

    def test_matches_paper_exactly(self):
        for name, areas in run_table1():
            key_found = False
            for (bench, n), _ in PAPER_TABLE2.items():
                if bench == name and n == areas.num_qubits:
                    key_found = True
            assert key_found
        # spot check paper values
        by_key = {(n, a.num_qubits): a for n, a in run_table1()}
        assert by_key[("QFT", 16)].cluster_side == 7
        assert by_key[("BV", 100)].physical_side == 43


class TestCompareOne:
    def test_improvements_positive(self):
        row = compare_one("BV", 16)
        assert row.depth_improvement > 1
        assert row.fusion_improvement > 1

    def test_label(self):
        assert compare_one("BV", 16).label == "BV-16"

    def test_resource_state_forwarded(self):
        row = compare_one("BV", 16, resource_state=FOUR_STAR)
        assert row.baseline.areas.physical_area < 256

    def test_area_override(self):
        row = compare_one("BV", 16, area=100)
        assert row.oneq.layouts[0].shape == (10, 10)


class TestTable2:
    def test_subset_run(self):
        rows = run_table2(benchmarks=[("BV", 16), ("QAOA", 16)])
        assert [r.label for r in rows] == ["BV-16", "QAOA-16"]

    def test_orders_of_magnitude(self):
        """The paper's headline: improvements of orders of magnitude."""
        rows = run_table2(benchmarks=[("BV", 16), ("RCA", 16)])
        for row in rows:
            assert row.depth_improvement > 10
            assert row.fusion_improvement > 10

    def test_bv_best(self):
        rows = run_table2(
            benchmarks=[("QAOA", 16), ("BV", 16)]
        )
        by_name = {r.name: r for r in rows}
        assert (
            by_name["BV"].fusion_improvement
            > by_name["QAOA"].fusion_improvement
        )


class TestFigures:
    def test_fig12_all_resource_states(self):
        results = run_fig12(num_qubits=8, benchmarks=("BV",))
        assert set(results) == {"3-line", "4-line", "4-star", "4-ring"}
        for rows in results.values():
            assert rows[0].fusion_improvement > 1

    def test_fig13_shapes(self):
        results = run_fig13(num_qubits=8, benchmarks=("BV",))
        assert set(results["BV"].keys()) == {r for r, _ in FIG13_SHAPES}

    def test_fig14_extended_layer(self):
        prog = run_fig14(num_qubits=8, side=9, extension=3)
        assert prog.extension == 3
        assert prog.layouts[0].shape == (9, 27)

    def test_fig15_area_sweep(self):
        results = run_fig15(
            num_qubits=8, benchmarks=("BV",), areas=(64, 144, 256)
        )
        per_area = results["BV"]
        assert set(per_area) == {64, 144, 256}

    def test_fig15_depth_monotone_trend(self):
        """Fig. 15 shape: depth does not increase with physical area."""
        results = run_fig15(
            num_qubits=16, benchmarks=("QAOA",), areas=(100, 256, 600)
        )
        per_area = results["QAOA"]
        assert per_area[100].physical_depth >= per_area[600].physical_depth
