"""Tests for the batch experiment runner and its artifacts."""

import csv
import json

import pytest

from repro.eval.batch import (
    RUN_TABLE_COLUMNS,
    SCHEMA_VERSION,
    BatchRunner,
    RunSpec,
    execute_spec,
    render_run_records,
    run_grid,
    table2_specs,
    write_bench_json,
    write_run_table,
)
from repro.eval.experiments import TABLE_BENCHMARKS, compare_one

QUICK = [("BV", 8), ("BV", 12)]


class TestRunSpec:
    def test_key_stable_and_distinct(self):
        a = RunSpec("BV", 8)
        b = RunSpec("BV", 8)
        c = RunSpec("BV", 12)
        assert a.key() == b.key()
        assert a.key() != c.key()

    def test_key_sensitive_to_compiler_options(self):
        a = RunSpec("BV", 8)
        b = RunSpec("BV", 8, compiler_options=(("alpha", 2.0),))
        assert a.key() != b.key()

    def test_table2_specs_cover_grid(self):
        specs = table2_specs()
        assert [(s.benchmark, s.num_qubits) for s in specs] == TABLE_BENCHMARKS


class TestExecuteSpec:
    def test_matches_compare_one(self):
        """The batch path reproduces the interactive path exactly."""
        record = execute_spec(RunSpec("BV", 16))
        row = compare_one("BV", 16)
        assert record.depth == row.oneq.physical_depth
        assert record.num_fusions == row.oneq.num_fusions
        assert record.baseline_depth == row.baseline.depth
        assert record.baseline_fusions == row.baseline.num_fusions
        assert record.depth_improvement == pytest.approx(row.depth_improvement)

    def test_no_baseline(self):
        record = execute_spec(RunSpec("BV", 8, include_baseline=False))
        assert record.baseline_depth is None
        assert record.depth_improvement is None
        assert record.depth >= 1

    def test_compiler_options_forwarded(self):
        plain = execute_spec(RunSpec("QFT", 8))
        hintless = execute_spec(
            RunSpec("QFT", 8, compiler_options=(("use_placement_hints", False),))
        )
        # the option must reach the compiler; metrics differ for QFT
        assert (plain.depth, plain.num_fusions) != (
            hintless.depth,
            hintless.num_fusions,
        )


class TestBatchRunner:
    def test_serial_run_preserves_order(self):
        records = BatchRunner(jobs=1).run([RunSpec(n, q) for n, q in QUICK])
        assert [(r.benchmark, r.num_qubits) for r in records] == QUICK
        assert all(not r.cached for r in records)

    def test_parallel_matches_serial(self):
        specs = [RunSpec(n, q) for n, q in QUICK]
        serial = BatchRunner(jobs=1).run(specs)
        parallel = BatchRunner(jobs=2).run(specs)
        for a, b in zip(serial, parallel):
            assert a.depth == b.depth
            assert a.num_fusions == b.num_fusions
            assert a.key == b.key

    def test_cache_roundtrip(self, tmp_path):
        specs = [RunSpec("BV", 8)]
        first = BatchRunner(jobs=1, cache_dir=tmp_path).run(specs)
        assert not first[0].cached
        assert (tmp_path / f"{specs[0].key()}.json").exists()
        second = BatchRunner(jobs=1, cache_dir=tmp_path).run(specs)
        assert second[0].cached
        assert second[0].depth == first[0].depth
        assert second[0].num_fusions == first[0].num_fusions

    def test_corrupt_cache_recomputed(self, tmp_path):
        spec = RunSpec("BV", 8)
        (tmp_path / f"{spec.key()}.json").write_text("not json")
        records = BatchRunner(jobs=1, cache_dir=tmp_path).run([spec])
        assert not records[0].cached
        assert records[0].depth >= 1


class TestArtifacts:
    def test_run_table_json_and_csv(self, tmp_path):
        records = BatchRunner(jobs=1).run([RunSpec(n, q) for n, q in QUICK])
        json_path, csv_path = write_run_table(
            records, tmp_path, meta={"grid": "test"}
        )
        payload = json.loads(json_path.read_text())
        assert payload["columns"] == RUN_TABLE_COLUMNS
        assert payload["meta"] == {"grid": "test"}
        assert len(payload["records"]) == len(QUICK)
        with csv_path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(QUICK)
        assert set(rows[0].keys()) == set(RUN_TABLE_COLUMNS)
        assert rows[0]["benchmark"] == "BV"
        assert int(rows[0]["depth"]) == records[0].depth

    def test_bench_json_with_reference(self, tmp_path):
        records = BatchRunner(jobs=1).run([RunSpec("BV", 8)])
        first = write_bench_json(records, tmp_path / "BENCH_a.json", "a")
        reference = json.loads(first.read_text())["runs"]
        second = write_bench_json(
            records, tmp_path / "BENCH_b.json", "b", reference=reference
        )
        payload = json.loads(second.read_text())
        assert payload["label"] == "b"
        assert payload["metrics_identical_to_reference"] is True
        assert "BV-8" in payload["speedup_vs_reference"]

    def test_run_grid_writes_artifacts(self, tmp_path):
        records = run_grid(
            benchmarks=QUICK,
            jobs=1,
            cache_dir=tmp_path / "cache",
            out_dir=tmp_path / "out",
        )
        assert len(records) == len(QUICK)
        assert (tmp_path / "out" / "run_table.json").exists()
        assert (tmp_path / "out" / "run_table.csv").exists()

    def test_render_run_records(self):
        records = BatchRunner(jobs=1).run([RunSpec("BV", 8)])
        text = render_run_records(records)
        assert "BV-8" in text
        assert "depth=" in text


class TestVerifyStage:
    def test_clifford_benchmark_verifies_on_stabilizer(self):
        record = execute_spec(RunSpec("BV", 8, verify=True))
        assert record.verified is True
        assert record.verify_method == "stabilizer"
        assert record.verify_seconds > 0

    def test_large_clifford_benchmark_still_verifies(self):
        """The stabilizer path scales past dense limits."""
        record = execute_spec(RunSpec("BV", 24, verify=True))
        assert record.verified is True
        assert record.verify_method == "stabilizer"

    def test_small_non_clifford_verifies_dense(self):
        record = execute_spec(RunSpec("QFT", 4, verify=True))
        assert record.verified is True
        assert record.verify_method == "statevector"

    def test_verify_off_by_default(self):
        record = execute_spec(RunSpec("BV", 8))
        assert record.verified is None
        assert record.verify_method is None
        assert record.verify_seconds == 0.0

    def test_verify_changes_cache_key(self):
        assert RunSpec("BV", 8).key() != RunSpec("BV", 8, verify=True).key()

    def test_render_marks_verification(self):
        from repro.eval.batch import render_run_records

        record = execute_spec(RunSpec("BV", 8, verify=True))
        assert "verify[stabilizer]=ok" in render_run_records([record])


class TestNoisyStage:
    """Schema v3/v4: Monte-Carlo yield columns in the run table."""

    def test_mc_stage_off_by_default(self):
        record = execute_spec(RunSpec("BV", 8))
        assert record.shots == 0
        assert record.yield_mc is None
        assert record.yield_analytic is None
        assert record.mc_seconds == 0.0
        assert record.noise == ""

    def test_clifford_benchmark_samples_yield(self):
        record = execute_spec(RunSpec("BV", 8, shots=500))
        assert record.shots == 500
        assert 0.0 <= record.yield_mc <= 1.0
        assert 0.0 < record.yield_analytic < 1.0
        assert record.yield_mc >= 0.0
        assert record.mc_seconds > 0.0
        # boosted fusions retry ~1/0.75 times on average
        assert record.mc_attempts_per_fusion == pytest.approx(4 / 3, rel=0.1)
        # schema v4/v5: sampler throughput and execution path
        assert record.mc_engine == "frame"
        assert record.shots_per_second > 0.0

    def test_every_engine_reproduces_the_default_yields(self):
        """RunSpec.mc_engine reaches the sampler; all three paths agree
        bit for bit and the choice is part of the cache identity."""
        frame = execute_spec(RunSpec("BV", 8, shots=300))
        for engine in ("batched", "per-shot"):
            other = execute_spec(
                RunSpec("BV", 8, shots=300, mc_engine=engine)
            )
            assert other.mc_engine == engine
            assert other.yield_mc == frame.yield_mc
            assert other.mc_attempts_per_fusion == frame.mc_attempts_per_fusion
            assert (
                RunSpec("BV", 8, shots=300).key()
                != RunSpec("BV", 8, shots=300, mc_engine=engine).key()
            )

    def test_non_clifford_benchmark_analytic_only(self):
        record = execute_spec(RunSpec("QFT", 8, shots=200))
        assert record.yield_mc is None
        assert record.yield_analytic is not None
        # no sampling ran, so the recorded shot count must be 0
        assert record.shots == 0
        assert record.mc_attempts_per_fusion is None
        assert record.mc_engine is None
        assert record.shots_per_second is None

    def test_fusion_success_moves_sampled_attempts(self):
        """The fusion_success sweep axis must be observable in the
        record (yields are invariant under repeat-until-success, but
        attempts are not)."""
        bare = execute_spec(
            RunSpec("BV", 8, shots=400, noise=(("fusion_success", 0.5),))
        )
        boosted = execute_spec(
            RunSpec("BV", 8, shots=400, noise=(("fusion_success", 0.75),))
        )
        assert bare.mc_attempts_per_fusion == pytest.approx(2.0, rel=0.1)
        assert boosted.mc_attempts_per_fusion == pytest.approx(4 / 3, rel=0.1)
        assert bare.mc_attempts_per_fusion > boosted.mc_attempts_per_fusion

    def test_noise_overrides_reach_the_model(self):
        lossless = execute_spec(
            RunSpec("BV", 8, shots=400, noise=(("cycle_loss", 0.0),))
        )
        lossy = execute_spec(
            RunSpec("BV", 8, shots=400, noise=(("cycle_loss", 0.05),))
        )
        assert lossy.yield_analytic < lossless.yield_analytic
        assert lossy.yield_mc < lossless.yield_mc
        assert lossy.noise == "cycle_loss=0.05"

    def test_shots_and_noise_change_cache_key(self):
        base = RunSpec("BV", 8)
        assert base.key() != RunSpec("BV", 8, shots=100).key()
        assert base.key() != RunSpec(
            "BV", 8, noise=(("cycle_loss", 0.01),)
        ).key()

    def test_noisy_record_survives_cache_roundtrip(self, tmp_path):
        spec = RunSpec("BV", 8, shots=300)
        first = BatchRunner(jobs=1, cache_dir=tmp_path).run([spec])
        second = BatchRunner(jobs=1, cache_dir=tmp_path).run([spec])
        assert second[0].cached
        assert second[0].yield_mc == first[0].yield_mc
        assert second[0].yield_analytic == first[0].yield_analytic

    def test_yield_columns_in_run_table(self, tmp_path):
        records = BatchRunner(jobs=1).run([RunSpec("BV", 8, shots=200)])
        _, csv_path = write_run_table(records, tmp_path)
        with csv_path.open() as handle:
            row = next(iter(csv.DictReader(handle)))
        for column in (
            "noise",
            "shots",
            "yield_mc",
            "yield_analytic",
            "mc_attempts_per_fusion",
            "mc_seconds",
            "shots_per_second",
            "mc_engine",
        ):
            assert column in row
        assert row["shots"] == "200"
        assert 0.0 <= float(row["yield_mc"]) <= 1.0
        assert row["mc_engine"] == "frame"
        assert float(row["shots_per_second"]) > 0.0

    def test_render_shows_yields(self):
        records = BatchRunner(jobs=1).run([RunSpec("BV", 8, shots=200)])
        text = render_run_records(records)
        assert "yield_mc=" in text
        assert "200 shots" in text


class TestNoiseSweep:
    def test_specs_cover_the_grid(self):
        from repro.eval.experiments import noise_sweep_specs

        specs = noise_sweep_specs(
            benchmarks=[("BV", 8)],
            fusion_success=(0.5, 0.75),
            cycle_loss=(0.001,),
            resource_states=("3-line", "4-star"),
            shots=100,
        )
        assert len(specs) == 4
        assert all(s.shots == 100 for s in specs)
        assert {s.resource_state for s in specs} == {"3-line", "4-star"}

    def test_run_noise_sweep_writes_artifacts(self, tmp_path):
        from repro.eval.experiments import run_noise_sweep

        records = run_noise_sweep(
            benchmarks=[("BV", 8)],
            fusion_success=(0.75,),
            cycle_loss=(0.001, 0.01),
            shots=200,
            jobs=1,
            out_dir=tmp_path,
            label="test_sweep",
        )
        assert len(records) == 2
        assert all(r.yield_mc is not None for r in records)
        sweep_path = tmp_path / "BENCH_test_sweep.json"
        assert sweep_path.exists()
        payload = json.loads(sweep_path.read_text())
        assert payload["schema_version"] == SCHEMA_VERSION
        assert len(payload["runs"]) == 2
        for entry in payload["runs"].values():
            assert 0.0 <= entry["yield_mc"] <= 1.0
            assert entry["shots"] == 200
            assert entry["mc_engine"] == "frame"
            assert entry["shots_per_second"] > 0.0

    def test_committed_artifact_is_current_schema(self):
        """benchmarks/BENCH_noise_sweep.json must track the current
        schema."""
        import pathlib

        path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "BENCH_noise_sweep.json"
        )
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["runs"]
        bv_rows = [
            entry
            for entry in payload["runs"].values()
            if entry["benchmark"] == "BV"
        ]
        assert bv_rows and all(
            entry["yield_mc"] is not None and entry["shots"] >= 2000
            for entry in bv_rows
        )


class TestStageProfile:
    def test_stage_seconds_recorded(self):
        record = execute_spec(RunSpec("BV", 8))
        stages = [
            record.translate_seconds,
            record.schedule_seconds,
            record.partition_seconds,
            record.map_seconds,
            record.shuffle_seconds,
        ]
        assert all(value >= 0.0 for value in stages)
        assert record.map_seconds > 0.0
        # stage breakdown stays within the total compile time
        assert sum(stages) <= record.seconds

    def test_profile_columns_in_run_table(self, tmp_path):
        records = BatchRunner(jobs=1).run([RunSpec("BV", 8, verify=True)])
        _, csv_path = write_run_table(records, tmp_path)
        with csv_path.open() as handle:
            row = next(iter(csv.DictReader(handle)))
        for column in (
            "translate_seconds",
            "schedule_seconds",
            "partition_seconds",
            "map_seconds",
            "shuffle_seconds",
            "verify_seconds",
            "verified",
            "verify_method",
        ):
            assert column in row
        assert row["verified"] == "True"
        assert row["verify_method"] == "stabilizer"

    def test_render_stage_profile(self):
        from repro.eval.batch import render_stage_profile

        records = BatchRunner(jobs=1).run([RunSpec("BV", 8)])
        text = render_stage_profile(records)
        assert "translate" in text and "shuffle" in text
        assert "BV-8" in text

    def test_verify_survives_cache_roundtrip(self, tmp_path):
        spec = RunSpec("BV", 8, verify=True)
        first = BatchRunner(jobs=1, cache_dir=tmp_path).run([spec])
        second = BatchRunner(jobs=1, cache_dir=tmp_path).run([spec])
        assert second[0].cached
        assert second[0].verified is True
        assert second[0].verify_method == "stabilizer"


class TestCacheTiers:
    """The ISSUE-8 cache satellites: torn-file recovery, tier/age
    provenance columns, and tmp-file hygiene."""

    def test_torn_cache_file_is_a_miss_and_gets_repaired(self, tmp_path):
        """A partially-written cache entry (as left by a crash mid-write
        before atomic replace existed) must read as a miss, recompute,
        and be overwritten with a complete entry."""
        spec = RunSpec("BV", 8)
        fresh = BatchRunner(jobs=1, cache_dir=tmp_path).run([spec])
        path = tmp_path / f"{spec.key()}.json"
        complete = path.read_text()
        path.write_text(complete[: len(complete) // 2])  # tear the file

        repaired = BatchRunner(jobs=1, cache_dir=tmp_path).run([spec])
        assert not repaired[0].cached  # the torn entry was not trusted
        assert repaired[0].depth == fresh[0].depth
        # the recompute overwrote the torn entry with a parseable one
        assert json.loads(path.read_text())["artifact"]["depth"] == fresh[0].depth
        third = BatchRunner(jobs=1, cache_dir=tmp_path).run([spec])
        assert third[0].cached

    def test_fresh_and_cached_rows_are_distinguishable(self, tmp_path):
        spec = RunSpec("BV", 8)
        fresh = BatchRunner(jobs=1, cache_dir=tmp_path).run([spec])[0]
        assert fresh.cached is False
        assert fresh.cache_tier is None
        assert fresh.cache_age_seconds is None

        cached = BatchRunner(jobs=1, cache_dir=tmp_path).run([spec])[0]
        assert cached.cached is True
        assert cached.cache_tier == "disk"  # new runner: memory tier is cold
        assert cached.cache_age_seconds >= 0.0

    def test_memory_tier_hit_within_one_runner(self, tmp_path):
        spec = RunSpec("BV", 8)
        runner = BatchRunner(jobs=1, cache_dir=tmp_path)
        runner.run([spec])
        again = runner.run([spec])[0]
        assert again.cached is True
        assert again.cache_tier == "memory"

    def test_cache_columns_flow_into_artifacts(self, tmp_path):
        spec = RunSpec("BV", 8)
        BatchRunner(jobs=1, cache_dir=tmp_path / "cache").run([spec])
        cached = BatchRunner(jobs=1, cache_dir=tmp_path / "cache").run([spec])

        assert "cache_tier" in RUN_TABLE_COLUMNS
        assert "cache_age_seconds" in RUN_TABLE_COLUMNS
        _, csv_path = write_run_table(cached, tmp_path)
        with csv_path.open() as handle:
            row = next(iter(csv.DictReader(handle)))
        assert row["cached"] == "True"
        assert row["cache_tier"] == "disk"
        assert float(row["cache_age_seconds"]) >= 0.0

        bench = write_bench_json(cached, tmp_path / "BENCH_c.json", "c")
        run = json.loads(bench.read_text())["runs"]["BV-8"]
        assert run["cached"] is True
        assert run["cache_age_seconds"] >= 0.0

    def test_no_tmp_files_left_in_cache_dir(self, tmp_path):
        BatchRunner(jobs=1, cache_dir=tmp_path).run(
            [RunSpec(n, q) for n, q in QUICK]
        )
        leftovers = [p.name for p in tmp_path.iterdir() if "tmp" in p.name]
        assert leftovers == []
