"""Tests for the degradation sweep harness and its run-table schema."""

import csv
import json

import pytest

from repro.eval.batch import (
    RUN_TABLE_COLUMNS,
    BatchRunner,
    RunSpec,
    execute_spec,
    write_run_table,
)
from repro.eval.degrade import (
    MILD_NOISE,
    check_recovery,
    degrade_specs,
    run_degrade_sweep,
    summarize_survival,
    write_degradation_json,
)
from repro.eval.reporting import render_survival_table


def spec_for(scenario="dead-rsg", severity=0.1, policy="survive", **kw):
    kw.setdefault("benchmark", "BV")
    kw.setdefault("num_qubits", 8)
    kw.setdefault("include_baseline", False)
    kw.setdefault("noise", MILD_NOISE)
    return RunSpec(
        scenario=scenario, severity=severity, policy=policy, **kw
    )


class TestSchema:
    def test_new_columns_present(self):
        for column in (
            "scenario", "severity", "dead_fraction", "policy",
            "recovered", "yield_degraded", "rerouted_fusions",
        ):
            assert column in RUN_TABLE_COLUMNS

    def test_degradation_fields_in_spec_hash(self):
        base = spec_for(policy="survive")
        assert base.key() != spec_for(policy="reroute").key()
        assert base.key() != spec_for(severity=0.2).key()
        assert base.key() != spec_for(scenario="loss-hotspot").key()


class TestExecuteSpec:
    def test_survive_collapse_recorded(self):
        record = execute_spec(spec_for("dead-rsg", 0.1, "survive"))
        assert record.scenario == "dead-rsg"
        assert record.severity == pytest.approx(0.1)
        assert record.dead_fraction > 0.0
        assert record.policy == "survive"
        assert record.recovered is False
        assert record.yield_degraded == 0.0
        assert record.rerouted_fusions == 0

    def test_reroute_recovers(self):
        record = execute_spec(spec_for("dead-rsg", 0.1, "reroute"))
        assert record.recovered is True
        assert record.yield_degraded > 0.9
        assert record.rerouted_fusions > 0

    def test_auto_policy_records_ladder_winner(self):
        record = execute_spec(spec_for("dead-rsg", 0.1, "auto"))
        assert record.policy == "reroute"
        assert record.recovered is True

    def test_no_scenario_leaves_columns_empty(self):
        record = execute_spec(
            RunSpec(benchmark="BV", num_qubits=8, include_baseline=False)
        )
        assert record.scenario == ""
        assert record.policy is None
        assert record.recovered is None
        assert record.yield_degraded is None

    def test_mc_samples_recovered_program_under_site_map(self):
        record = execute_spec(
            spec_for("dead-rsg", 0.1, "reroute", shots=500)
        )
        assert record.shots == 500
        assert record.yield_mc is not None
        # the MC stage's analytic column is the per-site closed form of
        # the recovered program — the same number the degradation stage
        # reports
        assert record.yield_analytic == pytest.approx(
            record.yield_degraded, rel=1e-9
        )

    def test_mc_skipped_when_survive_cannot_run(self):
        record = execute_spec(
            spec_for("dead-rsg", 0.1, "survive", shots=500)
        )
        assert record.shots == 0
        assert record.yield_mc is None
        assert record.yield_degraded == 0.0


class TestSweep:
    @pytest.fixture(scope="class")
    def records(self):
        return run_degrade_sweep(
            benchmarks=[("BV", 8)], severities=(0.0, 0.1), jobs=1
        )

    def test_grid_size(self, records):
        # 1 benchmark x 4 scenarios x 2 severities x 3 policies
        assert len(records) == 24

    def test_severity_zero_rows_all_recovered(self, records):
        zero = [r for r in records if r.severity == 0.0]
        assert zero and all(r.recovered for r in zero)

    def test_summary_counts(self, records):
        summary = summarize_survival(records)
        assert summary["groups"] == 8
        assert summary["survive_failures"] >= 1
        assert summary["severity_zero_failures"] == []

    def test_render_survival_table(self, records):
        text = render_survival_table(records)
        assert "BV-8 / dead-rsg" in text
        assert "sev 0.1" in text
        assert "*" in text

    def test_run_table_roundtrip(self, records, tmp_path):
        json_path, csv_path = write_run_table(records, tmp_path)
        payload = json.loads(json_path.read_text())
        assert payload["schema_version"] >= 9
        assert "scenario" in payload["columns"]
        with csv_path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(records)
        assert {row["scenario"] for row in rows} == {
            "dead-rsg", "loss-gradient", "loss-hotspot", "degraded-fusion"
        }

    def test_degradation_artifact(self, records, tmp_path):
        path = write_degradation_json(
            records, tmp_path / "BENCH_degradation.json"
        )
        payload = json.loads(path.read_text())
        assert payload["summary"]["survive_failures"] >= 1
        key = "BV-8@dead-rsg@0.1[survive]"
        assert payload["runs"][key]["recovered"] is False

    def test_cached_rows_keep_degradation_columns(self, tmp_path):
        specs = degrade_specs(
            benchmarks=[("BV", 8)],
            scenarios=("dead-rsg",),
            severities=(0.1,),
            policies=("reroute",),
        )
        runner = BatchRunner(jobs=1, cache_dir=tmp_path)
        first = runner.run(specs)[0]
        second = BatchRunner(jobs=1, cache_dir=tmp_path).run(specs)[0]
        assert not first.cached and second.cached
        assert second.recovered is True
        assert second.yield_degraded == first.yield_degraded
        assert second.rerouted_fusions == first.rerouted_fusions


class TestRecoveryGate:
    def test_gate_passes_on_default_quick_grid(self):
        records = run_degrade_sweep(
            benchmarks=[("BV", 8)], severities=(0.0, 0.1, 0.3), jobs=1
        )
        assert check_recovery(records) == []

    def test_gate_fails_without_collapse(self):
        records = run_degrade_sweep(
            benchmarks=[("BV", 8)],
            scenarios=("degraded-fusion",),
            severities=(0.0,),
            jobs=1,
        )
        failures = check_recovery(records)
        assert any("no scenario collapsed" in f for f in failures)
