"""Golden-range regression tests for headline metrics.

The compiler is deterministic, but exact counts move with any heuristic
tweak; these tests pin *ranges* wide enough to survive small heuristic
changes while catching structural regressions (an order-of-magnitude
blowup in fusions, shuffle explosion, depth regressions).

Measured values at time of writing (see EXPERIMENTS.md):
  BV-16:   depth 2,   fusions 38
  QAOA-16: depth ~38, fusions ~2300
  QFT-16:  depth ~76, fusions ~6000
"""

import pytest

from repro.eval import compare_one


@pytest.fixture(scope="module")
def rows():
    return {
        name: compare_one(name, 16) for name in ("QFT", "QAOA", "RCA", "BV")
    }


class TestGoldenRanges:
    def test_bv16(self, rows):
        oneq = rows["BV"].oneq
        assert 1 <= oneq.physical_depth <= 4
        assert 20 <= oneq.num_fusions <= 120

    def test_qaoa16(self, rows):
        oneq = rows["QAOA"].oneq
        assert 15 <= oneq.physical_depth <= 90
        assert 800 <= oneq.num_fusions <= 6000

    def test_rca16(self, rows):
        oneq = rows["RCA"].oneq
        assert 15 <= oneq.physical_depth <= 80
        assert 800 <= oneq.num_fusions <= 6000

    def test_qft16(self, rows):
        oneq = rows["QFT"].oneq
        assert 40 <= oneq.physical_depth <= 180
        assert 2500 <= oneq.num_fusions <= 15000

    def test_improvement_orders_of_magnitude(self, rows):
        for name, row in rows.items():
            assert row.depth_improvement > 20, name
            assert row.fusion_improvement > 50, name

    def test_baseline_depths_stable(self, rows):
        assert 2000 <= rows["QFT"].baseline.depth <= 6000
        assert 150 <= rows["BV"].baseline.depth <= 600

    def test_shuffle_not_dominating_bv(self, rows):
        """BV is one partition: shuffling must stay negligible."""
        t = rows["BV"].oneq.fusions
        assert t.shuffling <= t.edge + t.synthesis

    def test_oneq_absolute_values_near_paper(self, rows):
        """Sanity: our compiler lands in the paper's output range."""
        assert rows["QFT"].oneq.physical_depth <= 2 * 83   # paper: 83
        assert rows["QAOA"].oneq.num_fusions <= 3 * 2578   # paper: 2578
        assert rows["BV"].oneq.num_fusions <= 3 * 63       # paper: 63
