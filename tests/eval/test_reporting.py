"""Tests for the table renderers."""

from repro.eval.experiments import run_fig13, run_fig15, run_table1, run_table2
from repro.eval.reporting import (
    render_fig12,
    render_fig13,
    render_fig15,
    render_table1,
    render_table2,
)


class TestRenderTable1:
    def test_contains_all_rows(self):
        text = render_table1(run_table1())
        for label in ("QFT-16", "BV-100", "RCA-36"):
            assert label in text

    def test_contains_paper_areas(self):
        text = render_table1(run_table1())
        assert "7x7" in text
        assert "43x43" in text


class TestRenderTable2:
    def test_rendering(self):
        rows = run_table2(benchmarks=[("BV", 16)])
        text = render_table2(rows)
        assert "BV-16" in text
        assert "x" in text
        assert "Paper" in text

    def test_without_paper_columns(self):
        rows = run_table2(benchmarks=[("BV", 16)])
        text = render_table2(rows, with_paper=False)
        assert "Paper" not in text


class TestRenderFigures:
    def test_fig12(self):
        from repro.eval.experiments import run_fig12

        results = run_fig12(num_qubits=8, benchmarks=("BV",), resource_states=("3-line", "4-star"))
        text = render_fig12(results)
        assert "depth improvement" in text
        assert "4-star" in text

    def test_fig13(self):
        results = run_fig13(num_qubits=8, benchmarks=("BV",))
        text = render_fig13(results)
        assert "ratio" in text

    def test_fig15_normalizes_to_one(self):
        results = run_fig15(num_qubits=8, benchmarks=("BV",), areas=(144, 256))
        text = render_fig15(results, base_area=256)
        assert "1.00/1.00" in text
