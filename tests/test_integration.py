"""Cross-module integration tests.

These exercise the full pipeline — circuit, pattern, partitioning,
fusion-graph synthesis, mapping, baseline — and check the *physics*:
the synthesized fusion strategy really builds the intended graph state,
and the scheduled pattern really computes the circuit.
"""

import networkx as nx
import pytest

from repro.circuit import Circuit, bernstein_vazirani, get_benchmark, qft
from repro.core import (
    OneQCompiler,
    OneQConfig,
    compile_circuit,
    verify_fusion_graph,
)
from repro.core.fusion_graph import build_fusion_graph
from repro.core.partition import partition_pattern, required_degrees
from repro.hardware import HardwareConfig, THREE_LINE
from repro.mbqc import circuit_to_pattern, fuse
from repro.sim import simulate, simulate_pattern, states_equal_up_to_phase
from repro.sim.stabilizer import PauliString, StabilizerState
from tests.conftest import random_circuit


class TestFusionStrategyBuildsGraphState:
    """Execute a fusion graph's fusions on real (stabilizer) states and
    check the result is exactly the partition's graph state."""

    @pytest.mark.parametrize(
        "graph",
        [nx.path_graph(4), nx.star_graph(4), nx.star_graph(6), nx.cycle_graph(5)],
        ids=["path", "star4", "star6", "cycle"],
    )
    def test_replay_fusions(self, graph):
        """Replay the synthesis on actual graph states.

        Each original node is one photon.  Its chain head's centre photon
        *is* the node; every continuation state is attached through the
        degree-increment pattern (Fig. 7a: a port photon fuses with the
        new state's centre, and the new state's leaves become fresh
        ports).  Graph edges are then graph-connection fusions between
        port photons (Fig. 7c).  The surviving centres must form exactly
        the input graph.
        """
        degrees = {v: graph.degree(v) for v in graph.nodes()}
        fg = build_fusion_graph(graph, degrees, THREE_LINE)
        ok, msg = verify_fusion_graph(fg, graph, THREE_LINE)
        assert ok, msg

        big = nx.Graph()
        index = {n: i for i, n in enumerate(sorted(fg.graph.nodes()))}
        for fg_node, idx in index.items():
            base = idx * 10_000
            for u, v in THREE_LINE.edges:
                big.add_edge(base + u, base + v)

        def centre(fg_node):
            return index[fg_node] * 10_000 + 1

        def fg_leaves(fg_node):
            base = index[fg_node] * 10_000
            return [base + 0, base + 2]

        current = big
        node_photon = {}
        ports = {}
        # 1) synthesize each original node from its chain
        for orig, chain in fg.chains.items():
            node_photon[orig] = centre(chain[0])
            pool = fg_leaves(chain[0])
            for cont in chain[1:]:
                port = pool.pop()
                current = fuse(current, port, centre(cont))
                pool.extend(fg_leaves(cont))
            ports[orig] = pool
        # 2) realize every graph edge by a graph-connection fusion
        for u, v in graph.edges():
            current = fuse(current, ports[u].pop(), ports[v].pop())
        # 3) Z-measure leftover port photons
        for orig in graph.nodes():
            for leftover in ports[orig]:
                if leftover in current:
                    current.remove_node(leftover)

        keep = set(node_photon.values())
        assert keep <= set(current.nodes()), "a node photon was destroyed"
        mapping = {photon: orig for orig, photon in node_photon.items()}
        synthesized = nx.relabel_nodes(current.subgraph(keep).copy(), mapping)
        assert set(synthesized.nodes()) == set(graph.nodes())
        assert {frozenset(e) for e in synthesized.edges()} == {
            frozenset(e) for e in graph.edges()
        }, "fusion strategy did not synthesize the target graph"


class TestEndToEndSemantics:
    """Compile-level scheduling must never violate measurement order."""

    @pytest.mark.parametrize("seed", range(4))
    def test_partition_order_is_executable(self, seed):
        pattern = circuit_to_pattern(random_circuit(3, 12, seed + 2000))
        parts = partition_pattern(pattern)
        position = {}
        for part in parts:
            for node in part.nodes:
                position[node] = part.index
        # every dependency source is scheduled no later than its target
        for node, sources in pattern.x_deps.items():
            for src in sources:
                assert position[src] <= position[node]
        for node, sources in pattern.z_deps.items():
            for src in sources:
                assert position[src] <= position[node]

    @pytest.mark.parametrize(
        "circuit",
        [qft(4), bernstein_vazirani(5)],
        ids=["qft4", "bv5"],
    )
    def test_pattern_still_correct_after_compilation(self, circuit):
        """Compilation must not mutate the pattern it consumes."""
        pattern = circuit_to_pattern(circuit)
        before = (
            pattern.graph.number_of_nodes(),
            pattern.graph.number_of_edges(),
            dict(pattern.angles),
        )
        compiler = OneQCompiler(OneQConfig(hardware=HardwareConfig.square(10)))
        compiler.compile_pattern(pattern)
        after = (
            pattern.graph.number_of_nodes(),
            pattern.graph.number_of_edges(),
            dict(pattern.angles),
        )
        assert before == after
        result = simulate_pattern(pattern, seed=3)
        assert states_equal_up_to_phase(simulate(circuit), result.state)


class TestResourceAccounting:
    def test_fusion_graph_states_match_compiler_count(self):
        circuit = get_benchmark("BV", 12)
        pattern = circuit_to_pattern(circuit)
        parts = partition_pattern(pattern)
        expected = 0
        for part in parts:
            fg = build_fusion_graph(
                part.subgraph, required_degrees(part, pattern.graph), THREE_LINE
            )
            expected += fg.num_resource_states
        prog = compile_circuit(circuit, HardwareConfig.square(12))
        # compiler adds aux/shuffle states on top of synthesis states
        assert prog.resource_states_used >= expected

    def test_every_edge_is_paid_for(self):
        """#fusions >= graph edges + synthesis chains (lower bound)."""
        circuit = get_benchmark("QAOA", 12)
        pattern = circuit_to_pattern(circuit)
        prog = compile_circuit(circuit, HardwareConfig.square(14))
        assert prog.num_fusions >= pattern.graph.number_of_edges()

    def test_z_measurements_nonnegative(self):
        prog = compile_circuit(qft(5), HardwareConfig.square(10))
        assert prog.fusions.z_measurements >= 0


class TestStabilizerCrossCheck:
    def test_pattern_graph_state_is_stabilizer_state(self):
        """The translated graph state is a valid stabilizer state whose
        graph stabilizers all measure +1."""
        pattern = circuit_to_pattern(qft(3))
        graph = pattern.graph
        state, index = StabilizerState.graph_state(graph)
        for node in list(graph.nodes())[:5]:
            ops = {index[node]: "x"}
            for nbr in graph.neighbors(node):
                ops[index[nbr]] = "z"
            assert (
                state.measure_pauli(PauliString.from_ops(state.n, ops)) == 0
            )
