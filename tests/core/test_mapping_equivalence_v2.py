"""Bit-identity of the packed compile path against its frozen references.

The packed mapper/shuffler (``repro.core.mapping`` /
``repro.core.shuffling``) rewrote every hot path — scoring, routing,
free-cell scans — on bitboard planes with the contract that they are
*observationally identical* to the scalar implementations they replaced.
``reference_mapping.py`` / ``reference_shuffling.py`` carry those scalar
predecessors verbatim; everything the compiler consumes (placements,
layer occupancy, auxiliary cells, paths, fusion tallies, deferred edges)
must match bit for bit — on the benchmark grid, on randomized fusion
graphs, and on adversarial shapes (single-row shuffle grids, layers
filled to the brim, route-impossible pairs).

The parallel-mapping tests pin a second contract: ``map_jobs`` > 1
distributes partitions over worker processes but must reproduce the
sequential compile exactly (the seed-coordinate hint chain degrades to
wave-boundary hints identically in both code paths because the waves
are built from the same back-edge dependencies).
"""

import random
from typing import List, Set, Tuple

import networkx as nx
import pytest

import reference_mapping
import reference_shuffling

import repro.core.mapping as packed_mapping
import repro.core.shuffling as packed_shuffling
from repro.circuit.benchmarks import get_benchmark
from repro.core.compiler import OneQCompiler, OneQConfig
from repro.core.fusion_graph import FusionGraph, build_fusion_graph
from repro.core.partition import (
    PartitionConfig,
    partition_pattern,
    required_degrees,
    schedule_layers,
)
from repro.eval.experiments import _hardware_for
from repro.hardware.resource_state import THREE_LINE
from repro.mbqc.translate import circuit_to_pattern

Coord = Tuple[int, int]

GRID = [("BV", 16), ("QFT", 16), ("QAOA", 16)]
SEEDS = (3, 7)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _mapper_snapshot(mapper):
    """Everything the compiler reads out of a mapper, order-normalized."""
    return {
        "placements": {
            node: (place.layer, place.coord)
            for node, place in mapper.placements.items()
        },
        "layers": [
            (
                sorted(layer.node_at.items()),
                sorted(layer.aux_cells),
                sorted(map(tuple, layer.paths)),
                sorted(layer.incomplete),
            )
            for layer in mapper.layers
        ],
    }


def _map_benchmark(mapping_mod, name: str, qubits: int, seed: int):
    """Partition a benchmark and map every partition with hint chaining
    (the compiler's sequential walk)."""
    circuit = get_benchmark(name, qubits, seed=seed)
    hardware = _hardware_for(qubits, THREE_LINE)
    pattern = circuit_to_pattern(circuit)
    rst = hardware.resource_state
    rows, cols = hardware.extended_shape
    config = PartitionConfig(target_states=max(4, int(0.7 * rows * cols)))
    layers = schedule_layers(pattern, config)
    estimator = lambda node: rst.states_for_degree(  # noqa: E731
        pattern.graph.degree(node)
    )
    partitions = partition_pattern(
        pattern, config, size_estimator=estimator, layers=layers
    )
    home = {}
    for part in partitions:
        for node in part.nodes:
            home[node] = part.index
    mapper = mapping_mod.InLayerMapper(
        shape=hardware.extended_shape, resource_state=rst
    )
    port_of = {}
    tally = {"synthesis": 0, "edge": 0, "routing": 0}
    deferred = []
    for part in partitions:
        cross_nbrs = {
            node: [
                nbr
                for nbr in pattern.graph.neighbors(node)
                if home[nbr] != part.index
            ]
            for node in part.nodes
        }
        fusion = build_fusion_graph(
            part.subgraph,
            required_degrees(part, pattern.graph),
            rst,
            cross_neighbors=cross_nbrs,
        )
        hints = {}
        for u, v in part.back_edges:
            src_port = port_of.get((u, v))
            dst_port = fusion.port_of.get((v, u))
            if src_port is None or dst_port is None:
                continue
            placed = mapper.placements.get(src_port)
            if placed is not None:
                hints[dst_port] = placed.coord
        port_of.update(fusion.port_of)
        result = mapper.map_fusion_graph(fusion, hints=hints)
        tally["synthesis"] += result.synthesis_fusions
        tally["edge"] += result.edge_fusions
        tally["routing"] += result.routing_fusions
        deferred.extend(result.deferred_edges)
    snap = _mapper_snapshot(mapper)
    snap["tally"] = tally
    snap["deferred"] = sorted(deferred)
    return snap


def _map_raw_graph(mapping_mod, graph: nx.Graph, shape: Coord):
    mapper = mapping_mod.InLayerMapper(shape=shape, resource_state=THREE_LINE)
    result = mapper.map_fusion_graph(
        FusionGraph(graph=graph.copy(), chains={}, port_of={})
    )
    snap = _mapper_snapshot(mapper)
    snap["tally"] = (
        result.synthesis_fusions,
        result.edge_fusions,
        result.routing_fusions,
    )
    snap["deferred"] = sorted(result.deferred_edges)
    return snap


# ----------------------------------------------------------------------
# mapping: packed vs frozen scalar reference
# ----------------------------------------------------------------------
class TestPackedMapperIdentity:
    @pytest.mark.parametrize("name,qubits", GRID)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_benchmark_grid_identical(self, name, qubits, seed):
        packed = _map_benchmark(packed_mapping, name, qubits, seed)
        ref = _map_benchmark(reference_mapping, name, qubits, seed)
        assert packed == ref

    @pytest.mark.parametrize("graph_seed", range(10))
    def test_random_fusion_graphs_identical(self, graph_seed):
        base = nx.gnm_random_graph(24, 30, seed=graph_seed)
        graph = nx.relabel_nodes(base, {v: (v, 0) for v in base.nodes()})
        packed = _map_raw_graph(packed_mapping, graph, (9, 9))
        ref = _map_raw_graph(reference_mapping, graph, (9, 9))
        assert packed == ref

    @pytest.mark.parametrize("graph_seed", range(5))
    def test_overfull_layer_spills_identically(self, graph_seed):
        """A graph far larger than one layer forces layer turnover,
        incomplete nodes, and deferred edges — the spill paths."""
        base = nx.gnm_random_graph(30, 44, seed=graph_seed)
        graph = nx.relabel_nodes(base, {v: (v, 0) for v in base.nodes()})
        packed = _map_raw_graph(packed_mapping, graph, (4, 4))
        ref = _map_raw_graph(reference_mapping, graph, (4, 4))
        assert packed == ref
        assert len(packed["layers"]) > 1  # the spill path actually ran

    def test_dense_graph_routes_identically(self):
        """High-degree hubs exercise routing and alpha blockage terms."""
        graph = nx.relabel_nodes(
            nx.complete_graph(7), {v: (v, 0) for v in range(7)}
        )
        packed = _map_raw_graph(packed_mapping, graph, (6, 6))
        ref = _map_raw_graph(reference_mapping, graph, (6, 6))
        assert packed == ref

    @pytest.mark.parametrize("shape", [(1, 5), (5, 1), (1, 1)])
    def test_degenerate_grids_rejected_identically(self, shape):
        for mod in (packed_mapping, reference_mapping):
            with pytest.raises(ValueError):
                mod.InLayerMapper(shape=shape, resource_state=THREE_LINE)


# ----------------------------------------------------------------------
# free-cell scan determinism (the seed's spiral BFS broke distance ties
# by occupancy history; the packed scan is pure geometry)
# ----------------------------------------------------------------------
class TestFreeCellScanDeterminism:
    def _occupy(self, mapping_mod, cells: List[Coord], shape=(6, 6)):
        mapper = mapping_mod.InLayerMapper(
            shape=shape, resource_state=THREE_LINE
        )
        mapper._open_layer()
        for i, cell in enumerate(cells):
            mapper._place_node((i, 0), cell, 0)
        return mapper

    @pytest.mark.parametrize("seed", range(6))
    def test_insertion_order_invariant(self, seed):
        """The chosen cell depends on the occupancy *set*, never on the
        order the set was built in."""
        rng = random.Random(seed)
        cells = [(r, c) for r in range(6) for c in range(6)]
        occupied = rng.sample(cells, 14)
        shuffled = occupied[:]
        rng.shuffle(shuffled)
        forward = self._occupy(packed_mapping, occupied)
        reordered = self._occupy(packed_mapping, shuffled)
        for center in ((0, 0), (2, 3), (5, 5), (3, 0)):
            assert forward._find_free_cell_near(
                center
            ) == reordered._find_free_cell_near(center)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_geometric_minimum(self, seed):
        """Packed scan == brute-force (distance, row, col) minimum, and
        == the frozen reference's deterministic scan."""
        rng = random.Random(100 + seed)
        cells = [(r, c) for r in range(6) for c in range(6)]
        occupied = set(rng.sample(cells, 17))
        packed = self._occupy(packed_mapping, sorted(occupied))
        ref = self._occupy(reference_mapping, sorted(occupied))
        free = [c for c in cells if c not in occupied]
        for center in ((0, 0), (1, 4), (3, 3), (5, 2)):
            got = packed._find_free_cell_near(center)
            assert got == ref._find_free_cell_near(center)
            if center not in occupied and any(
                n not in occupied for n in packed._neighbors(center)
            ):
                assert got == center
                continue
            expected = min(
                (c for c in free if c != center),
                key=lambda c: (
                    abs(c[0] - center[0]) + abs(c[1] - center[1]),
                    c,
                ),
                default=None,
            )
            assert got == expected


# ----------------------------------------------------------------------
# shuffling: packed vs frozen scalar reference
# ----------------------------------------------------------------------
def _random_pairs(rng, shape, count) -> List[Tuple[Coord, Coord]]:
    rows, cols = shape
    cells = [(r, c) for r in range(rows) for c in range(cols)]
    return [tuple(rng.sample(cells, 2)) for _ in range(count)]


class TestPackedShufflerIdentity:
    @pytest.mark.parametrize(
        "shape", [(1, 12), (2, 9), (6, 6), (7, 4), (12, 1)]
    )
    @pytest.mark.parametrize("seed", range(4))
    def test_try_route_random_occupancy(self, shape, seed):
        """Same path (or same refusal) on random occupancy planes,
        including the 1-row grids mapping never produces but shuffling
        accepts."""
        rng = random.Random(seed * 31 + shape[0] * 7 + shape[1])
        rows, cols = shape
        cells = [(r, c) for r in range(rows) for c in range(cols)]
        blocked: Set[Coord] = set(
            rng.sample(cells, rng.randrange(0, max(1, len(cells) // 3)))
        )
        packed = packed_shuffling.ShuffleLayer(shape=shape, used=set(blocked))
        ref = reference_shuffling.ShuffleLayer(shape=shape, used=set(blocked))
        for a, b in _random_pairs(rng, shape, 20):
            if a == b:
                continue
            assert packed.try_route(a, b) == ref.try_route(a, b)
        assert packed.used == ref.used
        assert packed.paths == ref.paths

    def test_try_route_after_external_used_mutation(self):
        """``used`` is the public source of truth: cells added between
        calls must be honoured (the packed mirror resyncs)."""
        shape = (5, 5)
        packed = packed_shuffling.ShuffleLayer(shape=shape)
        ref = reference_shuffling.ShuffleLayer(shape=shape)
        assert packed.try_route((0, 0), (0, 4)) == ref.try_route(
            (0, 0), (0, 4)
        )
        for layer in (packed, ref):
            layer.used.update({(2, c) for c in range(5)})  # wall row 2
        assert packed.try_route((1, 0), (3, 0)) is None
        assert ref.try_route((1, 0), (3, 0)) is None
        assert packed.try_route((1, 0), (1, 4)) == ref.try_route(
            (1, 0), (1, 4)
        )

    def test_route_impossible_pairs(self):
        """Walled-off endpoints refuse identically (guards + BFS)."""
        shape = (3, 7)
        wall = {(r, 3) for r in range(3)}
        packed = packed_shuffling.ShuffleLayer(shape=shape, used=set(wall))
        ref = reference_shuffling.ShuffleLayer(shape=shape, used=set(wall))
        assert packed.try_route((1, 0), (1, 6)) is None
        assert ref.try_route((1, 0), (1, 6)) is None
        # endpoint inside the wall
        assert packed.try_route((0, 3), (1, 6)) is None
        assert ref.try_route((0, 3), (1, 6)) is None
        # 1-row grid with a single blocked cell between the endpoints
        packed1 = packed_shuffling.ShuffleLayer(shape=(1, 6), used={(0, 2)})
        ref1 = reference_shuffling.ShuffleLayer(shape=(1, 6), used={(0, 2)})
        assert packed1.try_route((0, 0), (0, 5)) is None
        assert ref1.try_route((0, 0), (0, 5)) is None

    @pytest.mark.parametrize("seed", range(5))
    def test_connect_pairs_identical(self, seed):
        """Dynamic layer allocation: same layers, fusions, and paths."""
        rng = random.Random(900 + seed)
        shape = (4, 5)
        pairs = _random_pairs(rng, shape, 12) + [((1, 1), (1, 1))]
        packed = packed_shuffling.connect_pairs(list(pairs), shape)
        ref = reference_shuffling.connect_pairs(list(pairs), shape)
        assert packed.fusions == ref.fusions
        assert packed.connected == ref.connected
        assert packed.num_layers == ref.num_layers
        for lp, lr in zip(packed.layers, ref.layers):
            assert lp.used == lr.used
            assert lp.paths == lr.paths


# ----------------------------------------------------------------------
# parallel partition mapping == sequential compile
# ----------------------------------------------------------------------
def _program_signature(program):
    return (
        program.physical_depth,
        program.num_fusions,
        program.mapping_layers,
        program.shuffle_layers,
        program.resource_states_used,
        program.deferred_pairs,
        [
            (
                layout.index,
                sorted(layout.node_at.items()),
                sorted(layout.aux_cells),
                sorted(map(tuple, layout.paths)),
                sorted(layout.incomplete),
            )
            for layout in program.layouts
        ],
    )


class TestParallelMappingEquivalence:
    @pytest.mark.parametrize("use_hints", [True, False])
    def test_map_jobs_matches_sequential(self, use_hints):
        circuit = get_benchmark("QFT", 16, seed=7)
        hardware = _hardware_for(16, THREE_LINE)
        signatures = []
        for jobs in (None, 2):
            cfg = OneQConfig(
                hardware=hardware,
                use_placement_hints=use_hints,
                map_jobs=jobs,
            )
            program = OneQCompiler(cfg).compile(circuit, name="QFT-16")
            signatures.append(_program_signature(program))
        assert signatures[0] == signatures[1]
