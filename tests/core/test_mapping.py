"""Tests for the in-layer mapper and fusion routing."""

import networkx as nx
import pytest

from repro.core.fusion_graph import build_fusion_graph
from repro.core.mapping import InLayerMapper, _edge_order
from repro.hardware.resource_state import THREE_LINE


def fg_of(graph):
    degrees = {v: graph.degree(v) for v in graph.nodes()}
    return build_fusion_graph(graph, degrees, THREE_LINE)


def map_graph(graph, shape=(12, 12), **kwargs):
    mapper = InLayerMapper(shape, THREE_LINE, **kwargs)
    result = mapper.map_fusion_graph(fg_of(graph))
    return mapper, result


class TestEdgeOrder:
    def test_covers_all_edges(self):
        g = nx.wheel_graph(7)
        fg = fg_of(g)
        order = _edge_order(fg.graph)
        assert len(order) == fg.graph.number_of_edges()
        assert {frozenset(e) for e in order} == {
            frozenset(e) for e in fg.graph.edges()
        }

    def test_cycle_edges_before_bridges(self):
        """Cycle-prioritized BFS: at the seed, cycle edges come first."""
        # triangle 0-1-2 with pendant 3 hanging off node 0
        g = nx.Graph([(0, 1), (1, 2), (2, 0), (0, 3)])
        order = _edge_order(g)
        bridge_pos = order.index((0, 3)) if (0, 3) in order else order.index((3, 0))
        cycle_positions = [
            i
            for i, e in enumerate(order)
            if frozenset(e) != frozenset((0, 3))
        ]
        assert bridge_pos > min(cycle_positions)

    def test_empty_graph(self):
        assert _edge_order(nx.Graph()) == []

    def test_connected_expansion(self):
        """Each edge (after the first per component) touches a seen node."""
        g = nx.random_tree(20, seed=3) if hasattr(nx, "random_tree") else nx.path_graph(20)
        order = _edge_order(g)
        seen = set()
        for i, (u, v) in enumerate(order):
            if i > 0:
                assert u in seen or v in seen
            seen.update((u, v))


class TestBasicMapping:
    def test_small_path_single_layer(self):
        mapper, result = map_graph(nx.path_graph(5))
        assert len(result.layers) == 1
        assert result.deferred_edges == []
        assert result.edge_fusions == 4
        assert result.routing_fusions == 0

    def test_cycle_maps_completely(self):
        mapper, result = map_graph(nx.cycle_graph(8))
        realized = result.edge_fusions + len(result.deferred_edges)
        assert realized == 8

    def test_placements_distinct_cells(self):
        mapper, result = map_graph(nx.cycle_graph(10))
        for layout in result.layers:
            coords = list(layout.node_at.keys())
            assert len(coords) == len(set(coords))

    def test_aux_cells_disjoint_from_nodes(self):
        mapper, result = map_graph(nx.wheel_graph(9))
        for layout in result.layers:
            assert not (set(layout.node_at) & layout.aux_cells)

    def test_all_nodes_placed(self):
        g = nx.wheel_graph(9)
        fg = fg_of(g)
        mapper = InLayerMapper((12, 12), THREE_LINE)
        mapper.map_fusion_graph(fg)
        assert set(mapper.placements) == set(fg.graph.nodes())

    def test_isolated_nodes_placed(self):
        g = nx.Graph()
        g.add_nodes_from(range(4))
        mapper, result = map_graph(g)
        assert len(mapper.placements) == 4

    def test_paths_connect_endpoint_cells(self):
        """Every recorded path is grid-contiguous."""
        mapper, result = map_graph(nx.wheel_graph(9))
        for layout in result.layers:
            for path in layout.paths:
                for a, b in zip(path, path[1:]):
                    assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_tiny_layer_rejected(self):
        with pytest.raises(ValueError):
            InLayerMapper((1, 5), THREE_LINE)


class TestCapacityRespected:
    @pytest.mark.parametrize(
        "graph",
        [nx.cycle_graph(12), nx.wheel_graph(10), nx.grid_2d_graph(3, 3)],
        ids=["cycle", "wheel", "grid"],
    )
    def test_cell_fusion_count_bounded(self, graph):
        """No resource state participates in more fusions than photons."""
        mapper, result = map_graph(graph)
        fusions_at = {}
        for layout in result.layers:
            for path in layout.paths:
                a, b = path[0], path[-1]
                fusions_at[a] = fusions_at.get(a, 0) + 1
                fusions_at[b] = fusions_at.get(b, 0) + 1
                for cell in path[1:-1]:
                    fusions_at[cell] = fusions_at.get(cell, 0) + 2
        for layout in result.layers:
            for coord in layout.node_at:
                assert fusions_at.get(coord, 0) <= THREE_LINE.size
            for coord in layout.aux_cells:
                # one pass-through = 2 photons; a 3-qubit aux supports 1 path
                assert fusions_at.get(coord, 0) <= 2 + (THREE_LINE.size - 2)


class TestOverflowToNewLayers:
    def test_graph_larger_than_layer_spills(self):
        g = nx.path_graph(30)
        mapper = InLayerMapper((4, 4), THREE_LINE)
        result = mapper.map_fusion_graph(fg_of(g))
        assert len(result.layers) > 1
        # every deferred edge endpoint is placed somewhere
        for a, b in result.deferred_edges:
            assert a in mapper.placements
            assert b in mapper.placements

    def test_incomplete_nodes_marked(self):
        g = nx.path_graph(30)
        mapper = InLayerMapper((4, 4), THREE_LINE)
        result = mapper.map_fusion_graph(fg_of(g))
        if result.deferred_edges:
            marked = set()
            for layout in result.layers:
                marked |= layout.incomplete
            deferred_nodes = {n for e in result.deferred_edges for n in e}
            assert deferred_nodes & marked

    def test_two_partitions_sequential(self):
        """A second fusion graph maps onto fresh layers."""
        mapper = InLayerMapper((8, 8), THREE_LINE)
        r1 = mapper.map_fusion_graph(fg_of(nx.path_graph(5)))
        r2 = mapper.map_fusion_graph(fg_of(nx.relabel_nodes(nx.path_graph(5), {i: i + 100 for i in range(5)})))
        assert r1.layers[0].index < r2.layers[0].index


class TestRouting:
    def test_triangle_on_grid_needs_routing(self):
        """Paper Fig. 6d: a triangle cannot embed on a grid directly."""
        mapper, result = map_graph(nx.complete_graph(3))
        assert result.routing_fusions >= 1
        aux_total = sum(len(l.aux_cells) for l in result.layers)
        assert aux_total >= 1

    def test_routing_fusions_match_aux_usage(self):
        mapper, result = map_graph(nx.complete_graph(3))
        aux_total = sum(len(l.aux_cells) for l in result.layers)
        assert result.routing_fusions == aux_total
