"""Tests for inter-layer shuffling."""

import pytest

from repro.core.shuffling import ShuffleLayer, connect_pairs


class TestShuffleLayer:
    def test_direct_route(self):
        layer = ShuffleLayer(shape=(8, 8))
        path = layer.try_route((0, 0), (0, 3))
        assert path is not None
        assert path[0] == (0, 0)
        assert path[-1] == (0, 3)
        assert len(path) == 4

    def test_same_cell_handled_by_connect_pairs(self):
        """a == b never reaches try_route: connect_pairs short-circuits
        it into a pure temporal fusion without consuming shuffle cells."""
        result = connect_pairs([((2, 2), (2, 2))], (4, 4))
        assert result.fusions == 1
        assert result.num_layers == 0

    def test_blocked_endpoint(self):
        layer = ShuffleLayer(shape=(4, 4))
        layer.try_route((0, 0), (0, 3))
        assert layer.try_route((0, 0), (3, 3)) is None

    def test_paths_do_not_cross(self):
        layer = ShuffleLayer(shape=(8, 8))
        p1 = layer.try_route((0, 0), (0, 7))
        p2 = layer.try_route((3, 0), (3, 7))
        assert p1 and p2
        assert not (set(p1) & set(p2))

    def test_detour_around_used_cells(self):
        layer = ShuffleLayer(shape=(5, 5))
        layer.used.update({(2, c) for c in range(4)})  # wall with gap at col 4
        path = layer.try_route((0, 0), (4, 0))
        assert path is not None
        assert all(cell not in {(2, c) for c in range(4)} for cell in path)


class TestConnectPairs:
    def test_empty(self):
        result = connect_pairs([], (8, 8))
        assert result.fusions == 0
        assert result.num_layers == 0

    def test_same_coord_pure_temporal(self):
        """Same RSG location across layers: one delay-line fusion."""
        result = connect_pairs([((2, 2), (2, 2))], (8, 8))
        assert result.fusions == 1
        assert result.num_layers == 0

    def test_single_pair_cost(self):
        """Cost = 2 temporal hops + path segments."""
        result = connect_pairs([((0, 0), (0, 3))], (8, 8))
        assert result.fusions == 2 + 3
        assert result.num_layers == 1

    def test_many_pairs_allocate_layers(self):
        # saturate a tiny layer: disjoint long pairs
        pairs = [((r, 0), (r, 3)) for r in range(4)] * 3
        result = connect_pairs(pairs, (4, 4))
        assert result.connected == len(pairs)
        assert result.num_layers >= 3

    def test_short_pairs_packed_first(self):
        """Processing is distance-sorted, so short pairs share a layer."""
        pairs = [((0, 0), (0, 1)), ((2, 0), (2, 1)), ((0, 0), (3, 3))]
        result = connect_pairs(pairs, (4, 4))
        assert result.connected == 3

    def test_deterministic(self):
        pairs = [((0, 0), (3, 3)), ((1, 1), (2, 0))]
        a = connect_pairs(pairs, (6, 6))
        b = connect_pairs(pairs, (6, 6))
        assert a.fusions == b.fusions
        assert a.num_layers == b.num_layers

    def test_cost_model_accounting(self):
        """Fusion/aux accounting matches the documented cost model:

        * same-cell pair: 1 temporal fusion, no cells used;
        * distinct pair: 2 temporal + (len(path) - 1) spatial fusions,
          every traversed cell is one single-use auxiliary state.
        """
        pairs = [
            ((1, 1), (1, 1)),          # temporal only
            ((0, 0), (0, 2)),          # path of 3 cells, 2 segments
            ((3, 0), (3, 4)),          # path of 5 cells, 4 segments
        ]
        result = connect_pairs(pairs, (6, 6))
        assert result.connected == 3
        paths = [p for layer in result.layers for p in layer.paths]
        expected_spatial = sum(len(p) - 1 for p in paths)
        assert result.fusions == 1 + 2 * len(paths) + expected_spatial
        # aux accounting: each traversed cell is used exactly once
        for layer in result.layers:
            cells = [c for p in layer.paths for c in p]
            assert len(cells) == len(set(cells))
            assert layer.used == set(cells)
