"""Tests for ASCII layout rendering."""

from repro.circuit import bernstein_vazirani, qft
from repro.core import compile_circuit, render_layer, render_program
from repro.core.mapping import LayerLayout
from repro.hardware import HardwareConfig


class TestRenderLayer:
    def test_empty_layer(self):
        layout = LayerLayout(index=0, shape=(2, 3))
        assert render_layer(layout) == "...\n..."

    def test_node_markers(self):
        layout = LayerLayout(index=0, shape=(2, 2))
        layout.node_at[(0, 0)] = ("a", 0)
        layout.node_at[(1, 1)] = ("b", 0)
        layout.incomplete.add(("b", 0))
        text = render_layer(layout)
        assert text.splitlines()[0][0] == "o"
        assert text.splitlines()[1][1] == "?"

    def test_aux_marker(self):
        layout = LayerLayout(index=0, shape=(1, 2))
        layout.aux_cells.add((0, 1))
        assert render_layer(layout) == ".*"


class TestRenderProgram:
    def test_contains_summary_and_grid(self):
        prog = compile_circuit(
            bernstein_vazirani(8), HardwareConfig.square(10), name="bv8"
        )
        text = render_program(prog)
        assert "bv8" in text
        assert "layer 0" in text
        assert "o" in text

    def test_max_layers_truncation(self):
        prog = compile_circuit(qft(6), HardwareConfig.square(6))
        text = render_program(prog, max_layers=1)
        if prog.mapping_layers > 1:
            assert "more layers" in text

    def test_grid_dimensions(self):
        prog = compile_circuit(
            bernstein_vazirani(6), HardwareConfig(rows=5, cols=9)
        )
        grid_lines = [
            l for l in render_program(prog, max_layers=1).splitlines()
            if set(l) <= {"o", "?", "*", "."} and l
        ]
        assert len(grid_lines) == 5
        assert all(len(l) == 9 for l in grid_lines)
