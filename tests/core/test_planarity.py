"""Tests for planarity utilities."""

import networkx as nx
import pytest

from repro.core.planarity import (
    is_planar,
    maximal_planar_subgraph,
    planar_edge_decomposition,
    planar_embedding_order,
)


class TestIsPlanar:
    def test_k4_planar(self):
        assert is_planar(nx.complete_graph(4))

    def test_k5_not_planar(self):
        assert not is_planar(nx.complete_graph(5))

    def test_k33_not_planar(self):
        assert not is_planar(nx.complete_bipartite_graph(3, 3))

    def test_grid_planar(self):
        assert is_planar(nx.grid_2d_graph(5, 5))


class TestEmbeddingOrder:
    def test_returns_none_for_nonplanar(self):
        assert planar_embedding_order(nx.complete_graph(5)) is None

    def test_covers_all_nodes(self):
        g = nx.cycle_graph(6)
        order = planar_embedding_order(g)
        assert set(order) == set(g.nodes())

    def test_each_node_lists_its_neighbors(self):
        g = nx.wheel_graph(6)
        order = planar_embedding_order(g)
        for node, nbrs in order.items():
            assert set(nbrs) == set(g.neighbors(node))

    def test_isolated_node_empty_order(self):
        g = nx.Graph()
        g.add_node(7)
        assert planar_embedding_order(g) == {7: []}


class TestMaximalPlanarSubgraph:
    def test_planar_input_unchanged(self):
        g = nx.cycle_graph(5)
        sub, leftover = maximal_planar_subgraph(g)
        assert leftover == []
        assert sub.number_of_edges() == 5

    def test_k5_drops_at_least_one_edge(self):
        sub, leftover = maximal_planar_subgraph(nx.complete_graph(5))
        assert leftover
        assert is_planar(sub)

    def test_leftover_edges_break_planarity(self):
        """Maximality: re-adding any leftover edge breaks planarity."""
        sub, leftover = maximal_planar_subgraph(nx.complete_graph(6))
        for u, v in leftover:
            test = sub.copy()
            test.add_edge(u, v)
            assert not is_planar(test)

    def test_nodes_preserved(self):
        g = nx.complete_graph(5)
        sub, _ = maximal_planar_subgraph(g)
        assert set(sub.nodes()) == set(g.nodes())


class TestPlanarEdgeDecomposition:
    def test_planar_graph_single_piece(self):
        pieces = planar_edge_decomposition(nx.cycle_graph(4))
        assert len(pieces) == 1

    def test_k6_multiple_pieces(self):
        g = nx.complete_graph(6)
        pieces = planar_edge_decomposition(g)
        assert len(pieces) >= 2
        assert all(is_planar(p) for p in pieces)

    def test_edges_partitioned_exactly(self):
        g = nx.complete_graph(6)
        pieces = planar_edge_decomposition(g)
        seen = set()
        for piece in pieces:
            for e in piece.edges():
                key = frozenset(e)
                assert key not in seen
                seen.add(key)
        assert seen == {frozenset(e) for e in g.edges()}

    def test_edgeless_graph(self):
        g = nx.Graph()
        g.add_nodes_from(range(3))
        pieces = planar_edge_decomposition(g)
        assert len(pieces) == 1
        assert pieces[0].number_of_edges() == 0
