"""Tests for the end-to-end OneQ compiler."""

import pytest

from repro.circuit import Circuit, bernstein_vazirani, get_benchmark, qft
from repro.core import OneQCompiler, OneQConfig, PartitionConfig, compile_circuit
from repro.hardware import (
    FOUR_LINE,
    FOUR_RING,
    FOUR_STAR,
    HardwareConfig,
    THREE_LINE,
)
from repro.mbqc import circuit_to_pattern


class TestBasicCompilation:
    def test_tiny_circuit(self, small_hardware):
        prog = compile_circuit(Circuit(2).h(0).cx(0, 1), small_hardware)
        assert prog.physical_depth >= 1
        assert prog.num_fusions > 0

    def test_empty_wire_circuit(self, small_hardware):
        prog = compile_circuit(Circuit(3), small_hardware)
        assert prog.physical_depth >= 1

    def test_metrics_consistent(self, small_hardware):
        prog = compile_circuit(qft(4), small_hardware)
        t = prog.fusions
        assert prog.num_fusions == t.synthesis + t.edge + t.routing + t.shuffling
        assert prog.physical_depth == (
            prog.mapping_layers * prog.extension + prog.shuffle_layers
        )

    def test_deterministic(self, small_hardware):
        a = compile_circuit(qft(4), small_hardware)
        b = compile_circuit(qft(4), small_hardware)
        assert a.num_fusions == b.num_fusions
        assert a.physical_depth == b.physical_depth

    def test_layouts_recorded(self, small_hardware):
        prog = compile_circuit(qft(4), small_hardware)
        assert len(prog.layouts) == prog.mapping_layers
        assert all(l.shape == (8, 8) for l in prog.layouts)

    def test_compile_pattern_directly(self, small_hardware):
        pattern = circuit_to_pattern(qft(3))
        compiler = OneQCompiler(OneQConfig(hardware=small_hardware))
        prog = compiler.compile_pattern(pattern, name="direct")
        assert prog.name == "direct"
        assert prog.pattern_nodes == pattern.graph.number_of_nodes()

    def test_summary_text(self, small_hardware):
        prog = compile_circuit(qft(3), small_hardware, name="qft3")
        assert "qft3" in prog.summary()
        assert "depth=" in prog.summary()


class TestPaperShape:
    """Qualitative results the paper's Table 2 commits to."""

    def test_bv_maps_to_very_few_layers(self, paper_hardware):
        prog = compile_circuit(bernstein_vazirani(16), paper_hardware)
        assert prog.physical_depth <= 3  # paper: 1

    def test_bv_cheapest_qft_most_expensive(self, paper_hardware):
        metrics = {}
        for name in ("QFT", "QAOA", "RCA", "BV"):
            prog = compile_circuit(get_benchmark(name, 16), paper_hardware)
            metrics[name] = (prog.physical_depth, prog.num_fusions)
        assert metrics["BV"][0] == min(m[0] for m in metrics.values())
        assert metrics["QFT"][0] == max(m[0] for m in metrics.values())
        assert metrics["BV"][1] == min(m[1] for m in metrics.values())

    def test_fusions_scale_with_qubits(self, paper_hardware):
        f16 = compile_circuit(qft(8), paper_hardware).num_fusions
        f25 = compile_circuit(qft(12), paper_hardware).num_fusions
        assert f25 > f16

    def test_resource_states_bounded_by_depth_times_area(self, paper_hardware):
        prog = compile_circuit(get_benchmark("QAOA", 16), paper_hardware)
        assert prog.resource_states_used <= (
            prog.physical_depth * paper_hardware.physical_area
        )


class TestResourceStates:
    @pytest.mark.parametrize(
        "rst", [THREE_LINE, FOUR_LINE, FOUR_STAR, FOUR_RING], ids=lambda r: r.name
    )
    def test_all_resource_states_compile(self, rst):
        hw = HardwareConfig.square(12, resource_state=rst)
        prog = compile_circuit(qft(4), hw)
        assert prog.num_fusions > 0

    def test_four_star_fewer_synthesis_fusions(self):
        """Higher-degree resource states shorten synthesis chains."""
        c = get_benchmark("QFT", 8)
        three = compile_circuit(c, HardwareConfig.square(12, resource_state=THREE_LINE))
        star = compile_circuit(c, HardwareConfig.square(12, resource_state=FOUR_STAR))
        assert star.fusions.synthesis < three.fusions.synthesis


class TestExtendedLayers:
    def test_extension_reduces_mapping_layers(self):
        c = qft(6)
        flat = compile_circuit(c, HardwareConfig(rows=8, cols=8, extension=1))
        ext = compile_circuit(c, HardwareConfig(rows=8, cols=8, extension=3))
        assert ext.mapping_layers <= flat.mapping_layers

    def test_extension_counts_in_depth(self):
        c = Circuit(2).h(0).cx(0, 1)
        prog = compile_circuit(c, HardwareConfig(rows=6, cols=6, extension=2))
        assert prog.physical_depth >= 2 * prog.mapping_layers


class TestConfigPlumb:
    def test_partition_override(self, small_hardware):
        cfg = OneQConfig(
            hardware=small_hardware,
            partition=PartitionConfig(target_states=8),
        )
        prog = OneQCompiler(cfg).compile(qft(4))
        assert prog.num_partitions >= 2

    def test_lemma1_scheduling_ablation(self, small_hardware):
        """Lemma-1 scheduling scatters geometry -> more shuffle fusions."""
        c = qft(6)
        flow = OneQCompiler(
            OneQConfig(hardware=small_hardware)
        ).compile(c)
        lemma = OneQCompiler(
            OneQConfig(
                hardware=small_hardware,
                partition=PartitionConfig(scheduling="lemma1"),
            )
        ).compile(c)
        assert flow.fusions.shuffling <= lemma.fusions.shuffling

    def test_alpha_plumbed(self, small_hardware):
        prog = OneQCompiler(
            OneQConfig(hardware=small_hardware, alpha=10.0)
        ).compile(qft(3))
        assert prog.num_fusions > 0

    def test_route_targets_limit_plumbed(self, small_hardware):
        """The previously hardcoded routed-candidate cap is configurable."""
        from repro.core.mapping import InLayerMapper

        cfg = OneQConfig(hardware=small_hardware, route_targets_limit=1)

        def targets(limit):
            mapper = InLayerMapper(
                shape=cfg.hardware.extended_shape,
                resource_state=cfg.hardware.resource_state,
                route_targets_limit=limit,
            )
            mapper._open_layer()
            return mapper._routed_targets((4, 4), needed=1)

        # the cap is checked per BFS expansion (seed semantics), so it
        # bounds growth rather than the exact count
        assert len(targets(1)) < len(targets(6))
        prog = OneQCompiler(cfg).compile(qft(4))
        assert prog.num_fusions > 0

    def test_connect_radius_plumbed(self, small_hardware):
        """Bounding placed-to-placed routing defers long in-layer routes."""
        c = qft(6)
        unbounded = OneQCompiler(
            OneQConfig(hardware=small_hardware)
        ).compile(c)
        bounded = OneQCompiler(
            OneQConfig(hardware=small_hardware, connect_radius=1)
        ).compile(c)
        assert bounded.fusions.routing <= unbounded.fusions.routing
        assert bounded.num_fusions > 0


class TestPhotonBudget:
    def test_settle_balance_positive(self):
        from repro.core.compiler import settle_photon_budget

        z, deficit = settle_photon_budget(photons=10, consumed=4)
        assert (z, deficit) == (6, 0)

    def test_settle_deficit_recorded_and_warned(self):
        from repro.core.compiler import settle_photon_budget

        with pytest.warns(RuntimeWarning, match="deficit of 3"):
            z, deficit = settle_photon_budget(photons=4, consumed=7, name="x")
        assert (z, deficit) == (0, 3)

    def test_compiled_programs_balance(self, small_hardware):
        """Real compiles must never run a (silently clamped) deficit."""
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            prog = compile_circuit(qft(6), small_hardware)
        assert prog.photon_deficit == 0
        assert prog.fusions.z_measurements >= 0
