"""Tests for graph partition and scheduling."""

import pytest

from repro.circuit import Circuit, bernstein_vazirani, qft
from repro.core.partition import (
    PartitionConfig,
    cross_partition_edges,
    partition_pattern,
    required_degrees,
    verify_partitioning,
)
from repro.mbqc import circuit_to_pattern
from tests.conftest import random_circuit


class TestPartitionConfig:
    def test_defaults(self):
        cfg = PartitionConfig()
        assert cfg.enforce_planarity
        assert cfg.scheduling == "flow"

    def test_invalid_max_layers(self):
        with pytest.raises(ValueError):
            PartitionConfig(max_layers=0)

    def test_invalid_scheduling(self):
        with pytest.raises(ValueError):
            PartitionConfig(scheduling="random")

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            PartitionConfig(target_states=0)


class TestPartitionStructure:
    def test_bv_single_partition(self):
        pattern = circuit_to_pattern(bernstein_vazirani(8))
        parts = partition_pattern(pattern)
        assert len(parts) == 1
        assert parts[0].back_edges == []

    def test_coverage_and_edge_accounting(self):
        pattern = circuit_to_pattern(qft(5))
        parts = partition_pattern(pattern)
        ok, msg = verify_partitioning(pattern, parts)
        assert ok, msg

    @pytest.mark.parametrize("seed", range(5))
    def test_random_patterns_verified(self, seed):
        pattern = circuit_to_pattern(random_circuit(4, 15, seed + 40))
        for scheduling in ("flow", "lemma1"):
            parts = partition_pattern(
                pattern, PartitionConfig(scheduling=scheduling)
            )
            ok, msg = verify_partitioning(pattern, parts)
            assert ok, f"{scheduling}: {msg}"

    def test_back_edges_point_backward(self):
        pattern = circuit_to_pattern(qft(6))
        parts = partition_pattern(pattern, PartitionConfig(target_states=30))
        home = {}
        for p in parts:
            for v in p.nodes:
                home[v] = p.index
        for p in parts:
            for u, v in p.back_edges:
                assert home[u] < p.index
                assert home[v] == p.index

    def test_target_states_limits_partition_size(self):
        pattern = circuit_to_pattern(qft(6))
        small = partition_pattern(pattern, PartitionConfig(target_states=20))
        large = partition_pattern(pattern, PartitionConfig(target_states=1000))
        assert len(small) > len(large)

    def test_max_layers_limits_partition(self):
        pattern = circuit_to_pattern(qft(5))
        parts = partition_pattern(pattern, PartitionConfig(max_layers=1))
        for p in parts:
            assert len(p.layer_indices) == 1

    def test_indices_sequential(self):
        pattern = circuit_to_pattern(qft(5))
        parts = partition_pattern(pattern, PartitionConfig(target_states=25))
        assert [p.index for p in parts] == list(range(len(parts)))


class TestPlanarityEnforcement:
    def test_partitions_planar_when_enforced(self):
        from repro.core.planarity import is_planar

        pattern = circuit_to_pattern(random_circuit(5, 25, 77))
        parts = partition_pattern(
            pattern, PartitionConfig(enforce_planarity=True)
        )
        # each partition subgraph is planar unless it is a single layer
        for p in parts:
            if len(p.layer_indices) > 1:
                assert is_planar(p.subgraph)

    def test_disabled_planarity_gives_fewer_partitions(self):
        pattern = circuit_to_pattern(qft(6))
        with_p = partition_pattern(
            pattern, PartitionConfig(enforce_planarity=True, target_states=10**6)
        )
        without_p = partition_pattern(
            pattern, PartitionConfig(enforce_planarity=False, target_states=10**6)
        )
        assert len(without_p) <= len(with_p)


class TestHelpers:
    def test_required_degrees_counts_cross_edges(self):
        pattern = circuit_to_pattern(qft(5))
        parts = partition_pattern(pattern, PartitionConfig(target_states=20))
        graph = pattern.graph
        for p in parts:
            degrees = required_degrees(p, graph)
            for node in p.nodes:
                assert degrees[node] == graph.degree(node)

    def test_cross_partition_edges_union(self):
        pattern = circuit_to_pattern(qft(5))
        parts = partition_pattern(pattern, PartitionConfig(target_states=20))
        cross = cross_partition_edges(parts)
        assert len(cross) == sum(len(p.back_edges) for p in parts)
