"""Inter-layer shuffling (paper Sec. 6, Fig. 10).

FROZEN REFERENCE (do not edit): verbatim snapshot of the scalar
implementation taken immediately before the bit-packed rewrite of the
live module.  tests/core/test_mapping_equivalence_v2.py pins the packed
path bit-identical to this code; benchmarks/bench_mapping_v2.py measures
the speedup against it.

Incomplete nodes — nodes whose edges could not all be realized within
their layer — are reconnected on dedicated shuffle layers inserted
between mapped layers.  Pairs are sorted by distance and routed greedily
with shortest paths; when a shuffle layer fills up, another is allocated
(the paper's dynamic layer allocation).

Cost model per connected pair:

* endpoints at the same grid location: one temporal fusion through the
  delay line (no shuffle cells consumed);
* otherwise: two temporal fusions into/out of the shuffle layer plus one
  spatial fusion per path segment; every traversed cell is an auxiliary
  resource state usable by only one path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.utils.geometry import grid_neighbor_table, manhattan

Coord = Tuple[int, int]


@dataclass
class ShuffleLayer:
    """Occupancy of one shuffle layer."""

    shape: Tuple[int, int]
    used: Set[Coord] = field(default_factory=set)
    paths: List[List[Coord]] = field(default_factory=list)

    def _neighbors(self, coord: Coord) -> List[Coord]:
        return grid_neighbor_table(self.shape)[coord]

    def try_route(self, a: Coord, b: Coord) -> Optional[List[Coord]]:
        """Shortest free path from *a* to *b* (inclusive), or None.

        ``a == b`` never reaches here: :func:`connect_pairs` realizes
        same-cell pairs as pure temporal fusions without a shuffle layer.
        """
        if a in self.used or b in self.used:
            return None
        nbr_table = grid_neighbor_table(self.shape)
        used = self.used
        # exact impossibility guards: skip the BFS flood on layers that
        # cannot host the path (a path needs manhattan+1 free cells, a
        # free cell after *a* and one before *b* unless they are adjacent)
        if b not in nbr_table[a]:
            rows, cols = self.shape
            dist = abs(a[0] - b[0]) + abs(a[1] - b[1])
            if rows * cols - len(used) < dist + 1:
                return None
            if all(p in used for p in nbr_table[a]):
                return None
            if all(p in used for p in nbr_table[b]):
                return None
        queue = deque([a])
        pop = queue.popleft
        push = queue.append
        parent: Dict[Coord, Optional[Coord]] = {a: None}
        while queue:
            cur = pop()
            for nxt in nbr_table[cur]:
                if nxt in parent or nxt in used:
                    continue
                parent[nxt] = cur
                if nxt == b:
                    path = [b]
                    back = cur
                    while back is not None:
                        path.append(back)
                        back = parent[back]
                    path.reverse()
                    self.used.update(path)
                    self.paths.append(path)
                    return path
                push(nxt)
        return None


@dataclass
class ShuffleResult:
    """Outcome of connecting one group of node pairs."""

    layers: List[ShuffleLayer]
    fusions: int = 0
    connected: int = 0

    @property
    def num_layers(self) -> int:
        return len(self.layers)


def connect_pairs(
    pairs: List[Tuple[Coord, Coord]], shape: Tuple[int, int]
) -> ShuffleResult:
    """Connect coordinate pairs on dynamically allocated shuffle layers.

    Pairs are processed in ascending distance order (short paths first
    leave the most room), each on the first layer with a free path.
    """
    result = ShuffleResult(layers=[])
    for a, b in sorted(pairs, key=lambda p: manhattan(p[0], p[1])):
        if a == b:
            # pure temporal connection through a delay line
            result.fusions += 1
            result.connected += 1
            continue
        path = None
        for layer in result.layers:
            path = layer.try_route(a, b)
            if path is not None:
                break
        if path is None:
            layer = ShuffleLayer(shape=shape)
            result.layers.append(layer)
            path = layer.try_route(a, b)
            if path is None:
                raise RuntimeError(
                    f"pair {a}-{b} cannot be routed even on an empty "
                    f"{shape} layer"
                )
        # two temporal hops + one fusion per spatial segment
        result.fusions += 2 + (len(path) - 1)
        result.connected += 1
    return result
