"""Equivalence tests for the hot-path optimizations.

The mapper, partitioner, and scheduler were rewritten for speed with the
contract that they are *observationally identical* to the seed
implementations.  These tests pin that contract: reference classes and
functions below carry the seed algorithms verbatim, and every output the
compiler consumes (placements, layouts, fusion tallies, layer counts,
partitions, ranks) must match bit-for-bit on the Table-2 grid and on
randomized graphs.
"""

from collections import deque
from dataclasses import replace
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx
import pytest

import repro.core.compiler as compiler_mod
from repro.circuit.benchmarks import get_benchmark
from repro.core.compiler import OneQCompiler, OneQConfig
from repro.core.fusion_graph import FusionGraph
from repro.core.mapping import Coord, FGNode, InLayerMapper
from repro.core.partition import (
    GraphPartition,
    PartitionConfig,
    partition_pattern,
)
from repro.core.planarity import is_planar
from repro.eval.experiments import _hardware_for
from repro.hardware.resource_state import THREE_LINE
from repro.mbqc.flow import rank_layers, scheduling_ranks
from repro.mbqc.translate import circuit_to_pattern

GRID_16 = [("QFT", 16), ("QAOA", 16), ("RCA", 16), ("BV", 16)]


class ReferenceMapper(InLayerMapper):
    """The seed mapper: pre-optimization hot paths, verbatim."""

    def _free_neighbor_count(self, coord: Coord) -> int:
        return sum(1 for p in self._neighbors(coord) if self._free(p))

    def _on_occupy(self, coord: Coord) -> None:  # no cache to maintain
        pass

    def _bfs_path(
        self,
        start: Coord,
        goal_test,
        max_len: Optional[int] = None,
        avoid: Optional[Set[Coord]] = None,
        goal: Optional[Coord] = None,  # packed-path hint; scalar BFS ignores it
    ) -> Optional[List[Coord]]:
        avoid = avoid or set()
        queue = deque([start])
        parent: Dict[Coord, Optional[Coord]] = {start: None}
        while queue:
            cur = queue.popleft()
            if max_len is not None:
                d, p = 0, cur
                while parent[p] is not None:
                    p = parent[p]
                    d += 1
                if d >= max_len:
                    continue
            for nxt in self._neighbors(cur):
                if nxt in parent or nxt in avoid:
                    continue
                if goal_test(nxt, cur):
                    parent[nxt] = cur
                    path = [nxt]
                    back: Optional[Coord] = cur
                    while back is not None:
                        path.append(back)
                        back = parent[back]
                    path.reverse()
                    return path
                if self._free(nxt):
                    parent[nxt] = cur
                    queue.append(nxt)
        return None

    def _score_candidate(
        self,
        new_cells: List[Coord],
        new_node: Optional[FGNode],
        node_cell: Optional[Coord],
        remaining_after: Dict[FGNode, int],
    ) -> float:
        occupied_extra = set(new_cells)
        score = float(self._rect_area_with(new_cells))
        affected: Set[Tuple[FGNode, Coord]] = set()
        for cell in new_cells:
            for p in self._neighbors(cell):
                occ = self._occupied.get(p)
                if isinstance(occ, tuple) and occ in self._remaining:
                    place = self.placements.get(occ)
                    if place is not None and place.layer == len(self.layers) - 1:
                        affected.add((occ, place.coord))
        saved = dict(self._remaining)
        try:
            self._remaining.update(remaining_after)
            for node, coord in affected:
                score += self._blockage_score(node, coord, occupied_extra)
            if new_node is not None and node_cell is not None:
                score += self._blockage_score(new_node, node_cell, occupied_extra)
        finally:
            self._remaining = saved
        return score

    def _attach_new(self, placed: FGNode, new: FGNode, graph: nx.Graph):
        if self._node_capacity_left(placed) <= 0:
            if self._place_new_node(
                new, graph, near=self.placements[placed].coord,
                budget_for_edge=False,
            ):
                return "defer"
            return "spill"
        cp = self.placements[placed].coord
        degree = graph.degree(new)
        after = {
            placed: self._remaining.get(placed, 0) - 1,
            new: degree - 1,
        }
        options: List[Tuple[float, Coord, Optional[List[Coord]]]] = []
        for cell in self._neighbors(cp):
            if self._free(cell):
                score = self._score_candidate([cell], new, cell, after)
                options.append((score, cell, None))
        need_routing = not options or min(s for s, _, _ in options) >= self.alpha
        if need_routing:
            needed = max(1, min(degree - 1, 3))
            for path in self._routed_targets(cp, needed):
                target = path[-1]
                cells = path[1:]
                score = self._score_candidate(cells, new, target, after)
                score += 0.25 * (len(path) - 2)
                options.append((score, target, path))
        if not options:
            return "spill"
        _, best, path = min(options, key=lambda o: (o[0], o[1]))
        self._place_node(new, best, degree)
        self._consume(placed)
        self._consume(new)
        assert self._current is not None
        if path is None:
            self._current.paths.append([cp, best])
            return "edge"
        self._mark_aux(path[1:-1])
        self._current.paths.append(path)
        return len(path) - 2


def reference_partition_pattern(pattern, config, size_estimator=None):
    """The seed partitioner: one planarity check per accumulated layer."""
    from repro.mbqc.flow import dependency_layers

    if config.scheduling == "flow":
        layers = rank_layers(pattern)
    else:
        layers = dependency_layers(pattern)
    if size_estimator is None:
        size_estimator = lambda node: 1  # noqa: E731
    graph = pattern.graph
    partitions: List[GraphPartition] = []
    home: Dict[int, int] = {}
    current_nodes: List[int] = []
    current_layers: List[int] = []

    def close_partition() -> None:
        nonlocal current_nodes, current_layers
        if not current_nodes:
            return
        index = len(partitions)
        for node in current_nodes:
            home[node] = index
        subgraph = nx.Graph()
        subgraph.add_nodes_from(current_nodes)
        back_edges: List[Tuple[int, int]] = []
        for node in current_nodes:
            for nbr in graph.neighbors(node):
                if nbr in home and home[nbr] < index:
                    back_edges.append((nbr, node))
                elif home.get(nbr) == index and node < nbr:
                    subgraph.add_edge(node, nbr)
        partitions.append(
            GraphPartition(
                index=index,
                nodes=list(current_nodes),
                subgraph=subgraph,
                back_edges=sorted(set(back_edges)),
                layer_indices=list(current_layers),
            )
        )
        current_nodes = []
        current_layers = []

    current_states = 0
    for layer_idx, layer in enumerate(layers):
        layer_states = sum(size_estimator(node) for node in layer)
        if current_nodes and len(current_layers) >= config.max_layers:
            close_partition()
            current_states = 0
        if (
            config.target_states is not None
            and current_nodes
            and current_states + layer_states > config.target_states
        ):
            close_partition()
            current_states = 0
        if config.enforce_planarity and current_nodes:
            candidate = graph.subgraph(current_nodes + layer)
            if not is_planar(candidate):
                close_partition()
                current_states = 0
        current_nodes.extend(layer)
        current_layers.append(layer_idx)
        current_states += layer_states
    close_partition()
    return partitions


def reference_scheduling_ranks(pattern) -> Dict[int, int]:
    """The seed fixed-point longest-path ranking."""
    rank: Dict[int, int] = {}

    def deps_of(node: int):
        merged = set(pattern.x_deps.get(node, frozenset()))
        merged |= pattern.z_deps.get(node, frozenset())
        merged |= pattern.output_x.get(node, frozenset())
        merged |= pattern.output_z.get(node, frozenset())
        merged.discard(node)
        return frozenset(merged)

    remaining = set(pattern.graph.nodes())
    while remaining:
        progressed = []
        for node in remaining:
            sources = deps_of(node)
            if all(src in rank for src in sources):
                rank[node] = 1 + max(
                    (rank[src] for src in sources), default=-1
                )
                progressed.append(node)
        if not progressed:
            raise RuntimeError("cycle in raw dependency DAG")
        remaining -= set(progressed)
    return rank


def _layout_signature(program):
    return [
        (
            layout.index,
            dict(layout.node_at),
            set(layout.aux_cells),
            [tuple(p) for p in layout.paths],
            set(layout.incomplete),
        )
        for layout in program.layouts
    ]


def _compile(name: str, num_qubits: int, mapper_cls, monkeypatch):
    monkeypatch.setattr(compiler_mod, "InLayerMapper", mapper_cls)
    circuit = get_benchmark(name, num_qubits, seed=7)
    hardware = _hardware_for(num_qubits, THREE_LINE)
    compiler = OneQCompiler(OneQConfig(hardware=hardware))
    return compiler.compile(circuit, name=f"{name}-{num_qubits}")


class TestMapperEquivalence:
    @pytest.mark.parametrize("name,num_qubits", GRID_16)
    def test_table2_grid_identical(self, name, num_qubits, monkeypatch):
        """Optimized mapper == seed mapper on the Table-2 grid."""
        ref = _compile(name, num_qubits, ReferenceMapper, monkeypatch)
        opt = _compile(name, num_qubits, InLayerMapper, monkeypatch)
        assert opt.physical_depth == ref.physical_depth
        assert opt.mapping_layers == ref.mapping_layers
        assert opt.shuffle_layers == ref.shuffle_layers
        for kind in ("synthesis", "edge", "routing", "shuffling",
                     "z_measurements"):
            assert getattr(opt.fusions, kind) == getattr(ref.fusions, kind), kind
        assert opt.resource_states_used == ref.resource_states_used
        assert opt.deferred_pairs == ref.deferred_pairs
        assert _layout_signature(opt) == _layout_signature(ref)

    @pytest.mark.parametrize("graph_seed", range(8))
    def test_random_fusion_graphs_identical(self, graph_seed):
        """Property: identical placements on random fusion graphs."""
        base = nx.gnm_random_graph(20, 24, seed=graph_seed)
        graph = nx.relabel_nodes(base, {v: (v, 0) for v in base.nodes()})
        fusion = FusionGraph(graph=graph, chains={}, port_of={})
        results = []
        for cls in (ReferenceMapper, InLayerMapper):
            mapper = cls(shape=(10, 10), resource_state=THREE_LINE)
            out = mapper.map_fusion_graph(
                FusionGraph(graph=fusion.graph.copy(), chains={}, port_of={})
            )
            results.append((mapper, out))
        (ref_mapper, ref), (opt_mapper, opt) = results
        assert opt_mapper.placements == ref_mapper.placements
        assert opt.edge_fusions == ref.edge_fusions
        assert opt.synthesis_fusions == ref.synthesis_fusions
        assert opt.routing_fusions == ref.routing_fusions
        assert sorted(opt.deferred_edges) == sorted(ref.deferred_edges)
        assert len(opt.layers) == len(ref.layers)
        for lo, lr in zip(opt.layers, ref.layers):
            assert lo.node_at == lr.node_at
            assert lo.aux_cells == lr.aux_cells
            assert lo.paths == lr.paths


class TestPartitionEquivalence:
    @pytest.mark.parametrize("name,num_qubits", GRID_16)
    def test_benchmark_partitions_identical(self, name, num_qubits):
        """Windowed planarity probing == per-layer checks (seed)."""
        circuit = get_benchmark(name, num_qubits, seed=7)
        pattern = circuit_to_pattern(circuit)
        hardware = _hardware_for(num_qubits, THREE_LINE)
        rows, cols = hardware.extended_shape
        config = replace(
            PartitionConfig(), target_states=max(4, int(0.7 * rows * cols))
        )
        rst = hardware.resource_state
        estimator = lambda node: rst.states_for_degree(  # noqa: E731
            pattern.graph.degree(node)
        )
        ref = reference_partition_pattern(
            pattern, config, size_estimator=estimator
        )
        opt = partition_pattern(pattern, config, size_estimator=estimator)
        assert len(opt) == len(ref)
        for po, pr in zip(opt, ref):
            assert po.nodes == pr.nodes
            assert po.layer_indices == pr.layer_indices
            assert po.back_edges == pr.back_edges
            assert set(po.subgraph.edges()) == set(pr.subgraph.edges())

    @pytest.mark.parametrize("max_layers", [1, 2, 64])
    def test_partition_knobs_identical(self, max_layers):
        """Capacity/max-layer interleavings survive the optimization."""
        circuit = get_benchmark("QAOA", 12, seed=3)
        pattern = circuit_to_pattern(circuit)
        config = PartitionConfig(max_layers=max_layers, target_states=40)
        ref = reference_partition_pattern(pattern, config)
        opt = partition_pattern(pattern, config)
        assert [p.nodes for p in opt] == [p.nodes for p in ref]
        assert [p.back_edges for p in opt] == [p.back_edges for p in ref]


class TestSchedulingEquivalence:
    @pytest.mark.parametrize("name,num_qubits", GRID_16)
    def test_ranks_identical(self, name, num_qubits):
        circuit = get_benchmark(name, num_qubits, seed=7)
        pattern = circuit_to_pattern(circuit)
        assert scheduling_ranks(pattern) == reference_scheduling_ranks(pattern)
