"""Tests for blocked-cell compilation and the recovery-policy ladder."""

import numpy as np
import pytest

from repro.circuit import get_benchmark
from repro.core import (
    NoViableSitesError,
    OneQCompiler,
    OneQConfig,
    apply_policy,
    assert_valid,
    compile_circuit,
    recover,
    reroute_program,
)
from repro.core.mapping import InLayerMapper
from repro.core.recovery import clean_yield, program_yield
from repro.hardware import HardwareConfig, get_resource_state
from repro.hardware.degradation import (
    SiteNoiseMap,
    make_scenario,
    program_site_profile,
)
from repro.hardware.noise import NoiseModel
from repro.sim.noisy import FaultCounts, NoisySampler

MILD = NoiseModel(
    fusion_success=0.9,
    fusion_error=5e-05,
    cycle_loss=1e-05,
    measurement_error=1e-05,
)


@pytest.fixture(scope="module")
def setup():
    hardware = HardwareConfig.square(6)
    circuit = get_benchmark("BV", 8)
    program = compile_circuit(circuit, hardware)
    return hardware, circuit, program


def dead_map(shape, cells, base=MILD):
    dead = np.zeros(shape, dtype=bool)
    for r, c in cells:
        dead[r, c] = True
    return SiteNoiseMap(shape=shape, base=base, dead=dead)


class TestBlockedCompilation:
    def test_blocked_cells_stay_empty(self, setup):
        hardware, circuit, _ = setup
        blocked = ((0, 0), (2, 3), (5, 5))
        program = OneQCompiler(
            OneQConfig(hardware=hardware, blocked_cells=blocked)
        ).compile(circuit)
        assert_valid(program, hardware)
        for layout in program.layouts:
            occupied = set(layout.node_at) | set(layout.aux_cells)
            assert not occupied & set(blocked)

    def test_out_of_bounds_blocked_cell_rejected(self):
        with pytest.raises(ValueError, match="blocked"):
            InLayerMapper(
                (4, 4), get_resource_state("3-line"), blocked={(9, 9)}
            )

    def test_all_blocked_raises_no_viable_sites(self):
        every = {(r, c) for r in range(3) for c in range(3)}
        with pytest.raises(NoViableSitesError, match="no viable sites"):
            InLayerMapper(
                (3, 3), get_resource_state("3-line"), blocked=every
            )

    def test_all_dead_recompile_raises_through_compiler(self, setup):
        hardware, circuit, _ = setup
        rows, cols = hardware.extended_shape
        every = tuple(
            (r, c) for r in range(rows) for c in range(cols)
        )
        with pytest.raises(NoViableSitesError, match="no viable sites"):
            OneQCompiler(
                OneQConfig(hardware=hardware, blocked_cells=every)
            ).compile(circuit)


class TestReroute:
    def test_reroute_vacates_avoided_cells(self, setup):
        hardware, circuit, program = setup
        site_map = make_scenario(
            "dead-rsg", hardware.extended_shape, 0.1, base=MILD, seed=7
        )
        config = OneQConfig(hardware=hardware)
        rerouted, moved = reroute_program(program, site_map, config)
        assert moved > 0
        assert_valid(rerouted, hardware)
        avoid = set(site_map.avoid_cells())
        for layout in rerouted.layouts:
            occupied = set(layout.node_at) | set(layout.aux_cells)
            assert not occupied & avoid

    def test_reroute_restores_nonzero_yield(self, setup):
        hardware, circuit, program = setup
        site_map = make_scenario(
            "dead-rsg", hardware.extended_shape, 0.1, base=MILD, seed=7
        )
        config = OneQConfig(hardware=hardware)
        assert program_yield(program, site_map) == 0.0
        rerouted, _ = reroute_program(program, site_map, config)
        assert program_yield(rerouted, site_map) > 0.9

    def test_input_program_never_mutated(self, setup):
        hardware, circuit, program = setup
        site_map = make_scenario(
            "dead-rsg", hardware.extended_shape, 0.1, base=MILD, seed=7
        )
        before = [
            (dict(l.node_at), set(l.aux_cells)) for l in program.layouts
        ]
        reroute_program(program, site_map, OneQConfig(hardware=hardware))
        after = [
            (dict(l.node_at), set(l.aux_cells)) for l in program.layouts
        ]
        assert before == after


class TestPolicyLadder:
    def test_unknown_policy_rejected(self, setup):
        hardware, circuit, program = setup
        site_map = SiteNoiseMap.uniform(MILD, hardware.extended_shape)
        with pytest.raises(ValueError, match="unknown policy"):
            apply_policy(
                "pray", circuit, program, site_map,
                OneQConfig(hardware=hardware),
            )

    def test_all_dead_recompile_reports_no_viable_sites(self, setup):
        """The degenerate all-sites-dead device: every policy fails,
        and recompile's failure message names the real problem."""
        hardware, circuit, program = setup
        rows, cols = hardware.extended_shape
        site_map = dead_map(
            hardware.extended_shape,
            [(r, c) for r in range(rows) for c in range(cols)],
        )
        config = OneQConfig(hardware=hardware)
        outcome = apply_policy(
            "recompile", circuit, program, site_map, config
        )
        assert outcome.program is None
        assert outcome.yield_degraded == 0.0
        assert "no viable sites" in outcome.error
        report = recover(circuit, program, site_map, config)
        assert report.recovered is False
        assert report.yield_degraded == 0.0

    def test_harmless_scenario_survives_in_place(self, setup):
        hardware, circuit, program = setup
        site_map = make_scenario(
            "degraded-fusion",
            hardware.extended_shape,
            0.1,
            base=MILD,
            seed=7,
        )
        report = recover(
            circuit, program, site_map, OneQConfig(hardware=hardware),
            scenario="degraded-fusion", severity=0.1,
        )
        assert report.recovered is True
        assert report.policy == "survive"
        assert report.rerouted_fusions == 0

    def test_dead_rsg_collapse_recovered_by_reroute(self, setup):
        hardware, circuit, program = setup
        site_map = make_scenario(
            "dead-rsg", hardware.extended_shape, 0.1, base=MILD, seed=7
        )
        report = recover(
            circuit, program, site_map, OneQConfig(hardware=hardware),
            scenario="dead-rsg", severity=0.1,
        )
        assert report.yield_survive == 0.0
        assert report.recovered is True
        assert report.policy == "reroute"
        assert report.rerouted_fusions > 0
        assert report.yield_degraded >= 0.5 * report.yield_clean
        assert "recovered via reroute" in report.summary()

    def test_recovered_yield_within_three_sigma_of_clean(self, setup):
        """End-to-end: Monte-Carlo sample the recovered program under
        the degradation map; its fault-free yield must sit within 3
        binomial sigma of the *clean-hardware* analytic yield — the
        recovery genuinely restored the program, not just the report."""
        hardware, circuit, program = setup
        site_map = make_scenario(
            "dead-rsg", hardware.extended_shape, 0.1, base=MILD, seed=7
        )
        config = OneQConfig(hardware=hardware)
        outcome = apply_policy(
            "reroute", circuit, program, site_map, config
        )
        recovered = outcome.program
        sampler = NoisySampler(
            circuit,
            counts=FaultCounts.from_program(recovered),
            seed=7,
            site_map=site_map,
            site_profile=program_site_profile(
                recovered, site_map.shape
            ),
        )
        result = sampler.run(2000)
        clean = clean_yield(program, site_map)
        sigma = (clean * (1.0 - clean) / 2000) ** 0.5
        assert abs(result.fault_free_yield - clean) <= 3.0 * sigma
        # and the sampled tally agrees with its own per-site closed form
        assert result.agrees_with_analytic(k=3.0)
