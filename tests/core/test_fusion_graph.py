"""Tests for fusion graph generation."""

import networkx as nx
import pytest

from repro.circuit import bernstein_vazirani, qft
from repro.core.fusion_graph import build_fusion_graph, verify_fusion_graph
from repro.core.partition import partition_pattern, required_degrees
from repro.hardware.resource_state import (
    FOUR_LINE,
    FOUR_RING,
    FOUR_STAR,
    THREE_LINE,
)
from repro.mbqc import circuit_to_pattern

ALL_RST = [THREE_LINE, FOUR_LINE, FOUR_STAR, FOUR_RING]


def fg_for(graph, rst=THREE_LINE, degrees=None, **kwargs):
    degrees = degrees or {v: graph.degree(v) for v in graph.nodes()}
    return build_fusion_graph(graph, degrees, rst, **kwargs)


class TestChainSynthesis:
    def test_low_degree_single_state(self):
        g = nx.path_graph(3)
        fg = fg_for(g)
        assert all(len(chain) == 1 for chain in fg.chains.values())
        assert fg.synthesis_fusions == 0

    def test_high_degree_node_chained(self):
        """Fig. 8: a degree-5 node becomes a 4-state chain (3-qubit RS)."""
        g = nx.star_graph(5)
        fg = fg_for(g)
        assert len(fg.chains[0]) == 4
        assert fg.synthesis_fusions == 3

    def test_star_resource_state_shorter_chain(self):
        g = nx.star_graph(5)
        fg = fg_for(g, rst=FOUR_STAR)
        assert len(fg.chains[0]) == FOUR_STAR.states_for_degree(5)

    def test_chain_edges_marked(self):
        g = nx.star_graph(4)
        fg = fg_for(g)
        kinds = [d["kind"] for _, _, d in fg.graph.edges(data=True)]
        assert kinds.count("chain") == fg.synthesis_fusions
        assert kinds.count("edge") == fg.edge_fusions

    def test_one_edge_fusion_per_graph_edge(self):
        g = nx.cycle_graph(6)
        fg = fg_for(g)
        assert fg.edge_fusions == 6


class TestPortAccounting:
    @pytest.mark.parametrize("rst", ALL_RST, ids=lambda r: r.name)
    def test_capacity_never_exceeded(self, rst):
        g = nx.complete_graph(4)
        fg = fg_for(g, rst=rst)
        ok, msg = verify_fusion_graph(fg, g, rst)
        assert ok, msg

    def test_cross_neighbors_reserve_ports(self):
        g = nx.path_graph(2)
        degrees = {0: 3, 1: 1}  # node 0 has 2 extra cross edges
        fg = build_fusion_graph(
            g, degrees, THREE_LINE, cross_neighbors={0: [10, 11]}
        )
        assert (0, 10) in fg.port_of
        assert (0, 11) in fg.port_of
        # degree-3 demand on a 3-line RS -> chain of 2
        assert len(fg.chains[0]) == 2

    def test_port_for_every_in_partition_edge(self):
        g = nx.cycle_graph(5)
        fg = fg_for(g)
        for u, v in g.edges():
            assert (u, v) in fg.port_of
            assert (v, u) in fg.port_of


class TestContractionInvariant:
    @pytest.mark.parametrize("rst", ALL_RST, ids=lambda r: r.name)
    @pytest.mark.parametrize(
        "graph",
        [
            nx.path_graph(6),
            nx.cycle_graph(5),
            nx.star_graph(6),
            nx.wheel_graph(6),
            nx.complete_graph(4),
        ],
        ids=["path", "cycle", "star", "wheel", "k4"],
    )
    def test_contracting_chains_recovers_graph(self, rst, graph):
        fg = fg_for(graph, rst=rst)
        ok, msg = verify_fusion_graph(fg, graph, rst)
        assert ok, msg


class TestPlanarityPreservation:
    def test_planar_input_planar_fusion_graph(self):
        """Sec. 5: rotational edge order keeps the fusion graph planar."""
        g = nx.wheel_graph(8)  # planar with a high-degree hub
        fg = fg_for(g)
        assert fg.planar
        ok, _ = nx.check_planarity(fg.graph, counterexample=False)
        assert ok

    def test_grid_stays_planar(self):
        g = nx.grid_2d_graph(4, 4)
        fg = fg_for(g)
        ok, _ = nx.check_planarity(fg.graph, counterexample=False)
        assert ok

    def test_embedding_disabled(self):
        g = nx.wheel_graph(6)
        fg = fg_for(g, use_embedding=False)
        assert not fg.planar

    def test_nonplanar_input_flagged(self):
        g = nx.complete_graph(5)
        fg = fg_for(g)
        assert not fg.planar


class TestOnRealPatterns:
    @pytest.mark.parametrize("rst", ALL_RST, ids=lambda r: r.name)
    def test_bv_pattern(self, rst):
        pattern = circuit_to_pattern(bernstein_vazirani(8))
        parts = partition_pattern(pattern)
        for part in parts:
            fg = build_fusion_graph(
                part.subgraph, required_degrees(part, pattern.graph), rst
            )
            ok, msg = verify_fusion_graph(fg, part.subgraph, rst)
            assert ok, msg

    def test_qft_partitions(self):
        pattern = circuit_to_pattern(qft(5))
        parts = partition_pattern(pattern)
        home = {}
        for p in parts:
            for v in p.nodes:
                home[v] = p.index
        for part in parts:
            cross = {
                v: [
                    w
                    for w in pattern.graph.neighbors(v)
                    if home[w] != part.index
                ]
                for v in part.nodes
            }
            fg = build_fusion_graph(
                part.subgraph,
                required_degrees(part, pattern.graph),
                THREE_LINE,
                cross_neighbors=cross,
            )
            ok, msg = verify_fusion_graph(fg, part.subgraph, THREE_LINE)
            assert ok, msg
